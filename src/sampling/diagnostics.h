// Result/diagnostics structs shared by all samplers.
#pragma once

#include <vector>

#include "parallel/pram.h"

namespace pardpp {

/// Counters describing one sampler execution.
struct SampleDiagnostics {
  std::size_t rounds = 0;             ///< batch rounds executed
  std::size_t proposals = 0;          ///< rejection proposals evaluated
  std::size_t accepted_batches = 0;   ///< proposals that were accepted
  std::size_t duplicate_rejects = 0;  ///< proposals containing a repeat
  std::size_t ratio_overflows = 0;    ///< proposals with ratio above the cap
                                      ///< (Algorithm 3 "bad events")
  std::size_t oracle_calls = 0;       ///< counting-oracle queries issued
  std::size_t wave_count = 0;         ///< batched query_many rounds issued
  std::size_t wave_queries = 0;       ///< queries answered in those rounds
  std::size_t spectral_refreshes = 0; ///< commit-path eigensolve fallbacks
                                      ///< paid during this draw (0 on the
                                      ///< factor-native fast path and on
                                      ///< the condition() reference)
  std::size_t tail_candidates = 0;    ///< persistent-proposal candidates that
                                      ///< fell back to the exact full-n
                                      ///< inverse-CDF tail path (0 when the
                                      ///< mode is off)
  std::size_t heavy_tail_pools = 0;   ///< persistent-proposal pools whose
                                      ///< tail count exceeded the budget and
                                      ///< triggered a domain re-validation
  PramStats pram;                     ///< PRAM depth/work/machines ledger

  /// Overall acceptance frequency of the rejection stages.
  [[nodiscard]] double acceptance_rate() const {
    return proposals == 0 ? 1.0
                          : static_cast<double>(accepted_batches) /
                                static_cast<double>(proposals);
  }

  /// Mean counting queries amortized onto one shared-prefix wave state —
  /// the speculative work the batch-query engine answers per conditional
  /// factorization round (1.0 = nothing amortized, serial behaviour).
  [[nodiscard]] double queries_per_wave() const {
    return wave_count == 0 ? 1.0
                           : static_cast<double>(wave_queries) /
                                 static_cast<double>(wave_count);
  }
};

/// A sample (original ground-set ids, sorted) plus its diagnostics.
struct SampleResult {
  std::vector<int> items;
  SampleDiagnostics diag;
};

}  // namespace pardpp
