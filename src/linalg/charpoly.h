// Coefficients of det(I + z M) — sums of principal minors.
//
// For a (possibly nonsymmetric) ensemble matrix M, the coefficient of z^j
// in det(I + zM) equals e_j(M) = sum of j x j principal minors, which is
// the k-DPP partition function for j = k. The paper (Prop. 13) computes
// these by polynomial interpolation / Vandermonde solves; we use the
// numerically well-conditioned variant: evaluation at N = n+1 points on a
// circle of radius rho (condition number 1; the Vandermonde solve becomes
// an inverse DFT), with rho chosen by a saddle-point rule so the target
// coefficient is not drowned by the dominant ones.
//
// This header provides standalone extraction (used for validation and the
// unconstrained cardinality distribution); the cached, conditioning-aware
// engine that powers the general counting oracle lives in
// dpp/charpoly_engine.h.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "support/logsum.h"

namespace pardpp {

/// A real coefficient stored as sign * exp(log_abs).
struct LogCoefficient {
  double log_abs = kNegInf;
  int sign = 0;  ///< -1, 0, +1
};

/// Chooses the interpolation radius rho such that the "expected size"
/// tr(rho M (I + rho M)^{-1}) is approximately `target_size` — the saddle
/// point of the coefficient-extraction integrand for coefficient
/// `target_size`. Falls back to 1.0 when M vanishes.
[[nodiscard]] double saddle_point_radius(const Matrix& m, double target_size);

/// Coefficients of det(I + zM) for j = 0..jmax via circle interpolation.
/// `radius` <= 0 selects the saddle-point radius for coefficient jmax.
/// Coefficients whose magnitude falls below the interpolation noise floor
/// are reported as exact zeros (sign 0).
[[nodiscard]] std::vector<LogCoefficient> charpoly_log_coeffs(
    const Matrix& m, std::size_t jmax, double radius = 0.0);

/// Newton-identity computation of e_1..e_jmax from power sums tr(M^p).
/// O(n^3 jmax) and numerically fragile for large n — retained as an
/// algorithmically independent cross-check for the test suite.
[[nodiscard]] std::vector<double> charpoly_newton(const Matrix& m,
                                                  std::size_t jmax);

}  // namespace pardpp
