// Wall-clock timer for the benchmark harness.
#pragma once

#include <chrono>

namespace pardpp {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pardpp
