// Distillation front end (DESIGN.md §2 convention 8): statistical
// exactness against enumeration at pools {1, hw}, bit-identity against
// the condition() reference, the Maclaurin acceptance bound on fuzzed
// candidate pools, and restrict_to() against from-scratch restricted
// ensembles to 1e-10.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lowrank.h"
#include "linalg/lu.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/intermediate.h"
#include "sampling/session.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::chi_square_quantile;
using testing::chi_square_subsets;
using testing::ExactDistribution;

std::vector<std::size_t> stat_pool_sizes() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sizes = {1};
  if (hw > 1) sizes.push_back(hw);
  return sizes;
}

// Distilled draw_many at every pool size from one seed: asserts the
// sequences are identical across pool sizes and identical to the
// condition() reference session's (use_commit = false, same distillation
// plan), then returns the pool-1 sequence for the distribution checks.
std::vector<std::vector<int>> collect_distilled(const CountingOracle& oracle,
                                                SessionOptions options,
                                                std::uint64_t seed,
                                                std::size_t trials) {
  SessionOptions reference_options = options;
  reference_options.use_commit = false;
  SamplerSession session(oracle, options);
  SamplerSession reference_session(oracle, reference_options);

  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : stat_pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    auto results = session.draw_many(trials, rng, ctx);
    std::vector<std::vector<int>> samples;
    samples.reserve(results.size());
    for (auto& r : results) samples.push_back(std::move(r.items));
    per_pool.push_back(std::move(samples));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]) << "pool size index " << p;

  RandomStream reference_rng(seed);
  auto reference = reference_session.draw_many(trials, reference_rng,
                                               ExecutionContext::serial());
  EXPECT_EQ(reference.size(), per_pool[0].size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(per_pool[0][i], reference[i].items)
        << "distilled commit path diverged from the condition() reference "
           "at draw "
        << i;
  return per_pool[0];
}

void expect_matches(const ExactDistribution& dist,
                    const std::vector<std::vector<int>>& samples) {
  const auto chi = chi_square_subsets(dist, samples);
  EXPECT_LT(chi.statistic, chi_square_quantile(chi.dof, 4.0))
      << "chi-square dof " << chi.dof;
  EXPECT_LT(testing::empirical_tv(dist, samples), 0.08);
}

// ---- statistical exactness of the distilled output law ----

TEST(DistilledFeatureStatTest, SequentialMatchesEnumeration) {
  RandomStream setup(771001);
  const std::size_t n = 10;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.distill.enabled = true;
  const auto samples = collect_distilled(oracle, options, 77101, 2400);
  expect_matches(dist, samples);
}

TEST(DistilledFeatureStatTest, BatchedInnerKindMatchesEnumeration) {
  RandomStream setup(771002);
  const std::size_t n = 9;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.kind = SamplerKind::kBatched;
  options.batched.failure_prob = 1e-6;
  options.distill.enabled = true;
  options.distill.candidate_budget = 48;
  const auto samples = collect_distilled(oracle, options, 77102, 2000);
  expect_matches(dist, samples);
}

TEST(DistilledSymmetricStatTest, SequentialMatchesEnumeration) {
  RandomStream setup(771003);
  const std::size_t n = 8;
  const std::size_t k = 2;
  const Matrix l = random_psd(n, n, setup, 1e-3);
  const SymmetricKdppOracle oracle(l, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.distill.enabled = true;
  options.distill.candidate_budget = 40;
  const auto samples = collect_distilled(oracle, options, 77103, 2000);
  expect_matches(dist, samples);
}

// ---- acceptance bound: log Z(C) <= log M on every fuzzed pool ----

TEST(DistillationPlanTest, MaclaurinBoundDominatesFuzzedPools) {
  RandomStream setup(771004);
  RandomStream rng(771005);
  std::vector<int> items;
  std::vector<double> scales;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(setup.uniform_index(40));
    const std::size_t d = 2 + static_cast<std::size_t>(setup.uniform_index(5));
    const std::size_t k =
        1 + static_cast<std::size_t>(setup.uniform_index(std::min(d, n) - 1 + 1));
    Matrix features = random_gaussian(n, d, setup);
    // Half the trials get a spiked row scale so the weights are far from
    // uniform — the regime where a wrong bound would be caught.
    if (trial % 2 == 0)
      for (std::size_t c = 0; c < d; ++c) features(0, c) *= 40.0;
    const FeatureKdppOracle oracle(features, k);
    DistillOptions options;
    options.candidate_budget = 24;
    const DistillationPlan plan(oracle, options);
    for (int pool = 0; pool < 40; ++pool) {
      const auto restricted = plan.propose(rng, items, scales);
      ASSERT_EQ(items.size(), plan.candidate_budget());
      EXPECT_LE(restricted->log_partition(),
                plan.log_accept_bound() + 1e-9)
          << "n=" << n << " d=" << d << " k=" << k;
    }
  }
}

TEST(DistillationPlanTest, UnsupportedFamilyThrows) {
  const testing::EnumeratedOracle oracle(
      5, 2, [](std::span<const int>) { return 0.0; });
  EXPECT_THROW(DistillationPlan(oracle, DistillOptions{}), InvalidArgument);
}

// ---- restrict_to against from-scratch restricted ensembles ----

TEST(RestrictToFuzz, FeatureMatchesFromScratchAndSymmetricTo1e10) {
  RandomStream setup(771006);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(setup.uniform_index(8));
    const std::size_t d = 3 + static_cast<std::size_t>(setup.uniform_index(3));
    const std::size_t k = 2;
    const Matrix features = random_gaussian(n, d, setup);
    const FeatureKdppOracle oracle(features, k);

    const std::size_t m = 6 + static_cast<std::size_t>(setup.uniform_index(6));
    std::vector<int> items(m);
    std::vector<double> scales(m);
    for (std::size_t j = 0; j < m; ++j) {
      items[j] = static_cast<int>(setup.uniform_index(n));  // repeats allowed
      scales[j] = 0.25 + setup.uniform();
    }

    const auto restricted = oracle.restrict_to(items, scales);
    ASSERT_EQ(restricted->ground_size(), m);

    // From-scratch reference 1: gather + scale the rows, rebuild the
    // family. Reference 2: the dense symmetric family on the explicit
    // restricted ensemble diag(s) L_items diag(s) — a cross-family check
    // through an entirely different spectral path.
    const Matrix gathered = gather_scaled_rows(features, items, scales);
    const FeatureKdppOracle scratch(gathered, k);
    const Matrix l_restricted =
        multiply_transposed_b(gathered, gathered);
    const SymmetricKdppOracle cross(l_restricted, k, /*validate=*/false);

    const auto p = restricted->marginals();
    const auto p_scratch = scratch.marginals();
    const auto p_cross = cross.marginals();
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(p[i], p_scratch[i], 1e-10);
      EXPECT_NEAR(p[i], p_cross[i], 1e-10);
    }
    EXPECT_NEAR(restricted->log_partition(), cross.log_partition(), 1e-8);

    for (int q = 0; q < 6; ++q) {
      const int a = static_cast<int>(setup.uniform_index(m));
      int b = static_cast<int>(setup.uniform_index(m));
      if (b == a) b = (b + 1) % static_cast<int>(m);
      const std::vector<int> t = {a, b};
      const double lj = restricted->log_joint_marginal(t);
      const double lj_cross = cross.log_joint_marginal(t);
      if (lj == kNegInf || lj_cross == kNegInf) {
        // Repeated items give exactly-null joint cells; both paths must
        // agree the cell is (numerically) null.
        EXPECT_LT(std::max(lj, lj_cross), -20.0);
      } else {
        EXPECT_NEAR(lj, lj_cross, 1e-10);
      }
    }
  }
}

TEST(RestrictToFuzz, SymmetricMatchesFromScratchTo1e10) {
  RandomStream setup(771007);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(setup.uniform_index(6));
    const std::size_t k = 2;
    const Matrix l = random_psd(n, n, setup, 1e-4);
    const SymmetricKdppOracle oracle(l, k);

    const std::size_t m = 5 + static_cast<std::size_t>(setup.uniform_index(5));
    std::vector<int> items(m);
    std::vector<double> scales(m);
    for (std::size_t j = 0; j < m; ++j) {
      items[j] = static_cast<int>(setup.uniform_index(n));
      scales[j] = 0.25 + setup.uniform();
    }
    const auto restricted = oracle.restrict_to(items, scales);

    Matrix sub(m, m);
    for (std::size_t a = 0; a < m; ++a)
      for (std::size_t b = 0; b < m; ++b)
        sub(a, b) = scales[a] * scales[b] *
                    l(static_cast<std::size_t>(items[a]),
                      static_cast<std::size_t>(items[b]));
    const SymmetricKdppOracle scratch(sub, k, /*validate=*/false);

    const auto p = restricted->marginals();
    const auto p_scratch = scratch.marginals();
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(p[i], p_scratch[i], 1e-10);
    EXPECT_NEAR(restricted->log_partition(), scratch.log_partition(), 1e-10);
  }
}

// Tiny ground sets: the restricted oracle against exhaustive enumeration
// of the restricted ensemble — the ground truth for the cross-family
// fuzz above.
TEST(RestrictToFuzz, FeatureRestrictionMatchesEnumeration) {
  RandomStream setup(771008);
  const std::size_t n = 7;
  const std::size_t d = 3;
  const std::size_t k = 2;
  const Matrix features = random_gaussian(n, d, setup);
  const FeatureKdppOracle oracle(features, k);

  const std::vector<int> items = {4, 1, 1, 6, 0, 3};
  std::vector<double> scales(items.size());
  for (std::size_t j = 0; j < items.size(); ++j)
    scales[j] = 0.5 + setup.uniform();
  const auto restricted = oracle.restrict_to(items, scales);

  const Matrix gathered = gather_scaled_rows(features, items, scales);
  const Matrix l_restricted = multiply_transposed_b(gathered, gathered);
  const testing::EnumeratedOracle enumerated(
      static_cast<int>(items.size()), static_cast<int>(k),
      [&](std::span<const int> s) {
        return signed_log_det(l_restricted.principal(s)).log_abs;
      });

  const auto p = restricted->marginals();
  const auto p_enum = enumerated.marginals();
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_NEAR(p[i], p_enum[i], 1e-10);
}

}  // namespace
}  // namespace pardpp
