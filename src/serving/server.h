// SamplingServer: the async serving front end (DESIGN.md §2
// convention 13).
//
// submit() enqueues a draw request and returns a future; a dispatcher
// thread drains the queue in arrival order, groups the drained batch by
// kernel fingerprint, acquires each group's session from the registry
// (building or replacing it as needed), and issues ONE coalesced
// SamplerSession::draw_many_batched per group on the shared
// ExecutionContext — the amortization that turns per-request session
// priming into a once-per-kernel cost.
//
// Determinism contract: coalescing is invisible in the results. A
// request's draws are a function of its own seed alone (see
// draw_many_batched), so the response never depends on which requests
// happened to share a batch, the queue depth, or the pool size.
//
// Admission control degrades gracefully instead of stalling: a full
// queue or a tenant at its in-flight cap rejects the submit with a typed
// Overloaded synchronously — the caller can back off and retry — and
// per-request failures inside a batch fail only that request's future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/diagnostics.h"
#include "sampling/session.h"
#include "serving/config.h"
#include "serving/fingerprint.h"
#include "serving/registry.h"
#include "support/error.h"

namespace pardpp::serving {

/// Typed admission-control rejection: the queue is full, the tenant is
/// at its in-flight cap, or the server is shutting down. Distinct from
/// InvalidArgument (the request itself is fine — resubmit later).
class Overloaded : public Error {
 public:
  using Error::Error;
};

/// One draw request. The fingerprint must be computed over the same
/// kernel + canonical config the factory/options describe (the daemon
/// derives all three from one wire request; direct API users carry the
/// same obligation — the registry trusts the key).
struct ServerRequest {
  std::string tenant = "default";
  KernelFingerprint fingerprint;
  SessionOptions session_options;
  /// Resident-bytes estimate charged against the registry budget when
  /// this request builds the session.
  std::size_t resident_bytes = 0;
  /// Builds the oracle on a registry miss (or poisoned replacement).
  SessionRegistry::OracleFactory make_oracle;
  std::size_t count = 1;
  std::uint64_t seed = 0;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_cap = 0;
  std::uint64_t completed = 0;  ///< futures resolved with samples
  std::uint64_t failed = 0;     ///< futures resolved with an exception
  std::uint64_t batches = 0;    ///< coalesced dispatches issued
  std::uint64_t coalesced_requests = 0;  ///< requests served by those
  std::uint64_t max_coalesced = 0;  ///< largest single batch
  std::uint64_t draws = 0;          ///< samples produced
  std::size_t queue_peak = 0;
  RegistryStats registry;
};

class SamplingServer {
 public:
  /// Validates the config, spins up the worker pool (pool_threads, 0 =
  /// physical concurrency) and the dispatcher thread.
  explicit SamplingServer(ServingConfig config = {});

  /// shutdown(), then joins.
  ~SamplingServer();

  SamplingServer(const SamplingServer&) = delete;
  SamplingServer& operator=(const SamplingServer&) = delete;

  /// Enqueues; the future resolves with the request's samples or its
  /// typed failure. Throws Overloaded synchronously when admission
  /// control rejects (queue depth, tenant cap, shutting down) and
  /// InvalidArgument for a malformed request (zero/oversized count,
  /// missing oracle factory).
  [[nodiscard]] std::future<std::vector<SampleResult>> submit(
      ServerRequest request);

  /// Counters + a registry snapshot. Thread-safe.
  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] SessionRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const ServingConfig& config() const noexcept {
    return config_;
  }

  /// Stops admitting, fails every queued request with Overloaded, and
  /// joins the dispatcher. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Pending {
    ServerRequest request;
    std::promise<std::vector<SampleResult>> promise;
  };

  void dispatch_loop();
  /// Runs one coalesced group (shared fingerprint) end to end.
  void run_group(std::vector<Pending>& group);
  void finish(Pending& pending, bool failed);

  ServingConfig config_;
  ThreadPool pool_;
  ExecutionContext ctx_;
  SessionRegistry registry_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::unordered_map<std::string, std::size_t> inflight_;
  bool stopping_ = false;
  ServerStats stats_;  // registry sub-struct filled on read

  std::thread dispatcher_;  // last member: started after everything above
};

}  // namespace pardpp::serving
