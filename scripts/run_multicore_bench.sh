#!/usr/bin/env bash
# Records the >=4-core parallel-scaling evidence for the thread-sweep
# benches (theorem 10 / theorem 41), plus the throughput and linalg
# micro series, as a curated snapshot (BENCH_multicore.json).
#
# The reference development container is single-core: every pool size
# executes the same serial instruction stream there, so a snapshot it
# records can only ever show parity — honest multicore numbers must come
# from a machine with real cores. This script is the recipe: it refuses
# to run on fewer than 4 cores, and it refuses to bless a snapshot whose
# sweeps show no speedup at all (which would mean the "multicore"
# artifact was recorded on hardware that cannot demonstrate scaling).
# CI runs it on the 4-vCPU runner with --reuse after the bench smoke and
# uploads the snapshot; run it locally on any >=4-core box to reproduce.
#
# Usage: scripts/run_multicore_bench.sh [--reuse]
#   --reuse    snapshot the series already in $BUILD_DIR/bench-out/
#              instead of rebuilding and re-running the benches
# Env:
#   BUILD_DIR  build tree to use (default: build-multicore)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-multicore}"
SNAPSHOT="$BUILD_DIR/BENCH_multicore.json"
REUSE=0
[ "${1:-}" = "--reuse" ] && REUSE=1

cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
if [ "$cores" -lt 4 ]; then
  echo "error: only $cores core(s) online; multicore scaling evidence" >&2
  echo "needs >=4 cores. Run this on a >=4-core machine (CI's Release" >&2
  echo "leg does) instead of recording a parity snapshot here." >&2
  exit 2
fi

if [ "$REUSE" -eq 0 ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j"$cores"
  # The thread-sweep benches write their series into bench-out/ relative
  # to the working directory; keep everything inside the build tree.
  (cd "$BUILD_DIR" \
    && ./bench/bench_theorem10 \
    && ./bench/bench_theorem41 \
    && ./bench/bench_throughput \
    && ./bench/bench_linalg_micro \
    && ./bench/bench_serving)
fi

if [ -z "$(ls "$BUILD_DIR"/bench-out/BENCH_*.json 2>/dev/null)" ]; then
  echo "error: no BENCH_*.json under $BUILD_DIR/bench-out/ to snapshot" >&2
  exit 1
fi

python3 scripts/compare_bench.py --write-snapshot "$SNAPSHOT" \
  "$BUILD_DIR/bench-out"

# Honesty gate: recompute the per-pool speedups the comparator will use
# (pool-1 wall clock over pool-N wall clock, grouped by identity minus
# pool) and require that the theorem-10/41 sweeps actually scale. A
# snapshot in which no pool beats the serial baseline is not multicore
# evidence, whatever machine stamped it.
python3 - "$SNAPSHOT" <<'PY'
import sys
import tempfile

sys.path.insert(0, "scripts")
import compare_bench

with tempfile.TemporaryDirectory() as tmp:
    exploded = compare_bench.snapshot_as_baseline(sys.argv[1], tmp)
    records = compare_bench.load_records(exploded)
speedups = {
    key: speedup
    for key, (speedup, _) in compare_bench.scaling_speedups(records).items()
    if "theorem10" in key[0] or "theorem41" in key[0]
}
if not speedups:
    sys.exit("error: snapshot has no theorem-10/41 scaling points")
best = max(speedups.values())
print(f"{len(speedups)} sweep scaling points; best speedup {best:.2f}x")
if best <= 1.0:
    sys.exit(
        "error: honesty gate — no pool size beats the serial baseline; "
        "this snapshot is not multicore scaling evidence"
    )
PY

echo "multicore snapshot recorded: $SNAPSHOT"
