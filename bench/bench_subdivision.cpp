// EXP-ISO — Proposition 32: the isotropic transformation's guarantees.
//
// Sweeping beta on kernels with deliberately skewed marginals, we verify:
//  * marginal upper bound: P[copy] <= (1+sqrt(beta)) k / |U|;
//  * ground set growth: n/beta <= |U| <= n (1 + 1/beta);
//  * the well-represented set R carries all but sqrt(beta) l of mu_l.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpp/subdivision.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "support/random.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

}  // namespace

int main() {
  print_header("EXP-ISO", "Prop. 32 (isotropic subdivision)",
               "copy marginals <= (1+sqrt(beta)) k/|U|; |U| in "
               "[n/beta, n(1+1/beta)]; marginal spread flattens as beta "
               "shrinks");
  Table table({"beta", "n", "|U|", "n/beta", "n(1+1/beta)", "max_p*|U|/k",
               "bound(1+sqrt(beta))", "spread_before", "spread_after"});
  RandomStream rng(99001);
  const std::size_t n = 24;
  const std::size_t k = 6;
  // Skewed spectrum => skewed marginals.
  std::vector<double> spectrum(n);
  for (std::size_t i = 0; i < n; ++i)
    spectrum[i] = std::pow(0.75, static_cast<double>(i)) * 4.0;
  const Matrix l = kernel_with_spectrum(spectrum, rng);
  for (const double beta : {1.0, 0.5, 0.25, 0.1}) {
    auto base = std::make_unique<SymmetricKdppOracle>(l, k, false);
    const auto base_p = base->marginals();
    double before_max = 0.0;
    double before_min = 1.0;
    for (const double v : base_p) {
      before_max = std::max(before_max, v);
      before_min = std::min(before_min, std::max(v, 1e-12));
    }
    const SubdividedOracle sub(std::move(base), beta);
    const auto p = sub.marginals();
    double after_max = 0.0;
    double after_min = 1.0;
    for (const double v : p) {
      after_max = std::max(after_max, v);
      if (v > 1e-12) after_min = std::min(after_min, v);
    }
    const auto u = static_cast<double>(sub.ground_size());
    table.add_row({fmt(beta, 2), fmt_int(n), fmt_int(sub.ground_size()),
                   fmt(static_cast<double>(n) / beta, 0),
                   fmt(static_cast<double>(n) * (1.0 + 1.0 / beta), 0),
                   fmt(after_max * u / static_cast<double>(k), 3),
                   fmt(1.0 + std::sqrt(beta), 3),
                   fmt(before_max / before_min, 1),
                   fmt(after_max / after_min, 1)});
  }
  table.print();
  std::printf(
      "\nspread = max marginal / min marginal: subdivision compresses it\n"
      "toward the (1+sqrt(beta))^2 band Prop. 32 promises on R.\n");
  return 0;
}
