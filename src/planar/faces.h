// Face traversal of an embedded planar graph.
//
// Faces are recovered from the rotation system by the standard dart walk:
// from dart (u → v), the face continues with (v → w) where w precedes u
// in the counterclockwise rotation at v (equivalently: next dart in
// clockwise order after the reversed dart). With counterclockwise
// rotations, internal faces come out with positive signed area and the
// outer face negative — which is how the FKT code identifies it.
#pragma once

#include <vector>

#include "planar/graph.h"

namespace pardpp {

/// A face as the cyclic list of darts (u, v) along its boundary.
struct Face {
  std::vector<std::pair<int, int>> darts;
  double signed_area = 0.0;
};

struct FaceDecomposition {
  std::vector<Face> faces;
  std::size_t outer_face = 0;  ///< index of the outer face

  /// Euler characteristic check value: V - E + F (2 for connected planar).
  long long euler = 0;
};

/// Computes all faces; throws if the dart walk is inconsistent (i.e. the
/// straight-line drawing was not an embedding).
[[nodiscard]] FaceDecomposition compute_faces(const PlanarGraph& g);

}  // namespace pardpp
