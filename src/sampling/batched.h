// Batched sampling — Algorithm 1 of the paper, with the rejection-based
// implementation of step (*) described in §4 (Theorem 10).
//
// Each round draws a batch of t = ceil(sqrt(k_i)) elements i.i.d. from the
// current normalized marginals p/k and accepts the batch with probability
//   ratio / C,    ratio = P[T ⊆ S] / ( k(k-1)...(k-t+1) * prod p_i / k ),
// where C = exp(t^2/k) dominates the ratio for negatively correlated
// distributions (Lemma 27), making the sampler *exact* conditioned on
// success. Proposals for one round are issued as one parallel round of
// machines = C log(1/delta') (Prop. 25); Prop. 28 bounds the number of
// rounds by 2 sqrt(k).
//
// Execution: the round's machines are physically fanned out on the
// ExecutionContext's pool in waves (execution.h conventions). Machine m
// draws from its own forked stream, the round's counting queries are
// issued through CountingOracle::query_many as one batch, and the accepted
// proposal is the lowest-index acceptance — so a fixed seed yields the
// identical sample at every pool size.
#pragma once

#include <optional>

#include "distributions/oracle.h"
#include "parallel/execution.h"
#include "parallel/pram.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

struct BatchedOptions {
  /// Per-run failure budget delta: each round is boosted to failure
  /// probability delta / (2 sqrt(k) + 2).
  double failure_prob = 1e-3;
  /// Extra slack added to log C (0 is exact for strongly Rayleigh
  /// targets; positive values tolerate small numerical excursions).
  double extra_log_cap = 1e-6;
  /// Overrides the batch schedule when nonzero: batches of
  /// min(max_batch, k_i) instead of ceil(sqrt(k_i)). Used by the ablation
  /// benches to demonstrate the birthday-paradox collapse.
  std::size_t max_batch = 0;
  /// Hard bound on proposals per round, a safety net against
  /// mis-specified caps.
  std::size_t machine_cap = 1u << 20;
};

/// Samples from the oracle's distribution via Algorithm 1, executing each
/// round's proposal machines on the context's pool. Exact (given a valid
/// cap) conditioned on not throwing SamplingFailure; the failure
/// probability is at most `failure_prob` for Lemma 27-compliant targets.
[[nodiscard]] SampleResult sample_batched(const CountingOracle& mu,
                                          RandomStream& rng,
                                          const ExecutionContext& ctx,
                                          const BatchedOptions& options = {});

/// Legacy ledger-only entry point: serial execution. Note: rounds now
/// draw from per-machine forked streams (execution.h), so the
/// seed-to-sample mapping differs from builds that predate
/// ExecutionContext — fixed-seed outputs recorded then will not match.
[[nodiscard]] SampleResult sample_batched(const CountingOracle& mu,
                                          RandomStream& rng,
                                          PramLedger* ledger = nullptr,
                                          const BatchedOptions& options = {});

/// Core loop on a caller-provided commit-path state (must be at its base
/// distribution). Each accepted round is folded into the state via
/// `commit`, passing along the accepted trial's counting answer so
/// families can update their cached normalization without re-deriving it.
[[nodiscard]] SampleResult sample_batched_on(CommittedOracle& state,
                                             RandomStream& rng,
                                             const ExecutionContext& ctx,
                                             const BatchedOptions& options = {});

namespace detail {

/// One rejection round shared by the batched and entropic samplers: draws
/// up to `machines` batches of size `batch` i.i.d. from `marginals`
/// (normalized by k), accepts with probability ratio / exp(log_cap).
struct BatchRound {
  std::size_t batch = 1;
  double log_cap = 0.0;
  std::size_t machines = 1;
};

/// An accepted proposal: the batch (current-oracle indices) plus its
/// counting answer log P[batch ⊆ S] — the value the commit path reuses.
struct AcceptedBatch {
  std::vector<int> batch;
  double log_joint = 0.0;
};

[[nodiscard]] std::optional<AcceptedBatch> run_batch_round(
    const CountingOracle& mu, std::span<const double> marginals,
    const BatchRound& config, RandomStream& rng, const ExecutionContext& ctx,
    SampleDiagnostics& diag);

}  // namespace detail

}  // namespace pardpp
