// The counting oracle — the paper's central abstraction.
//
// All samplers in pardpp are reductions from sampling to counting: they
// interact with a distribution mu on size-k subsets of a ground set only
// through the queries below (paper §1: "the oracle returns
// sum { mu(S) : T ⊆ S }", normalized here to joint marginals, plus
// self-reducibility via conditioning). Determinantal families implement
// the interface with linear algebra; the §7 hard instance implements it
// combinatorially; the test suite implements it by exhaustive enumeration.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "parallel/execution.h"
#include "support/error.h"

namespace pardpp {

/// Counting-oracle access to a distribution mu on ([m] choose k), where m
/// = ground_size() and k = sample_size() refer to the *current
/// conditional* distribution (conditioning re-indexes the ground set by
/// deleting the conditioned elements and preserving the order of the
/// rest).
class CountingOracle {
 public:
  virtual ~CountingOracle() = default;

  /// Size of the current ground set.
  [[nodiscard]] virtual std::size_t ground_size() const = 0;

  /// Number of elements a sample of the current conditional contains.
  [[nodiscard]] virtual std::size_t sample_size() const = 0;

  /// log P_{S ~ mu}[T ⊆ S]. T must contain distinct in-range indices;
  /// |T| > sample_size() yields -inf. This is the paper's counting query,
  /// normalized by the partition function.
  [[nodiscard]] virtual double log_joint_marginal(
      std::span<const int> t) const = 0;

  /// Singleton marginals P[i ∈ S] for every ground element; the entries
  /// sum to sample_size().
  [[nodiscard]] virtual std::vector<double> marginals() const = 0;

  /// The conditional distribution mu(· | T ⊆ S), over the ground set with
  /// T removed. Throws if P[T ⊆ S] = 0.
  [[nodiscard]] virtual std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const = 0;

  [[nodiscard]] virtual std::unique_ptr<CountingOracle> clone() const = 0;

  /// Family name, for diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Primes any lazily built internal state (eigendecompositions, node
  /// caches) so that subsequent const queries are data-race-free when
  /// issued from multiple threads. Implementations with lazy caches must
  /// override; stateless oracles need not.
  virtual void prepare_concurrent() const {}

  /// Batch counting query — one PRAM round of |ts| independent queries
  /// issued together: out[q] = log_joint_marginal(ts[q]). The queries
  /// are spans into caller-owned storage (the samplers pass views over
  /// their proposal batches; nothing is copied). The default primes the
  /// lazy caches once, then services the queries concurrently on the
  /// context's pool; each query works on disjoint scratch.
  virtual void query_many(std::span<const std::span<const int>> ts,
                          std::span<double> out,
                          const ExecutionContext& ctx) const {
    check_arg(ts.size() == out.size(), "query_many: output size mismatch");
    prepare_concurrent();
    ctx.for_each(0, ts.size(),
                 [&](std::size_t q) { out[q] = log_joint_marginal(ts[q]); });
  }
};

/// Maps indices of a repeatedly conditioned ground set back to original
/// element ids. Mirrors the re-indexing convention of
/// CountingOracle::condition (delete + compact, order preserved).
class IndexTracker {
 public:
  explicit IndexTracker(std::size_t n) : ids_(n) {
    for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<int>(i);
  }

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

  /// Original id of a current-index element.
  [[nodiscard]] int original(int current) const {
    check_arg(current >= 0 && static_cast<std::size_t>(current) < ids_.size(),
              "IndexTracker: index out of range");
    return ids_[static_cast<std::size_t>(current)];
  }

  [[nodiscard]] std::vector<int> originals(std::span<const int> current) const {
    std::vector<int> out;
    out.reserve(current.size());
    for (const int c : current) out.push_back(original(c));
    return out;
  }

  /// Removes the given current-index positions (they need not be sorted).
  void remove(std::vector<int> positions) {
    std::sort(positions.begin(), positions.end());
    std::vector<int> next;
    next.reserve(ids_.size() - positions.size());
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (cursor < positions.size() &&
          positions[cursor] == static_cast<int>(i)) {
        check_arg(cursor + 1 == positions.size() ||
                      positions[cursor + 1] != positions[cursor],
                  "IndexTracker: duplicate position");
        ++cursor;
        continue;
      }
      next.push_back(ids_[i]);
    }
    check_arg(cursor == positions.size(), "IndexTracker: position out of range");
    ids_ = std::move(next);
  }

 private:
  std::vector<int> ids_;
};

}  // namespace pardpp
