// Tests for the symmetric eigensolvers (tred2/tql2 vs Jacobi), elementary
// symmetric polynomials, and characteristic-polynomial extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/charpoly.h"
#include "linalg/esp.h"
#include "linalg/schur.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/symmetric_eigen.h"
#include "support/combinatorics.h"
#include "support/logsum.h"
#include "support/random.h"

namespace pardpp {
namespace {

class EigenCrossCheck : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(EigenCrossCheck, QlMatchesJacobi) {
  const auto [n, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 1000 + 7);
  const Matrix a = random_psd(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(std::max(1, n / 2)),
                              rng, 1e-4);
  const auto ql = symmetric_eigen(a);
  const auto jac = jacobi_eigen(a);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ql.values[static_cast<std::size_t>(i)],
                jac.values[static_cast<std::size_t>(i)], 1e-8)
        << "eigenvalue " << i;
  }
  // Eigenvalue-only path agrees too.
  const auto only = symmetric_eigenvalues(a);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(only[static_cast<std::size_t>(i)],
                ql.values[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, EigenCrossCheck,
                         ::testing::Combine(::testing::Values(1, 2, 3, 6, 11,
                                                              20, 33),
                                            ::testing::Values(1, 2, 3)));

TEST(Eigen, Reconstruction) {
  RandomStream rng(41);
  const Matrix a = random_psd(8, 8, rng);
  const auto eig = symmetric_eigen(a);
  Matrix recon(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      double acc = 0.0;
      for (std::size_t m = 0; m < 8; ++m)
        acc += eig.vectors(i, m) * eig.values[m] * eig.vectors(j, m);
      recon(i, j) = acc;
    }
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
}

TEST(Eigen, VectorsOrthonormal) {
  RandomStream rng(42);
  const Matrix a = random_psd(7, 7, rng);
  const auto eig = symmetric_eigen(a);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = 0; q < 7; ++q) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 7; ++i)
        dot += eig.vectors(i, p) * eig.vectors(i, q);
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Eigen, KnownSpectrum) {
  // diag(1, 2, 3) in a rotated basis.
  RandomStream rng(43);
  const std::vector<double> spectrum = {1.0, 2.0, 3.0};
  const Matrix a = kernel_with_spectrum(spectrum, rng);
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-9);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-9);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-9);
  EXPECT_NEAR(spectral_norm_symmetric(a), 3.0, 1e-9);
}

TEST(Eigen, HandlesZeroAndOneByOne) {
  const auto empty = symmetric_eigen(Matrix(0, 0));
  EXPECT_TRUE(empty.values.empty());
  Matrix one(1, 1);
  one(0, 0) = 5.0;
  const auto single = symmetric_eigen(one);
  EXPECT_DOUBLE_EQ(single.values[0], 5.0);
}

// ---- Elementary symmetric polynomials ----

double brute_esp(std::span<const double> lambda, int j) {
  double total = 0.0;
  for_each_subset(static_cast<int>(lambda.size()), j,
                  [&](std::span<const int> subset) {
                    double prod = 1.0;
                    for (const int i : subset)
                      prod *= lambda[static_cast<std::size_t>(i)];
                    total += prod;
                  });
  return total;
}

class EspTest : public ::testing::TestWithParam<int> {};

TEST_P(EspTest, MatchesBruteForce) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> lambda(7);
  for (auto& v : lambda) v = rng.uniform() * 3.0;
  lambda[2] = 0.0;  // exercise zero handling
  const auto log_e = log_esp(lambda, 7);
  for (int j = 0; j <= 7; ++j) {
    const double brute = brute_esp(lambda, j);
    EXPECT_NEAR(std::exp(log_e[static_cast<std::size_t>(j)]), brute,
                1e-9 * std::max(1.0, brute))
        << "e_" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Esp, LeaveOneOutIdentity) {
  // e_j(lambda) = e_j(lambda \ m) + lambda_m e_{j-1}(lambda \ m).
  RandomStream rng(51);
  std::vector<double> lambda(9);
  for (auto& v : lambda) v = rng.uniform() * 2.0;
  const LogEspTable table(lambda, 5);
  for (std::size_t m = 0; m < 9; ++m) {
    for (std::size_t j = 1; j <= 5; ++j) {
      const double lhs = std::exp(table.log_e(j));
      const double rhs =
          std::exp(table.log_e_without(m, j)) +
          lambda[m] * std::exp(table.log_e_without(m, j - 1));
      EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, lhs));
    }
  }
}

TEST(Esp, LargeValuesStayInLogDomain) {
  // 300 eigenvalues of size ~1e10: e_150 overflows double massively but
  // must be finite in log domain.
  std::vector<double> lambda(300, 1e10);
  const auto log_e = log_esp(lambda, 150);
  EXPECT_TRUE(std::isfinite(log_e[150]));
  // e_150 = C(300,150) * 1e1500.
  EXPECT_NEAR(log_e[150], log_binomial(300, 150) + 150.0 * std::log(1e10),
              1e-6 * log_e[150]);
}

TEST(NewtonEsp, MatchesLogEspTableOnRandomSpectra) {
  RandomStream rng(52);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(rng.uniform_index(8));
    const std::size_t jmax = std::min<std::size_t>(n, 6);
    std::vector<double> lambda(n);
    for (auto& v : lambda) v = rng.uniform() * 2.0 + 0.05;
    std::vector<double> traces(jmax, 0.0);
    for (const double lam : lambda) {
      double p = 1.0;
      for (std::size_t v = 1; v <= jmax; ++v) {
        p *= lam;
        traces[v - 1] += p;
      }
    }
    const NewtonEsp ne = esp_from_power_traces(traces, jmax);
    const LogEspTable table(lambda, jmax);
    for (std::size_t j = 0; j <= jmax; ++j) {
      ASSERT_TRUE(ne.well_conditioned(j, kEspCancelGuard))
          << "trial " << trial << " j=" << j;
      EXPECT_NEAR(std::log(ne.e[j]), table.log_e(j), 1e-12)
          << "trial " << trial << " j=" << j;
    }
  }
}

TEST(NewtonEsp, CancellationMonitorFlagsNearRankDeficientSpectra) {
  // A spectrum whose e_4 is ~1e-12 of the |term| mass: the alternating
  // Newton sum cancels catastrophically and well_conditioned must say so
  // (this is what routes the oracle fast paths to the spectral fallback).
  const std::vector<double> lambda = {1.0, 1.0, 1.0, 1e-12};
  std::vector<double> traces(4, 0.0);
  for (const double lam : lambda) {
    double p = 1.0;
    for (std::size_t v = 1; v <= 4; ++v) {
      p *= lam;
      traces[v - 1] += p;
    }
  }
  const NewtonEsp ne = esp_from_power_traces(traces, 4);
  EXPECT_TRUE(ne.well_conditioned(3, kEspCancelGuard));
  EXPECT_FALSE(ne.well_conditioned(4, kEspCancelGuard));
}

// ---- Block moment probe (factor-native Schur downdates) ----

// Direct power traces / diagonal moments of mhat = m / scale.
void direct_moments(const Matrix& m, double scale, std::size_t vmax,
                    std::vector<double>& traces, std::vector<double>& diag) {
  const std::size_t n = m.rows();
  Matrix mhat = m;
  mhat *= 1.0 / scale;
  Matrix power = Matrix::identity(n);
  traces.assign(vmax, 0.0);
  diag.assign(vmax * n, 0.0);
  for (std::size_t v = 1; v <= vmax; ++v) {
    power = power * mhat;
    traces[v - 1] = power.trace();
    for (std::size_t i = 0; i < n; ++i) diag[(v - 1) * n + i] = power(i, i);
  }
}

TEST(BlockMomentProbe, DowndatedMomentsMatchSchurComplement) {
  RandomStream rng(53);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_index(5));
    const Matrix m = random_psd(n, n, rng, 1e-2);
    const std::size_t vmax = 4;
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, m(i, i));
    const std::vector<int> elim = {1, static_cast<int>(n - 2)};
    IncrementalCholesky chol(elim.size());
    std::vector<double> row;
    for (std::size_t r = 0; r < elim.size(); ++r) {
      row.resize(r + 1);
      for (std::size_t c = 0; c <= r; ++c)
        row[c] = m(static_cast<std::size_t>(elim[r]),
                   static_cast<std::size_t>(elim[c]));
      ASSERT_TRUE(chol.append(row));
    }
    std::vector<double> base_traces;
    std::vector<double> base_diag;
    direct_moments(m, scale, vmax, base_traces, base_diag);
    BlockMomentProbe probe;
    probe.build(m, scale, elim, chol, vmax);
    std::vector<double> traces;
    std::vector<double> traces_abs;
    std::vector<double> diag;
    std::vector<double> diag_abs;
    probe.downdated_traces(base_traces, base_traces, vmax, traces, traces_abs);
    probe.downdated_diag(base_diag, base_diag, vmax, diag, diag_abs);
    // Reference: moments of the Schur complement, embedded in the full
    // index set (eliminated rows contribute exact zeros).
    const auto keep = complement_indices(n, elim);
    const auto schur = schur_complement(m, keep, elim, /*symmetric=*/true);
    std::vector<double> want_traces;
    std::vector<double> want_diag_reduced;
    direct_moments(schur.reduced, scale, vmax, want_traces,
                   want_diag_reduced);
    for (std::size_t v = 1; v <= vmax; ++v) {
      EXPECT_NEAR(traces[v - 1], want_traces[v - 1],
                  1e-10 * std::max(1.0, traces_abs[v - 1]))
          << "trial " << trial << " v=" << v;
      for (std::size_t j = 0; j < keep.size(); ++j) {
        const auto ki = static_cast<std::size_t>(keep[j]);
        EXPECT_NEAR(diag[(v - 1) * n + ki],
                    want_diag_reduced[(v - 1) * keep.size() + j],
                    1e-10 * std::max(1.0, diag_abs[(v - 1) * n + ki]))
            << "trial " << trial << " v=" << v << " i=" << ki;
      }
      // Eliminated rows land at zero up to monitored drift.
      for (const int e : elim) {
        const auto ei = static_cast<std::size_t>(e);
        EXPECT_NEAR(diag[(v - 1) * n + ei], 0.0,
                    1e-10 * std::max(1.0, diag_abs[(v - 1) * n + ei]));
      }
    }
  }
}

// ---- Characteristic polynomial ----

double brute_minor_sum(const Matrix& m, int j) {
  double total = 0.0;
  for_each_subset(static_cast<int>(m.rows()), j,
                  [&](std::span<const int> subset) {
                    total += det_small(m.principal(subset));
                  });
  return total;
}

class CharPolyTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(CharPolyTest, MatchesBruteForceMinorSums) {
  const auto [seed, symmetric] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) + 100);
  const Matrix m = symmetric ? random_psd(6, 6, rng, 1e-3)
                             : random_npsd(6, rng, 0.7);
  for (std::size_t jstar = 1; jstar <= 6; ++jstar) {
    const auto coeffs = charpoly_log_coeffs(m, jstar);
    const double brute = brute_minor_sum(m, static_cast<int>(jstar));
    const double got = coeffs[jstar].sign * std::exp(coeffs[jstar].log_abs);
    EXPECT_NEAR(got, brute, 1e-7 * std::max(1.0, std::abs(brute)))
        << "coefficient " << jstar;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSymmetry, CharPolyTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()));

TEST(CharPoly, NewtonIdentitiesAgree) {
  RandomStream rng(61);
  const Matrix m = random_psd(5, 5, rng, 1e-3);
  const auto newton = charpoly_newton(m, 5);
  const auto lambda = symmetric_eigenvalues(m);
  const auto log_e = log_esp(lambda, 5);
  for (std::size_t j = 0; j <= 5; ++j) {
    EXPECT_NEAR(newton[j], std::exp(log_e[j]),
                1e-8 * std::max(1.0, newton[j]));
  }
}

TEST(CharPoly, SaddleRadiusTargetsExpectedSize) {
  RandomStream rng(62);
  const Matrix m = random_psd(12, 12, rng, 1e-2);
  const double rho = saddle_point_radius(m, 4.0);
  // Expected size at rho should be ~4: tr(rho M (I + rho M)^{-1}).
  Matrix a = m * rho;
  for (std::size_t i = 0; i < 12; ++i) a(i, i) += 1.0;
  const Matrix inv = lu_factor(a).inverse();
  double expected = 12.0;
  for (std::size_t i = 0; i < 12; ++i) expected -= inv(i, i);
  EXPECT_NEAR(expected, 4.0, 0.05);
}

TEST(CharPoly, ZeroMatrixCoefficients) {
  const Matrix zero(4, 4);
  const auto coeffs = charpoly_log_coeffs(zero, 4);
  EXPECT_EQ(coeffs[0].sign, 1);
  EXPECT_NEAR(coeffs[0].log_abs, 0.0, 1e-9);
  for (std::size_t j = 1; j <= 4; ++j) EXPECT_EQ(coeffs[j].sign, 0);
}

}  // namespace
}  // namespace pardpp
