// Counting oracle for symmetric k-DPPs (Definition 3 + Definition 6).
//
// For symmetric PSD L with spectrum lambda and eigenbasis V:
//   Z            = e_k(lambda)
//   P[i ∈ S]     = sum_m lambda_m V_im^2 e_{k-1}(lambda \ m) / e_k(lambda)
//   P[T ⊆ S]     = det(L_T) e_{k-t}(spectrum of L^T) / e_k(lambda)
// where L^T is the Schur-complement conditional ensemble (paper §3.2).
// Elementary symmetric polynomials are evaluated in log domain (esp.h);
// eigen decompositions are cached lazily per conditional state.
//
// Batch queries go through a ConditionalState (oracle.h): the shared
// factors (eigen, ESP table, marginals) are cached here and primed once
// by prepare_concurrent(); the state answers |T| = 1 queries by a cached
// leave-one-out ESP lookup and larger T by an incrementally grown
// Cholesky factor feeding a scratch-reusing Schur complement — no
// per-query refactorization of the shared prefix.
#pragma once

#include <optional>

#include "distributions/oracle.h"
#include "linalg/esp.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace pardpp {

class SymmetricKdppOracle final : public CountingOracle {
 public:
  /// Wraps the k-DPP with ensemble matrix `l` (symmetric PSD). With
  /// `validate` the matrix is checked for symmetry and PSD-ness; internal
  /// conditioning steps skip the check.
  SymmetricKdppOracle(Matrix l, std::size_t k, bool validate = true);

  [[nodiscard]] std::size_t ground_size() const override { return l_.rows(); }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  /// Restriction to (possibly repeated) items with per-row scales:
  /// gathers the principal block and scales it symmetrically,
  /// diag(s) L_items diag(s) — PSD by construction, so validation is
  /// skipped.
  [[nodiscard]] std::unique_ptr<CountingOracle> restrict_to(
      std::span<const int> items,
      std::span<const double> scales) const override;
  /// weights[i] = L_ii, rank_bound = n. One pass over the diagonal.
  [[nodiscard]] DistillationProfile distillation_profile() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override {
    return "symmetric-kdpp";
  }
  void prepare_concurrent() const override;
  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override;
  /// Exact two-stage mixture draw: eigenmode ~ ESP weight, then item ~
  /// squared eigenvector entry — never materializes the marginal vector.
  [[nodiscard]] MarginalDraw draw_marginal(RandomStream& rng) const override;
  /// Commit-path state: in-place half-solve Schur conditioning + spectral
  /// refresh on persistent scratch, with the committed base-prefix
  /// Cholesky grown across rounds (DESIGN.md §2 convention 7).
  [[nodiscard]] std::unique_ptr<CommittedOracle> make_committed()
      const override;

  /// The (conditional) ensemble matrix.
  [[nodiscard]] const Matrix& ensemble() const noexcept { return l_; }

  /// log Z = log e_k(lambda).
  [[nodiscard]] double log_partition() const override;

 private:
  class State;
  class Committed;

  const SymmetricEigen& eigen() const;
  const LogEspTable& esp() const;
  const std::vector<double>& marginal_cache() const;
  const std::vector<double>& log_marginal_cache() const;

  Matrix l_;
  std::size_t k_;
  mutable std::optional<SymmetricEigen> eigen_;
  mutable std::optional<LogEspTable> esp_;
  mutable std::optional<std::vector<double>> marginals_;
  mutable std::optional<std::vector<double>> log_marginals_;
};

}  // namespace pardpp
