// FKT (Fisher–Kasteleyn–Temperley) Pfaffian orientation.
//
// Orients the edges of a connected embedded planar graph so that every
// internal face has an odd number of clockwise edges; Kasteleyn's theorem
// then gives #PM(G) = |Pf(A)| for the signed adjacency matrix A
// (A_uv = +1 on u → v, -1 on v → u). The construction is the classic one:
// orient a spanning tree arbitrarily; the non-tree edges form a spanning
// tree of the dual graph, which is processed leaves-first, each leaf face
// fixing its one undetermined boundary edge to satisfy the parity rule.
#pragma once

#include "linalg/matrix.h"
#include "planar/graph.h"

namespace pardpp {

struct KasteleynOrientation {
  /// orientation[e]: true when edge e = (u, v) (u < v) is oriented u → v.
  std::vector<bool> orientation;
  /// The signed skew adjacency matrix.
  Matrix matrix;
};

/// Computes a Pfaffian orientation of a connected planar graph. Throws on
/// disconnected input (callers orient components separately) or when the
/// coordinates do not describe an embedding.
[[nodiscard]] KasteleynOrientation fkt_orientation(const PlanarGraph& g);

}  // namespace pardpp
