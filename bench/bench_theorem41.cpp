// EXP-T41 — Theorem 41: filtering for spectrally bounded symmetric DPPs.
//
// Depth ~ min(sqrt(tr K), sigma_max(K) sqrt(n)) log(n/eps): we sweep
// sigma_max at fixed n and report the filtering round count R ~
// alpha^{-1} log(n/eps) with alpha = 1/(sigma sqrt(n)), the Prop. 45
// spectral invariant along the run, and the trace-based branch.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpp/ensemble.h"
#include "linalg/factory.h"
#include "linalg/symmetric_eigen.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/filtering.h"
#include "sampling/unconstrained.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

}  // namespace

int main() {
  print_header("EXP-T41a", "Theorem 41 (sigma sweep)",
               "filtering rounds ~ sigma sqrt(n) log(n/eps); per-round "
               "kernels stay below the initial sigma (Prop. 45); the "
               "sampler's output size tracks tr(K)");
  const std::size_t n = 64;
  const double eps = 0.05;
  Table table({"sigma_max(K)", "alpha", "rounds", "predicted~1.5*log(n/eps)/alpha",
               "E|S|=tr(K)", "sampled|S|", "overflow_frac", "wall_ms"});
  RandomStream rng(96001);
  for (const double sigma : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    // Spectrum: half the mass near sigma, rest spread below.
    std::vector<double> spectrum(n);
    for (std::size_t i = 0; i < n; ++i)
      spectrum[i] = sigma * (0.25 + 0.75 * static_cast<double>(i) /
                                        static_cast<double>(n - 1));
    const Matrix kernel = kernel_with_spectrum(spectrum, rng);
    const Matrix l = ensemble_from_kernel(kernel);
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += kernel(i, i);
    const double alpha =
        std::min(1.0 / (sigma * std::sqrt(static_cast<double>(n))), 2.0);
    FilteringOptions options;
    options.eps = eps;
    Timer timer;
    RandomStream run_rng = rng.split();
    const auto result = sample_filtering_dpp(l, run_rng, nullptr, options);
    const double ms = timer.millis();
    const double predicted =
        alpha > 1.0 ? 1.0
                    : std::ceil(1.5 * std::log(static_cast<double>(n) / eps) /
                                alpha);
    table.add_row({fmt(sigma, 2), fmt(alpha, 3), fmt_int(result.diag.rounds),
                   fmt(predicted, 0), fmt(trace, 2),
                   fmt_int(result.items.size()),
                   fmt(static_cast<double>(result.diag.ratio_overflows) /
                           std::max<std::size_t>(result.diag.proposals, 1),
                       4),
                   fmt(ms, 1)});
  }
  table.print();

  print_header("EXP-T41b", "Theorem 41 (trace branch, Remark 15)",
               "when tr(K) << sigma^2 n, sampling |S| then running the "
               "sqrt(k)-depth k-DPP sampler wins: depth ~ sqrt(tr K)");
  Table table2({"n", "tr(K)", "sigma_max", "sqrt(tr K)", "sigma*sqrt(n)",
                "better_branch"});
  RandomStream rng2(96002);
  struct Config {
    std::size_t n;
    double trace;
    double sigma;
  };
  for (const auto& config :
       {Config{64, 4.0, 0.9}, Config{64, 16.0, 0.5}, Config{256, 4.0, 0.9},
        Config{256, 64.0, 0.6}}) {
    const double lhs = std::sqrt(config.trace);
    const double rhs = config.sigma * std::sqrt(static_cast<double>(config.n));
    table2.add_row({fmt_int(config.n), fmt(config.trace, 1),
                    fmt(config.sigma, 2), fmt(lhs, 2), fmt(rhs, 2),
                    lhs < rhs ? "trace (k-DPP route)" : "filtering"});
  }
  table2.print();
  std::printf(
      "\nThe theorem's min(.) depth picks the smaller column per row.\n");

  print_header("EXP-T41c", "sample_dpp end-to-end dispatch",
               "the library's auto strategy executes the min(.): measured "
               "depth follows the chosen branch");
  Table table3({"spectrum", "sqrt(trK)", "sigma*sqrt(n)", "strategy_chosen",
                "depth(rounds)", "|S|"});
  RandomStream rng3(96003);
  struct Spec {
    const char* name;
    std::vector<double> spectrum;
  };
  std::vector<Spec> specs;
  {
    // Spiky: one large eigenvalue, tiny tail -> trace branch.
    std::vector<double> spiky(48, 0.004);
    spiky[47] = 0.9;
    specs.push_back({"spiky(tr=1.1,s=0.9)", spiky});
    // Flat: moderate everywhere -> filtering branch.
    std::vector<double> flat(48, 0.3);
    specs.push_back({"flat(tr=14.4,s=0.3)", flat});
  }
  for (const auto& spec : specs) {
    const Matrix kernel = kernel_with_spectrum(spec.spectrum, rng3);
    const Matrix l = ensemble_from_kernel(kernel);
    double trace = 0.0;
    for (const double v : spec.spectrum) trace += v;
    double sigma = 0.0;
    for (const double v : spec.spectrum) sigma = std::max(sigma, v);
    PramLedger ledger;
    RandomStream run = rng3.split();
    const auto result = sample_dpp(l, true, run, &ledger);
    table3.add_row({spec.name, fmt(std::sqrt(trace), 2),
                    fmt(sigma * std::sqrt(48.0), 2), result.strategy_used,
                    fmt(ledger.stats().depth, 0),
                    fmt_int(result.items.size())});
  }
  table3.print();

  print_header(
      "EXP-T41d", "ExecutionContext thread sweep (filtering sampler)",
      "one seed, pool sizes {1,2,4,hw}: identical samples at every pool "
      "size; the Bernoulli/rejection machines of each filtering round "
      "fan out, paying off on multicore hardware");
  const std::size_t n4 = 96;
  const double sigma4 = 0.4;
  RandomStream rng4(96004);
  std::vector<double> spectrum4(n4);
  for (std::size_t i = 0; i < n4; ++i)
    spectrum4[i] = sigma4 * (0.25 + 0.75 * static_cast<double>(i) /
                                       static_cast<double>(n4 - 1));
  const Matrix kernel4 = kernel_with_spectrum(spectrum4, rng4);
  const Matrix l4 = ensemble_from_kernel(kernel4);
  const std::uint64_t seed4 = 515151;
  const int repeats = 9;

  const auto points =
      run_thread_sweep(repeats, [&](const ExecutionContext& ctx) {
        RandomStream run_rng(seed4);
        return sample_filtering_dpp(l4, run_rng, ctx);
      });

  Table table4({"pool", "wall_ms", "speedup", "rounds", "|S|", "identical"});
  JsonSeries json;
  bool any_regression = false;
  for (const SweepPoint& point : points) {
    const std::size_t rounds =
        point.pram.rounds / static_cast<std::size_t>(repeats);
    const double speedup = reported_speedup(point.speedup);
    const bool regression = speedup < 1.0;
    any_regression = any_regression || regression;
    table4.add_row({fmt_int(point.pool_size), fmt(point.wall_ms, 1),
                    fmt(speedup, 1), fmt_int(rounds),
                    fmt_int(point.items.size()),
                    point.identical ? "yes" : "NO"});
    json.add_record(
        {JsonSeries::text("experiment", "theorem41_thread_sweep"),
         JsonSeries::number("n", n4),
         JsonSeries::number("sigma", sigma4, 3),
         JsonSeries::number("pool", point.pool_size),
         JsonSeries::number("wall_ms", point.wall_ms, 3),
         JsonSeries::number("speedup", speedup, 1),
         JsonSeries::number("rounds", rounds),
         JsonSeries::text("identical", point.identical ? "yes" : "no"),
         JsonSeries::boolean("regression", regression)});
  }
  table4.print();
  if (any_regression)
    std::printf("! REGRESSION: a pool size reported speedup < 1.0\n");
  json.write(bench_out_path("BENCH_theorem41_threads.json"));
  return 0;
}
