// pardpp — parallel sampling from determinantal distributions.
//
// Umbrella header: includes the full public API. See README.md for a tour
// and DESIGN.md for the module inventory.
#pragma once

// Support
#include "support/combinatorics.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logsum.h"
#include "support/random.h"
#include "support/timer.h"

// Parallel substrate + PRAM cost model
#include "parallel/execution.h"
#include "parallel/parallel_for.h"
#include "parallel/pram.h"
#include "parallel/thread_pool.h"

// Linear algebra
#include "linalg/charpoly.h"
#include "linalg/cholesky.h"
#include "linalg/esp.h"
#include "linalg/factory.h"
#include "linalg/lowrank.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/pfaffian.h"
#include "linalg/schur.h"
#include "linalg/symmetric_eigen.h"

// Distributions and counting oracles
#include "distributions/explicit.h"
#include "distributions/hard_instance.h"
#include "distributions/oracle.h"
#include "distributions/product.h"
#include "dpp/cardinality.h"
#include "dpp/charpoly_engine.h"
#include "dpp/ensemble.h"
#include "dpp/feature_oracle.h"
#include "dpp/general_oracle.h"
#include "dpp/hkpv.h"
#include "dpp/subdivision.h"
#include "dpp/symmetric_oracle.h"
#include "dpp/unconstrained_oracle.h"

// Samplers
#include "sampling/batched.h"
#include "sampling/diagnostics.h"
#include "sampling/entropic.h"
#include "sampling/filtering.h"
#include "sampling/rejection.h"
#include "sampling/sequential.h"
#include "sampling/session.h"
#include "sampling/unconstrained.h"

// Serving layer (session registry, request coalescing, wire protocol)
#include "serving/config.h"
#include "serving/fingerprint.h"
#include "serving/protocol.h"
#include "serving/registry.h"
#include "serving/server.h"

// Planar perfect matchings
#include "planar/enumerate.h"
#include "planar/faces.h"
#include "planar/fkt.h"
#include "planar/graph.h"
#include "planar/grid.h"
#include "planar/matching_count.h"
#include "planar/matching_sampler.h"
#include "planar/separator.h"
