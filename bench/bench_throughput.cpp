// EXP-THR — SamplerSession throughput: samples/sec vs pool size.
//
// The axis the theorem benches don't measure: how fast can the system
// serve *many independent samples* from one distribution? The baseline is
// the per-sample condition() path — what every pre-session entry point
// does: clone the oracle (cold caches), re-run the spectral preprocessing
// per draw, and materialize a fresh conditioned oracle per accepted
// round. The commit path (DESIGN.md §2 convention 7) pays the base
// preprocessing once per session and keeps every round incremental;
// draw_many additionally fans independent draws out on the pool.
//
// Contract checks folded into the measurement: the commit path's sample
// sequence is bit-identical to the condition() reference sequence from
// the same seed, at every pool size.
#include <cstdio>

#include "bench_util.h"
#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/session.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

struct ThroughputConfig {
  std::string family;
  std::size_t n = 0;
  std::size_t d = 0;  // 0 = dense symmetric
  std::size_t k = 0;
  std::size_t samples = 0;
  int repeats = 3;
};

std::vector<std::vector<int>> items_of(std::vector<SampleResult> results) {
  std::vector<std::vector<int>> out;
  out.reserve(results.size());
  for (auto& r : results) out.push_back(std::move(r.items));
  return out;
}

std::size_t refreshes_of(const std::vector<SampleResult>& results) {
  std::size_t total = 0;
  for (const auto& r : results) total += r.diag.spectral_refreshes;
  return total;
}

void run_config(const CountingOracle& oracle, const ThroughputConfig& config,
                JsonSeries& json, bool& any_regression,
                bool& any_below_target) {
  SessionOptions commit_options;
  SessionOptions reference_options;
  reference_options.use_commit = false;
  SamplerSession commit_session(oracle, commit_options);
  SamplerSession reference_session(oracle, reference_options);
  const std::uint64_t seed = 884422;

  // The per-sample condition() baseline, serial: every draw re-derives
  // the base preprocessing and every accepted round a conditioned oracle.
  double reference_ms = 0.0;
  std::vector<std::vector<int>> reference_items;
  for (int r = 0; r < config.repeats; ++r) {
    RandomStream rng(seed);
    Timer timer;
    auto results = reference_session.draw_many(config.samples, rng,
                                               ExecutionContext::serial());
    const double ms = timer.millis();
    if (r == 0 || ms < reference_ms) reference_ms = ms;
    if (r == 0) reference_items = items_of(std::move(results));
  }
  const double reference_sps =
      1000.0 * static_cast<double>(config.samples) / reference_ms;

  // Same measurement protocol as run_thread_sweep: one untimed warmup per
  // pool size, then timed passes *interleaved* across the pool sizes so
  // slow host drift hits every point equally; minimum-of-passes since
  // scheduler noise is strictly additive on a deterministic workload.
  const std::vector<std::size_t> sizes = thread_sweep();
  std::vector<std::unique_ptr<ThreadPool>> pools;
  pools.reserve(sizes.size());
  for (const std::size_t pool_size : sizes)
    pools.push_back(std::make_unique<ThreadPool>(pool_size));
  std::vector<double> wall_ms(sizes.size(), 0.0);
  std::vector<std::vector<std::vector<int>>> items(sizes.size());
  std::vector<std::size_t> refreshes(sizes.size(), 0);
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const ScopedLinalgPool linalg_guard(pools[p].get());
    const ExecutionContext ctx(pools[p].get(), nullptr);
    RandomStream rng(seed);  // untimed warmup
    (void)commit_session.draw_many(config.samples, rng, ctx);
  }
  for (int r = 0; r < config.repeats; ++r) {
    for (std::size_t p = 0; p < sizes.size(); ++p) {
      const ScopedLinalgPool linalg_guard(pools[p].get());
      const ExecutionContext ctx(pools[p].get(), nullptr);
      RandomStream rng(seed);
      Timer timer;
      auto results = commit_session.draw_many(config.samples, rng, ctx);
      const double ms = timer.millis();
      if (r == 0 || ms < wall_ms[p]) wall_ms[p] = ms;
      if (r == 0) {
        refreshes[p] = refreshes_of(results);
        items[p] = items_of(std::move(results));
      }
    }
  }

  Table table({"pool", "wall_ms", "samples_per_sec", "vs_pool1",
               "vs_condition", "refreshes", "identical"});
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const std::size_t pool_size = sizes[p];
    const bool identical =
        items[p] == items[0] && items[p] == reference_items;
    const double sps =
        1000.0 * static_cast<double>(config.samples) / wall_ms[p];
    const double vs_pool1 = reported_speedup(wall_ms[0] / wall_ms[p]);
    const double vs_condition = reference_ms / wall_ms[p];
    const bool regression = vs_pool1 < 1.0;
    any_regression = any_regression || regression || !identical;
    // Acceptance targets over the per-sample condition() baseline at
    // n >= 128: >= 7x for the low-rank family, and >= 14x for the dense
    // symmetric family. The commit path runs factor-native (Cholesky
    // downdates + Newton ESPs per accepted round) while the baseline
    // re-runs the spectral preprocessing per draw; the dispatched SIMD
    // kernels under both widened the gap (measured 8.9x / 18.7x on the
    // reference container with AVX2 active), so the gates sit about a
    // 20-25% margin below measurement. The `refreshes` column counts
    // eigensolve fallbacks paid by the commit path — 0 on
    // well-conditioned kernels.
    if (config.d != 0 && config.n >= 128 && vs_condition < 7.0)
      any_below_target = true;
    if (config.d == 0 && config.n >= 128 && vs_condition < 14.0)
      any_below_target = true;
    table.add_row({fmt_int(pool_size), fmt(wall_ms[p], 1), fmt(sps, 1),
                   fmt(vs_pool1, 1), fmt(vs_condition, 1),
                   fmt_int(refreshes[p]), identical ? "yes" : "NO"});
    json.add_record(
        {JsonSeries::text("experiment", "session_throughput"),
         JsonSeries::text("family", config.family),
         JsonSeries::number("n", config.n), JsonSeries::number("d", config.d),
         JsonSeries::number("k", config.k),
         JsonSeries::number("samples", config.samples),
         JsonSeries::number("pool", pool_size),
         JsonSeries::number("wall_ms", wall_ms[p], 3),
         JsonSeries::number("samples_per_sec", sps, 1),
         JsonSeries::number("speedup", vs_pool1, 1),
         JsonSeries::number("speedup_vs_condition", vs_condition, 2),
         JsonSeries::number("spectral_refreshes", refreshes[p]),
         // Session-lifetime guard/degradation counters (convention 12):
         // non-identity informational fields for compare_bench.py, and a
         // cheap sentinel that the bench ran failure-free (all 0 unless a
         // PARDPP_FAILPOINTS schedule was armed under the bench).
         JsonSeries::number("retries", commit_session.health().retries),
         JsonSeries::number("degraded_draws",
                            commit_session.health().degraded_proposal +
                                commit_session.health().degraded_undistilled +
                                commit_session.health().degraded_reference),
         JsonSeries::number("guard_failures",
                            commit_session.health().failures),
         JsonSeries::number("condition_baseline_ms", reference_ms, 3),
         JsonSeries::text("identical", identical ? "yes" : "no"),
         JsonSeries::boolean("regression", regression || !identical)});
  }
  std::printf("\ncondition() baseline: %.1f ms for %zu samples "
              "(%.1f samples/sec)\n",
              reference_ms, config.samples, reference_sps);
  table.print();
}

}  // namespace

int main() {
  print_header(
      "EXP-THR", "SamplerSession commit-path throughput",
      "amortized preprocessing + factor-native commit rounds serve >= 7x "
      "(low-rank) and >= 14x (dense symmetric, eigensolve-free rounds) the "
      "samples/sec of the per-sample condition() baseline at n >= 128, "
      "bit-identical samples at every pool size");
  JsonSeries json;
  bool any_regression = false;
  bool any_below_target = false;
  RandomStream setup(880099);

  {
    ThroughputConfig config{"feature", /*n=*/1024, /*d=*/24, /*k=*/8,
                            /*samples=*/24};
    std::printf("\n-- low-rank feature family: n=%zu d=%zu k=%zu --\n",
                config.n, config.d, config.k);
    const Matrix features = random_gaussian(config.n, config.d, setup);
    const FeatureKdppOracle oracle(features, config.k);
    run_config(oracle, config, json, any_regression, any_below_target);
  }
  {
    ThroughputConfig config{"symmetric", /*n=*/128, /*d=*/0, /*k=*/10,
                            /*samples=*/8};
    std::printf("\n-- dense symmetric family: n=%zu k=%zu --\n", config.n,
                config.k);
    const Matrix l = random_psd(config.n, config.n, setup, 1e-5);
    const SymmetricKdppOracle oracle(l, config.k, /*validate=*/false);
    run_config(oracle, config, json, any_regression, any_below_target);
  }

  if (any_regression)
    std::printf("\n! REGRESSION: a pool size lost to pool 1 or diverged "
                "from the condition() reference\n");
  if (any_below_target)
    std::printf("\n! TARGET MISSED: commit path below its family target "
                "(7x low-rank, 14x dense symmetric) over the condition() "
                "baseline\n");
  json.write(bench_out_path("BENCH_throughput.json"));
  return 0;
}
