// Quickstart: sample a diverse subset of 2D points with a k-DPP.
//
// Builds an RBF similarity kernel over random points in the unit square,
// draws one exact sample with the parallel batched sampler (Theorem 10),
// and contrasts its spread against an i.i.d. uniform draw. Run:
//   ./examples/quickstart
#include <cmath>
#include <cstdio>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

// Minimum pairwise distance: the "diversity" a DPP maximizes in spirit.
double min_pairwise_distance(const Matrix& points,
                             const std::vector<int>& subset) {
  double best = 1e300;
  for (std::size_t a = 0; a < subset.size(); ++a) {
    for (std::size_t b = a + 1; b < subset.size(); ++b) {
      const auto i = static_cast<std::size_t>(subset[a]);
      const auto j = static_cast<std::size_t>(subset[b]);
      const double dx = points(i, 0) - points(j, 0);
      const double dy = points(i, 1) - points(j, 1);
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
  }
  return best;
}

void ascii_scatter(const Matrix& points, const std::vector<int>& subset) {
  const int w = 48;
  const int h = 16;
  std::vector<std::string> canvas(h, std::string(w, '.'));
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const int x = std::min(w - 1, static_cast<int>(points(i, 0) * w));
    const int y = std::min(h - 1, static_cast<int>(points(i, 1) * h));
    canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = 'o';
  }
  for (const int s : subset) {
    const auto i = static_cast<std::size_t>(s);
    const int x = std::min(w - 1, static_cast<int>(points(i, 0) * w));
    const int y = std::min(h - 1, static_cast<int>(points(i, 1) * h));
    canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = '#';
  }
  for (const auto& row : canvas) std::printf("  %s\n", row.c_str());
}

}  // namespace

int main() {
  RandomStream rng(2024);
  const std::size_t n = 120;
  const std::size_t k = 12;

  // 1. Ground set: n random points; kernel: Gaussian RBF similarity.
  const Matrix points = random_points(n, 2, rng);
  Matrix l = rbf_kernel(points, 0.18);
  for (std::size_t i = 0; i < n; ++i) l(i, i) += 1e-6;  // numerical floor

  // 2. Counting oracle for the k-DPP, and one exact parallel sample. The
  // ExecutionContext fans each round's proposal machines out on the
  // shared pool; the same seed yields the same sample at any pool size.
  const SymmetricKdppOracle oracle(l, k);
  PramLedger ledger;
  const ExecutionContext ctx = ExecutionContext::on_shared_pool(&ledger);
  const SampleResult sample = sample_batched(oracle, rng, ctx);

  std::printf("k-DPP sample (# = selected of %zu points):\n", n);
  ascii_scatter(points, sample.items);

  // 3. Average spread over repeated draws vs the iid baseline.
  const int trials = 40;
  double dpp_spread = 0.0;
  double iid_spread = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    dpp_spread += min_pairwise_distance(points,
                                        sample_batched(oracle, rng).items);
    std::vector<int> iid;
    while (iid.size() < k) {
      const int pick = static_cast<int>(rng.uniform_index(n));
      bool dup = false;
      for (const int existing : iid) dup = dup || existing == pick;
      if (!dup) iid.push_back(pick);
    }
    iid_spread += min_pairwise_distance(points, iid);
  }
  std::printf(
      "\nmean min pairwise distance over %d draws:  k-DPP %.4f   iid %.4f\n",
      trials, dpp_spread / trials, iid_spread / trials);
  std::printf(
      "parallel cost of the draw above: %zu rounds (sequential reduction "
      "needs %zu), %zu oracle calls, acceptance %.2f\n",
      sample.diag.rounds, k, sample.diag.oracle_calls,
      sample.diag.acceptance_rate());
  return 0;
}
