// Multivariate generating-polynomial engine for determinantal counting.
//
// For an ensemble matrix M over a ground set with partition labels
// p(i) ∈ {0..r-1}, the generating polynomial of the DPP factors through
//   det(I + D(w) M) = sum_S det(M_S) prod_a w_a^{|S ∩ V_a|},
// with D(w) = diag(w_{p(i)}). Coefficient extraction at per-part counts c
// yields the Partition-DPP partition function (paper Prop. 13 computes
// these by evaluation + interpolation; with r = 1 this is the k-DPP).
// We evaluate on a tensor grid of scaled roots of unity — the unitary,
// perfectly conditioned version of the paper's Vandermonde solves — and
// recover coefficients by an inverse DFT.
//
// The two quantities the samplers need beyond the partition function are
// obtained from the *same* cached node data (one complex LU + inverse of
// A(w) = I + D(w)M per node):
//
//  * singleton marginal numerators, via the cofactor identity
//      det(I + D(w) M_{-i}) = det(A(w)) [A(w)^{-1}]_{ii}
//    so   sum_{S ∋ i} det(M_S) prod w^{counts} = det(A) (1 - A^{-1}_{ii});
//
//  * joint-marginal numerators for a batch T (|T| = t), via a rank-t row
//    replacement: F_T(w) := sum_{S ⊇ T} det(M_S) prod w^{counts(S\T)}
//    equals det(B_T(w)) where B_T agrees with A(w) off T and has rows
//    M_{r,:} on T; the matrix determinant lemma collapses this to a t x t
//    determinant per node,
//      det(B_T) = det(A) det(C_T),
//      (C_T)_{r r'} = δ + (1 - w_{p(r)}) (M A^{-1})_{r r'} - A^{-1}_{r r'},
//      (M A^{-1})_{r,:} = (δ_{r,:} - A^{-1}_{r,:}) / w_{p(r)},
//    making each rejection-sampling proposal O(#nodes * t^3) after the
//    one-time O(#nodes * m^3) cache build per conditioning round.
#pragma once

#include <complex>
#include <optional>
#include <span>
#include <vector>

#include "linalg/charpoly.h"
#include "linalg/matrix.h"

namespace pardpp {

class CharPolyEngine {
 public:
  /// `part_of[i]` in [0, num_parts); `target_counts` sizes the per-axis
  /// node counts (axis a gets |V_a| + 1 nodes — exact, alias-free) and
  /// steers the saddle-point radii. `memory_budget` bounds the cached
  /// inverses in bytes; exceeding it throws InvalidArgument so callers
  /// fail loudly rather than thrash.
  CharPolyEngine(Matrix m, std::vector<int> part_of, std::size_t num_parts,
                 std::vector<int> target_counts,
                 double memory_budget = 6.0e8);

  [[nodiscard]] std::size_t ground_size() const { return m_.rows(); }
  [[nodiscard]] std::size_t num_parts() const { return num_parts_; }
  [[nodiscard]] std::span<const int> part_of() const { return part_of_; }
  [[nodiscard]] std::span<const int> target_counts() const {
    return target_counts_;
  }

  /// log of sum_{S : counts(S) = j} det(M_S) (a signed coefficient; for
  /// valid ensembles the sign is +1 or 0).
  [[nodiscard]] LogCoefficient log_count(std::span<const int> j) const;

  /// log of sum_{S ⊇ T : counts(S \ T) = j} det(M_S). T holds distinct
  /// ground indices.
  [[nodiscard]] LogCoefficient log_count_superset(std::span<const int> t,
                                                  std::span<const int> j) const;

  /// For every ground element i: log of
  /// sum_{S ∋ i : counts(S) = target_counts} det(M_S).
  [[nodiscard]] std::vector<LogCoefficient> marginal_numerators() const;

  /// Forces the lazy node cache to be built now. After warm() every query
  /// above only reads the cache, so concurrent queries are data-race-free.
  void warm() const { (void)cache(); }

 private:
  struct Cache {
    std::vector<std::size_t> axis_nodes;   // N_a per axis
    std::vector<double> radii;             // rho_a per axis
    std::size_t grid_size = 0;             // prod N_a
    // Per grid node (flattened, axis 0 slowest):
    std::vector<double> log_det;                       // log |det A(w)|
    std::vector<std::complex<double>> det_phase;       // det A / |det A|
    std::vector<CMatrix> inverse;                      // A(w)^{-1}
    std::vector<std::complex<double>> node_w;          // grid_size * r
  };

  const Cache& cache() const;
  void build_cache() const;
  [[nodiscard]] std::vector<double> choose_radii() const;
  [[nodiscard]] LogCoefficient extract_coefficient(
      std::span<const std::complex<double>> values_phase,
      std::span<const double> values_log, std::span<const int> j) const;

  Matrix m_;
  std::vector<int> part_of_;
  std::size_t num_parts_;
  std::vector<int> target_counts_;
  double memory_budget_;
  mutable std::optional<Cache> cache_;
};

}  // namespace pardpp
