// Deterministic fault injection — named, compiled-in failpoints.
//
// Robustness of the serving stack (recovery ladders, poisoning, typed
// failure propagation) is only testable if the failures themselves are
// injectable on demand and *reproducible*: a flaky fault schedule makes a
// recovery test as untrustworthy as the bug it hunts. Every guard site in
// the library that can fail in production carries a named failpoint:
//
//   if (failpoint("linalg.cholesky.pivot"))
//     throw NumericalError("injected pivot failure ...");
//
// When the registry is inactive (the default), `failpoint()` is a single
// relaxed atomic load — cheap enough for round-loop hot paths, and the
// bench_throughput gate pins that it stays that way. Arming happens
// either programmatically (tests) or from the `PARDPP_FAILPOINTS`
// environment variable (the CI fault-injection leg):
//
//   PARDPP_FAILPOINTS="site=trigger[;site=trigger...]"
//   trigger items (comma-separated):
//     count:N    fire the next N hits (after `skip`), then stop
//     prob:P     fire each hit independently with probability P
//     skip:K     ignore the first K hits before the trigger applies
//     seed:S     seed of the probability hash (default 0)
//     scoped     fire only inside a FailpointScope (session draws)
//     off        parse-and-disable (placeholder in canned schedules)
//
// Determinism: a probability trigger never consults a global RNG. Each
// hit's decision is a pure hash of (spec seed, scope token, hit ordinal),
// so a schedule replays bit-identically from its seed. Hit ordinals are
// counted per (scope, site) when a FailpointScope is active — the scope
// SamplerSession installs per draw, with the draw's stream index as the
// token — so the firing pattern seen by draw i is a function of i alone,
// never of the pool size, the chunk layout, or what other draws did
// concurrently. Without a scope, ordinals fall back to a global per-site
// counter (deterministic for single-threaded use; thread-interleaving-
// dependent under concurrency, which is why session-side schedules say
// `scoped`).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.h"

namespace pardpp {

/// One failpoint's trigger. Default-constructed = disabled.
struct FailpointSpec {
  enum class Trigger { kOff, kCount, kProbability };
  Trigger trigger = Trigger::kOff;
  std::uint64_t skip = 0;         ///< hits ignored before the trigger applies
  std::uint64_t count = 0;        ///< kCount: hits that fire after `skip`
  double probability = 0.0;       ///< kProbability: per-hit firing chance
  std::uint64_t seed = 0;         ///< seed of the probability hash
  bool scoped_only = false;       ///< fire only inside a FailpointScope
};

/// RAII deterministic-firing scope: while alive on a thread, hit ordinals
/// for that thread are counted per (scope, site) and the probability hash
/// mixes in `token` — so the decisions made inside the scope are a pure
/// function of (spec, token, within-scope hit sequence). SamplerSession
/// installs one per draw with the draw's stream index as the token.
/// Scopes nest (the innermost wins) and are movable-from never — one per
/// stack frame.
class FailpointScope {
 public:
  explicit FailpointScope(std::uint64_t token) noexcept;
  ~FailpointScope();
  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;

  /// The scope active on the calling thread (innermost), or nullptr.
  [[nodiscard]] static FailpointScope* current() noexcept;

  [[nodiscard]] std::uint64_t token() const noexcept { return token_; }
  /// Increments and returns this scope's 1-based hit ordinal for `site`
  /// (an opaque per-site key owned by the registry).
  [[nodiscard]] std::uint64_t next_hit(const void* site);

 private:
  std::uint64_t token_;
  FailpointScope* previous_;
  std::vector<std::pair<const void*, std::uint64_t>> hits_;
};

/// Process-wide registry of armed failpoints. All members are
/// thread-safe; `armed()` is the lock-free fast gate every `failpoint()`
/// call checks first.
class FailpointRegistry {
 public:
  [[nodiscard]] static FailpointRegistry& instance();

  /// True when at least one site is armed. Relaxed load — the only cost
  /// an inactive failpoint pays.
  [[nodiscard]] static bool armed() noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Arms (or re-arms, resetting counters) one site.
  void arm(std::string site, FailpointSpec spec);
  /// Parses a PARDPP_FAILPOINTS-format schedule and arms every site in
  /// it; returns the number of sites armed. Throws InvalidArgument on a
  /// malformed schedule (unknown item, bad number).
  std::size_t arm_from_spec(std::string_view text);
  void disarm(std::string_view site);
  void disarm_all();

  /// The decision point behind `failpoint()`: counts the hit and applies
  /// the site's trigger. False for unarmed sites.
  [[nodiscard]] bool should_fire(std::string_view site);

  /// Lifetime counters since the site was (re-)armed.
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;
  [[nodiscard]] std::uint64_t fires(std::string_view site) const;

 private:
  struct Site {
    std::string name;
    FailpointSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t unscoped_hits = 0;
  };

  FailpointRegistry();
  [[nodiscard]] Site* find(std::string_view site);
  [[nodiscard]] const Site* find(std::string_view site) const;
  void refresh_armed_locked();

  mutable std::mutex mutex_;
  // unique_ptr keeps Site addresses stable across arm() — FailpointScope
  // keys its per-scope hit counters by the Site pointer.
  std::vector<std::unique_ptr<Site>> sites_;

  static std::atomic<bool> armed_;
};

/// The guard-site probe: true when the named failpoint is armed and its
/// trigger fires on this hit. A single relaxed atomic load when the
/// registry is inactive.
[[nodiscard]] inline bool failpoint(std::string_view site) {
  if (!FailpointRegistry::armed()) return false;
  return FailpointRegistry::instance().should_fire(site);
}

}  // namespace pardpp
