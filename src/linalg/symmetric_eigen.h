// Symmetric eigendecomposition.
//
// Two independent implementations are provided:
//  * `symmetric_eigen`: Householder tridiagonalization (tred2) followed by
//    the implicit-shift QL iteration (tql2) — the production path, O(n^3)
//    with a small constant;
//  * `jacobi_eigen`: cyclic Jacobi rotations — slower but algorithmically
//    unrelated, used by the test suite to cross-validate the former.
//
// Both return eigenvalues in ascending order with matching eigenvector
// columns. The symmetric-DPP counting oracle (marginals via elementary
// symmetric polynomials of the spectrum) and the HKPV exact sampler sit on
// top of these.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace pardpp {

/// Eigenvalues (ascending) and eigenvectors (columns of `vectors`, aligned
/// with `values`) of a real symmetric matrix.
struct SymmetricEigen {
  std::vector<double> values;
  Matrix vectors;
};

/// Householder + implicit-shift QL eigendecomposition of a symmetric
/// matrix. Throws NumericalError if the QL iteration fails to converge
/// (practically unreachable for symmetric input).
[[nodiscard]] SymmetricEigen symmetric_eigen(const Matrix& a);

/// Cyclic Jacobi eigendecomposition (cross-check implementation).
[[nodiscard]] SymmetricEigen jacobi_eigen(const Matrix& a,
                                          int max_sweeps = 100,
                                          double tol = 1e-13);

/// Eigenvalues only (ascending) — skips eigenvector accumulation, roughly
/// 3x faster; the joint-marginal oracle queries use this path.
[[nodiscard]] std::vector<double> symmetric_eigenvalues(const Matrix& a);

/// Largest |eigenvalue| of a symmetric matrix.
[[nodiscard]] double spectral_norm_symmetric(const Matrix& a);

}  // namespace pardpp
