// Unit and property tests for the dense linear algebra layer: matrices,
// LU (real + complex), Cholesky, Schur complements.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <span>

#include "linalg/cholesky.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/schur.h"
#include "support/random.h"

namespace pardpp {
namespace {

TEST(Matrix, IdentityAndDiagonal) {
  const auto eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  const std::vector<double> d = {1.0, 2.0, 3.0};
  const auto diag = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(diag(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(diag(1, 0), 0.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  const Matrix b = a * 2.0;
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  const Matrix c = b - a;
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
  const Matrix d = a + a;
  EXPECT_DOUBLE_EQ(d(1, 0), 6.0);
}

TEST(Matrix, ProductMatchesHandComputation) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  const Matrix c = a * b;
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(Matrix, GatherAndPrincipal) {
  RandomStream rng(5);
  const Matrix m = random_gaussian(5, 5, rng);
  const std::vector<int> idx = {3, 1};
  const Matrix sub = m.principal(idx);
  EXPECT_DOUBLE_EQ(sub(0, 0), m(3, 3));
  EXPECT_DOUBLE_EQ(sub(0, 1), m(3, 1));
  EXPECT_DOUBLE_EQ(sub(1, 0), m(1, 3));
}

TEST(Matrix, TransposeInvolution) {
  RandomStream rng(6);
  const Matrix m = random_gaussian(4, 7, rng);
  const Matrix mtt = m.transpose().transpose();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 7; ++j) EXPECT_DOUBLE_EQ(mtt(i, j), m(i, j));
}

TEST(Matrix, SymmetryPredicates) {
  RandomStream rng(7);
  const Matrix s = random_psd(5, 5, rng);
  EXPECT_TRUE(s.is_symmetric());
  Matrix a = s;
  a(0, 1) += 1.0;
  EXPECT_FALSE(a.is_symmetric());
  EXPECT_TRUE(a.symmetric_part().is_symmetric());
}

TEST(Matrix, ApplyMatchesProduct) {
  RandomStream rng(8);
  const Matrix m = random_gaussian(4, 4, rng);
  std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  const auto y = m.apply(x);
  for (std::size_t i = 0; i < 4; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 4; ++j) expect += m(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

TEST(Matrix, MultiplyTransposedBMatchesNaive) {
  RandomStream rng(771001);
  const Matrix a = random_gaussian(37, 19, rng);
  const Matrix b = random_gaussian(53, 19, rng);
  const Matrix blocked = multiply_transposed_b(a, b);
  const Matrix naive = a * b.transpose();
  ASSERT_EQ(blocked.rows(), naive.rows());
  ASSERT_EQ(blocked.cols(), naive.cols());
  for (std::size_t i = 0; i < naive.rows(); ++i)
    for (std::size_t j = 0; j < naive.cols(); ++j)
      EXPECT_NEAR(blocked(i, j), naive(i, j), 1e-12);
}

TEST(Matrix, MultiplyTransposedBShapeMismatchThrows) {
  const Matrix a(3, 4);
  const Matrix b(5, 3);
  EXPECT_THROW((void)multiply_transposed_b(a, b), InvalidArgument);
}

TEST(Matrix, SymRankKUpdateMatchesNaive) {
  RandomStream rng(771002);
  const std::size_t r = 21;
  const std::size_t n = 33;
  const Matrix y = random_gaussian(r, n, rng);
  Matrix c = random_psd(n, n, rng, 1e-3);
  Matrix want = c;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < r; ++p) acc += y(p, i) * y(p, j);
      want(i, j) -= acc;
    }
  sym_rank_k_update(c, -1.0, y.flat().data(), r, n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(c(i, j), want(i, j), 1e-10) << i << "," << j;
  // The result is exactly symmetric (upper triangle mirrored).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(c(i, j), c(j, i));
}

TEST(IncrementalCholesky, CommittedPrefixSurvivesTruncate) {
  RandomStream rng(771003);
  const Matrix a = random_psd(8, 8, rng, 1e-3);
  IncrementalCholesky chol(8);
  double max_diag = 0.0;
  for (std::size_t i = 0; i < 8; ++i)
    max_diag = std::max(max_diag, std::abs(a(i, i)));
  chol.clear(max_diag);
  std::vector<double> row;
  const auto append_row = [&](std::size_t r) {
    row.resize(r + 1);
    for (std::size_t c = 0; c <= r; ++c) row[c] = a(r, c);
    ASSERT_TRUE(chol.append(row));
  };
  append_row(0);
  append_row(1);
  append_row(2);
  chol.commit_prefix();
  EXPECT_EQ(chol.committed_size(), 3u);
  const double committed_log_det = chol.log_det();
  // Speculative rows beyond the committed prefix pop back off...
  append_row(3);
  append_row(4);
  chol.truncate();
  EXPECT_EQ(chol.size(), 3u);
  EXPECT_DOUBLE_EQ(chol.log_det(), committed_log_det);
  // ...and popping below the committed floor is rejected.
  EXPECT_THROW(chol.truncate(2), InvalidArgument);
  // clear() resets the floor.
  chol.clear(max_diag);
  EXPECT_EQ(chol.committed_size(), 0u);
  append_row(0);
  chol.truncate(0);
  EXPECT_EQ(chol.size(), 0u);
}

TEST(Schur, ConditionEnsembleSymIntoMatchesFromScratch) {
  RandomStream rng(771004);
  const Matrix l = random_psd(9, 9, rng, 1e-3);
  const std::vector<int> t = {5, 1, 7};
  const auto want = condition_ensemble(l, t, /*symmetric=*/true);
  IncrementalCholesky chol;
  std::vector<double> y;
  std::vector<int> keep;
  Matrix reduced;
  condition_ensemble_sym_into(l, t, chol, y, keep, reduced);
  ASSERT_EQ(reduced.rows(), want.reduced.rows());
  for (std::size_t i = 0; i < reduced.rows(); ++i)
    for (std::size_t j = 0; j < reduced.cols(); ++j)
      EXPECT_NEAR(reduced(i, j), want.reduced(i, j), 1e-10);
  EXPECT_NEAR(chol.log_det(), want.log_abs_det_elim, 1e-10);
}

TEST(Schur, ConditionEnsembleSymIntoRejectsNullEvent) {
  // A rank-1 ensemble cannot be conditioned on two elements.
  Matrix l(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) l(i, j) = 1.0;
  const std::vector<int> t = {0, 1};
  IncrementalCholesky chol;
  std::vector<double> y;
  std::vector<int> keep;
  Matrix reduced;
  EXPECT_THROW(condition_ensemble_sym_into(l, t, chol, y, keep, reduced),
               NumericalError);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW((void)(a * b), InvalidArgument);
  EXPECT_THROW(a += b, InvalidArgument);
}

// ---- LU ----

class LuRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LuRandomTest, SolveAndDeterminant) {
  const auto [n, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed));
  Matrix a = random_gaussian(static_cast<std::size_t>(n),
                             static_cast<std::size_t>(n), rng);
  for (int i = 0; i < n; ++i)
    a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += 3.0;
  const auto lu = lu_factor(a);
  ASSERT_FALSE(lu.singular());
  // Solve against a known RHS.
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    x_true[static_cast<std::size_t>(i)] = rng.normal();
  const auto b = a.apply(x_true);
  const auto x = lu.solve(b);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-8);
  // Inverse times A = I.
  const Matrix prod = lu.inverse() * a;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(prod(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
                  i == j ? 1.0 : 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, LuRandomTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8,
                                                              13, 21),
                                            ::testing::Values(1, 2, 3)));

TEST(Lu, DeterminantMatchesCofactor2x2) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 7.0;
  a(1, 0) = 2.0;
  a(1, 1) = 5.0;
  const auto sld = signed_log_det(a);
  EXPECT_EQ(sld.sign, 1);
  EXPECT_NEAR(std::exp(sld.log_abs), 1.0, 1e-12);
  EXPECT_NEAR(det_small(a), 1.0, 1e-12);
}

TEST(Lu, NegativeDeterminantSign) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;  // permutation matrix, det = -1
  const auto sld = signed_log_det(a);
  EXPECT_EQ(sld.sign, -1);
  EXPECT_NEAR(sld.log_abs, 0.0, 1e-12);
}

TEST(Lu, SingularDetection) {
  Matrix a(3, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    a(0, j) = 1.0;
    a(1, j) = 2.0;  // row 1 = 2 * row 0
    a(2, j) = static_cast<double>(j);
  }
  const auto lu = lu_factor(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_EQ(signed_log_det(a).sign, 0);
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)lu.solve(b), NumericalError);
}

TEST(Lu, ComplexDeterminantOnUnitCircle) {
  // A = diag(1 + z, 1 - z) with |z| = 1: det = 1 - z^2.
  const std::complex<double> z = std::polar(1.0, 0.7);
  CMatrix a(2, 2);
  a(0, 0) = 1.0 + z;
  a(1, 1) = 1.0 - z;
  const auto lu = lu_factor(a);
  const auto det = lu.log_det();
  const std::complex<double> expected = 1.0 - z * z;
  EXPECT_NEAR(det.log_abs, std::log(std::abs(expected)), 1e-12);
  EXPECT_NEAR(std::arg(det.phase), std::arg(expected), 1e-12);
}

TEST(Lu, ComplexSolve) {
  RandomStream rng(9);
  CMatrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      a(i, j) = {rng.normal(), rng.normal()};
  for (std::size_t i = 0; i < 3; ++i) a(i, i) += 4.0;
  std::vector<std::complex<double>> x_true = {
      {1.0, 2.0}, {-1.0, 0.5}, {0.0, -3.0}};
  const auto b = a.apply(x_true);
  const auto lu = lu_factor(a);
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_LT(std::abs(x[i] - x_true[i]), 1e-9);
}

// ---- Cholesky ----

class CholeskyRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyRandomTest, FactorSolveLogDet) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  const Matrix a = random_psd(6, 6, rng, 1e-3);
  const auto chol = cholesky(a);
  ASSERT_TRUE(chol.has_value());
  // L L^T = A.
  const Matrix recon = chol->lower() * chol->lower().transpose();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
  // log det agrees with LU.
  EXPECT_NEAR(chol->log_det(), signed_log_det(a).log_abs, 1e-8);
  // Solve.
  std::vector<double> x_true = {1, 2, 3, 4, 5, 6};
  const auto b = a.apply(x_true);
  const auto x = chol->solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1.0;
  EXPECT_FALSE(cholesky(a).has_value());
  EXPECT_THROW((void)cholesky_or_throw(a), NumericalError);
  EXPECT_FALSE(is_psd(a));
}

TEST(Cholesky, PsdPredicates) {
  RandomStream rng(21);
  EXPECT_TRUE(is_psd(random_psd(6, 3, rng)));  // rank-deficient PSD
  const Matrix l = random_npsd(6, rng, 0.8);
  EXPECT_TRUE(is_npsd(l));
  EXPECT_FALSE(l.is_symmetric());
  Matrix bad = Matrix::identity(3);
  bad(0, 0) = -2.0;
  EXPECT_FALSE(is_npsd(bad));
}

// ---- Schur complements ----

class SchurTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SchurTest, DeterminantChainRule) {
  const auto [seed, symmetric] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed));
  const Matrix l = symmetric ? random_psd(7, 7, rng, 1e-2)
                             : random_npsd(7, rng, 0.6);
  const std::vector<int> t = {1, 4, 6};
  const auto cond = condition_ensemble(l, t, symmetric);
  // det(L) = det(L_T) * det(Schur complement).
  const auto full = signed_log_det(l);
  const auto reduced = signed_log_det(cond.reduced);
  ASSERT_NE(full.sign, 0);
  EXPECT_NEAR(full.log_abs, reduced.log_abs + cond.log_abs_det_elim, 1e-7);
  EXPECT_EQ(full.sign, reduced.sign * cond.det_sign_elim);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSymmetry, SchurTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Bool()));

TEST(Schur, ComplementIndices) {
  const std::vector<int> t = {1, 3};
  const auto keep = complement_indices(5, t);
  EXPECT_EQ(keep, (std::vector<int>{0, 2, 4}));
  EXPECT_THROW((void)complement_indices(3, std::vector<int>{3}),
               InvalidArgument);
  EXPECT_THROW((void)complement_indices(5, std::vector<int>{1, 1}),
               InvalidArgument);
}

TEST(Schur, EmptyEliminationIsGather) {
  RandomStream rng(30);
  const Matrix l = random_psd(4, 4, rng);
  const auto result = condition_ensemble(l, {}, true);
  EXPECT_EQ(result.reduced.rows(), 4u);
  EXPECT_DOUBLE_EQ(result.log_abs_det_elim, 0.0);
}

TEST(Schur, ConditioningOnNullEventThrows) {
  // Rank-1 PSD matrix: conditioning on two elements is a null event.
  Matrix l(2, 2);
  l(0, 0) = 1.0;
  l(0, 1) = 1.0;
  l(1, 0) = 1.0;
  l(1, 1) = 1.0;
  const std::vector<int> t = {0, 1};
  EXPECT_THROW((void)schur_complement(l, {}, t, true), NumericalError);
}

// ---- Factories ----

TEST(Factory, RbfKernelIsPsd) {
  RandomStream rng(31);
  const Matrix pts = random_points(10, 2, rng);
  const Matrix k = rbf_kernel(pts, 0.4);
  EXPECT_TRUE(is_psd(k));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(k(i, i), 1.0);
}

TEST(Factory, OrthonormalColumns) {
  RandomStream rng(32);
  const Matrix v = random_orthonormal(8, 4, rng);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 8; ++i) dot += v(i, a) * v(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Factory, KernelWithSpectrum) {
  RandomStream rng(33);
  const std::vector<double> spectrum = {0.1, 0.5, 0.9, 2.0};
  const Matrix k = kernel_with_spectrum(spectrum, rng);
  EXPECT_TRUE(k.is_symmetric());
  EXPECT_NEAR(k.trace(), 3.5, 1e-9);
}

TEST(Factory, RandomPartitionCoversAllParts) {
  RandomStream rng(34);
  const auto part = random_partition(20, 3, rng);
  std::vector<int> counts(3, 0);
  for (const int p : part) ++counts[static_cast<std::size_t>(p)];
  for (const int c : counts) EXPECT_GE(c, 1);
}

// ---- incremental Cholesky (shared-prefix batch queries) ----

TEST(IncrementalCholesky, AppendMatchesFromScratch) {
  RandomStream rng(41);
  const Matrix a = random_psd(7, 7, rng, 1e-2);
  IncrementalCholesky inc(7);
  std::vector<double> row;
  for (std::size_t r = 0; r < 7; ++r) {
    row.resize(r + 1);
    for (std::size_t c = 0; c <= r; ++c) row[c] = a(r, c);
    ASSERT_TRUE(inc.append(row));
  }
  const auto full = cholesky(a);
  ASSERT_TRUE(full.has_value());
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(inc.entry(i, j), full->lower()(i, j));
  EXPECT_NEAR(inc.log_det(), full->log_det(), 1e-12);
}

TEST(IncrementalCholesky, TruncateRestoresSharedPrefix) {
  RandomStream rng(42);
  const Matrix a = random_psd(6, 6, rng, 1e-2);
  IncrementalCholesky inc(6);
  std::vector<double> row;
  const auto append_row = [&](const Matrix& m, std::size_t r,
                              std::span<const int> idx) {
    row.resize(r + 1);
    for (std::size_t c = 0; c <= r; ++c)
      row[c] = m(static_cast<std::size_t>(idx[r]),
                 static_cast<std::size_t>(idx[c]));
    return inc.append(row);
  };
  // Factor prefix {0, 2} then extend to {0, 2, 4}; truncate back and
  // extend to {0, 2, 5} — the prefix factor must be reused exactly.
  const std::vector<int> first = {0, 2, 4};
  for (std::size_t r = 0; r < 3; ++r) ASSERT_TRUE(append_row(a, r, first));
  const double log_det_first = inc.log_det();
  inc.truncate(2);
  const std::vector<int> second = {0, 2, 5};
  ASSERT_TRUE(append_row(a, 2, second));
  const auto direct_first = cholesky(a.principal(first));
  const auto direct_second = cholesky(a.principal(second));
  ASSERT_TRUE(direct_first.has_value() && direct_second.has_value());
  EXPECT_NEAR(log_det_first, direct_first->log_det(), 1e-12);
  EXPECT_NEAR(inc.log_det(), direct_second->log_det(), 1e-12);
}

TEST(IncrementalCholesky, RejectsNonPositiveDefiniteExtension) {
  // Appending a duplicate row makes the extension singular; the factor
  // must stay usable at its previous size.
  RandomStream rng(43);
  const Matrix a = random_psd(5, 5, rng, 1e-2);
  IncrementalCholesky inc;
  std::vector<double> row = {a(1, 1)};
  ASSERT_TRUE(inc.append(row));
  row = {a(1, 1), a(1, 1)};  // the same element twice: rank 1 block
  EXPECT_FALSE(inc.append(row));
  EXPECT_EQ(inc.size(), 1u);
  row = {a(3, 1), a(3, 3)};
  EXPECT_TRUE(inc.append(row));
  const std::vector<int> idx = {1, 3};
  const auto direct = cholesky(a.principal(idx));
  ASSERT_TRUE(direct.has_value());
  EXPECT_NEAR(inc.log_det(), direct->log_det(), 1e-12);
}

TEST(CholeskyUpdate, RankOneUpdateMatchesRefactorization) {
  RandomStream rng(44);
  const Matrix a = random_psd(6, 6, rng, 1e-2);
  RandomStream vec_rng(45);
  std::vector<double> v(6);
  for (double& x : v) x = vec_rng.uniform(-1.0, 1.0);
  Matrix updated = a;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) updated(i, j) += v[i] * v[j];
  auto factor = cholesky(a);
  ASSERT_TRUE(factor.has_value());
  Matrix lower = factor->lower();
  cholesky_update(lower, v);
  const auto direct = cholesky(updated);
  ASSERT_TRUE(direct.has_value());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_NEAR(lower(i, j), direct->lower()(i, j), 1e-10);
}

TEST(CholeskyDowndate, RankOneDowndateMatchesRefactorization) {
  RandomStream rng(48);
  const Matrix base = random_psd(6, 6, rng, 1e-2);
  RandomStream vec_rng(49);
  std::vector<double> v(6);
  for (double& x : v) x = vec_rng.uniform(-0.3, 0.3);
  // A = base + vv^T is safely PD and A - vv^T = base stays PD, so the
  // downdate must land on base's factor.
  Matrix a = base;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) a(i, j) += v[i] * v[j];
  auto factor = cholesky(a);
  ASSERT_TRUE(factor.has_value());
  Matrix lower = factor->lower();
  std::vector<double> w = v;  // consumed in place
  ASSERT_TRUE(cholesky_downdate(lower, w));
  const auto direct = cholesky(base);
  ASSERT_TRUE(direct.has_value());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_NEAR(lower(i, j), direct->lower()(i, j), 1e-10);
}

TEST(CholeskyDowndate, RejectsDowndateToIndefiniteAndLeavesFactorIntact) {
  RandomStream rng(50);
  const Matrix a = random_psd(5, 5, rng, 1e-2);
  auto factor = cholesky(a);
  ASSERT_TRUE(factor.has_value());
  const Matrix original = factor->lower();
  Matrix lower = original;
  // Removing 2x the leading basis direction drives A - vv^T indefinite:
  // the pre-mutation guard must reject before touching the factor.
  std::vector<double> v(5, 0.0);
  v[0] = 2.0 * std::sqrt(a(0, 0));
  EXPECT_FALSE(cholesky_downdate(lower, v));
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(lower(i, j), original(i, j));
}

TEST(CholeskyDowndate, RejectsZeroPivotDowndate) {
  // Downdating I by a unit basis vector zeroes the leading pivot
  // exactly: 1 - ||L^{-1}v||^2 = 0 fails the strict tolerance gate and
  // the factor must be left untouched (the guard runs pre-mutation).
  Matrix lower = Matrix::identity(3);
  std::vector<double> v = {1.0, 0.0, 0.0};
  EXPECT_FALSE(cholesky_downdate(lower, v));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(lower(i, j), i == j ? 1.0 : 0.0);
}

TEST(CholeskyDowndate, NearSingularDowndateStaysAccurate) {
  // Downdate that leaves a tiny but genuinely positive pivot: the sweep
  // must neither reject it nor lose the small remaining mass.
  const double eps = 1e-8;
  Matrix lower = Matrix::identity(2);
  std::vector<double> v = {std::sqrt(1.0 - eps), 0.0};
  ASSERT_TRUE(cholesky_downdate(lower, v));
  // I - vv^T = diag(eps, 1): the reconstructed product must hit it.
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < 2; ++c) acc += lower(i, c) * lower(j, c);
      const double want = i != j ? 0.0 : (i == 0 ? eps : 1.0);
      EXPECT_NEAR(acc, want, 1e-15 + 1e-10 * want);
    }
}

TEST(CholeskyDowndate, UpdateDowndateRoundTripDriftFuzz) {
  // Accumulated-drift fuzz: long alternating sequences of rank-1 updates
  // followed by their exact downdates must return to the from-scratch
  // factor of the original matrix to 1e-10 — the bound the commit path's
  // forced-refactorization convention (DESIGN.md §2) budgets for.
  RandomStream rng(51);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_index(5));
    const Matrix a = random_psd(n, n, rng, 1e-2);
    auto factor = cholesky(a);
    ASSERT_TRUE(factor.has_value());
    Matrix lower = factor->lower();
    std::vector<std::vector<double>> vs;
    for (int round = 0; round < 12; ++round) {
      std::vector<double> v(n);
      for (double& x : v) x = rng.uniform(-0.5, 0.5);
      vs.push_back(v);
      cholesky_update(lower, v);
    }
    // Downdate in reverse order of the updates.
    for (std::size_t r = vs.size(); r-- > 0;) {
      std::vector<double> w = vs[r];
      ASSERT_TRUE(cholesky_downdate(lower, w));
    }
    const auto direct = cholesky(a);
    ASSERT_TRUE(direct.has_value());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j <= i; ++j)
        EXPECT_NEAR(lower(i, j), direct->lower()(i, j), 1e-10)
            << "trial " << trial << " (" << i << "," << j << ")";
  }
}

TEST(SchurComplement, IncrementalMatchesFromScratch) {
  RandomStream rng(46);
  const Matrix m = random_psd(9, 9, rng, 1e-2);
  const std::vector<int> elim = {1, 4, 7};
  const auto keep = complement_indices(9, elim);
  IncrementalCholesky chol(3);
  std::vector<double> row;
  for (std::size_t r = 0; r < elim.size(); ++r) {
    row.resize(r + 1);
    for (std::size_t c = 0; c <= r; ++c)
      row[c] = m(static_cast<std::size_t>(elim[r]),
                 static_cast<std::size_t>(elim[c]));
    ASSERT_TRUE(chol.append(row));
  }
  std::vector<double> scratch;
  Matrix reduced;
  schur_complement_sym_into(m, keep, elim, chol, scratch, reduced);
  const auto reference = schur_complement(m, keep, elim, /*symmetric=*/true);
  ASSERT_EQ(reduced.rows(), reference.reduced.rows());
  for (std::size_t i = 0; i < reduced.rows(); ++i)
    for (std::size_t j = 0; j < reduced.cols(); ++j)
      EXPECT_NEAR(reduced(i, j), reference.reduced(i, j), 1e-11);
  EXPECT_NEAR(chol.log_det(), reference.log_abs_det_elim, 1e-11);
}

}  // namespace
}  // namespace pardpp
