#include "dpp/symmetric_oracle.h"

#include <cmath>

#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/schur.h"
#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp {

namespace {
// Clamps roundoff-level eigenvalues to exact zeros.
void clamp_spectrum(std::vector<double>& lambda) {
  double top = 0.0;
  for (const double v : lambda) top = std::max(top, v);
  const double floor = top * 1e-12 * static_cast<double>(lambda.size());
  for (double& v : lambda) {
    if (v < floor) v = 0.0;
  }
}
}  // namespace

SymmetricKdppOracle::SymmetricKdppOracle(Matrix l, std::size_t k,
                                         bool validate)
    : l_(std::move(l)), k_(k) {
  check_arg(l_.square(), "SymmetricKdppOracle: matrix not square");
  check_arg(k_ <= l_.rows(), "SymmetricKdppOracle: k exceeds ground size");
  if (validate) validate_ensemble(l_, /*symmetric=*/true);
}

const SymmetricEigen& SymmetricKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = symmetric_eigen(l_);
  return *eigen_;
}

const LogEspTable& SymmetricKdppOracle::esp() const {
  if (!esp_.has_value()) {
    // Clamp roundoff-level eigenvalues to exact zeros so rank deficiency
    // is detected (e_k of a rank-r spectrum must vanish for k > r).
    std::vector<double> lambda = eigen().values;
    clamp_spectrum(lambda);
    esp_ = LogEspTable(lambda, k_);
  }
  return *esp_;
}

double SymmetricKdppOracle::log_partition() const { return esp().log_e(k_); }

std::vector<double> SymmetricKdppOracle::marginals() const {
  const std::size_t n = ground_size();
  std::vector<double> p(n, 0.0);
  if (k_ == 0 || n == 0) return p;
  const auto& eig = eigen();
  const auto& table = esp();
  const double log_z = table.log_e(k_);
  check_numeric(log_z != kNegInf,
                "SymmetricKdppOracle: partition function is zero "
                "(rank of L below k)");
  // p_i = sum_m w_m V_im^2 with w_m = lambda_m e_{k-1}(lambda \ m) / e_k.
  // The weights are probabilities of eigenvector selection (they sum to
  // k), so the accumulation is safe in linear domain.
  std::vector<double> w(n, 0.0);
  for (std::size_t m = 0; m < n; ++m) {
    const double lambda = eig.values[m];
    if (lambda <= 0.0) continue;
    const double log_w =
        std::log(lambda) + table.log_e_without(m, k_ - 1) - log_z;
    w[m] = std::exp(log_w);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      const double v = eig.vectors(i, m);
      acc += w[m] * v * v;
    }
    p[i] = std::min(acc, 1.0);
  }
  return p;
}

double SymmetricKdppOracle::log_joint_marginal(std::span<const int> t) const {
  const std::size_t tsize = t.size();
  if (tsize > k_) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T): zero (or numerically non-PD) blocks mean P[T ⊆ S] = 0.
  const Matrix lt = l_.principal(t);
  const auto chol_t = cholesky(lt);
  if (!chol_t.has_value()) return kNegInf;
  const double log_det_t = chol_t->log_det();
  if (tsize == k_) return log_det_t - log_partition();
  // e_{k-t} of the conditional ensemble's spectrum.
  const auto keep = complement_indices(l_.rows(), t);
  const auto schur = schur_complement(l_, keep, t, /*symmetric=*/true);
  auto lambda = symmetric_eigenvalues(schur.reduced);
  clamp_spectrum(lambda);
  const auto log_e = log_esp(lambda, k_ - tsize);
  const double tail = log_e[k_ - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_partition();
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  const auto result = condition_ensemble(l_, t, /*symmetric=*/true);
  return std::make_unique<SymmetricKdppOracle>(result.reduced, k_ - t.size(),
                                               /*validate=*/false);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::clone() const {
  return std::make_unique<SymmetricKdppOracle>(l_, k_, /*validate=*/false);
}

void SymmetricKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
}

}  // namespace pardpp
