// Unit tests for the support layer: log-domain arithmetic, random streams,
// combinatorics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/combinatorics.h"
#include "support/error.h"
#include "support/logsum.h"
#include "support/random.h"

namespace pardpp {
namespace {

TEST(LogSum, LogAddMatchesDirect) {
  EXPECT_NEAR(log_add(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(log_add(std::log(1e-8), std::log(1e8)), std::log(1e8 + 1e-8),
              1e-12);
}

TEST(LogSum, LogAddWithNegInf) {
  EXPECT_DOUBLE_EQ(log_add(kNegInf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add(1.5, kNegInf), 1.5);
  EXPECT_DOUBLE_EQ(log_add(kNegInf, kNegInf), kNegInf);
}

TEST(LogSum, LogSubMatchesDirect) {
  EXPECT_NEAR(log_sub(std::log(5.0), std::log(3.0)), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(log_sub(1.0, 1.0), kNegInf);
  EXPECT_DOUBLE_EQ(log_sub(2.0, kNegInf), 2.0);
}

TEST(LogSum, LogSumExpExtremeRange) {
  const std::vector<double> values = {-1000.0, 0.0, -1e9};
  EXPECT_NEAR(logsumexp(values), std::log(1.0 + std::exp(-1000.0)), 1e-12);
}

TEST(LogSum, LogSumExpEmptyAndAllNegInf) {
  EXPECT_DOUBLE_EQ(logsumexp(std::vector<double>{}), kNegInf);
  EXPECT_DOUBLE_EQ(logsumexp(std::vector<double>{kNegInf, kNegInf}), kNegInf);
}

TEST(Random, UniformInRange) {
  RandomStream rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, Deterministic) {
  RandomStream a(7);
  RandomStream b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, SplitStreamsDiffer) {
  RandomStream parent(7);
  RandomStream child1 = parent.split();
  RandomStream child2 = parent.split();
  int agreements = 0;
  for (int i = 0; i < 64; ++i)
    agreements += (child1.next_u64() == child2.next_u64());
  EXPECT_EQ(agreements, 0);
}

TEST(Random, UniformIndexBounds) {
  RandomStream rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Random, CategoricalFrequencies) {
  RandomStream rng(11);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> counts(4, 0.0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) counts[rng.categorical(weights)] += 1.0;
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(counts[j] / trials, weights[j] / 10.0, 0.02);
  }
}

TEST(Random, CategoricalRejectsInvalid) {
  RandomStream rng(1);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{0.0, 0.0}),
               InvalidArgument);
  EXPECT_THROW((void)rng.categorical(std::vector<double>{1.0, -0.5}),
               InvalidArgument);
}

TEST(Random, NormalMoments) {
  RandomStream rng(13);
  double sum = 0.0;
  double sum2 = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sum2 / trials, 1.0, 0.05);
}

TEST(Combinatorics, LogBinomialMatchesExact) {
  EXPECT_NEAR(std::exp(log_binomial(10, 4)), 210.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(5, 0)), 1.0, 1e-12);
  EXPECT_EQ(log_binomial(4, 6), kNegInf);
}

TEST(Combinatorics, ForEachSubsetCount) {
  int count = 0;
  for_each_subset(7, 3, [&](std::span<const int> s) {
    EXPECT_EQ(s.size(), 3u);
    ++count;
  });
  EXPECT_EQ(count, 35);
}

TEST(Combinatorics, ForEachSubsetEdgeCases) {
  int count = 0;
  for_each_subset(5, 0, [&](std::span<const int> s) {
    EXPECT_TRUE(s.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  for_each_subset(3, 5, [&](std::span<const int>) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Combinatorics, SubsetIndexerRoundTrip) {
  const SubsetIndexer indexer(9, 4);
  EXPECT_EQ(indexer.count(), 126u);
  for (std::size_t r = 0; r < indexer.count(); ++r) {
    const auto subset = indexer.unrank(r);
    EXPECT_EQ(indexer.rank(subset), r);
  }
}

TEST(Combinatorics, SubsetIndexerLexOrder) {
  const SubsetIndexer indexer(5, 2);
  std::size_t expected = 0;
  for_each_subset(5, 2, [&](std::span<const int> s) {
    EXPECT_EQ(indexer.rank(s), expected);
    ++expected;
  });
}

TEST(Error, CheckThrowsTypedExceptions) {
  EXPECT_THROW(check_arg(false, "bad arg"), InvalidArgument);
  EXPECT_THROW(check_numeric(false, "bad numeric"), NumericalError);
  EXPECT_THROW(check(false, "bad"), Error);
  EXPECT_NO_THROW(check_arg(true, "fine"));
}

TEST(Error, MessageContainsLocation) {
  try {
    check_arg(false, "special-marker");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("special-marker"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_support.cpp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace pardpp
