#include "dpp/symmetric_oracle.h"

#include <cmath>

#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/schur.h"
#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp {

SymmetricKdppOracle::SymmetricKdppOracle(Matrix l, std::size_t k,
                                         bool validate)
    : l_(std::move(l)), k_(k) {
  check_arg(l_.square(), "SymmetricKdppOracle: matrix not square");
  check_arg(k_ <= l_.rows(), "SymmetricKdppOracle: k exceeds ground size");
  if (validate) validate_ensemble(l_, /*symmetric=*/true);
}

const SymmetricEigen& SymmetricKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = symmetric_eigen(l_);
  return *eigen_;
}

const LogEspTable& SymmetricKdppOracle::esp() const {
  if (!esp_.has_value()) {
    // Clamp roundoff-level eigenvalues to exact zeros so rank deficiency
    // is detected (e_k of a rank-r spectrum must vanish for k > r).
    std::vector<double> lambda = eigen().values;
    clamp_spectrum_to_rank(lambda);
    esp_ = LogEspTable(lambda, k_);
  }
  return *esp_;
}

double SymmetricKdppOracle::log_partition() const { return esp().log_e(k_); }

const std::vector<double>& SymmetricKdppOracle::marginal_cache() const {
  if (!marginals_.has_value()) {
    const std::size_t n = ground_size();
    std::vector<double> p(n, 0.0);
    if (k_ != 0 && n != 0) {
      const auto& eig = eigen();
      const auto& table = esp();
      const double log_z = table.log_e(k_);
      check_numeric(log_z != kNegInf,
                    "SymmetricKdppOracle: partition function is zero "
                    "(rank of L below k)");
      // p_i = sum_m w_m V_im^2 with w_m = lambda_m e_{k-1}(lambda \ m) /
      // e_k. The weights are probabilities of eigenvector selection (they
      // sum to k), so the accumulation is safe in linear domain.
      std::vector<double> w(n, 0.0);
      for (std::size_t m = 0; m < n; ++m) {
        const double lambda = eig.values[m];
        if (lambda <= 0.0) continue;
        const double log_w =
            std::log(lambda) + table.log_e_without(m, k_ - 1) - log_z;
        w[m] = std::exp(log_w);
      }
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t m = 0; m < n; ++m) {
          const double v = eig.vectors(i, m);
          acc += w[m] * v * v;
        }
        p[i] = std::min(acc, 1.0);
      }
    }
    marginals_ = std::move(p);
  }
  return *marginals_;
}

const std::vector<double>& SymmetricKdppOracle::log_marginal_cache() const {
  if (!log_marginals_.has_value()) {
    const auto& p = marginal_cache();
    std::vector<double> lp(p.size(), kNegInf);
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p[i] > 0.0) lp[i] = std::log(p[i]);
    log_marginals_ = std::move(lp);
  }
  return *log_marginals_;
}

std::vector<double> SymmetricKdppOracle::marginals() const {
  return marginal_cache();
}

double SymmetricKdppOracle::log_joint_marginal(std::span<const int> t) const {
  const std::size_t tsize = t.size();
  if (tsize > k_) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T): zero (or numerically non-PD) blocks mean P[T ⊆ S] = 0.
  const Matrix lt = l_.principal(t);
  const auto chol_t = cholesky(lt);
  if (!chol_t.has_value()) return kNegInf;
  const double log_det_t = chol_t->log_det();
  if (tsize == k_) return log_det_t - log_partition();
  // e_{k-t} of the conditional ensemble's spectrum.
  const auto keep = complement_indices(l_.rows(), t);
  const auto schur = schur_complement(l_, keep, t, /*symmetric=*/true);
  auto lambda = symmetric_eigenvalues(schur.reduced);
  clamp_spectrum_to_rank(lambda);
  const auto log_e = log_esp(lambda, k_ - tsize);
  const double tail = log_e[k_ - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_partition();
}

// Wave-scoped incremental query evaluator (oracle.h): answers each query
// against the shared prefix already folded into this oracle, extending by
// the proposal batch with an incrementally grown Cholesky factor and a
// scratch-reusing Schur complement. Singleton extensions short-circuit to
// the cached leave-one-out ESP marginals — no factorization at all.
class SymmetricKdppOracle::State final : public ConditionalState {
 public:
  explicit State(const SymmetricKdppOracle& oracle)
      : o_(oracle), chol_(oracle.sample_size()) {}

  [[nodiscard]] double log_joint(std::span<const int> t) override {
    const std::size_t tsize = t.size();
    const std::size_t n = o_.ground_size();
    if (tsize > o_.k_) return kNegInf;
    if (tsize == 0) return 0.0;
    for (const int i : t)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "log_joint: index out of range");
    if (tsize == 1 && o_.log_partition() != kNegInf)
      return o_.log_marginal_cache()[static_cast<std::size_t>(t[0])];
    // Incremental Cholesky of L_T, one bordered row per element; a
    // non-PD extension means P[T ⊆ S] = 0 (duplicates land here too).
    // The threshold is seeded with the whole block's largest diagonal so
    // the singularity verdict matches the from-scratch cholesky(L_T)
    // exactly, independent of the batch's element order.
    double max_diag = 0.0;
    for (const int i : t)
      max_diag = std::max(max_diag, std::abs(o_.l_(static_cast<std::size_t>(i),
                                                   static_cast<std::size_t>(i))));
    chol_.clear(max_diag);
    row_.resize(tsize);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto tr = static_cast<std::size_t>(t[r]);
      for (std::size_t c = 0; c <= r; ++c)
        row_[c] = o_.l_(tr, static_cast<std::size_t>(t[c]));
      if (!chol_.append(std::span<const double>(row_.data(), r + 1)))
        return kNegInf;
    }
    const double log_det_t = chol_.log_det();
    if (tsize == o_.k_) return log_det_t - o_.log_partition();
    // e_{k-t} of the conditional spectrum, via the already-built factor.
    complement_into(t, n);
    schur_complement_sym_into(o_.l_, keep_, t, chol_, y_, reduced_);
    lambda_ = symmetric_eigenvalues(reduced_);
    clamp_spectrum_to_rank(lambda_);
    const auto log_e = log_esp(lambda_, o_.k_ - tsize);
    const double tail = log_e[o_.k_ - tsize];
    if (tail == kNegInf) return kNegInf;
    return log_det_t + tail - o_.log_partition();
  }

 private:
  // complement_indices into reused storage (t is distinct by the time the
  // Cholesky of L_T succeeded).
  void complement_into(std::span<const int> t, std::size_t n) {
    mask_.assign(n, 0);
    for (const int i : t) mask_[static_cast<std::size_t>(i)] = 1;
    keep_.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) keep_.push_back(static_cast<int>(i));
  }

  const SymmetricKdppOracle& o_;
  IncrementalCholesky chol_;
  std::vector<double> row_;
  std::vector<char> mask_;
  std::vector<int> keep_;
  std::vector<double> y_;
  std::vector<double> lambda_;
  Matrix reduced_;
};

std::unique_ptr<ConditionalState> SymmetricKdppOracle::make_conditional_state()
    const {
  return std::make_unique<State>(*this);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  const auto result = condition_ensemble(l_, t, /*symmetric=*/true);
  return std::make_unique<SymmetricKdppOracle>(result.reduced, k_ - t.size(),
                                               /*validate=*/false);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::clone() const {
  return std::make_unique<SymmetricKdppOracle>(l_, k_, /*validate=*/false);
}

void SymmetricKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
  // Rank-deficient ensembles (e_k = 0) keep the degenerate from-scratch
  // semantics; marginals would throw, so only prime the feasible case.
  if (log_partition() != kNegInf) (void)log_marginal_cache();
}

}  // namespace pardpp
