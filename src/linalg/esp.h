// Elementary symmetric polynomials of nonnegative spectra, in log domain.
//
// For a symmetric PSD ensemble matrix L with eigenvalues lambda, the k-DPP
// partition function is e_k(lambda) and joint/singleton marginals reduce to
// ratios of e_j's, including "leave-one-out" values e_j(lambda \ m). These
// quantities overflow double at tiny problem sizes, so everything here is
// carried as logarithms and combined with log_add.
#pragma once

#include <span>
#include <vector>

#include "support/logsum.h"

namespace pardpp {

/// Returns {log e_0, ..., log e_jmax} of the nonnegative values `lambda`
/// (negative inputs are clamped to zero — they only arise as roundoff on
/// PSD spectra). e_0 = 1 by convention.
[[nodiscard]] std::vector<double> log_esp(std::span<const double> lambda,
                                          std::size_t jmax);

/// Prefix/suffix table of log elementary symmetric polynomials supporting
/// leave-one-out queries, the standard device behind k-DPP marginals:
/// P[i in S] = sum_m lambda_m V_im^2 e_{k-1}(lambda \ m) / e_k(lambda).
class LogEspTable {
 public:
  /// Builds the table for queries with j <= jmax.
  LogEspTable(std::span<const double> lambda, std::size_t jmax);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t jmax() const noexcept { return jmax_; }

  /// log e_j over the full value set.
  [[nodiscard]] double log_e(std::size_t j) const;

  /// log e_j(lambda \ {m}).
  [[nodiscard]] double log_e_without(std::size_t m, std::size_t j) const;

 private:
  std::size_t n_;
  std::size_t jmax_;
  // prefix_[m] = log esp of lambda[0..m) (row length jmax+1);
  // suffix_[m] = log esp of lambda[m..n).
  std::vector<std::vector<double>> prefix_;
  std::vector<std::vector<double>> suffix_;
};

}  // namespace pardpp
