#include "sampling/filtering.h"

#include <algorithm>
#include <cmath>

#include "distributions/oracle.h"
#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/schur.h"
#include "linalg/symmetric_eigen.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// One speculative Bernoulli-product proposal of the Lemma 44 rejection
// stage, fully evaluated on machine m's private stream: the proposal, its
// det(L_T) query, and the accept draw. Counter deltas are recorded per
// trial and folded in machine order so diagnostics match the acceptance
// scan.
struct BernoulliTrial {
  std::vector<int> batch;
  bool size_overflow = false;
  bool null_target = false;   // det(L_T) = 0: certain rejection
  bool ratio_overflow = false;
  bool oracle_called = false;
  bool accepted = false;
};

}  // namespace

SampleResult sample_small_dpp_bernoulli(const Matrix& kernel,
                                        RandomStream& rng,
                                        const ExecutionContext& ctx,
                                        const FilteringOptions& options) {
  const std::size_t n = kernel.rows();
  check_arg(kernel.square() && kernel.is_symmetric(1e-8),
            "sample_small_dpp_bernoulli: kernel not symmetric");
  SampleResult result;
  if (n == 0) return result;

  // Spectrum of K: needed for det(I - K) and L = K(I-K)^{-1}.
  const auto eig = symmetric_eigen(kernel);
  double log_det_i_minus_k = 0.0;
  for (const double lambda : eig.values) {
    check_numeric(lambda < 1.0 - 1e-12 && lambda > -1e-8,
                  "sample_small_dpp_bernoulli: kernel eigenvalue outside "
                  "[0, 1)");
    log_det_i_minus_k += std::log1p(-std::max(lambda, 0.0));
  }
  const Matrix l = ensemble_from_kernel(kernel);

  std::vector<double> p(n);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::clamp(kernel(i, i), 0.0, 1.0 - 1e-12);
    trace += p[i];
  }
  const std::size_t size_cap =
      options.size_cap != 0
          ? options.size_cap
          : static_cast<std::size_t>(
                std::ceil((trace + std::sqrt(static_cast<double>(n))) *
                              std::log(4.0 / options.eps) * 3.0 +
                          4.0));

  const double machines_needed =
      std::exp(options.log_ratio_cap) * std::log(4.0 / options.eps) * 4.0 +
      16.0;
  const auto machines = static_cast<std::size_t>(
      std::min(machines_needed, static_cast<double>(options.machine_cap)));

  const bool found = run_trial_waves<BernoulliTrial>(
      ctx, machines, rng,
      // Evaluate: one full proposal per machine — Bernoulli draws,
      // det(L_T) query, and accept draw, all on the machine's stream.
      [&](BernoulliTrial& trial, RandomStream stream) {
        double log_proposal = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (stream.bernoulli(p[i])) {
            trial.batch.push_back(static_cast<int>(i));
            log_proposal += std::log(std::max(p[i], 1e-300));
          } else {
            log_proposal += std::log1p(-p[i]);
          }
        }
        if (trial.batch.size() > size_cap) {
          trial.size_overflow = true;  // outside Omega: size overflow
          return;
        }
        // ratio = det(L_T) det(I - K) / proposal mass.
        double log_target = log_det_i_minus_k;
        if (!trial.batch.empty()) {
          const auto chol = cholesky(l.principal(trial.batch));
          trial.oracle_called = true;
          if (!chol.has_value()) {
            trial.null_target = true;
            return;
          }
          log_target += chol->log_det();
        }
        const double log_ratio = log_target - log_proposal;
        if (log_ratio > options.log_ratio_cap + 1e-9) {
          trial.ratio_overflow = true;
          return;
        }
        trial.accepted =
            stream.bernoulli(std::exp(log_ratio - options.log_ratio_cap));
      },
      [](std::span<BernoulliTrial>) {},
      // Fold: counters cover scanned trials only, so diagnostics are
      // identical at every pool size.
      [&](BernoulliTrial& trial) {
        ++result.diag.proposals;
        if (trial.oracle_called) ++result.diag.oracle_calls;
        if (trial.size_overflow) {
          ++result.diag.duplicate_rejects;
          return false;
        }
        if (trial.null_target) return false;
        if (trial.ratio_overflow) {
          ++result.diag.ratio_overflows;
          return false;
        }
        if (trial.accepted) {
          ++result.diag.accepted_batches;
          result.items = std::move(trial.batch);
          return true;
        }
        return false;
      });
  if (found) {
    ctx.charge(machines, result.diag.oracle_calls);
    result.diag.rounds = 1;
    if (ctx.ledger() != nullptr) result.diag.pram = ctx.ledger()->stats();
    return result;
  }
  throw SamplingFailure(
      "sample_small_dpp_bernoulli: no proposal accepted within the machine "
      "budget");
}

SampleResult sample_filtering_dpp(const Matrix& l, RandomStream& rng,
                                  const ExecutionContext& ctx,
                                  const FilteringOptions& options) {
  check_arg(l.square() && l.is_symmetric(1e-8),
            "sample_filtering_dpp: ensemble not symmetric");
  const std::size_t n = l.rows();
  SampleResult result;
  if (n == 0) return result;

  Matrix kernel = marginal_kernel(l);
  double sigma = options.sigma;
  if (sigma <= 0.0) sigma = spectral_norm_symmetric(kernel);
  sigma = std::max(sigma, 1e-12);
  const double alpha = 1.0 / (sigma * std::sqrt(static_cast<double>(n)));

  if (alpha > 1.0) {
    // Step (1) of Algorithm 4: the kernel is already small enough.
    auto out = sample_small_dpp_bernoulli(kernel, rng, ctx, options);
    result.items = std::move(out.items);
    result.diag = out.diag;
    return result;
  }

  const auto rounds = static_cast<std::size_t>(std::ceil(
      options.round_multiplier *
      std::log(static_cast<double>(n) / options.eps) / alpha));
  Matrix current_l = l;
  IndexTracker tracker(n);
  FilteringOptions small_options = options;
  small_options.eps =
      std::max(options.eps / static_cast<double>(rounds + 1), 1e-9);

  // Long-lived conditioning state for the round loop (DESIGN.md §2
  // convention 7): the scaled ensemble is conditioned in place via the
  // incremental factor + half-solve Schur on persistent scratch, instead
  // of a fresh Cholesky/solve/gather per accepted round.
  IncrementalCholesky chol;
  std::vector<double> y_scratch;
  std::vector<int> keep_scratch;
  Matrix reduced;

  for (std::size_t round = 0; round < rounds; ++round) {
    const Matrix k_i = marginal_kernel(current_l);
    Matrix small_kernel = k_i;
    small_kernel *= alpha;
    auto step = sample_small_dpp_bernoulli(small_kernel, rng,
                                           ctx.without_ledger(), small_options);
    result.diag.proposals += step.diag.proposals;
    result.diag.oracle_calls += step.diag.oracle_calls;
    result.diag.ratio_overflows += step.diag.ratio_overflows;
    result.diag.duplicate_rejects += step.diag.duplicate_rejects;
    result.diag.accepted_batches += step.diag.accepted_batches;
    result.diag.rounds += 1;
    ctx.charge(std::max<std::size_t>(step.diag.proposals, 1),
               step.diag.oracle_calls);

    // L^{(i+1)} = ((1 - alpha) L^{(i)})^{T_i}.
    current_l *= (1.0 - alpha);
    if (!step.items.empty()) {
      for (const int b : step.items) result.items.push_back(tracker.original(b));
      condition_ensemble_sym_into(current_l, step.items, chol, y_scratch,
                                  keep_scratch, reduced);
      std::swap(current_l, reduced);
      tracker.remove(std::move(step.items));
    }
  }
  std::sort(result.items.begin(), result.items.end());
  if (ctx.ledger() != nullptr) result.diag.pram = ctx.ledger()->stats();
  return result;
}

SampleResult sample_small_dpp_bernoulli(const Matrix& kernel,
                                        RandomStream& rng, PramLedger* ledger,
                                        const FilteringOptions& options) {
  return sample_small_dpp_bernoulli(kernel, rng,
                                    ExecutionContext::serial(ledger), options);
}

SampleResult sample_filtering_dpp(const Matrix& l, RandomStream& rng,
                                  PramLedger* ledger,
                                  const FilteringOptions& options) {
  return sample_filtering_dpp(l, rng, ExecutionContext::serial(ledger),
                              options);
}

}  // namespace pardpp
