// The classic sequential sampling-to-counting reduction [JVV86] (paper §1).
//
// Pick the k elements one at a time: in each round draw one element from
// the conditional singleton marginals (one parallel round of counting
// queries), commit it, repeat. Depth Theta(k) — the baseline every
// parallel sampler in this library is measured against.
//
// The round loop runs on one long-lived CommittedOracle (DESIGN.md §2
// convention 7): the accepted element is folded into the state in place
// (`commit`), so per-round preprocessing is the family's incremental
// update instead of a from-scratch conditioned oracle. The per-round draw
// goes through `CountingOracle::draw_marginal`, whose protocol is exact
// for every family; spectral families answer it by the two-stage mixture
// draw and never materialize the marginal vector.
#pragma once

#include "distributions/oracle.h"
#include "parallel/pram.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

/// Exact sample from the oracle's distribution; depth = k rounds.
[[nodiscard]] SampleResult sample_sequential(const CountingOracle& mu,
                                             RandomStream& rng,
                                             PramLedger* ledger = nullptr);

/// Core loop on a caller-provided commit-path state (must be at its base
/// distribution, i.e. freshly created or reset()). SamplerSession uses
/// this to amortize one state — and the base oracle's preprocessing —
/// across many draws.
[[nodiscard]] SampleResult sample_sequential_on(CommittedOracle& state,
                                                RandomStream& rng,
                                                PramLedger* ledger = nullptr);

}  // namespace pardpp
