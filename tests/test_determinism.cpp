// The ExecutionContext determinism contract: a fixed seed yields the
// byte-identical sample at every pool size, because each logical machine
// draws from a stream forked by index (execution.h conventions), and the
// accepted trial is the lowest-index acceptance regardless of how waves
// land on workers. Plus ThreadSanitizer-targeted stress of parallel_for
// through the batch-oracle path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "distributions/product.h"
#include "dpp/ensemble.h"
#include "dpp/general_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "parallel/execution.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "sampling/batched.h"
#include "sampling/entropic.h"
#include "sampling/filtering.h"
#include "sampling/rejection.h"
#include "support/random.h"

namespace pardpp {
namespace {

std::vector<std::size_t> pool_sizes() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sizes = {1, 2};
  if (hw > 2) sizes.push_back(hw);
  return sizes;
}

TEST(Determinism, BatchedSamplerIdenticalAcrossPoolSizes) {
  RandomStream setup(7001);
  const Matrix l = random_psd(18, 18, setup, 1e-3);
  const SymmetricKdppOracle oracle(l, 6);
  std::vector<std::vector<int>> per_pool;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    std::vector<int> combined;
    RandomStream rng(99);  // one seed, several consecutive samples
    for (int s = 0; s < 4; ++s) {
      const auto result = sample_batched(oracle, rng, ctx);
      combined.insert(combined.end(), result.items.begin(),
                      result.items.end());
    }
    per_pool.push_back(std::move(combined));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]) << "pool size index " << p;
}

TEST(Determinism, BatchedSamplerUniformOracleAcrossPoolSizes) {
  const UniformKSubsetOracle oracle(256, 64);
  std::vector<std::vector<int>> per_pool;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(1234);
    per_pool.push_back(sample_batched(oracle, rng, ctx).items);
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]);
}

TEST(Determinism, FilteringSamplerIdenticalAcrossPoolSizes) {
  RandomStream setup(7002);
  std::vector<double> spectrum(32);
  for (std::size_t i = 0; i < spectrum.size(); ++i)
    spectrum[i] = 0.4 * (0.2 + 0.8 * static_cast<double>(i) /
                                   static_cast<double>(spectrum.size() - 1));
  const Matrix kernel = kernel_with_spectrum(spectrum, setup);
  const Matrix l = ensemble_from_kernel(kernel);
  std::vector<std::vector<int>> per_pool;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(4321);
    per_pool.push_back(sample_filtering_dpp(l, rng, ctx).items);
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]);
}

TEST(Determinism, EntropicSamplerIdenticalAcrossPoolSizes) {
  RandomStream setup(7003);
  const Matrix l = random_psd(12, 12, setup, 1e-3);
  const GeneralDppOracle oracle(l, 4);
  std::vector<std::vector<int>> per_pool;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(777);
    per_pool.push_back(sample_entropic(oracle, rng, ctx).items);
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]);
}

TEST(Determinism, RejectionPrimitiveIdenticalAcrossPoolSizes) {
  const std::vector<double> target = {std::log(0.5), std::log(0.2),
                                      std::log(0.3)};
  const std::vector<double> proposal = {std::log(1.0 / 3), std::log(1.0 / 3),
                                        std::log(1.0 / 3)};
  const double cap = std::log(1.5) + 1e-9;
  std::vector<std::vector<std::size_t>> per_pool;
  for (const std::size_t threads : pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(31337);
    std::vector<std::size_t> values;
    for (int trial = 0; trial < 64; ++trial) {
      const auto out =
          rejection_sample_finite(target, proposal, cap, 200, rng, ctx);
      ASSERT_TRUE(out.value.has_value());
      values.push_back(*out.value);
    }
    per_pool.push_back(std::move(values));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]);
}

TEST(Determinism, MachineStreamsIndependentOfConsumptionOrder) {
  // stream(m) is a pure function of (round tag, m): reading machines out
  // of order, or only a subset, does not change any machine's draws.
  RandomStream a(5);
  RandomStream b(5);
  const MachineStreams forward(a);
  const MachineStreams backward(b);
  std::vector<std::uint64_t> fwd;
  for (std::size_t m = 0; m < 8; ++m)
    fwd.push_back(forward.stream(m).next_u64());
  std::vector<std::uint64_t> bwd(8);
  for (std::size_t m = 8; m-- > 0;)
    bwd[m] = backward.stream(m).next_u64();
  EXPECT_EQ(fwd, bwd);
  // And the parent advanced identically (one split) in both cases.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// ---- ThreadSanitizer-targeted stress ----

TEST(ParallelStress, QueryManyHammeredThroughParallelFor) {
  // Drives the batch-oracle path with a wide pool and many concurrent
  // query_many rounds; under TSan this flags any unsynchronized access to
  // the oracle's lazily built caches.
  RandomStream setup(7004);
  const Matrix l = random_psd(20, 20, setup, 1e-3);
  const SymmetricKdppOracle oracle(l, 5);
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool, nullptr);
  std::vector<std::vector<int>> query_storage;
  for (int a = 0; a < 20; ++a)
    for (int b = a + 1; b < 20; ++b) query_storage.push_back({a, b});
  const std::vector<std::span<const int>> queries(query_storage.begin(),
                                                  query_storage.end());
  std::vector<double> reference(queries.size());
  oracle.query_many(queries, reference, ExecutionContext::serial());
  for (int round = 0; round < 16; ++round) {
    std::vector<double> out(queries.size());
    oracle.query_many(queries, out, ctx);
    EXPECT_EQ(out, reference);
  }
}

TEST(ParallelStress, FreshOracleCachesPrimeOncePerClone) {
  // Every round of the batched sampler conditions into a *fresh* oracle
  // whose caches are cold; hammering whole runs on a wide pool exercises
  // prepare_concurrent priming before each fan-out.
  RandomStream setup(7005);
  const Matrix l = random_psd(16, 16, setup, 1e-3);
  const SymmetricKdppOracle oracle(l, 6);
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool, nullptr);
  for (int run = 0; run < 8; ++run) {
    RandomStream rng(9000 + static_cast<std::uint64_t>(run));
    const auto result = sample_batched(oracle, rng, ctx);
    EXPECT_EQ(result.items.size(), 6u);
  }
}

TEST(ParallelStress, NestedParallelForDegeneratesInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> bodies{0};
  parallel_for(pool, 0, 8, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // A nested round must run inline on the occupied worker: with both
    // workers blocked inside the outer round, re-submitting would
    // deadlock.
    parallel_for(pool, 0, 8, [&](std::size_t) { ++bodies; });
  });
  EXPECT_EQ(bodies.load(), 64);
  EXPECT_FALSE(in_parallel_region());
}

}  // namespace
}  // namespace pardpp
