// Elementary symmetric polynomials of nonnegative spectra, in log domain.
//
// For a symmetric PSD ensemble matrix L with eigenvalues lambda, the k-DPP
// partition function is e_k(lambda) and joint/singleton marginals reduce to
// ratios of e_j's, including "leave-one-out" values e_j(lambda \ m). These
// quantities overflow double at tiny problem sizes, so everything here is
// carried as logarithms and combined with log_add.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "support/logsum.h"

namespace pardpp {

/// Returns {log e_0, ..., log e_jmax} of the nonnegative values `lambda`
/// (negative inputs are clamped to zero — they only arise as roundoff on
/// PSD spectra). e_0 = 1 by convention.
[[nodiscard]] std::vector<double> log_esp(std::span<const double> lambda,
                                          std::size_t jmax);

/// Clamps roundoff-level eigenvalues to exact zeros, so rank deficiency
/// is detected by the ESP recurrence (e_j of a rank-r spectrum must
/// vanish for j > r). The floor is the single numerically load-bearing
/// tolerance of the determinantal oracles — every path that feeds a
/// conditional spectrum into log_esp must clamp with this one helper so
/// the incremental and from-scratch resolves agree on what counts as
/// zero.
inline void clamp_spectrum_to_rank(std::vector<double>& lambda) {
  double top = 0.0;
  for (const double v : lambda) top = std::max(top, v);
  const double floor = top * 1e-12 * static_cast<double>(lambda.size());
  for (double& v : lambda) {
    if (v < floor) v = 0.0;
  }
}

/// Prefix/suffix table of log elementary symmetric polynomials supporting
/// leave-one-out queries, the standard device behind k-DPP marginals:
/// P[i in S] = sum_m lambda_m V_im^2 e_{k-1}(lambda \ m) / e_k(lambda).
class LogEspTable {
 public:
  /// Builds the table for queries with j <= jmax.
  LogEspTable(std::span<const double> lambda, std::size_t jmax);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t jmax() const noexcept { return jmax_; }

  /// log e_j over the full value set.
  [[nodiscard]] double log_e(std::size_t j) const;

  /// log e_j(lambda \ {m}).
  [[nodiscard]] double log_e_without(std::size_t m, std::size_t j) const;

 private:
  std::size_t n_;
  std::size_t jmax_;
  // prefix_[m] = log esp of lambda[0..m) (row length jmax+1);
  // suffix_[m] = log esp of lambda[m..n).
  std::vector<std::vector<double>> prefix_;
  std::vector<std::vector<double>> suffix_;
};

/// Eigenmode selection weights of a k-DPP with spectrum `lambda`:
/// w_m = lambda_m e_{k-1}(lambda \ m) / e_k(lambda), written into `w`
/// (resized to lambda.size()). The w_m are the probabilities that
/// eigenvector m participates in the sample's projection mixture — they
/// sum to k, and p_i = sum_m w_m V_im^2 recovers the singleton marginals.
/// `table` must be the LogEspTable of `lambda` with jmax >= k, and
/// e_k(lambda) must be nonzero.
inline void esp_mode_weights(std::span<const double> lambda,
                             const LogEspTable& table, std::size_t k,
                             std::vector<double>& w) {
  w.assign(lambda.size(), 0.0);
  if (k == 0) return;
  const double log_z = table.log_e(k);
  for (std::size_t m = 0; m < lambda.size(); ++m) {
    if (lambda[m] <= 0.0) continue;
    w[m] = std::exp(std::log(lambda[m]) + table.log_e_without(m, k - 1) -
                    log_z);
  }
}

}  // namespace pardpp
