// Property tests keyed directly to the paper's lemmas: negative
// correlation (Lemma 16), the acceptance-ratio bound (Lemma 27), the KL
// divergence bound (Lemma 36), the batch schedule (Prop. 28), and the §7
// hard-instance duplicate law.
#include <gtest/gtest.h>

#include <cmath>

#include "distributions/hard_instance.h"
#include "dpp/general_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "support/combinatorics.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

// ---- Lemma 16: negative correlation of strongly Rayleigh measures ----

class NegativeCorrelation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NegativeCorrelation, JointBelowProductOfMarginals) {
  const auto [seed, k] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 1009 + 3);
  const Matrix l = random_psd(9, 9, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, static_cast<std::size_t>(k));
  const auto p = oracle.marginals();
  for (int a = 0; a < 9; ++a) {
    for (int b = a + 1; b < 9; ++b) {
      const std::vector<int> t = {a, b};
      const double joint = std::exp(oracle.log_joint_marginal(t));
      EXPECT_LE(joint, p[static_cast<std::size_t>(a)] *
                               p[static_cast<std::size_t>(b)] +
                           1e-9)
          << "pair " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndK, NegativeCorrelation,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                                            ::testing::Values(2, 3, 5)));

TEST(NegativeCorrelationCounterexample, NonsymmetricDppCanBePositive) {
  // Nonsymmetric DPPs may exhibit positive correlations (the paper's
  // motivation for studying them separately). Construct one:
  // L = [[1, -a], [a, 1]] gives det(L) = 1 + a^2 > L_11 L_22.
  Matrix l(2, 2);
  l(0, 0) = 1.0;
  l(1, 1) = 1.0;
  l(0, 1) = -2.0;
  l(1, 0) = 2.0;
  const GeneralDppOracle oracle(l, 2);
  // k = 2: joint marginal is 1, product of marginals is 1 — trivial; use
  // the unconstrained comparison instead via enumeration at k = 1..2.
  // P[{0,1} ⊆ S] for the 2-DPP is 1; the real check: the *measure* of the
  // pair det(L_{01}) = 5 exceeds det(L_0) det(L_1) = 1.
  EXPECT_GT(det_small(l), l(0, 0) * l(1, 1));
  (void)oracle;
}

// ---- Lemma 27: acceptance-ratio bound for negatively correlated mu ----

class Lemma27Bound : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma27Bound, RatioNeverExceedsExpT2OverK) {
  const auto [seed, k] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 2003 + 7);
  const int n = 10;
  const Matrix l = random_psd(static_cast<std::size_t>(n), 10, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, static_cast<std::size_t>(k));
  const auto p = oracle.marginals();
  const auto t = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(k))));
  const double log_k = std::log(static_cast<double>(k));
  double log_falling = 0.0;
  for (std::size_t r = 0; r < t; ++r)
    log_falling += std::log(static_cast<double>(k) - static_cast<double>(r));
  // Exhaustively check every batch of size t.
  double max_log_ratio = kNegInf;
  for_each_subset(n, static_cast<int>(t), [&](std::span<const int> batch) {
    const double joint = oracle.log_joint_marginal(batch);
    if (joint == kNegInf) return;
    double log_proposal = 0.0;
    for (const int i : batch)
      log_proposal += std::log(p[static_cast<std::size_t>(i)]) - log_k;
    const double log_ratio = joint - log_falling - log_proposal;
    max_log_ratio = std::max(max_log_ratio, log_ratio);
  });
  const double cap = static_cast<double>(t) * static_cast<double>(t) /
                     static_cast<double>(k);
  EXPECT_LE(max_log_ratio, cap + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndK, Lemma27Bound,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(2, 4, 6, 9)));

TEST(Lemma27, HardInstanceViolatesSymmetricCap) {
  // The paired instance's ratio on a full pair is ~ n/(2(k-1)), far above
  // exp(t^2/k) — the reason Theorem 29 needs the larger entropic cap.
  const std::size_t n = 64;
  const std::size_t k = 8;
  const HardInstanceOracle oracle(n, k);
  const auto p = oracle.marginals();
  const std::vector<int> pair = {0, 1};
  const double log_ratio =
      oracle.log_joint_marginal(pair) -
      (std::log(static_cast<double>(k)) +
       std::log(static_cast<double>(k - 1))) -
      (std::log(p[0] / static_cast<double>(k)) +
       std::log(p[1] / static_cast<double>(k)));
  const double symmetric_cap = 4.0 / static_cast<double>(k);
  EXPECT_GT(log_ratio, symmetric_cap + 1.0);
  // Expected value: P[pair]=k/n; ratio = (k/n) / (k(k-1)/n^2) = n/(k-1).
  EXPECT_NEAR(log_ratio,
              std::log(static_cast<double>(n) / static_cast<double>(k - 1)),
              1e-9);
}

// ---- Lemma 36: KL divergence bound (exact, by enumeration) ----

class Lemma36Bound : public ::testing::TestWithParam<int> {};

TEST_P(Lemma36Bound, KlBelowEntropicBound) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 4001 + 13);
  const int n = 10;
  const int k = 5;
  const Matrix lmat = random_psd(static_cast<std::size_t>(n), 10, rng, 1e-3);
  const SymmetricKdppOracle oracle(lmat, static_cast<std::size_t>(k));
  const auto p = oracle.marginals();
  // KL(mu_l || mu'_l) computed exactly for l = 2, 3: mu_l is the
  // down-operator marginal, mu'_l the iid-from-p/k product on ordered
  // tuples (collapsed to sets; the k!/(k-l)! vs l! factors already cancel
  // in the ratio used below).
  for (const int l : {2, 3}) {
    double kl = 0.0;
    double log_falling = 0.0;
    for (int r = 0; r < l; ++r)
      log_falling += std::log(static_cast<double>(k - r));
    for_each_subset(n, l, [&](std::span<const int> s) {
      const double log_joint = oracle.log_joint_marginal(s);
      if (log_joint == kNegInf) return;
      // mu_l(S) = P[S ⊆ T] / C(k, l); ordered-target over ordered-proposal
      // ratio = P / (falling * prod p/k).
      const double log_mu_l =
          log_joint - log_binomial(static_cast<std::size_t>(k),
                                   static_cast<std::size_t>(l));
      double log_prop = 0.0;
      for (const int i : s)
        log_prop += std::log(p[static_cast<std::size_t>(i)] /
                             static_cast<double>(k));
      const double log_ratio = log_joint - log_falling - log_prop;
      kl += std::exp(log_mu_l) * log_ratio;
    });
    // Lemma 36 with alpha = 1 (symmetric DPPs are 1-entropically
    // independent): KL <= (l^2 / k)(log(2n/k) + 1).
    const double bound = static_cast<double>(l * l) /
                         static_cast<double>(k) *
                         (std::log(2.0 * n / k) + 1.0);
    EXPECT_LE(kl, bound) << "l = " << l;
    EXPECT_GE(kl, -1e-9);  // KL nonnegativity sanity
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma36Bound, ::testing::Values(1, 2, 3, 4, 5));

// ---- Proposition 28: the batch schedule terminates in 2 sqrt(k) ----

class Prop28Schedule : public ::testing::TestWithParam<int> {};

TEST_P(Prop28Schedule, RoundBound) {
  const int k0 = GetParam();
  int k = k0;
  int rounds = 0;
  while (k > 0) {
    k -= static_cast<int>(std::ceil(std::sqrt(static_cast<double>(k))));
    ++rounds;
  }
  EXPECT_LE(rounds, static_cast<int>(2.0 * std::sqrt(
                        static_cast<double>(k0))) + 1);
}

INSTANTIATE_TEST_SUITE_P(Ks, Prop28Schedule,
                         ::testing::Values(1, 2, 4, 16, 100, 1024, 65536,
                                           1000000));

// ---- §7: duplicate probability law on the hard instance ----

TEST(HardInstanceLaw, DuplicateProbabilityScalesAsL2OverK) {
  // P[a mu_l draw contains >= 1 duplicate] = Theta(l^2 / k): estimate by
  // simulating the down operator (sample k/2 pairs, downsample to l) and
  // compare across k at fixed l^2/k ratio.
  RandomStream rng(5001);
  const auto estimate = [&rng](std::size_t n, std::size_t k, std::size_t l) {
    const std::size_t trials = 20000;
    std::size_t hits = 0;
    std::vector<int> pairs(n / 2);
    for (std::size_t i = 0; i < n / 2; ++i) pairs[i] = static_cast<int>(i);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      rng.shuffle(pairs);
      // S = first k/2 pairs; downsample l elements without replacement.
      std::vector<int> elements;
      elements.reserve(k);
      for (std::size_t i = 0; i < k / 2; ++i) {
        elements.push_back(2 * pairs[i]);
        elements.push_back(2 * pairs[i] + 1);
      }
      rng.shuffle(elements);
      std::vector<bool> seen(n / 2, false);
      bool dup = false;
      for (std::size_t i = 0; i < l; ++i) {
        const auto pair_id = static_cast<std::size_t>(elements[i] / 2);
        if (seen[pair_id]) dup = true;
        seen[pair_id] = true;
      }
      hits += dup ? 1 : 0;
    }
    return static_cast<double>(hits) / static_cast<double>(trials);
  };
  // l = sqrt(k): duplicate probability should be Theta(1) and comparable
  // across scales.
  const double p16 = estimate(64, 16, 4);
  const double p64 = estimate(256, 64, 8);
  EXPECT_GT(p16, 0.15);
  EXPECT_LT(p16, 0.75);
  EXPECT_GT(p64, 0.15);
  EXPECT_LT(p64, 0.75);
  // l = 4 sqrt(k): collapse (duplicates almost surely).
  const double collapse = estimate(256, 64, 32);
  EXPECT_GT(collapse, 0.95);
  // l = sqrt(k)/4: rare duplicates.
  const double rare = estimate(256, 64, 2);
  EXPECT_LT(rare, 0.10);
}

// ---- Sanity: marginals are probabilities across all oracles ----

class MarginalRange : public ::testing::TestWithParam<int> {};

TEST_P(MarginalRange, AllOraclesInUnitInterval) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 7001);
  const Matrix psd = random_psd(8, 8, rng, 1e-3);
  const Matrix npsd = random_npsd(8, rng, 0.5);
  const SymmetricKdppOracle sym(psd, 3);
  const GeneralDppOracle gen(npsd, 3);
  const HardInstanceOracle hard(8, 4);
  for (const CountingOracle* oracle :
       {static_cast<const CountingOracle*>(&sym),
        static_cast<const CountingOracle*>(&gen),
        static_cast<const CountingOracle*>(&hard)}) {
    const auto p = oracle->marginals();
    double sum = 0.0;
    for (const double v : p) {
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
      sum += v;
    }
    EXPECT_NEAR(sum, static_cast<double>(oracle->sample_size()), 1e-5)
        << oracle->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarginalRange, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace pardpp
