// EXP-T10 — Theorem 10: exact parallel sampling of symmetric k-DPPs.
//
// Reproduces the paper's headline depth claim for the symmetric case:
// Algorithm 1 with batches of ceil(sqrt(k_i)) finishes in <= 2 sqrt(k) + 2
// rounds (Prop. 28), each round succeeding with constant probability
// (acceptance ratio >= exp(-t^2/k) by Lemma 27), versus the sequential
// reduction's k rounds. Also includes the batch-size ablation from §1.2:
// pushing batches past ~sqrt(k) collapses the acceptance probability
// (birthday paradox), which is the barrier motivating the schedule.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "parallel/execution.h"
#include "parallel/pram.h"
#include "parallel/thread_pool.h"
#include "sampling/batched.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

void depth_scaling() {
  print_header("EXP-T10a", "Theorem 10 / Prop. 28 (depth vs k)",
               "batched rounds <= 2 sqrt(k) + 2 and depth ~ sqrt(k), vs "
               "sequential depth = k; exact sampling, zero cap violations");
  Table table({"k", "n", "seq_rounds", "batch_rounds", "bound_2sqrt(k)+2",
               "batch_depth", "acceptance", "overflows", "seq_ms",
               "batch_ms"});
  RandomStream rng(90001);
  for (const std::size_t k : {4u, 9u, 16u, 25u, 36u, 64u}) {
    const std::size_t n = 4 * k;
    const Matrix points = random_points(n, 2, rng);
    Matrix l = rbf_kernel(points, 0.25);
    for (std::size_t i = 0; i < n; ++i) l(i, i) += 1e-6;
    const SymmetricKdppOracle oracle(l, k, /*validate=*/false);

    PramLedger seq_ledger;
    Timer seq_timer;
    const auto seq = sample_sequential(oracle, rng, &seq_ledger);
    const double seq_ms = seq_timer.millis();

    PramLedger batch_ledger;
    Timer batch_timer;
    const auto batch = sample_batched(oracle, rng, &batch_ledger);
    const double batch_ms = batch_timer.millis();

    const double bound = 2.0 * std::sqrt(static_cast<double>(k)) + 2.0;
    table.add_row({fmt_int(k), fmt_int(n), fmt_int(seq.diag.rounds),
                   fmt_int(batch.diag.rounds), fmt(bound, 1),
                   fmt(batch_ledger.stats().depth, 1),
                   fmt(batch.diag.acceptance_rate()),
                   fmt_int(batch.diag.ratio_overflows), fmt(seq_ms, 1),
                   fmt(batch_ms, 1)});
    (void)seq_ledger;
  }
  table.print();
}

void batch_ablation() {
  print_header("EXP-T10b", "§1.2 batch-size ablation (birthday barrier)",
               "single-round acceptance of an l-element proposal batch: "
               "healthy (~exp(-l^2/k)) up to l ~ sqrt(k), collapsing "
               "beyond it as iid proposals collide");
  Table table({"k", "batch_l", "l/sqrt(k)", "mean_accept_prob",
               "collision_frac", "exp(-l^2/k)"});
  RandomStream rng(90002);
  const std::size_t k = 36;
  const std::size_t n = 4 * k;
  const Matrix l_mat = random_psd(n, n, rng, 1e-5);
  const SymmetricKdppOracle oracle(l_mat, k, /*validate=*/false);
  const auto p = oracle.marginals();
  const std::size_t trials = 1500;
  for (const std::size_t batch : {2u, 3u, 6u, 9u, 12u, 18u, 24u}) {
    const double cap = static_cast<double>(batch * batch) /
                       static_cast<double>(k);
    double log_falling = 0.0;
    for (std::size_t r = 0; r < batch; ++r)
      log_falling += std::log(static_cast<double>(k - r));
    double accept_sum = 0.0;
    std::size_t collisions = 0;
    std::vector<int> proposal(batch);
    std::vector<bool> seen(n, false);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      bool duplicate = false;
      double log_prop = 0.0;
      for (std::size_t r = 0; r < batch; ++r) {
        const auto pick = static_cast<int>(rng.categorical(p));
        proposal[r] = pick;
        log_prop += std::log(p[static_cast<std::size_t>(pick)] /
                             static_cast<double>(k));
        duplicate = duplicate || seen[static_cast<std::size_t>(pick)];
        seen[static_cast<std::size_t>(pick)] = true;
      }
      for (const int i : proposal) seen[static_cast<std::size_t>(i)] = false;
      if (duplicate) {
        ++collisions;
        continue;  // acceptance probability zero
      }
      const double log_ratio =
          oracle.log_joint_marginal(proposal) - log_falling - log_prop;
      accept_sum += std::exp(std::min(log_ratio - cap, 0.0));
    }
    table.add_row({fmt_int(k), fmt_int(batch),
                   fmt(static_cast<double>(batch) / 6.0, 2),
                   fmt(accept_sum / static_cast<double>(trials), 4),
                   fmt(static_cast<double>(collisions) /
                           static_cast<double>(trials),
                       3),
                   fmt(std::exp(-cap), 4)});
  }
  table.print();
  std::printf(
      "\nPast l ~ sqrt(k) the collision fraction -> 1 and the mean\n"
      "acceptance probability collapses — the §1.2 barrier dictating the\n"
      "ceil(sqrt(k_i)) schedule.\n");
}

void exactness_spot_check() {
  print_header("EXP-T10c", "Theorem 10 exactness spot check",
               "batched sampler matches sequential sampler's empirical "
               "singleton marginals (both exact) on one kernel");
  RandomStream rng(90003);
  const std::size_t n = 24;
  const std::size_t k = 6;
  const Matrix l = random_psd(n, n, rng, 1e-4);
  const SymmetricKdppOracle oracle(l, k, /*validate=*/false);
  const auto exact = oracle.marginals();
  std::vector<double> batched_freq(n, 0.0);
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const auto result = sample_batched(oracle, rng);
    for (const int item : result.items)
      batched_freq[static_cast<std::size_t>(item)] += 1.0;
  }
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(batched_freq[i] / trials - exact[i]));
  Table table({"trials", "max_marginal_error", "expected_noise(~3sigma)"});
  table.add_row({fmt_int(static_cast<std::size_t>(trials)), fmt(max_err, 4),
                 fmt(3.0 * std::sqrt(0.25 / trials), 4)});
  table.print();
}

void thread_scaling() {
  print_header(
      "EXP-T10d", "ExecutionContext thread sweep (wall clock vs PRAM depth)",
      "one seed, pool sizes {1,2,4,hw}: identical samples at every pool "
      "size (determinism contract); each wave's counting queries amortize "
      "onto one shared-prefix ConditionalState, and speculation is "
      "clamped to physical cores, so extra pool threads never lose to "
      "the serial baseline; on multicore hardware wall-clock drops as "
      "each round's machines physically fan out");
  const std::size_t k = 36;
  const std::size_t n = 4 * k;
  RandomStream setup_rng(90004);
  const Matrix points = random_points(n, 2, setup_rng);
  Matrix l = rbf_kernel(points, 0.25);
  for (std::size_t i = 0; i < n; ++i) l(i, i) += 1e-6;
  const std::uint64_t seed = 424242;
  const int repeats = 9;
  const SymmetricKdppOracle oracle(l, k, /*validate=*/false);
  // Warm the oracle's lazy eigen/ESP/marginal caches outside the timed
  // region so the pool-size-1 baseline is not penalized with the
  // one-time build.
  oracle.prepare_concurrent();

  const auto sweep =
      run_thread_sweep(repeats, [&](const ExecutionContext& ctx) {
        RandomStream rng(seed);
        return sample_batched(oracle, rng, ctx);
      });

  Table table({"pool", "wall_ms", "speedup", "pram_depth", "q_per_wave",
               "pram_machines", "sample_hash", "identical"});
  JsonSeries json;
  bool any_regression = false;
  for (const SweepPoint& point : sweep) {
    std::uint64_t hash = 1469598103934665603ULL;
    for (const int item : point.items)
      hash = (hash ^ static_cast<std::uint64_t>(item)) * 1099511628211ULL;
    const double speedup = reported_speedup(point.speedup);
    const bool regression = speedup < 1.0;
    any_regression = any_regression || regression;
    table.add_row({fmt_int(point.pool_size), fmt(point.wall_ms, 1),
                   fmt(speedup, 1), fmt(point.pram.depth / repeats, 1),
                   fmt(point.diag.queries_per_wave(), 2),
                   fmt_int(point.pram.max_machines),
                   fmt(static_cast<double>(hash % 1000000), 0),
                   point.identical ? "yes" : "NO"});
    json.add_record(
        {JsonSeries::text("experiment", "theorem10_thread_sweep"),
         JsonSeries::number("k", k), JsonSeries::number("n", n),
         JsonSeries::number("pool", point.pool_size),
         JsonSeries::number("wall_ms", point.wall_ms, 3),
         JsonSeries::number("speedup", speedup, 1),
         JsonSeries::number("pram_depth", point.pram.depth / repeats, 2),
         JsonSeries::number("queries_per_wave",
                            point.diag.queries_per_wave(), 2),
         JsonSeries::text("identical", point.identical ? "yes" : "no"),
         JsonSeries::boolean("regression", regression)});
  }
  table.print();
  if (any_regression)
    std::printf("! REGRESSION: a pool size reported speedup < 1.0\n");
  json.write(bench_out_path("BENCH_theorem10_threads.json"));
}

}  // namespace

int main() {
  depth_scaling();
  batch_ablation();
  exactness_spot_check();
  thread_scaling();
  return 0;
}
