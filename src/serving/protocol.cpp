#include "serving/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "dpp/feature_oracle.h"
#include "dpp/general_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "sampling/intermediate.h"

namespace pardpp::serving {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

double parse_wire_double(std::string_view field, std::string_view value) {
  const std::string text(value);
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    throw ProtocolError("request: field '" + std::string(field) +
                        "': cannot parse '" + text + "' as a double");
  return parsed;
}

std::uint64_t parse_wire_u64(std::string_view field, std::string_view value) {
  const std::string text(value);
  if (text.empty() || text[0] == '-')
    throw ProtocolError("request: field '" + std::string(field) +
                        "': cannot parse '" + text +
                        "' as a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    throw ProtocolError("request: field '" + std::string(field) +
                        "': cannot parse '" + text +
                        "' as a non-negative integer");
  return static_cast<std::uint64_t>(parsed);
}

Matrix parse_wire_matrix(std::string_view text) {
  if (text.empty()) throw ProtocolError("request: field 'matrix': empty");
  std::vector<std::vector<double>> rows;
  std::size_t cols = 0;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view row_text = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    std::vector<double> row;
    while (true) {
      const std::size_t comma = row_text.find(',');
      row.push_back(parse_wire_double("matrix", row_text.substr(0, comma)));
      if (comma == std::string_view::npos) break;
      row_text = row_text.substr(comma + 1);
    }
    if (cols == 0) {
      cols = row.size();
    } else if (row.size() != cols) {
      throw ProtocolError(
          "request: field 'matrix': ragged rows (" + std::to_string(cols) +
          " vs " + std::to_string(row.size()) + " entries)");
    }
    rows.push_back(std::move(row));
  }
  Matrix out(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < cols; ++j) out(i, j) = rows[i][j];
  return out;
}

SampleRequest parse_sample_fields(
    const std::vector<std::string_view>& lines) {
  SampleRequest request;
  bool saw_matrix = false;
  bool saw_k = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw ProtocolError("request: malformed line '" + std::string(line) +
                          "' (expected key=value)");
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "tenant") {
      request.tenant = std::string(value);
    } else if (key == "seed") {
      request.seed = parse_wire_u64(key, value);
    } else if (key == "count") {
      request.count = static_cast<std::size_t>(parse_wire_u64(key, value));
    } else if (key == "k") {
      request.k = static_cast<std::size_t>(parse_wire_u64(key, value));
      saw_k = true;
    } else if (key == "kind") {
      if (value != "kernel" && value != "features")
        throw ProtocolError("request: field 'kind': unknown matrix kind '" +
                            std::string(value) +
                            "' (expected kernel or features)");
      request.matrix_kind = std::string(value);
    } else if (key == "config") {
      request.config = std::string(value);
    } else if (key == "matrix") {
      request.matrix = parse_wire_matrix(value);
      saw_matrix = true;
    } else {
      throw ProtocolError("request: unknown field '" + std::string(key) +
                          "'");
    }
  }
  if (!saw_matrix) throw ProtocolError("request: missing field 'matrix'");
  if (!saw_k) throw ProtocolError("request: missing field 'k'");
  return request;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw ProtocolError("frame: payload of " +
                        std::to_string(payload.size()) +
                        " bytes exceeds kMaxFrameBytes");
  std::string frame;
  frame.reserve(4 + payload.size());
  const auto size = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>((size >> 24) & 0xff));
  frame.push_back(static_cast<char>((size >> 16) & 0xff));
  frame.push_back(static_cast<char>((size >> 8) & 0xff));
  frame.push_back(static_cast<char>(size & 0xff));
  frame.append(payload);
  return frame;
}

void FrameReader::feed(std::string_view bytes) {
  // Compact the consumed prefix before growing, so the buffer stays
  // bounded by one frame plus one read chunk.
  if (cursor_ > 0) {
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<std::string> FrameReader::next() {
  if (buffer_.size() - cursor_ < 4) return std::nullopt;
  const auto* head =
      reinterpret_cast<const unsigned char*>(buffer_.data() + cursor_);
  const std::size_t size = (std::size_t{head[0]} << 24) |
                           (std::size_t{head[1]} << 16) |
                           (std::size_t{head[2]} << 8) | std::size_t{head[3]};
  if (size > kMaxFrameBytes)
    throw ProtocolError("frame: declared length " + std::to_string(size) +
                        " exceeds kMaxFrameBytes (" +
                        std::to_string(kMaxFrameBytes) +
                        "); stream unrecoverable");
  if (buffer_.size() - cursor_ - 4 < size) return std::nullopt;
  std::string payload = buffer_.substr(cursor_ + 4, size);
  cursor_ += 4 + size;
  return payload;
}

const char* response_status_name(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kMalformed:
      return "malformed";
    case ResponseStatus::kInternalError:
      return "internal_error";
    case ResponseStatus::kInvalidArgument:
      return "invalid_argument";
    case ResponseStatus::kNumericalError:
      return "numerical_error";
    case ResponseStatus::kSamplingFailure:
      return "sampling_failure";
    case ResponseStatus::kStarvation:
      return "starvation";
    case ResponseStatus::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

ResponseStatus status_for_exception(
    const std::exception_ptr& error) noexcept {
  // Most specific type first — the same ladder the CLI's exit codes use,
  // so the wire and the shell report the same taxonomy.
  try {
    std::rethrow_exception(error);
  } catch (const ProtocolError&) {
    return ResponseStatus::kMalformed;
  } catch (const Overloaded&) {
    return ResponseStatus::kOverloaded;
  } catch (const DistillationStarvation&) {
    return ResponseStatus::kStarvation;
  } catch (const SamplingFailure&) {
    return ResponseStatus::kSamplingFailure;
  } catch (const NumericalError&) {
    return ResponseStatus::kNumericalError;
  } catch (const InvalidArgument&) {
    return ResponseStatus::kInvalidArgument;
  } catch (...) {
    return ResponseStatus::kInternalError;
  }
}

Request parse_request(std::string_view payload) {
  std::vector<std::string_view> lines;
  std::string_view rest = payload;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    std::string_view line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
  }
  while (!lines.empty() && lines.front().empty()) lines.erase(lines.begin());
  if (lines.empty()) throw ProtocolError("request: empty payload");
  const std::string_view verb = lines.front();
  if (verb == "sample") return parse_sample_fields(lines);
  if (verb == "stats") return StatsRequest{};
  if (verb == "shutdown") return ShutdownRequest{};
  throw ProtocolError("request: unknown request type '" + std::string(verb) +
                      "' (expected sample, stats, or shutdown)");
}

std::string encode_sample_request(const SampleRequest& request) {
  std::string payload = "sample\n";
  payload += "tenant=" + request.tenant + "\n";
  payload += "seed=" + std::to_string(request.seed) + "\n";
  payload += "count=" + std::to_string(request.count) + "\n";
  payload += "k=" + std::to_string(request.k) + "\n";
  payload += "kind=" + request.matrix_kind + "\n";
  if (!request.config.empty()) payload += "config=" + request.config + "\n";
  payload += "matrix=";
  for (std::size_t i = 0; i < request.matrix.rows(); ++i) {
    if (i > 0) payload += ';';
    for (std::size_t j = 0; j < request.matrix.cols(); ++j) {
      if (j > 0) payload += ',';
      payload += format_double(request.matrix(i, j));
    }
  }
  payload += '\n';
  return payload;
}

std::string format_response(ResponseStatus status, std::string_view body) {
  std::string payload =
      "status=" + std::to_string(static_cast<int>(status)) + "\n";
  payload.append(body);
  return payload;
}

std::pair<ResponseStatus, std::string> parse_response(
    std::string_view payload) {
  const std::size_t nl = payload.find('\n');
  const std::string_view head =
      nl == std::string_view::npos ? payload : payload.substr(0, nl);
  constexpr std::string_view kPrefix = "status=";
  if (head.substr(0, kPrefix.size()) != kPrefix)
    throw ProtocolError("response: missing status line");
  const std::uint64_t code = parse_wire_u64("status", head.substr(kPrefix.size()));
  if (code > static_cast<std::uint64_t>(ResponseStatus::kOverloaded))
    throw ProtocolError("response: unknown status code " +
                        std::to_string(code));
  std::string body;
  if (nl != std::string_view::npos)
    body = std::string(payload.substr(nl + 1));
  return {static_cast<ResponseStatus>(code), std::move(body)};
}

ServerRequest make_server_request(const SampleRequest& request) {
  // One canonicalization for everything downstream: the fingerprint
  // hashes the *canonical* spelling, so two requests whose config texts
  // differ only in field order or float formatting share a session.
  const SessionConfig config = SessionConfig::parse(request.config);
  config.validate(request.k);
  const std::string canonical = config.to_string();

  ServerRequest out;
  out.tenant = request.tenant;
  out.count = request.count;
  out.seed = request.seed;
  out.session_options = config.session;
  out.fingerprint = fingerprint_kernel(request.matrix_kind, request.matrix,
                                       request.k, canonical);
  // Resident estimate: the ensemble plus the primed spectral caches,
  // which for every family are within a small multiple of the ensemble
  // itself, plus a fixed floor for the session scaffolding.
  const std::size_t matrix_bytes =
      request.matrix.rows() * request.matrix.cols() * sizeof(double);
  out.resident_bytes = 3 * matrix_bytes + (std::size_t{1} << 16);
  out.make_oracle = [matrix = std::make_shared<const Matrix>(request.matrix),
                     kind = request.matrix_kind,
                     k = request.k]() -> std::unique_ptr<CountingOracle> {
    if (kind == "features")
      return std::make_unique<FeatureKdppOracle>(*matrix, k);
    if (matrix->is_symmetric())
      return std::make_unique<SymmetricKdppOracle>(*matrix, k);
    return std::make_unique<GeneralDppOracle>(*matrix, k);
  };
  return out;
}

}  // namespace pardpp::serving
