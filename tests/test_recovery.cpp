// SamplerSession failure model (DESIGN.md §2 convention 12): the test
// matrix over {fault site} × {recovery policy}. Under every injected
// fault class a draw either recovers/degrades with the output law still
// exactly the target k-DPP (chi-square-pinned with failpoints active,
// pool-size bit-identity on the degraded path) or throws a typed
// pardpp::Error subclass — and the session afterwards is either fully
// reusable or explicitly poisoned, never in between.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/session.h"
#include "support/failpoint.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::chi_square_quantile;
using testing::chi_square_subsets;
using testing::ExactDistribution;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  static void arm(const std::string& schedule) {
    ASSERT_GT(FailpointRegistry::instance().arm_from_spec(schedule), 0u);
  }
  static void disarm() { FailpointRegistry::instance().disarm_all(); }
};

Matrix small_symmetric_kernel(std::uint64_t seed, std::size_t n) {
  RandomStream setup(seed);
  return random_psd(n, n, setup, 1e-3);
}

ExactDistribution kernel_distribution(const Matrix& l, std::size_t k) {
  return testing::exact_distribution(
      static_cast<int>(l.rows()), static_cast<int>(k),
      [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });
}

void expect_matches(const ExactDistribution& dist,
                    const std::vector<std::vector<int>>& samples) {
  const auto chi = chi_square_subsets(dist, samples);
  EXPECT_LT(chi.statistic, chi_square_quantile(chi.dof, 4.0))
      << "chi-square dof " << chi.dof;
  EXPECT_LT(testing::empirical_tv(dist, samples), 0.08);
}

// draw_many at pools {1, hw} from one seed; asserts pool-size
// bit-identity and returns the pool-1 sequence.
std::vector<std::vector<int>> collect_pool_identical(SamplerSession& session,
                                                     std::uint64_t seed,
                                                     std::size_t trials) {
  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : {std::size_t{1}, hw}) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    auto results = session.draw_many(trials, rng, ctx);
    std::vector<std::vector<int>> samples;
    samples.reserve(results.size());
    for (auto& r : results) samples.push_back(std::move(r.items));
    per_pool.push_back(std::move(samples));
  }
  EXPECT_EQ(per_pool[0], per_pool[1])
      << "degraded-path draws must stay bit-identical across pool sizes";
  return per_pool[0];
}

// ---- fault: symmetric commit pivot ----

TEST_F(RecoveryTest, CommitPivotWithoutRecoveryThrowsTypedAndStaysUsable) {
  const Matrix l = small_symmetric_kernel(515001, 8);
  const SymmetricKdppOracle oracle(l, 3);
  SamplerSession session(oracle, {});
  RandomStream rng(99101);
  arm("symmetric.commit.pivot=prob:1");
  EXPECT_THROW((void)session.draw(rng), NumericalError);
  SessionHealth health = session.health();
  EXPECT_EQ(health.draws, 1u);
  EXPECT_EQ(health.failures, 1u);
  EXPECT_FALSE(health.poisoned);
  // Per-draw failures leave the session fully reusable.
  disarm();
  const auto result = session.draw(rng);
  EXPECT_EQ(result.items.size(), 3u);
  health = session.health();
  EXPECT_EQ(health.draws, 2u);
  EXPECT_EQ(health.failures, 1u);
}

TEST_F(RecoveryTest, CommitPivotWithRecoveryDegradesToReference) {
  const Matrix l = small_symmetric_kernel(515002, 8);
  const SymmetricKdppOracle oracle(l, 3);
  SessionOptions options;
  options.recovery.enabled = true;
  std::vector<GuardEvent> events;
  std::mutex events_mutex;
  options.guard_events = [&](const GuardEvent& event) {
    const std::lock_guard<std::mutex> lock(events_mutex);
    events.push_back(event);
  };
  SamplerSession session(oracle, options);
  RandomStream rng(99102);
  arm("symmetric.commit.pivot=prob:1");
  const auto result = session.draw(rng);
  EXPECT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.diag.recovery_retries, 1u);
  EXPECT_EQ(result.diag.degradation_level, 3u);  // condition() reference
  const SessionHealth health = session.health();
  EXPECT_EQ(health.failures, 0u);
  EXPECT_EQ(health.retries, 1u);
  EXPECT_EQ(health.degraded_reference, 1u);
  bool saw_failure = false;
  bool saw_degrade = false;
  for (const GuardEvent& event : events) {
    saw_failure = saw_failure || event.kind == GuardEventKind::kDrawFailure;
    saw_degrade =
        saw_degrade || event.kind == GuardEventKind::kDegradeReference;
    EXPECT_EQ(event.draw_index, 0u);
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_degrade);
}

TEST_F(RecoveryTest, CommitPivotRecoveredLawIsExactAndPoolIdentical) {
  const Matrix l = small_symmetric_kernel(515003, 8);
  const std::size_t k = 2;
  const SymmetricKdppOracle oracle(l, k);
  const auto dist = kernel_distribution(l, k);
  SessionOptions options;
  options.recovery.enabled = true;
  SamplerSession session(oracle, options);
  // Scoped count:1 — the first commit of EVERY draw fails (per-draw
  // scopes restart the ordinal), so every draw retries onto the
  // reference rung: the fully-degraded steady state.
  arm("symmetric.commit.pivot=scoped,count:1");
  const auto samples = collect_pool_identical(session, 515004, 1600);
  expect_matches(dist, samples);
  const SessionHealth health = session.health();
  EXPECT_EQ(health.degraded_reference, health.draws);
  EXPECT_EQ(health.failures, 0u);
}

// ---- fault: cancellation-guard trips (exact in-oracle fallback) ----

TEST_F(RecoveryTest, ForcedProbeGuardPaysRefreshesLawStaysExact) {
  const Matrix l = small_symmetric_kernel(515005, 8);
  const std::size_t k = 2;
  const SymmetricKdppOracle oracle(l, k);
  const auto dist = kernel_distribution(l, k);
  SamplerSession session(oracle, {});  // no recovery needed: in-oracle
  arm("symmetric.commit.guard=prob:1");
  const auto samples = collect_pool_identical(session, 515006, 1600);
  expect_matches(dist, samples);
  const SessionHealth health = session.health();
  EXPECT_GT(health.spectral_refreshes, 0u);
  EXPECT_EQ(health.failures, 0u);
}

// ---- fault: distillation starvation ----

TEST_F(RecoveryTest, StarvationWithoutRecoveryThrowsTypedAndStaysUsable) {
  RandomStream setup(515007);
  const Matrix features = random_gaussian(10, 4, setup);
  const FeatureKdppOracle oracle(features, 3);
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.max_attempts = 64;
  SamplerSession session(oracle, options);
  RandomStream rng(99107);
  arm("distill.accept=prob:1");  // every pool force-rejected
  try {
    (void)session.draw(rng);
    FAIL() << "expected DistillationStarvation";
  } catch (const DistillationStarvation& starved) {
    EXPECT_EQ(starved.diag.proposals, 64u);
  }
  SessionHealth health = session.health();
  EXPECT_EQ(health.starvations, 1u);
  EXPECT_EQ(health.failures, 1u);
  EXPECT_FALSE(health.poisoned);
  disarm();
  EXPECT_EQ(session.draw(rng).items.size(), 3u);
}

TEST_F(RecoveryTest, StarvationWithRecoveryDegradesToUndistilled) {
  RandomStream setup(515008);
  const Matrix features = random_gaussian(10, 4, setup);
  const FeatureKdppOracle oracle(features, 3);
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.max_attempts = 32;
  options.recovery.enabled = true;
  SamplerSession session(oracle, options);
  RandomStream rng(99108);
  arm("distill.accept=prob:1");
  const auto result = session.draw(rng);
  EXPECT_EQ(result.items.size(), 3u);
  EXPECT_EQ(result.diag.degradation_level, 2u);  // undistilled path
  const SessionHealth health = session.health();
  EXPECT_EQ(health.starvations, 1u);
  EXPECT_EQ(health.degraded_undistilled, 1u);
  EXPECT_EQ(health.failures, 0u);
}

TEST_F(RecoveryTest, InjectedRejectionsPreserveTheDistilledLaw) {
  // distill.accept fires AFTER the acceptance uniform is consumed, so a
  // low-rate injected rejection is law-invariant — the property that
  // lets the CI fault leg run the statistical harness with this site
  // armed. Verified here at a rate high enough to bite (25% of pools).
  RandomStream setup(515009);
  const std::size_t n = 10;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, 4, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });
  SessionOptions options;
  options.distill.enabled = true;
  SamplerSession session(oracle, options);
  arm("distill.accept=scoped,prob:0.25,seed:20260808");
  const auto samples = collect_pool_identical(session, 515010, 2000);
  expect_matches(dist, samples);
  EXPECT_EQ(session.health().failures, 0u);
}

// ---- fault: persistent-proposal drift (the poisoning fault) ----

TEST_F(RecoveryTest, DriftWithoutRecoveryPoisonsTheSession) {
  RandomStream setup(515011);
  const Matrix features = random_gaussian(64, 4, setup);
  const FeatureKdppOracle oracle(features, 3);
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.persistent_proposal = true;
  options.distill.refresh_interval = 1;  // revalidate every pool
  SamplerSession session(oracle, options);
  RandomStream rng(99111);
  arm("distill.revalidate=prob:1");
  EXPECT_THROW((void)session.draw(rng), ProposalDriftError);
  SessionHealth health = session.health();
  EXPECT_TRUE(health.poisoned);
  EXPECT_FALSE(health.poison_reason.empty());
  EXPECT_EQ(health.proposal_drifts, 1u);
  // Poisoning is sticky: even with the fault gone, the shared plan is
  // condemned until the caller rebuilds the session.
  disarm();
  EXPECT_THROW((void)session.draw(rng), SessionPoisoned);
  ThreadPool pool(2);
  const ExecutionContext ctx(&pool, nullptr);
  EXPECT_THROW((void)session.draw_many(4, rng, ctx), SessionPoisoned);
}

TEST_F(RecoveryTest, DriftWithRecoveryDegradesToPerDrawProposal) {
  RandomStream setup(515012);
  const std::size_t n = 10;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, 4, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.persistent_proposal = true;
  options.distill.refresh_interval = 1;
  options.recovery.enabled = true;
  SamplerSession session(oracle, options);
  arm("distill.revalidate=prob:1");
  // The satellite contract: N forced refresh failures per draw, and the
  // degraded session still passes chi-square/TV exactness with
  // pool-size bit-identity.
  const auto samples = collect_pool_identical(session, 515013, 2000);
  expect_matches(dist, samples);
  const SessionHealth health = session.health();
  EXPECT_FALSE(health.poisoned);
  EXPECT_EQ(health.failures, 0u);
  EXPECT_EQ(health.degraded_proposal, health.draws);
  EXPECT_GE(health.proposal_drifts, health.draws);
}

// ---- fault: oracle.query_many chunks + draw_many atomicity ----

TEST_F(RecoveryTest, DrawManyPropagatesExactlyOneTypedException) {
  const Matrix l = small_symmetric_kernel(515014, 8);
  const SymmetricKdppOracle oracle(l, 3);
  SessionOptions options;
  options.kind = SamplerKind::kBatched;
  SamplerSession session(oracle, options);
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool, nullptr);
  arm("symmetric.commit.pivot=prob:1");
  RandomStream rng(99114);
  // Every chunk's first draw throws; join_all drains all workers and
  // rethrows the first typed error — never terminate, never a hang.
  EXPECT_THROW((void)session.draw_many(12, rng, ctx), NumericalError);
  const SessionHealth health = session.health();
  EXPECT_GE(health.failures, 1u);
  EXPECT_FALSE(health.poisoned);
  // Fully reusable: the post-failure sequence equals a fresh session's.
  disarm();
  RandomStream again(424242);
  auto recovered = session.draw_many(8, again, ctx);
  SamplerSession fresh(oracle, options);
  RandomStream fresh_rng(424242);
  auto expected = fresh.draw_many(8, fresh_rng, ctx);
  ASSERT_EQ(recovered.size(), expected.size());
  for (std::size_t i = 0; i < recovered.size(); ++i)
    EXPECT_EQ(recovered[i].items, expected[i].items) << "draw " << i;
}

TEST_F(RecoveryTest, QueryManyFaultExhaustsBudgetWithTypedError) {
  const Matrix l = small_symmetric_kernel(515015, 8);
  const SymmetricKdppOracle oracle(l, 3);
  SessionOptions options;
  options.kind = SamplerKind::kBatched;
  options.recovery.enabled = true;
  options.recovery.max_retries = 2;
  SamplerSession session(oracle, options);
  RandomStream rng(99115);
  // The fault hits every rung (the reference path issues wave queries
  // too), so the ladder exhausts its budget and surfaces the typed
  // error with the failure counted.
  arm("oracle.query_many=prob:1");
  EXPECT_THROW((void)session.draw(rng), NumericalError);
  const SessionHealth health = session.health();
  EXPECT_EQ(health.failures, 1u);
  EXPECT_EQ(health.retries, 2u);
  disarm();
  EXPECT_EQ(session.draw(rng).items.size(), 3u);
}

// ---- recovery with a one-shot fault: scoped retry determinism ----

TEST_F(RecoveryTest, ScopedOneShotFaultRecoversOnRetrySameRung) {
  // count:1 per draw scope on a non-distilled commit session with the
  // reference rung disabled: the retry re-runs the SAME rung (ladder
  // exhausted) and succeeds because the per-scope trigger is spent.
  const Matrix l = small_symmetric_kernel(515016, 8);
  const SymmetricKdppOracle oracle(l, 2);
  SessionOptions options;
  options.recovery.enabled = true;
  options.recovery.degrade_reference = false;
  SamplerSession session(oracle, options);
  arm("symmetric.commit.pivot=scoped,count:1");
  RandomStream rng(99116);
  const auto result = session.draw(rng);
  EXPECT_EQ(result.items.size(), 2u);
  EXPECT_EQ(result.diag.recovery_retries, 1u);
  EXPECT_EQ(result.diag.degradation_level, 0u)
      << "retry without degradation stays on the configured path";
  const SessionHealth health = session.health();
  EXPECT_EQ(health.retries, 1u);
  EXPECT_EQ(health.degraded_reference, 0u);
}

}  // namespace
}  // namespace pardpp
