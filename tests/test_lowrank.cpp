// Tests for the low-rank (dual) feature representation: spectral
// identities, feature-space conditioning, and the FeatureKdppOracle's
// exact agreement with the dense symmetric oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lowrank.h"
#include "linalg/lu.h"
#include "linalg/schur.h"
#include "linalg/symmetric_eigen.h"
#include "sampling/batched.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

class LowRankEigenTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(LowRankEigenTest, MatchesDenseSpectrum) {
  const auto [d, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 6007 + 1);
  const std::size_t n = 14;
  const Matrix b = random_gaussian(n, static_cast<std::size_t>(d), rng);
  const Matrix l = b * b.transpose();
  const auto dual = eigen_from_features(b);
  const auto dense = symmetric_eigenvalues(l);
  ASSERT_EQ(dual.values.size(), static_cast<std::size_t>(d));
  // Dense spectrum: n - d zeros then the d nonzero values ascending.
  for (int j = 0; j < d; ++j) {
    EXPECT_NEAR(dual.values[static_cast<std::size_t>(j)],
                dense[n - static_cast<std::size_t>(d) +
                      static_cast<std::size_t>(j)],
                1e-8);
  }
  // Eigenvector property: L u = lambda u.
  for (std::size_t m = 0; m < dual.values.size(); ++m) {
    std::vector<double> u(n);
    for (std::size_t i = 0; i < n; ++i) u[i] = dual.vectors(i, m);
    const auto lu_vec = l.apply(u);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(lu_vec[i], dual.values[m] * u[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(RanksAndSeeds, LowRankEigenTest,
                         ::testing::Combine(::testing::Values(1, 3, 5, 8),
                                            ::testing::Values(1, 2, 3)));

TEST(LowRankConditioning, MatchesDenseSchurComplement) {
  RandomStream rng(6101);
  const std::size_t n = 10;
  const std::size_t d = 6;
  const Matrix b = random_gaussian(n, d, rng);
  const Matrix l = b * b.transpose();
  const std::vector<int> t = {2, 7};
  const Matrix b_cond = condition_features(b, t);
  EXPECT_EQ(b_cond.rows(), n - 2);
  EXPECT_EQ(b_cond.cols(), d - 2);  // rank drops by |T|
  const Matrix l_cond = b_cond * b_cond.transpose();
  const auto dense = condition_ensemble(l, t, /*symmetric=*/true);
  for (std::size_t i = 0; i < n - 2; ++i)
    for (std::size_t j = 0; j < n - 2; ++j)
      EXPECT_NEAR(l_cond(i, j), dense.reduced(i, j), 1e-8);
}

TEST(LowRankConditioning, NullEventThrows) {
  RandomStream rng(6102);
  Matrix b(4, 2);
  // Rows 0 and 1 parallel: conditioning on both is a null event.
  b(0, 0) = 1.0;
  b(1, 0) = 2.0;
  b(2, 1) = 1.0;
  b(3, 0) = 0.5;
  b(3, 1) = 0.5;
  const std::vector<int> t = {0, 1};
  EXPECT_THROW((void)condition_features(b, t), NumericalError);
}

class FeatureOracleTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(FeatureOracleTest, AgreesWithDenseOracle) {
  const auto [k, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 6203 + 9);
  const std::size_t n = 12;
  const std::size_t d = 7;
  const Matrix b = random_gaussian(n, d, rng);
  const Matrix l = b * b.transpose();
  const FeatureKdppOracle fast(b, static_cast<std::size_t>(k));
  const SymmetricKdppOracle dense(l, static_cast<std::size_t>(k), false);
  const auto p_fast = fast.marginals();
  const auto p_dense = dense.marginals();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(p_fast[i], p_dense[i], 1e-8);
  for (int a = 0; a < static_cast<int>(n); a += 3) {
    for (int c = a + 1; c < static_cast<int>(n); c += 2) {
      const std::vector<int> t = {a, c};
      const double got = fast.log_joint_marginal(t);
      const double want = dense.log_joint_marginal(t);
      if (want == kNegInf) {
        EXPECT_EQ(got, kNegInf) << "pair " << a << "," << c;
      } else {
        EXPECT_NEAR(got, want, 1e-7) << "pair " << a << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KAndSeeds, FeatureOracleTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 6),
                                            ::testing::Values(1, 2, 3)));

TEST(FeatureOracle, ConditioningConsistency) {
  RandomStream rng(6301);
  const Matrix b = random_gaussian(10, 6, rng);
  const FeatureKdppOracle oracle(b, 4);
  const std::vector<int> t = {1, 5};
  const auto conditioned = oracle.condition(t);
  const std::vector<int> pair_new = {0, 5};  // old {0, 7}
  const std::vector<int> joint = {0, 1, 5, 7};
  EXPECT_NEAR(conditioned->log_joint_marginal(pair_new),
              oracle.log_joint_marginal(joint) - oracle.log_joint_marginal(t),
              1e-7);
}

TEST(FeatureOracle, RankBoundEnforced) {
  RandomStream rng(6302);
  const Matrix b = random_gaussian(10, 3, rng);
  EXPECT_THROW(FeatureKdppOracle(b, 4), InvalidArgument);  // k > rank bound
  EXPECT_NO_THROW(FeatureKdppOracle(b, 3));
}

TEST(FeatureOracle, BatchedSamplerDistribution) {
  RandomStream rng(6303);
  const std::size_t n = 7;
  const Matrix b = random_gaussian(n, 4, rng);
  const Matrix l = b * b.transpose();
  const FeatureKdppOracle oracle(b, 3);
  const auto exact = testing::exact_distribution(
      static_cast<int>(n), 3, [&l](std::span<const int> s) {
        const auto sld = signed_log_det(l.principal(s));
        return sld.sign > 0 ? sld.log_abs : kNegInf;
      });
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(sample_batched(oracle, rng).items);
  EXPECT_LT(testing::empirical_tv(exact, samples), 0.045);
}

TEST(FeatureOracle, LargeNSmallRankIsFast) {
  // Not a timing assertion — just exercises the scaling path: n = 400
  // with rank 12, where the dense oracle's O(n^3) eigen would dominate.
  RandomStream rng(6304);
  const std::size_t n = 400;
  const Matrix b = random_gaussian(n, 12, rng);
  const FeatureKdppOracle oracle(b, 6);
  const auto p = oracle.marginals();
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 6.0, 1e-6);
  const auto sample = sample_batched(oracle, rng);
  EXPECT_EQ(sample.items.size(), 6u);
}

}  // namespace
}  // namespace pardpp
