// Tests for the filtering sampler (Algorithm 4 / Theorem 41) and its
// Lemma 44 Bernoulli-rejection building block, plus the cardinality
// distribution of Remark 15 and the unconstrained-DPP plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dpp/cardinality.h"
#include "dpp/ensemble.h"
#include "dpp/unconstrained_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/schur.h"
#include "linalg/symmetric_eigen.h"
#include "sampling/filtering.h"
#include "support/combinatorics.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

// Exact unconstrained-DPP distribution over all subsets, keyed by the
// subset's bitmask.
std::map<std::uint64_t, double> exact_dpp_distribution(const Matrix& l) {
  const int n = static_cast<int>(l.rows());
  std::map<std::uint64_t, double> out;
  double z = 0.0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < n; ++i)
      if ((mask >> i) & 1ull) subset.push_back(i);
    double mass = 1.0;
    if (!subset.empty()) mass = det_small(l.principal(subset));
    mass = std::max(mass, 0.0);
    out[mask] = mass;
    z += mass;
  }
  for (auto& [mask, mass] : out) mass /= z;
  return out;
}

std::uint64_t to_mask(std::span<const int> subset) {
  std::uint64_t mask = 0;
  for (const int i : subset) mask |= (1ull << i);
  return mask;
}

TEST(UnconstrainedDpp, JointMarginalsMatchEnumeration) {
  RandomStream rng(2001);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  const UnconstrainedDpp dpp(l, /*symmetric=*/true);
  const auto exact = exact_dpp_distribution(l);
  // P[T ⊆ Y] = sum over supersets.
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      double want = 0.0;
      for (const auto& [mask, p] : exact) {
        if (((mask >> a) & 1ull) && ((mask >> b) & 1ull)) want += p;
      }
      const std::vector<int> t = {a, b};
      EXPECT_NEAR(std::exp(dpp.log_joint_marginal(t)), want, 1e-8);
    }
  }
  const auto marg = dpp.marginals();
  for (int i = 0; i < 6; ++i) {
    double want = 0.0;
    for (const auto& [mask, p] : exact)
      if ((mask >> i) & 1ull) want += p;
    EXPECT_NEAR(marg[static_cast<std::size_t>(i)], want, 1e-8);
  }
}

TEST(UnconstrainedDpp, KernelEnsembleRoundTrip) {
  RandomStream rng(2002);
  const Matrix l = random_psd(7, 7, rng, 1e-3);
  const Matrix k = marginal_kernel(l);
  const Matrix l_back = ensemble_from_kernel(k);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 7; ++j)
      EXPECT_NEAR(l_back(i, j), l(i, j), 1e-7);
}

TEST(UnconstrainedDpp, NonsymmetricMarginals) {
  RandomStream rng(2003);
  const Matrix l = random_npsd(6, rng, 0.5);
  const UnconstrainedDpp dpp(l, /*symmetric=*/false);
  const auto exact = exact_dpp_distribution(l);
  const auto marg = dpp.marginals();
  for (int i = 0; i < 6; ++i) {
    double want = 0.0;
    for (const auto& [mask, p] : exact)
      if ((mask >> i) & 1ull) want += p;
    EXPECT_NEAR(marg[static_cast<std::size_t>(i)], want, 1e-8);
  }
}

TEST(Cardinality, WeightsMatchEnumeration) {
  RandomStream rng(2011);
  for (const bool symmetric : {true, false}) {
    const Matrix l = symmetric ? random_psd(6, 6, rng, 1e-3)
                               : random_npsd(6, rng, 0.5);
    const auto exact = exact_dpp_distribution(l);
    std::vector<double> by_size(7, 0.0);
    for (const auto& [mask, p] : exact)
      by_size[static_cast<std::size_t>(__builtin_popcountll(mask))] += p;
    const auto log_w = cardinality_log_weights(l, symmetric);
    double log_z = kNegInf;
    for (const double v : log_w) log_z = log_add(log_z, v);
    for (std::size_t j = 0; j <= 6; ++j) {
      EXPECT_NEAR(std::exp(log_w[j] - log_z), by_size[j], 1e-6)
          << "size " << j << " symmetric=" << symmetric;
    }
  }
}

TEST(Cardinality, SamplingFrequencies) {
  RandomStream rng(2012);
  const std::vector<double> log_w = {std::log(0.1), std::log(0.3),
                                     std::log(0.6)};
  std::vector<double> counts(3, 0.0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    counts[sample_cardinality(log_w, rng)] += 1.0;
  EXPECT_NEAR(counts[0] / trials, 0.1, 0.01);
  EXPECT_NEAR(counts[2] / trials, 0.6, 0.01);
}

TEST(Lemma44, BernoulliSamplerDistribution) {
  RandomStream rng(2021);
  // Kernel with sigma_max <= 1/sqrt(n): Lemma 44 regime.
  const std::size_t n = 6;
  std::vector<double> spectrum(n);
  for (std::size_t i = 0; i < n; ++i)
    spectrum[i] = (0.2 + 0.8 * static_cast<double>(i) /
                             static_cast<double>(n - 1)) /
                  std::sqrt(static_cast<double>(n));
  const Matrix kernel = kernel_with_spectrum(spectrum, rng);
  const Matrix l = ensemble_from_kernel(kernel);
  const auto exact = exact_dpp_distribution(l);
  std::map<std::uint64_t, std::size_t> counts;
  const int trials = 30000;
  std::size_t overflows = 0;
  for (int i = 0; i < trials; ++i) {
    auto result = sample_small_dpp_bernoulli(kernel, rng);
    overflows += result.diag.ratio_overflows;
    ++counts[to_mask(result.items)];
  }
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.05);
  EXPECT_LT(static_cast<double>(overflows) / trials, 0.01);
}

TEST(FilteringSampler, MatchesExactDppDistribution) {
  RandomStream rng(2022);
  // sigma_max(K) moderate so alpha < 1 and the filtering loop actually
  // runs several rounds.
  std::vector<double> spectrum = {0.7, 0.55, 0.4, 0.3, 0.2, 0.1};
  const Matrix kernel = kernel_with_spectrum(spectrum, rng);
  const Matrix l = ensemble_from_kernel(kernel);
  const auto exact = exact_dpp_distribution(l);
  std::map<std::uint64_t, std::size_t> counts;
  const int trials = 12000;
  std::size_t total_rounds = 0;
  for (int i = 0; i < trials; ++i) {
    auto result = sample_filtering_dpp(l, rng);
    total_rounds += result.diag.rounds;
    ++counts[to_mask(result.items)];
  }
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.06);
  EXPECT_GT(total_rounds / trials, 1u);  // multi-round regime exercised
}

TEST(FilteringSampler, SmallSigmaTakesDirectPath) {
  RandomStream rng(2023);
  const std::size_t n = 9;
  std::vector<double> spectrum(n, 0.2 / std::sqrt(static_cast<double>(n)));
  const Matrix kernel = kernel_with_spectrum(spectrum, rng);
  const Matrix l = ensemble_from_kernel(kernel);
  auto result = sample_filtering_dpp(l, rng);
  // alpha = 1/(sigma sqrt(n)) = 5 > 1: exactly one Bernoulli round.
  EXPECT_EQ(result.diag.rounds, 1u);
}

TEST(FilteringSampler, Proposition45SpectralInvariant) {
  // Along the filtering iteration, sigma_max(K^(i)) never exceeds the
  // initial sigma (Prop. 45). Replicate the update explicitly.
  RandomStream rng(2024);
  std::vector<double> spectrum = {0.8, 0.6, 0.5, 0.35, 0.2, 0.15, 0.1, 0.05};
  Matrix l = ensemble_from_kernel(kernel_with_spectrum(spectrum, rng));
  const double sigma0 = 0.8;
  const double alpha = 1.0 / (sigma0 * std::sqrt(8.0));
  for (int round = 0; round < 12; ++round) {
    const Matrix k = marginal_kernel(l);
    const double sigma = spectral_norm_symmetric(k);
    EXPECT_LE(sigma, sigma0 * (1.0 + 1e-9)) << "round " << round;
    // Thin + condition on an arbitrary feasible element (marginal > 0).
    Matrix scaled = l;
    scaled *= (1.0 - alpha);
    const auto p = UnconstrainedDpp(scaled, true, false).marginals();
    int pick = -1;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] > 0.05) {
        pick = static_cast<int>(i);
        break;
      }
    }
    if (pick < 0 || scaled.rows() <= 2) break;
    const std::vector<int> t = {pick};
    l = condition_ensemble(scaled, t, true).reduced;
  }
}

TEST(FilteringSampler, RejectsAsymmetricInput) {
  RandomStream rng(2025);
  const Matrix l = random_npsd(5, rng, 0.5);
  EXPECT_THROW((void)sample_filtering_dpp(l, rng), InvalidArgument);
}

TEST(Lemma44, SizeCapCountsAsOmegaRejection) {
  RandomStream rng(2026);
  std::vector<double> spectrum(4, 0.45);
  const Matrix kernel = kernel_with_spectrum(spectrum, rng);
  FilteringOptions options;
  options.size_cap = 1;  // absurdly tight: most proposals rejected by size
  options.machine_cap = 100000;
  auto result = sample_small_dpp_bernoulli(kernel, rng, nullptr, options);
  EXPECT_LE(result.items.size(), 1u);
  EXPECT_GT(result.diag.duplicate_rejects, 0u);
}

}  // namespace
}  // namespace pardpp
