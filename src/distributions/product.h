// Baseline combinatorial oracles.
//
// UniformKSubsetOracle: mu uniform over ([n] choose k) — the L = I k-DPP.
// Exchangeable, strongly Rayleigh, closed-form counting; used to validate
// the samplers' plumbing independently of any linear algebra, and as the
// trivial extreme in property sweeps.
#pragma once

#include "distributions/oracle.h"

namespace pardpp {

class UniformKSubsetOracle final : public CountingOracle {
 public:
  UniformKSubsetOracle(std::size_t n, std::size_t k);

  [[nodiscard]] std::size_t ground_size() const override { return n_; }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override { return "uniform-k-subset"; }

 private:
  std::size_t n_;
  std::size_t k_;
};

}  // namespace pardpp
