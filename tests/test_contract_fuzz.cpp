// Randomized contract fuzzing: every CountingOracle implementation is
// driven through random conditioning chains and checked, at every step,
// against an EnumeratedOracle evolved through the *same* chain. This
// catches index-remapping bugs, stale caches, and normalization drift
// that targeted tests can miss.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "distributions/hard_instance.h"
#include "distributions/product.h"
#include "dpp/feature_oracle.h"
#include "dpp/general_oracle.h"
#include "dpp/subdivision.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::EnumeratedOracle;

// Drives both oracles through `steps` random conditioning steps, checking
// marginals and random joint marginals after each.
void fuzz_chain(std::unique_ptr<CountingOracle> oracle,
                std::unique_ptr<CountingOracle> truth, RandomStream& rng,
                int steps, double tol) {
  for (int step = 0; step <= steps; ++step) {
    ASSERT_EQ(oracle->ground_size(), truth->ground_size());
    ASSERT_EQ(oracle->sample_size(), truth->sample_size());
    const auto p = oracle->marginals();
    const auto p_true = truth->marginals();
    for (std::size_t i = 0; i < p.size(); ++i) {
      ASSERT_NEAR(p[i], p_true[i], tol)
          << "step " << step << " marginal " << i;
    }
    if (oracle->sample_size() == 0) break;
    // Random joint query of size <= min(3, k).
    const std::size_t m = oracle->ground_size();
    const std::size_t batch_max =
        std::min<std::size_t>(3, oracle->sample_size());
    std::vector<int> batch;
    while (batch.size() < batch_max) {
      const int pick = static_cast<int>(rng.uniform_index(m));
      bool dup = false;
      for (const int b : batch) dup = dup || (b == pick);
      if (!dup) batch.push_back(pick);
    }
    const double got = oracle->log_joint_marginal(batch);
    const double want = truth->log_joint_marginal(batch);
    if (want == kNegInf || std::exp(want) < 1e-12) {
      ASSERT_TRUE(got == kNegInf || std::exp(got) < tol) << "step " << step;
    } else {
      ASSERT_NEAR(std::exp(got), std::exp(want), tol) << "step " << step;
    }
    // Condition on one random element with positive marginal.
    std::vector<int> choice;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int pick = static_cast<int>(rng.uniform_index(m));
      if (p_true[static_cast<std::size_t>(pick)] > 0.02) {
        choice = {pick};
        break;
      }
    }
    if (choice.empty()) break;
    oracle = oracle->condition(choice);
    truth = truth->condition(choice);
  }
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, SymmetricOracleChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 37 + 11);
  const Matrix l = random_psd(9, 9, rng, 1e-3);
  auto oracle = std::make_unique<SymmetricKdppOracle>(l, 5);
  auto truth = std::make_unique<EnumeratedOracle>(
      9, 5, [&l](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 5, 1e-6);
}

TEST_P(FuzzSeeds, GeneralOracleChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 41 + 13);
  const Matrix l = random_npsd(8, rng, 0.6);
  auto oracle = std::make_unique<GeneralDppOracle>(l, 4);
  auto truth = std::make_unique<EnumeratedOracle>(
      8, 4, [&l](std::span<const int> s) {
        const auto sld = signed_log_det(l.principal(s));
        return sld.sign > 0 ? sld.log_abs : kNegInf;
      });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 4, 1e-5);
}

TEST_P(FuzzSeeds, PartitionOracleChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 43 + 17);
  const Matrix l = random_psd(8, 8, rng, 1e-3);
  const std::vector<int> part_of = {0, 1, 0, 1, 0, 1, 0, 1};
  auto oracle =
      std::make_unique<GeneralDppOracle>(l, part_of, std::vector<int>{2, 2});
  auto truth = std::make_unique<EnumeratedOracle>(
      8, 4, [&](std::span<const int> s) {
        int c0 = 0;
        for (const int i : s)
          if (part_of[static_cast<std::size_t>(i)] == 0) ++c0;
        if (c0 != 2) return kNegInf;
        const auto sld = signed_log_det(l.principal(s));
        return sld.sign > 0 ? sld.log_abs : kNegInf;
      });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 4, 1e-5);
}

TEST_P(FuzzSeeds, FeatureOracleChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 47 + 19);
  const Matrix b = random_gaussian(9, 6, rng);
  const Matrix l = b * b.transpose();
  auto oracle = std::make_unique<FeatureKdppOracle>(b, 4);
  auto truth = std::make_unique<EnumeratedOracle>(
      9, 4, [&l](std::span<const int> s) {
        const auto sld = signed_log_det(l.principal(s));
        return sld.sign > 0 ? sld.log_abs : kNegInf;
      });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 4, 1e-6);
}

TEST_P(FuzzSeeds, HardInstanceChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 53 + 23);
  auto oracle = std::make_unique<HardInstanceOracle>(10, 6);
  auto truth = std::make_unique<EnumeratedOracle>(
      10, 6, [](std::span<const int> s) {
        for (std::size_t a = 0; a < s.size(); a += 2) {
          if (s[a] % 2 != 0 || s[a + 1] != s[a] + 1) return kNegInf;
        }
        return 0.0;
      });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 6, 1e-9);
}

TEST_P(FuzzSeeds, SubdividedOracleChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 59 + 29);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  auto base = std::make_unique<SymmetricKdppOracle>(l, 3);
  auto oracle = std::make_unique<SubdividedOracle>(std::move(base), 0.6);
  // Ground truth: enumerate over the subdivided universe explicitly.
  const auto* sub = oracle.get();
  const std::size_t u = sub->ground_size();
  std::vector<int> origin(u);
  std::vector<double> copies(6, 0.0);
  for (std::size_t c = 0; c < u; ++c) {
    origin[c] = sub->origin_of(static_cast<int>(c));
    copies[static_cast<std::size_t>(origin[c])] += 1.0;
  }
  auto truth = std::make_unique<EnumeratedOracle>(
      static_cast<int>(u), 3, [&](std::span<const int> s) {
        std::vector<int> originals;
        double log_copy = 0.0;
        for (const int c : s) {
          const int b = origin[static_cast<std::size_t>(c)];
          for (const int other : originals) {
            if (other == b) return kNegInf;
          }
          originals.push_back(b);
          log_copy -= std::log(copies[static_cast<std::size_t>(b)]);
        }
        std::sort(originals.begin(), originals.end());
        return signed_log_det(l.principal(originals)).log_abs + log_copy;
      });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 2, 1e-7);
}

TEST_P(FuzzSeeds, UniformOracleChain) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 61 + 31);
  auto oracle = std::make_unique<UniformKSubsetOracle>(11, 5);
  auto truth = std::make_unique<EnumeratedOracle>(
      11, 5, [](std::span<const int>) { return 0.0; });
  fuzz_chain(std::move(oracle), std::move(truth), rng, 5, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pardpp
