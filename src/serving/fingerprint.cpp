#include "serving/fingerprint.h"

#include <cstdio>
#include <cstring>

namespace pardpp::serving {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string KernelFingerprint::to_string() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

void FingerprintBuilder::mix_word(std::uint64_t word) {
  // Two lanes, differently offset and cross-fed, so each input word
  // perturbs 128 bits of state through independent avalanches.
  a_ = avalanche(a_ ^ word);
  b_ = avalanche(b_ + (word ^ 0x9e3779b97f4a7c15ULL) + (a_ << 1));
}

void FingerprintBuilder::mix_u64(std::uint64_t value) { mix_word(value); }

void FingerprintBuilder::mix_bytes(const void* data, std::size_t size) {
  mix_word(static_cast<std::uint64_t>(size));  // length delimiter
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t word = 0;
  while (size >= 8) {
    std::memcpy(&word, bytes, 8);
    mix_word(word);
    bytes += 8;
    size -= 8;
  }
  if (size > 0) {
    word = 0;
    std::memcpy(&word, bytes, size);
    mix_word(word);
  }
}

void FingerprintBuilder::mix(std::string_view text) {
  mix_bytes(text.data(), text.size());
}

void FingerprintBuilder::mix_matrix(const Matrix& matrix) {
  mix_u64(matrix.rows());
  mix_u64(matrix.cols());
  const std::span<const double> flat = matrix.flat();
  mix_bytes(flat.data(), flat.size() * sizeof(double));
}

KernelFingerprint FingerprintBuilder::finish() const {
  // Final cross-avalanche so short inputs still fill both words.
  KernelFingerprint fp;
  fp.hi = avalanche(a_ ^ (b_ >> 32));
  fp.lo = avalanche(b_ ^ (a_ << 32) ^ 0xd6e8feb86659fd93ULL);
  return fp;
}

KernelFingerprint fingerprint_kernel(std::string_view family,
                                     const Matrix& matrix,
                                     std::size_t sample_size,
                                     std::string_view canonical_config) {
  FingerprintBuilder builder;
  builder.mix("pardpp.kernel.v1");
  builder.mix(family);
  builder.mix_matrix(matrix);
  builder.mix_u64(static_cast<std::uint64_t>(sample_size));
  builder.mix(canonical_config);
  return builder.finish();
}

}  // namespace pardpp::serving
