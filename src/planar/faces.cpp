#include "planar/faces.h"

#include <algorithm>
#include <map>

namespace pardpp {

FaceDecomposition compute_faces(const PlanarGraph& g) {
  const std::size_t n = g.num_vertices();
  // Rotation tables: for each vertex, neighbor -> position, and the
  // ordered counterclockwise neighbor list.
  std::vector<std::vector<int>> rot(n);
  std::vector<std::map<int, std::size_t>> pos(n);
  for (std::size_t v = 0; v < n; ++v) {
    rot[v] = g.rotation(static_cast<int>(v));
    for (std::size_t i = 0; i < rot[v].size(); ++i)
      pos[v][rot[v][i]] = i;
  }
  // Dart bookkeeping.
  std::map<std::pair<int, int>, bool> used;
  for (const auto& [u, v] : g.edges()) {
    used[{u, v}] = false;
    used[{v, u}] = false;
  }
  FaceDecomposition out;
  for (auto& [dart, dart_used] : used) {
    if (dart_used) continue;
    Face face;
    std::pair<int, int> current = dart;
    do {
      auto it = used.find(current);
      check(it != used.end() && !it->second,
            "compute_faces: dart walk revisited a dart (not an embedding?)");
      it->second = true;
      face.darts.push_back(current);
      const auto [u, v] = current;
      // Next dart: at v, take the neighbor *before* u in ccw order
      // (standard face-tracing rule for ccw rotations).
      const auto& rv = rot[static_cast<std::size_t>(v)];
      const std::size_t iu = pos[static_cast<std::size_t>(v)].at(u);
      const int w = rv[(iu + rv.size() - 1) % rv.size()];
      current = {v, w};
    } while (current != dart);
    // Shoelace signed area over the dart tails.
    double area = 0.0;
    for (const auto& [u, v] : face.darts) {
      const auto& cu = g.coord(u);
      const auto& cv = g.coord(v);
      area += cu[0] * cv[1] - cv[0] * cu[1];
    }
    face.signed_area = 0.5 * area;
    out.faces.push_back(std::move(face));
  }
  // Outer face: the unique face with negative signed area (clockwise
  // traversal) of largest magnitude.
  double most_negative = 0.0;
  for (std::size_t f = 0; f < out.faces.size(); ++f) {
    if (out.faces[f].signed_area < most_negative) {
      most_negative = out.faces[f].signed_area;
      out.outer_face = f;
    }
  }
  out.euler = static_cast<long long>(n) -
              static_cast<long long>(g.num_edges()) +
              static_cast<long long>(out.faces.size());
  return out;
}

}  // namespace pardpp
