// Approximate batched sampling for entropically independent distributions
// — Theorem 29 (main theorem), instantiated for nonsymmetric DPPs
// (Theorem 8) and Partition-DPPs (Theorem 9).
//
// Differences from the exact symmetric sampler (sampling/batched.h):
//  * batches of l ~ k^{1/2 - c} (the hard instance of §7 shows the
//    exponent gap is necessary for rejection strategies);
//  * the ratio cap C comes from the entropic-independence KL bound
//    (Lemma 36): log C ~ (l^2 / (alpha k)) (log(2n/k) + alpha) plus slack,
//    not from negative correlation;
//  * proposals whose ratio exceeds C ("bad events", Algorithm 3) are
//    rejected outright — the output is the restriction of the target to
//    the high-probability set Omega, within the advertised total
//    variation budget (Prop. 26 / Lemma 40);
//  * optionally, each round is run through the isotropic subdivision
//    (Definition 30) to flatten the marginals first.
#pragma once

#include <limits>

#include "distributions/oracle.h"
#include "parallel/execution.h"
#include "parallel/pram.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

struct EntropicOptions {
  /// Batch exponent c > 0: l = max(1, floor(k^{1/2 - c})).
  double c = 0.25;
  /// Entropic-independence parameter: the target is 1/alpha-entropically
  /// independent (Omega(1) for all DPP families, Lemma 24).
  double alpha = 1.0;
  /// Multiplier and additive slack applied to the Lemma 36 cap.
  double cap_multiplier = 1.0;
  double cap_slack = 3.0;
  /// Explicit cap override (log domain); NaN selects the Lemma 36 cap.
  double log_ratio_cap = std::numeric_limits<double>::quiet_NaN();
  /// Per-run failure budget for the boosted rejection rounds.
  double failure_prob = 1e-3;
  /// Apply the isotropic subdivision with this beta each round.
  bool subdivide = false;
  double beta = 1.0;
  /// Overrides l when nonzero.
  std::size_t max_batch = 0;
  std::size_t machine_cap = 1u << 20;
};

/// Approximate sample via batched modified rejection sampling, executing
/// each round's proposal machines on the context's pool. Throws
/// SamplingFailure when a round exhausts its machine budget. The
/// diagnostics report ratio_overflows — the measure of the Omega
/// restriction actually encountered.
[[nodiscard]] SampleResult sample_entropic(const CountingOracle& mu,
                                           RandomStream& rng,
                                           const ExecutionContext& ctx,
                                           const EntropicOptions& options = {});

/// Legacy ledger-only entry point: serial execution. The seed-to-sample
/// mapping differs from pre-ExecutionContext builds (see batched.h).
[[nodiscard]] SampleResult sample_entropic(const CountingOracle& mu,
                                           RandomStream& rng,
                                           PramLedger* ledger = nullptr,
                                           const EntropicOptions& options = {});

/// Core loop on a caller-provided commit-path state (must be at its base
/// distribution). With subdivision enabled the per-round isotropic wrapper
/// still clones the current conditional (its copies re-index the ground
/// set), but the conditioning itself stays on the long-lived state.
[[nodiscard]] SampleResult sample_entropic_on(
    CommittedOracle& state, RandomStream& rng, const ExecutionContext& ctx,
    const EntropicOptions& options = {});

}  // namespace pardpp
