#include "parallel/execution.h"

#include <thread>

namespace pardpp {

namespace {
ExecutionContext& mutable_linalg_context() noexcept {
  static ExecutionContext context;  // serial until a pool is attached
  return context;
}
}  // namespace

std::size_t physical_concurrency() noexcept {
  static const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return cores;
}

const ExecutionContext& linalg_context() noexcept {
  return mutable_linalg_context();
}

void set_linalg_pool(ThreadPool* pool) noexcept {
  mutable_linalg_context() = ExecutionContext(pool, nullptr);
}

}  // namespace pardpp
