#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "parallel/execution.h"
#include "support/error.h"

namespace pardpp {

namespace {

// Householder reduction of a symmetric matrix to tridiagonal form.
// On exit `z` holds the accumulated orthogonal transformation, `d` the
// diagonal and `e` the subdiagonal (e[0] unused). Classic tred2. With
// `want_vectors == false` the transformation is not accumulated.
void tred2(Matrix& z, std::vector<double>& d, std::vector<double>& e,
           bool want_vectors = true) {
  const int n = static_cast<int>(z.rows());
  for (int i = n - 1; i >= 1; --i) {
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k)
        scale += std::abs(z(static_cast<std::size_t>(i), static_cast<std::size_t>(k)));
      if (scale == 0.0) {
        e[static_cast<std::size_t>(i)] =
            z(static_cast<std::size_t>(i), static_cast<std::size_t>(l));
      } else {
        for (int k = 0; k <= l; ++k) {
          auto& zik = z(static_cast<std::size_t>(i), static_cast<std::size_t>(k));
          zik /= scale;
          h += zik * zik;
        }
        double f = z(static_cast<std::size_t>(i), static_cast<std::size_t>(l));
        double g = (f >= 0.0 ? -std::sqrt(h) : std::sqrt(h));
        e[static_cast<std::size_t>(i)] = scale * g;
        h -= f * g;
        z(static_cast<std::size_t>(i), static_cast<std::size_t>(l)) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          z(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) =
              z(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k)
            g += z(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) *
                 z(static_cast<std::size_t>(i), static_cast<std::size_t>(k));
          for (int k = j + 1; k <= l; ++k)
            g += z(static_cast<std::size_t>(k), static_cast<std::size_t>(j)) *
                 z(static_cast<std::size_t>(i), static_cast<std::size_t>(k));
          e[static_cast<std::size_t>(j)] = g / h;
          f += e[static_cast<std::size_t>(j)] *
               z(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
        }
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = z(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
          g = e[static_cast<std::size_t>(j)] - hh * f;
          e[static_cast<std::size_t>(j)] = g;
          for (int k = 0; k <= j; ++k)
            z(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) -=
                f * e[static_cast<std::size_t>(k)] +
                g * z(static_cast<std::size_t>(i), static_cast<std::size_t>(k));
        }
      }
    } else {
      e[static_cast<std::size_t>(i)] =
          z(static_cast<std::size_t>(i), static_cast<std::size_t>(l));
    }
    d[static_cast<std::size_t>(i)] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  if (!want_vectors) {
    for (int i = 0; i < n; ++i)
      d[static_cast<std::size_t>(i)] =
          z(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
    return;
  }
  for (int i = 0; i < n; ++i) {
    const int l = i - 1;
    if (d[static_cast<std::size_t>(i)] != 0.0) {
      // Applying Householder rotation i to the accumulated transformation:
      // each column j reads only row i / column i (never written here) and
      // writes only column j, so the columns are one parallel round. This
      // is the O(n^3) term of the reduction.
      const auto rotate_column = [&](std::size_t j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k)
          g += z(static_cast<std::size_t>(i), static_cast<std::size_t>(k)) *
               z(static_cast<std::size_t>(k), j);
        for (int k = 0; k <= l; ++k)
          z(static_cast<std::size_t>(k), j) -=
              g * z(static_cast<std::size_t>(k), static_cast<std::size_t>(i));
      };
      const ExecutionContext& ctx = linalg_context();
      if (l >= 127 && ctx.can_fan_out()) {
        ctx.for_each(0, static_cast<std::size_t>(l + 1), rotate_column);
      } else {
        for (int j = 0; j <= l; ++j)
          rotate_column(static_cast<std::size_t>(j));
      }
    }
    d[static_cast<std::size_t>(i)] =
        z(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
    z(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = 1.0;
    for (int j = 0; j <= l; ++j) {
      z(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) = 0.0;
      z(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on a tridiagonal matrix, accumulating the
// rotations into the eigenvector matrix `z` when `want_vectors`. Classic
// tqli.
void tql2(std::vector<double>& d, std::vector<double>& e, Matrix& z,
          bool want_vectors = true) {
  const int n = static_cast<int>(d.size());
  for (int i = 1; i < n; ++i) e[static_cast<std::size_t>(i - 1)] = e[static_cast<std::size_t>(i)];
  e[static_cast<std::size_t>(n - 1)] = 0.0;
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = l;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[static_cast<std::size_t>(m)]) +
                          std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        check_numeric(iter++ < 64, "tql2: QL iteration failed to converge");
        double g = (d[static_cast<std::size_t>(l + 1)] - d[static_cast<std::size_t>(l)]) /
                   (2.0 * e[static_cast<std::size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
            e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[static_cast<std::size_t>(i)];
          const double b = c * e[static_cast<std::size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<std::size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<std::size_t>(i + 1)] -= p;
            e[static_cast<std::size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<std::size_t>(i + 1)] - p;
          r = (d[static_cast<std::size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<std::size_t>(i + 1)] = g + p;
          g = c * r - b;
          if (want_vectors) {
            for (int k = 0; k < n; ++k) {
              f = z(static_cast<std::size_t>(k), static_cast<std::size_t>(i + 1));
              z(static_cast<std::size_t>(k), static_cast<std::size_t>(i + 1)) =
                  s * z(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) + c * f;
              z(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) =
                  c * z(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<std::size_t>(l)] -= p;
        e[static_cast<std::size_t>(l)] = g;
        e[static_cast<std::size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
}

// Sorts eigenpairs ascending by eigenvalue.
SymmetricEigen sorted(std::vector<double> d, Matrix z) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&d](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = z(i, order[j]);
  }
  return out;
}

}  // namespace

SymmetricEigen symmetric_eigen(const Matrix& a) {
  check_arg(a.square(), "symmetric_eigen: matrix not square");
  const std::size_t n = a.rows();
  if (n == 0) return {{}, Matrix(0, 0)};
  Matrix z = a;
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  if (n == 1) {
    d[0] = a(0, 0);
    z(0, 0) = 1.0;
    return {std::move(d), std::move(z)};
  }
  tred2(z, d, e);
  tql2(d, e, z);
  return sorted(std::move(d), std::move(z));
}

SymmetricEigen jacobi_eigen(const Matrix& a, int max_sweeps, double tol) {
  check_arg(a.square(), "jacobi_eigen: matrix not square");
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::identity(n);
  const double scale = std::max(a.max_abs(), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    if (std::sqrt(off) <= tol * scale * static_cast<double>(n)) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)), theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = m(i, i);
  return sorted(std::move(d), std::move(v));
}

std::vector<double> symmetric_eigenvalues(const Matrix& a) {
  check_arg(a.square(), "symmetric_eigenvalues: matrix not square");
  const std::size_t n = a.rows();
  if (n == 0) return {};
  Matrix z = a;
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  if (n == 1) {
    d[0] = a(0, 0);
    return d;
  }
  tred2(z, d, e, /*want_vectors=*/false);
  tql2(d, e, z, /*want_vectors=*/false);
  std::sort(d.begin(), d.end());
  return d;
}

double spectral_norm_symmetric(const Matrix& a) {
  const auto eigen = symmetric_eigen(a);
  double best = 0.0;
  for (const double v : eigen.values) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace pardpp
