// AVX2+FMA arm of the dispatched microkernels (linalg/simd.h) — the one
// translation unit in the build carrying ISA flags (-mavx2 -mfma, attached
// by src/CMakeLists.txt together with PARDPP_SIMD_HAVE_AVX2). Nothing in
// here may be called unless simd::avx2_supported() reported true at
// dispatch time; without the macro the TU compiles to nothing, keeping
// non-x86 and old-compiler builds portable.
//
// Reduction-order contract (DESIGN.md §2 convention 10): each kernel's
// summation order is a pure function of n — 16-element blocks into four
// independent vector accumulators, a 4-element loop folding into the
// first accumulator, a scalar tail, then the fixed combine
// hsum((acc0+acc1)+(acc2+acc3)) + tail with hsum adding lanes as
// ((l0+l1)+(l2+l3)). Unaligned loads throughout: penalty-free on the
// 64-byte-aligned Matrix storage, correct on the ragged offsets the
// bordered-Cholesky and half-solve paths produce.
#if defined(PARDPP_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>

#include "linalg/simd_block.inl"

namespace pardpp::simd::detail {

namespace {

/// Lane sum in the fixed order ((l0+l1)+(l2+l3)).
inline double hsum(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d lo_pair = _mm_hadd_pd(lo, lo);  // l0+l1
  const __m128d hi_pair = _mm_hadd_pd(hi, hi);  // l2+l3
  return _mm_cvtsd_f64(_mm_add_sd(lo_pair, hi_pair));
}

}  // namespace

double dot_avx2(const double* a, const double* b, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  const __m256d sum =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  return hsum(sum) + tail;
}

void dot4_avx2(const double* a, const double* b0, const double* b1,
               const double* b2, const double* b3, std::size_t n,
               double* out) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d av = _mm256_loadu_pd(a + i);
    acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + i), acc0);
    acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + i), acc1);
    acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + i), acc2);
    acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + i), acc3);
  }
  double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
  for (; i < n; ++i) {
    const double av = a[i];
    t0 += av * b0[i];
    t1 += av * b1[i];
    t2 += av * b2[i];
    t3 += av * b3[i];
  }
  // Transposed reduction: hadd pairs lanes as (l0+l1) and (l2+l3), the
  // permutes regroup per accumulator, and one vector add finishes all
  // four sums — the same ((l0+l1)+(l2+l3))+tail order as hsum(), without
  // four serial lane-sum chains.
  const __m256d h01 = _mm256_hadd_pd(acc0, acc1);
  const __m256d h23 = _mm256_hadd_pd(acc2, acc3);
  const __m256d lo = _mm256_permute2f128_pd(h01, h23, 0x20);
  const __m256d hi = _mm256_permute2f128_pd(h01, h23, 0x31);
  const __m256d tails = _mm256_set_pd(t3, t2, t1, t0);
  _mm256_storeu_pd(out, _mm256_add_pd(_mm256_add_pd(lo, hi), tails));
}

void axpy_avx2(double* y, double alpha, const double* x,
               std::size_t n) noexcept {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(
        y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                   _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scaled_copy_avx2(double* dst, double s, const double* src,
                      std::size_t n) noexcept {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(vs, _mm256_loadu_pd(src + i)));
  for (; i < n; ++i) dst[i] = s * src[i];
}

namespace {

/// Primitive set the shared blocked nests (simd_block.inl) instantiate
/// against for this arm; defined in this TU so the calls inline under
/// the TU's -mavx2 -mfma flags.
struct Avx2Prims {
  static constexpr bool kPackedGemm = true;
  static double dot(const double* a, const double* b, std::size_t n) noexcept {
    return dot_avx2(a, b, n);
  }
  static void dot4(const double* a, const double* b0, const double* b1,
                   const double* b2, const double* b3, std::size_t n,
                   double* out) noexcept {
    dot4_avx2(a, b0, b1, b2, b3, n, out);
  }
  /// 4 x 8 GEMM tile against a packed (transposed, contiguous k x 8) B
  /// tile: the output tile lives in eight register accumulators across
  /// the whole k loop — two contiguous loads, four broadcasts, eight
  /// FMAs per k step, no lane reduction per output.
  static void gemm_pack_4x8(double* c, std::size_t ldc, const double* a,
                            std::size_t lda, const double* bt,
                            std::size_t k) noexcept {
    __m256d acc0l = _mm256_setzero_pd(), acc0h = _mm256_setzero_pd();
    __m256d acc1l = _mm256_setzero_pd(), acc1h = _mm256_setzero_pd();
    __m256d acc2l = _mm256_setzero_pd(), acc2h = _mm256_setzero_pd();
    __m256d acc3l = _mm256_setzero_pd(), acc3h = _mm256_setzero_pd();
    const double* a0 = a;
    const double* a1 = a + lda;
    const double* a2 = a + 2 * lda;
    const double* a3 = a + 3 * lda;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const __m256d bl = _mm256_loadu_pd(bt + kk * 8);
      const __m256d bh = _mm256_loadu_pd(bt + kk * 8 + 4);
      const __m256d v0 = _mm256_set1_pd(a0[kk]);
      const __m256d v1 = _mm256_set1_pd(a1[kk]);
      const __m256d v2 = _mm256_set1_pd(a2[kk]);
      const __m256d v3 = _mm256_set1_pd(a3[kk]);
      acc0l = _mm256_fmadd_pd(v0, bl, acc0l);
      acc0h = _mm256_fmadd_pd(v0, bh, acc0h);
      acc1l = _mm256_fmadd_pd(v1, bl, acc1l);
      acc1h = _mm256_fmadd_pd(v1, bh, acc1h);
      acc2l = _mm256_fmadd_pd(v2, bl, acc2l);
      acc2h = _mm256_fmadd_pd(v2, bh, acc2h);
      acc3l = _mm256_fmadd_pd(v3, bl, acc3l);
      acc3h = _mm256_fmadd_pd(v3, bh, acc3h);
    }
    _mm256_storeu_pd(c, acc0l);
    _mm256_storeu_pd(c + 4, acc0h);
    _mm256_storeu_pd(c + ldc, acc1l);
    _mm256_storeu_pd(c + ldc + 4, acc1h);
    _mm256_storeu_pd(c + 2 * ldc, acc2l);
    _mm256_storeu_pd(c + 2 * ldc + 4, acc2h);
    _mm256_storeu_pd(c + 3 * ldc, acc3l);
    _mm256_storeu_pd(c + 3 * ldc + 4, acc3h);
  }
  /// 4 x 8 SYRK tile: tile[ii][jj] = sum_p ca[p*stride+ii]*cb[p*stride+jj].
  /// The eight accumulators live in registers across the whole row stream;
  /// per row: two j-loads, four broadcasts, eight FMAs.
  static void opacc_4x8(double* tile, const double* ca, const double* cb,
                        std::size_t r, std::size_t stride) noexcept {
    __m256d acc0l = _mm256_setzero_pd(), acc0h = _mm256_setzero_pd();
    __m256d acc1l = _mm256_setzero_pd(), acc1h = _mm256_setzero_pd();
    __m256d acc2l = _mm256_setzero_pd(), acc2h = _mm256_setzero_pd();
    __m256d acc3l = _mm256_setzero_pd(), acc3h = _mm256_setzero_pd();
    for (std::size_t p = 0; p < r; ++p) {
      const double* ap = ca + p * stride;
      const double* bp = cb + p * stride;
      const __m256d bl = _mm256_loadu_pd(bp);
      const __m256d bh = _mm256_loadu_pd(bp + 4);
      const __m256d a0 = _mm256_set1_pd(ap[0]);
      const __m256d a1 = _mm256_set1_pd(ap[1]);
      const __m256d a2 = _mm256_set1_pd(ap[2]);
      const __m256d a3 = _mm256_set1_pd(ap[3]);
      acc0l = _mm256_fmadd_pd(a0, bl, acc0l);
      acc0h = _mm256_fmadd_pd(a0, bh, acc0h);
      acc1l = _mm256_fmadd_pd(a1, bl, acc1l);
      acc1h = _mm256_fmadd_pd(a1, bh, acc1h);
      acc2l = _mm256_fmadd_pd(a2, bl, acc2l);
      acc2h = _mm256_fmadd_pd(a2, bh, acc2h);
      acc3l = _mm256_fmadd_pd(a3, bl, acc3l);
      acc3h = _mm256_fmadd_pd(a3, bh, acc3h);
    }
    _mm256_storeu_pd(tile + 0, acc0l);
    _mm256_storeu_pd(tile + 4, acc0h);
    _mm256_storeu_pd(tile + 8, acc1l);
    _mm256_storeu_pd(tile + 12, acc1h);
    _mm256_storeu_pd(tile + 16, acc2l);
    _mm256_storeu_pd(tile + 20, acc2h);
    _mm256_storeu_pd(tile + 24, acc3l);
    _mm256_storeu_pd(tile + 28, acc3h);
  }
};

}  // namespace

void gemm_nt_avx2(double* c, std::size_t ldc, const double* a,
                  std::size_t lda, std::size_t m, const double* b,
                  std::size_t ldb, std::size_t n, std::size_t k) noexcept {
  gemm_nt_blocked<Avx2Prims>(c, ldc, a, lda, m, b, ldb, n, k);
}

void syrk_ut_avx2(double* c, std::size_t ldc, double alpha, const double* a,
                  std::size_t r, std::size_t n, std::size_t stride) noexcept {
  syrk_ut_blocked<Avx2Prims>(c, ldc, alpha, a, r, n, stride);
}

}  // namespace pardpp::simd::detail

#endif  // PARDPP_SIMD_HAVE_AVX2
