// Counting oracle for perfect matchings of a planar graph.
//
// #PM(G) = |Pf(A)| for the FKT-oriented skew adjacency matrix (Kasteleyn).
// Conditioning — the only operation the samplers need — deletes *matched
// pairs* (adjacent vertex pairs): restricting A to the surviving vertices
// stays Pfaffian because a deleted edge's endpoints always lie on the same
// side of any cycle of the remaining graph, so the parity of enclosed
// vertices (and with it the sign-consistency of the Pfaffian expansion)
// is preserved. Deleting arbitrary vertex sets would NOT be sound.
#pragma once

#include "linalg/matrix.h"
#include "planar/fkt.h"
#include "planar/graph.h"

namespace pardpp {

class MatchingCounter {
 public:
  /// Builds the FKT orientation for a connected planar graph.
  explicit MatchingCounter(const PlanarGraph& g);

  [[nodiscard]] const PlanarGraph& graph() const { return *graph_; }
  [[nodiscard]] const Matrix& kasteleyn() const { return orientation_.matrix; }

  /// log #PM(G); -inf when G has no perfect matching.
  [[nodiscard]] double log_count() const;

  /// log #PM of the induced subgraph on `alive` — valid when the removed
  /// vertices form a union of matched pairs (see header comment).
  [[nodiscard]] double log_count_alive(std::span<const int> alive) const;

 private:
  const PlanarGraph* graph_;
  KasteleynOrientation orientation_;
};

}  // namespace pardpp
