// Samplers for uniformly random perfect matchings of planar graphs.
//
// * sample_matching_sequential: the classic depth-Theta(n/2) reduction —
//   match the lowest unmatched vertex by drawing its partner from the
//   conditional edge marginals #PM(G - {v,u}) / #PM(G - v matched), repeat.
// * sample_matching_separator (Theorem 11): find an O(sqrt(n)) balanced
//   separator, match its vertices sequentially, then recurse *in parallel*
//   on the disconnected components, giving depth
//   D(n) = O(sqrt(n)) + D(2n/3) = O(sqrt(n)).
//
// Both draw partners from Pfaffian counts restricted to the currently
// alive vertices; per-component restriction is sound because every removed
// vertex set is a union of matched (adjacent) pairs plus whole even-sized
// components (see matching_count.h).
#pragma once

#include "parallel/thread_pool.h"
#include "planar/enumerate.h"
#include "planar/graph.h"
#include "planar/matching_count.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

struct MatchingResult {
  Matching matching;
  SampleDiagnostics diag;
};

/// Exact uniform perfect matching, sequential baseline. Throws
/// SamplingFailure when the graph has no perfect matching.
[[nodiscard]] MatchingResult sample_matching_sequential(
    const PlanarGraph& g, RandomStream& rng, PramLedger* ledger = nullptr);

struct SeparatorSamplerOptions {
  /// Components at or below this size are finished sequentially.
  std::size_t base_cutoff = 6;
  /// Run sibling components on the shared thread pool.
  bool parallel_components = true;
};

/// Exact uniform perfect matching via separator recursion (Theorem 11).
[[nodiscard]] MatchingResult sample_matching_separator(
    const PlanarGraph& g, RandomStream& rng, PramLedger* ledger = nullptr,
    const SeparatorSamplerOptions& options = {});

}  // namespace pardpp
