// Combinatorial helpers: log-factorials, log-binomials, and enumeration of
// fixed-size subsets. The enumeration utilities power the brute-force
// ground-truth distributions used throughout the test suite and the exact
// KL-divergence measurements of bench_lemma36.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "support/error.h"

namespace pardpp {

/// log(n!) via lgamma.
[[nodiscard]] inline double log_factorial(std::size_t n) noexcept {
#if defined(__GLIBC__) && defined(__USE_MISC)
  // glibc's std::lgamma writes the process-global `signgam` — a data
  // race when oracles evaluate counting queries concurrently. n! is
  // positive, so the sign output of the reentrant variant is discarded.
  // (__USE_MISC is glibc's own gate for the lgamma_r declaration; strict
  // -ansi configurations fall back to std::lgamma below.)
  int sign = 0;
  return ::lgamma_r(static_cast<double>(n) + 1.0, &sign);
#else
  return std::lgamma(static_cast<double>(n) + 1.0);
#endif
}

/// log C(n, k); returns -inf when k > n.
[[nodiscard]] inline double log_binomial(std::size_t n, std::size_t k) noexcept {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

/// Exact binomial coefficient as double (callers keep n small).
[[nodiscard]] inline double binomial(std::size_t n, std::size_t k) noexcept {
  if (k > n) return 0.0;
  return std::exp(log_binomial(n, k));
}

/// Advances `comb` (strictly increasing, values in [0, n)) to the next
/// k-combination in lexicographic order. Returns false after the last one.
[[nodiscard]] inline bool next_combination(std::vector<int>& comb, int n) {
  const int k = static_cast<int>(comb.size());
  int i = k - 1;
  while (i >= 0 && comb[static_cast<std::size_t>(i)] == n - k + i) --i;
  if (i < 0) return false;
  ++comb[static_cast<std::size_t>(i)];
  for (int j = i + 1; j < k; ++j)
    comb[static_cast<std::size_t>(j)] = comb[static_cast<std::size_t>(j - 1)] + 1;
  return true;
}

/// Calls `fn(subset)` for every k-subset of {0,...,n-1} in lexicographic
/// order. Intended for test-scale n only.
inline void for_each_subset(int n, int k,
                            const std::function<void(std::span<const int>)>& fn) {
  check_arg(n >= 0 && k >= 0, "for_each_subset: negative sizes");
  if (k > n) return;
  std::vector<int> comb(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) comb[static_cast<std::size_t>(i)] = i;
  if (k == 0) {
    fn(std::span<const int>{});
    return;
  }
  do {
    fn(std::span<const int>(comb));
  } while (next_combination(comb, n));
}

/// Bidirectional rank/unrank between k-subsets of {0..n-1} and their
/// lexicographic index in [0, C(n,k)). Used to build exact probability
/// tables over a subset domain.
class SubsetIndexer {
 public:
  SubsetIndexer(int n, int k) : n_(n), k_(k) {
    check_arg(n >= 0 && k >= 0 && k <= n, "SubsetIndexer: need 0 <= k <= n");
    // Pascal table of C(i, j) for i <= n, j <= k.
    table_.assign(static_cast<std::size_t>(n + 1),
                  std::vector<double>(static_cast<std::size_t>(k + 1), 0.0));
    for (int i = 0; i <= n; ++i) {
      table_[static_cast<std::size_t>(i)][0] = 1.0;
      for (int j = 1; j <= std::min(i, k); ++j) {
        table_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            table_[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(j - 1)] +
            table_[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(j)];
      }
    }
  }

  /// Number of k-subsets.
  [[nodiscard]] std::size_t count() const {
    return static_cast<std::size_t>(
        table_[static_cast<std::size_t>(n_)][static_cast<std::size_t>(k_)]);
  }

  /// Lexicographic rank of a strictly increasing subset.
  [[nodiscard]] std::size_t rank(std::span<const int> subset) const {
    check_arg(static_cast<int>(subset.size()) == k_, "rank: wrong subset size");
    double r = 0.0;
    int prev = -1;
    for (int j = 0; j < k_; ++j) {
      const int x = subset[static_cast<std::size_t>(j)];
      check_arg(x > prev && x < n_, "rank: subset not increasing in range");
      for (int v = prev + 1; v < x; ++v) {
        r += choose(n_ - 1 - v, k_ - 1 - j);
      }
      prev = x;
    }
    return static_cast<std::size_t>(r);
  }

  /// Inverse of rank().
  [[nodiscard]] std::vector<int> unrank(std::size_t index) const {
    std::vector<int> subset(static_cast<std::size_t>(k_));
    double r = static_cast<double>(index);
    int v = 0;
    for (int j = 0; j < k_; ++j) {
      while (true) {
        const double block = choose(n_ - 1 - v, k_ - 1 - j);
        if (r < block) break;
        r -= block;
        ++v;
      }
      subset[static_cast<std::size_t>(j)] = v;
      ++v;
    }
    return subset;
  }

 private:
  [[nodiscard]] double choose(int n, int k) const {
    if (k < 0 || n < 0 || k > n) return 0.0;
    return table_[static_cast<std::size_t>(n)][static_cast<std::size_t>(k)];
  }

  int n_;
  int k_;
  std::vector<std::vector<double>> table_;
};

}  // namespace pardpp
