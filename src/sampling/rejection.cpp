#include "sampling/rejection.h"

#include <cmath>
#include <vector>

#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

RejectionOutcome rejection_sample_finite(std::span<const double> log_target,
                                         std::span<const double> log_proposal,
                                         double log_cap, std::size_t machines,
                                         RandomStream& rng) {
  check_arg(log_target.size() == log_proposal.size(),
            "rejection_sample_finite: domain size mismatch");
  const double log_zt = logsumexp(log_target);
  const double log_zp = logsumexp(log_proposal);
  check_arg(log_zt != kNegInf && log_zp != kNegInf,
            "rejection_sample_finite: degenerate masses");
  std::vector<double> proposal_probs(log_proposal.size());
  for (std::size_t i = 0; i < proposal_probs.size(); ++i)
    proposal_probs[i] = std::exp(log_proposal[i] - log_zp);

  RejectionOutcome out;
  for (std::size_t trial = 0; trial < machines; ++trial) {
    ++out.proposals_used;
    const std::size_t i = rng.categorical(proposal_probs);
    const double log_ratio =
        (log_target[i] - log_zt) - (log_proposal[i] - log_zp);
    if (log_ratio > log_cap + 1e-12) {
      ++out.overflows;  // outside Omega: Algorithm 3 rejects outright
      continue;
    }
    if (rng.bernoulli(std::exp(log_ratio - log_cap))) {
      out.value = i;
      return out;
    }
  }
  return out;
}

}  // namespace pardpp
