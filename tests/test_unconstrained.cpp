// Tests for the unconstrained-DPP entry point (Remark 15 composition +
// Theorem 41 strategy dispatch) and the ExplicitOracle.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "distributions/explicit.h"
#include "dpp/ensemble.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "sampling/batched.h"
#include "sampling/sequential.h"
#include "sampling/unconstrained.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

std::map<std::uint64_t, double> exact_dpp_distribution(const Matrix& l) {
  const int n = static_cast<int>(l.rows());
  std::map<std::uint64_t, double> out;
  double z = 0.0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < n; ++i)
      if ((mask >> i) & 1ull) subset.push_back(i);
    double mass = subset.empty() ? 1.0 : det_small(l.principal(subset));
    out[mask] = std::max(mass, 0.0);
    z += out[mask];
  }
  for (auto& [mask, p] : out) p /= z;
  return out;
}

std::uint64_t to_mask(std::span<const int> subset) {
  std::uint64_t mask = 0;
  for (const int i : subset) mask |= (1ull << i);
  return mask;
}

TEST(SampleDpp, SymmetricCardinalityRouteDistribution) {
  RandomStream rng(7001);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  const auto exact = exact_dpp_distribution(l);
  UnconstrainedOptions options;
  options.strategy = UnconstrainedOptions::Strategy::kCardinality;
  std::map<std::uint64_t, std::size_t> counts;
  const int trials = 25000;
  for (int i = 0; i < trials; ++i) {
    const auto result = sample_dpp(l, true, rng, nullptr, options);
    EXPECT_EQ(result.strategy_used, "cardinality+batched");
    ++counts[to_mask(result.items)];
  }
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.05);
}

TEST(SampleDpp, NonsymmetricDistribution) {
  RandomStream rng(7002);
  const Matrix l = random_npsd(5, rng, 0.6);
  const auto exact = exact_dpp_distribution(l);
  std::map<std::uint64_t, std::size_t> counts;
  const int trials = 15000;
  for (int i = 0; i < trials; ++i) {
    const auto result = sample_dpp(l, false, rng);
    EXPECT_EQ(result.strategy_used, "cardinality+entropic");
    ++counts[to_mask(result.items)];
  }
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.06);
}

TEST(SampleDpp, AutoDispatchPicksTraceForLowTrace) {
  RandomStream rng(7003);
  // Tiny trace, large sigma: sqrt(tr K) < sigma sqrt(n) => cardinality.
  std::vector<double> spectrum(16, 0.005);
  spectrum[15] = 0.9;
  const Matrix l =
      ensemble_from_kernel(kernel_with_spectrum(spectrum, rng));
  const auto result = sample_dpp(l, true, rng);
  EXPECT_EQ(result.strategy_used, "cardinality+batched");
}

TEST(SampleDpp, AutoDispatchPicksFilteringForFlatSpectrum) {
  RandomStream rng(7004);
  // Flat moderate spectrum: tr K = 0.35 n, sigma = 0.35:
  // sqrt(tr K) = sqrt(5.6) = 2.37 > sigma sqrt(n) = 1.4 => filtering.
  std::vector<double> spectrum(16, 0.35);
  const Matrix l =
      ensemble_from_kernel(kernel_with_spectrum(spectrum, rng));
  const auto result = sample_dpp(l, true, rng);
  EXPECT_EQ(result.strategy_used, "filtering");
}

TEST(SampleDpp, FilteringRouteDistribution) {
  RandomStream rng(7005);
  std::vector<double> spectrum = {0.5, 0.4, 0.35, 0.3, 0.25};
  const Matrix l =
      ensemble_from_kernel(kernel_with_spectrum(spectrum, rng));
  const auto exact = exact_dpp_distribution(l);
  UnconstrainedOptions options;
  options.strategy = UnconstrainedOptions::Strategy::kFiltering;
  std::map<std::uint64_t, std::size_t> counts;
  const int trials = 12000;
  for (int i = 0; i < trials; ++i)
    ++counts[to_mask(sample_dpp(l, true, rng, nullptr, options).items)];
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.06);
}

TEST(SampleDpp, FilteringRejectsNonsymmetric) {
  RandomStream rng(7006);
  const Matrix l = random_npsd(5, rng, 0.5);
  UnconstrainedOptions options;
  options.strategy = UnconstrainedOptions::Strategy::kFiltering;
  EXPECT_THROW((void)sample_dpp(l, false, rng, nullptr, options),
               InvalidArgument);
}

// ---- ExplicitOracle ----

TEST(ExplicitOracle, MatchesHandComputedMeasure) {
  // mu on 2-subsets of {0..3} with mass = (i+1)(j+1).
  const ExplicitOracle oracle(4, 2, [](std::span<const int> s) {
    return std::log(static_cast<double>((s[0] + 1) * (s[1] + 1)));
  });
  // Z = sum over pairs: 1*2+1*3+1*4+2*3+2*4+3*4 = 35.
  const std::vector<int> t01 = {0, 1};
  EXPECT_NEAR(std::exp(oracle.log_probability(t01)), 2.0 / 35.0, 1e-12);
  const std::vector<int> t3 = {3};
  // P[3 in S] = (4 + 8 + 12)/35.
  EXPECT_NEAR(std::exp(oracle.log_joint_marginal(t3)), 24.0 / 35.0, 1e-12);
  const auto p = oracle.marginals();
  EXPECT_NEAR(p[0], (2.0 + 3.0 + 4.0) / 35.0, 1e-12);
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST(ExplicitOracle, SamplersWorkOnCustomMeasure) {
  // A deliberately non-determinantal measure; the sequential sampler is
  // exact on any oracle and the entropic sampler approximates it.
  RandomStream rng(7101);
  const ExplicitOracle oracle(7, 3, [](std::span<const int> s) {
    // Mass favors spread-out subsets: product of gaps.
    double mass = 1.0;
    for (std::size_t i = 1; i < s.size(); ++i)
      mass *= static_cast<double>(s[i] - s[i - 1]);
    return std::log(mass);
  });
  const auto exact = testing::exact_distribution(
      7, 3, [](std::span<const int> s) {
        double mass = 1.0;
        for (std::size_t i = 1; i < s.size(); ++i)
          mass *= static_cast<double>(s[i] - s[i - 1]);
        return std::log(mass);
      });
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(sample_sequential(oracle, rng).items);
  EXPECT_LT(testing::empirical_tv(exact, samples), 0.04);
}

TEST(ExplicitOracle, ConditioningAndNullEvents) {
  const ExplicitOracle oracle(5, 2, [](std::span<const int> s) {
    // Only adjacent pairs allowed.
    return s[1] == s[0] + 1 ? 0.0 : kNegInf;
  });
  const std::vector<int> t0 = {0};
  const auto conditioned = oracle.condition(t0);
  // Given 0 in S, partner must be 1 (new index 0).
  const auto p = conditioned->marginals();
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  const std::vector<int> t4 = {0, 3};  // {0, 3} not adjacent: null event
  EXPECT_EQ(oracle.log_joint_marginal(t4), kNegInf);
  EXPECT_THROW((void)oracle.condition(t4), NumericalError);
}

}  // namespace
}  // namespace pardpp
