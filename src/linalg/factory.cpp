#include "linalg/factory.h"

#include <algorithm>
#include <cmath>

#include "linalg/symmetric_eigen.h"
#include "support/error.h"

namespace pardpp {

Matrix random_gaussian(std::size_t rows, std::size_t cols, RandomStream& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal();
  return m;
}

Matrix random_psd(std::size_t n, std::size_t rank, RandomStream& rng,
                  double ridge) {
  check_arg(rank >= 1, "random_psd: rank must be positive");
  const Matrix b = random_gaussian(n, rank, rng);
  Matrix l = b * b.transpose();
  l *= 1.0 / static_cast<double>(rank);
  for (std::size_t i = 0; i < n; ++i) l(i, i) += ridge;
  return l;
}

Matrix random_npsd(std::size_t n, RandomStream& rng, double skew_scale,
                   std::size_t rank) {
  if (rank == 0) rank = n;
  Matrix s = random_psd(n, rank, rng, 1e-4);
  const double s_scale = std::max(s.max_abs(), 1e-12);
  Matrix l = std::move(s);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.normal() * skew_scale * s_scale /
                       std::sqrt(static_cast<double>(n));
      l(i, j) += w;
      l(j, i) -= w;
    }
  }
  return l;
}

Matrix random_points(std::size_t n, std::size_t dim, RandomStream& rng) {
  Matrix pts(n, dim);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < dim; ++d) pts(i, d) = rng.uniform();
  return pts;
}

Matrix rbf_kernel(const Matrix& points, double bandwidth) {
  check_arg(bandwidth > 0.0, "rbf_kernel: bandwidth must be positive");
  const std::size_t n = points.rows();
  Matrix k(n, n);
  const double inv = 1.0 / (2.0 * bandwidth * bandwidth);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < points.cols(); ++d) {
        const double diff = points(i, d) - points(j, d);
        d2 += diff * diff;
      }
      const double v = std::exp(-d2 * inv);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix random_orthonormal(std::size_t n, std::size_t k, RandomStream& rng) {
  check_arg(k <= n, "random_orthonormal: need k <= n");
  Matrix v = random_gaussian(n, k, rng);
  // Modified Gram-Schmidt with re-orthogonalization pass.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += v(i, j) * v(i, prev);
        for (std::size_t i = 0; i < n; ++i) v(i, j) -= dot * v(i, prev);
      }
      double norm = 0.0;
      for (std::size_t i = 0; i < n; ++i) norm += v(i, j) * v(i, j);
      norm = std::sqrt(norm);
      check_numeric(norm > 1e-12, "random_orthonormal: degenerate column");
      for (std::size_t i = 0; i < n; ++i) v(i, j) /= norm;
    }
  }
  return v;
}

Matrix kernel_with_spectrum(std::span<const double> spectrum,
                            RandomStream& rng) {
  const std::size_t n = spectrum.size();
  const Matrix q = random_orthonormal(n, n, rng);
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t m = 0; m < n; ++m)
        acc += q(i, m) * spectrum[m] * q(j, m);
      k(i, j) = acc;
    }
  }
  // Exact symmetry despite roundoff.
  return k.symmetric_part();
}

Matrix scaled_to_spectral_norm(Matrix m, double target) {
  check_arg(target > 0.0, "scaled_to_spectral_norm: target must be positive");
  const double norm = spectral_norm_symmetric(m);
  if (norm <= 0.0) return m;
  m *= target / norm;
  return m;
}

std::vector<int> random_partition(std::size_t n, std::size_t r,
                                  RandomStream& rng) {
  check_arg(r >= 1 && r <= n, "random_partition: need 1 <= r <= n");
  std::vector<int> part(n);
  // Guarantee non-empty parts, then fill uniformly.
  for (std::size_t i = 0; i < r; ++i) part[i] = static_cast<int>(i);
  for (std::size_t i = r; i < n; ++i)
    part[i] = static_cast<int>(rng.uniform_index(r));
  rng.shuffle(part);
  return part;
}

}  // namespace pardpp
