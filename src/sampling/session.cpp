#include "sampling/session.h"

#include <cstddef>
#include <exception>
#include <iterator>
#include <optional>
#include <string>
#include <utility>

#include "sampling/sequential.h"
#include "support/failpoint.h"

namespace pardpp {

namespace {

/// Source of SessionHealth::session_epoch: process-wide, monotone,
/// starting at 1 so 0 reads as "no session".
std::uint64_t next_session_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void RecoveryOptions::validate() const {
  if (!enabled) return;
  check_arg(max_retries != 0,
            "RecoveryOptions::max_retries: enabled recovery with a zero "
            "retry budget never retries (disable recovery instead — "
            "enabling it alone already changes the per-draw stream "
            "protocol)");
  check_arg(degrade_proposal || degrade_undistilled || degrade_reference,
            "RecoveryOptions::degrade_*: enabled recovery with every "
            "ladder rung disabled can only retry the failing "
            "configuration in place");
}

void SessionOptions::validate(std::size_t sample_size) const {
  check_arg(batched.machine_cap != 0,
            "BatchedOptions::machine_cap: must be positive");
  check_arg(batched.failure_prob > 0.0 && batched.failure_prob < 1.0,
            "BatchedOptions::failure_prob: must lie in (0, 1)");
  check_arg(entropic.machine_cap != 0,
            "EntropicOptions::machine_cap: must be positive");
  check_arg(entropic.failure_prob > 0.0 && entropic.failure_prob < 1.0,
            "EntropicOptions::failure_prob: must lie in (0, 1)");
  check_arg(entropic.c > 0.0, "EntropicOptions::c: must be positive");
  check_arg(entropic.alpha > 0.0,
            "EntropicOptions::alpha: must be positive");
  recovery.validate();
  if (distill.enabled) {
    distill.validate(sample_size);
  } else {
    check_arg(!distill.persistent_proposal,
              "DistillOptions::persistent_proposal: set without "
              "distill.enabled — the persistent proposal only exists "
              "inside the distillation front end and would be silently "
              "ignored");
  }
}

SamplerSession::SamplerSession(const CountingOracle& base,
                               SessionOptions options)
    : base_(&base),
      options_(std::move(options)),
      epoch_(next_session_epoch()) {
  options_.validate(base.sample_size());
  if (options_.distill.enabled) {
    // The distillation plan is the whole point of the front end: an O(n)
    // pass over the ensemble diagonal instead of the full-n spectral
    // preprocessing, which is infeasible at the ground sizes this path
    // serves. The base oracle's caches stay cold (until a recovery rung
    // degrades to the undistilled path, which primes them lazily).
    plan_ = std::make_unique<DistillationPlan>(base, options_.distill);
    if (options_.recovery.enabled && options_.recovery.degrade_proposal &&
        options_.distill.persistent_proposal) {
      DistillOptions perdraw = options_.distill;
      perdraw.persistent_proposal = false;
      perdraw_plan_ = std::make_unique<DistillationPlan>(base, perdraw);
    }
    return;
  }
  ensure_base_primed();
}

void SamplerSession::ensure_base_primed() const {
  std::call_once(base_primed_, [this] { base_->prepare_concurrent(); });
}

std::unique_ptr<CommittedOracle> SamplerSession::make_state() const {
  return options_.use_commit ? base_->make_committed()
                             : make_condition_reference(*base_);
}

SampleResult SamplerSession::run(CommittedOracle& state,
                                 RandomStream& rng) const {
  // Draws dispatched onto pool workers must not fan out again (and the
  // nesting guard would degenerate them anyway): the round loops run on a
  // serial context, cross-sample concurrency being the session's axis.
  const ExecutionContext serial = ExecutionContext::serial();
  // The state's refresh counter is monotone across reset(); the delta
  // around one draw is that draw's eigensolve-fallback count.
  const std::size_t refreshes_before = state.spectral_refreshes();
  SampleResult result;
  switch (options_.kind) {
    case SamplerKind::kBatched:
      result = sample_batched_on(state, rng, serial, options_.batched);
      break;
    case SamplerKind::kEntropic:
      result = sample_entropic_on(state, rng, serial, options_.entropic);
      break;
    case SamplerKind::kSequential:
      result = sample_sequential_on(state, rng);
      break;
  }
  result.diag.spectral_refreshes =
      state.spectral_refreshes() - refreshes_before;
  return result;
}

SampleResult SamplerSession::draw_with_plan(const DistillationPlan& plan,
                                            RandomStream& rng) const {
  // Fresh inner state per accepted pool: the restricted oracle lives only
  // for this draw, and use_commit picks the same commit-vs-reference
  // dispatch as the full-n path — with identical per-family protocols,
  // so the distilled bit-identity contract carries over.
  try {
    return plan.draw(rng, [this](const CountingOracle& restricted,
                                 RandomStream& inner_rng) {
      const auto state = options_.use_commit
                             ? restricted.make_committed()
                             : make_condition_reference(restricted);
      return run(*state, inner_rng);
    });
  } catch (const DistillationStarvation& starved) {
    // Re-throw with the session context attached; the diagnostics struct
    // (attempts-at-failure in .proposals, duplicate_rejects, tail
    // counters) rides along unchanged for the caller's forensics.
    throw DistillationStarvation(
        std::string(starved.what()) + " [session: family " + base_->name() +
            ", kind " + sampler_kind_name(options_.kind) +
            (options_.use_commit ? ", commit path" : ", condition() reference") +
            "]",
        starved.diag);
  }
}

SampleResult SamplerSession::run_rung(Rung rung,
                                      std::unique_ptr<CommittedOracle>& slot,
                                      RandomStream& rng) const {
  switch (rung) {
    case Rung::kConfigured:
      if (plan_ != nullptr) return draw_with_plan(*plan_, rng);
      if (slot == nullptr) {
        slot = make_state();
      } else {
        slot->reset();
      }
      return run(*slot, rng);
    case Rung::kPerDrawProposal:
      return draw_with_plan(*perdraw_plan_, rng);
    case Rung::kUndistilled: {
      ensure_base_primed();
      const auto state = make_state();
      return run(*state, rng);
    }
    case Rung::kReference: {
      ensure_base_primed();
      const auto state = make_condition_reference(*base_);
      return run(*state, rng);
    }
  }
  throw Error("SamplerSession: invalid recovery rung");
}

SamplerSession::Rung SamplerSession::next_rung(Rung rung) const {
  const RecoveryOptions& rec = options_.recovery;
  const auto available = [&](Rung r) {
    switch (r) {
      case Rung::kConfigured:
        return true;
      case Rung::kPerDrawProposal:
        return rec.degrade_proposal && perdraw_plan_ != nullptr;
      case Rung::kUndistilled:
        return rec.degrade_undistilled && plan_ != nullptr;
      case Rung::kReference:
        // Only a real degradation when the session runs the commit path;
        // with use_commit = false the undistilled rung (or, undistilled
        // sessions, the configured path) already IS the reference.
        return rec.degrade_reference && options_.use_commit;
    }
    return false;
  };
  for (int r = static_cast<int>(rung) + 1;
       r <= static_cast<int>(Rung::kReference); ++r) {
    if (available(static_cast<Rung>(r))) return static_cast<Rung>(r);
  }
  return rung;  // ladder exhausted: remaining attempts retry in place
}

void SamplerSession::throw_if_poisoned() const {
  if (!poisoned_.load(std::memory_order_acquire)) return;
  std::string reason;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    reason = poison_reason_;
  }
  throw SessionPoisoned("SamplerSession: poisoned (" + reason +
                        "); rebuild the session");
}

void SamplerSession::emit(GuardEventKind kind, std::size_t index,
                          std::size_t attempt, std::string detail) const {
  if (!options_.guard_events) return;
  const std::lock_guard<std::mutex> lock(state_mutex_);
  options_.guard_events(
      GuardEvent{kind, index, attempt, std::move(detail)});
}

void SamplerSession::poison(std::size_t index, std::size_t attempt,
                            const std::string& reason) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (!poisoned_.load(std::memory_order_relaxed)) {
      poison_reason_ = reason;
      poisoned_.store(true, std::memory_order_release);
    }
  }
  emit(GuardEventKind::kPoisoned, index, attempt, reason);
}

void SamplerSession::note_success(SampleResult& result, Rung rung,
                                  std::size_t attempt, std::size_t index) {
  result.diag.recovery_retries = attempt;
  result.diag.degradation_level = static_cast<std::size_t>(rung);
  if (result.diag.spectral_refreshes > 0) {
    spectral_refreshes_.fetch_add(result.diag.spectral_refreshes,
                                  std::memory_order_relaxed);
    emit(GuardEventKind::kSpectralRefresh, index, attempt,
         std::to_string(result.diag.spectral_refreshes) + " refresh(es)");
  }
  switch (rung) {
    case Rung::kConfigured:
      break;
    case Rung::kPerDrawProposal:
      degraded_proposal_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Rung::kUndistilled:
      degraded_undistilled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Rung::kReference:
      degraded_reference_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void SamplerSession::note_failure(std::size_t index, std::size_t attempt,
                                  const std::exception_ptr& error,
                                  bool final_failure) {
  try {
    std::rethrow_exception(error);
  } catch (const DistillationStarvation& starved) {
    starvations_.fetch_add(1, std::memory_order_relaxed);
    emit(GuardEventKind::kStarvation, index, attempt, starved.what());
  } catch (const ProposalDriftError& drift) {
    proposal_drifts_.fetch_add(1, std::memory_order_relaxed);
    emit(GuardEventKind::kProposalDrift, index, attempt, drift.what());
    // An unrecovered drift indicts the shared plan: every future draw
    // through it would fail identically, so fail them fast and loudly.
    if (final_failure) poison(index, attempt, drift.what());
  } catch (const std::exception& error_obj) {
    emit(GuardEventKind::kDrawFailure, index, attempt, error_obj.what());
  } catch (...) {
    emit(GuardEventKind::kDrawFailure, index, attempt, "unknown exception");
  }
  if (final_failure) failures_.fetch_add(1, std::memory_order_relaxed);
}

SampleResult SamplerSession::draw_indexed(
    std::size_t index, RandomStream& rng,
    std::unique_ptr<CommittedOracle>& slot) {
  throw_if_poisoned();
  draws_.fetch_add(1, std::memory_order_relaxed);
  // One deterministic-firing scope per draw, keyed by the draw's stream
  // index: an armed failpoint schedule fires as a function of the index
  // alone — never of the pool size or the chunk layout — which is what
  // keeps the bit-identity contracts testable with faults injected.
  // Constructed only when armed, so the inactive cost stays one load.
  std::optional<FailpointScope> scope;
  if (FailpointRegistry::armed())
    scope.emplace(static_cast<std::uint64_t>(index));

  if (!options_.recovery.enabled) {
    try {
      SampleResult result = run_rung(Rung::kConfigured, slot, rng);
      note_success(result, Rung::kConfigured, 0, index);
      return result;
    } catch (...) {
      // Failure atomicity: the chunk state may be mid-run; discard it so
      // the next draw rebuilds from the shared caches.
      slot.reset();
      note_failure(index, 0, std::current_exception(),
                   /*final_failure=*/true);
      throw;
    }
  }

  // Recovery: attempt a consumes the stream forked from the draw's
  // stream by attempt index — the same per-index protocol draw_many uses
  // one level up — so a recovered draw is a function of (seed, index,
  // attempt sequence) and reproduces bit-identically at every pool size.
  const MachineStreams attempts(rng);
  Rung rung = Rung::kConfigured;
  const std::size_t budget = options_.recovery.max_retries;
  std::exception_ptr last;
  for (std::size_t attempt = 0; attempt <= budget; ++attempt) {
    RandomStream attempt_rng = attempts.stream(attempt);
    try {
      SampleResult result = run_rung(rung, slot, attempt_rng);
      note_success(result, rung, attempt, index);
      return result;
    } catch (const Error&) {
      slot.reset();
      last = std::current_exception();
      const bool more = attempt < budget;
      note_failure(index, attempt, last, /*final_failure=*/!more);
      if (!more) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
      const Rung next = next_rung(rung);
      if (next != rung) {
        rung = next;
        GuardEventKind kind = GuardEventKind::kRetry;
        switch (rung) {
          case Rung::kPerDrawProposal:
            kind = GuardEventKind::kDegradeProposal;
            break;
          case Rung::kUndistilled:
            kind = GuardEventKind::kDegradeUndistilled;
            break;
          case Rung::kReference:
            kind = GuardEventKind::kDegradeReference;
            break;
          case Rung::kConfigured:
            break;
        }
        emit(kind, index, attempt + 1, "");
      } else {
        emit(GuardEventKind::kRetry, index, attempt + 1, "");
      }
    } catch (...) {
      // Non-pardpp exceptions (std::bad_alloc & co.) never consume the
      // retry budget: the ladder is for the library's typed failure
      // model, not for conditions recovery cannot reason about.
      slot.reset();
      note_failure(index, attempt, std::current_exception(),
                   /*final_failure=*/true);
      throw;
    }
  }
  std::rethrow_exception(last);
}

SampleResult SamplerSession::draw(RandomStream& rng) {
  std::unique_ptr<CommittedOracle>& slot = serial_state_;
  return draw_indexed(
      serial_index_.fetch_add(1, std::memory_order_relaxed), rng, slot);
}

std::vector<SampleResult> SamplerSession::draw_many(
    std::size_t count, RandomStream& rng, const ExecutionContext& ctx) {
  throw_if_poisoned();
  std::vector<SampleResult> out(count);
  const MachineStreams streams(rng);
  ctx.for_each_chunk(
      0, count,
      [&](std::size_t lo, std::size_t hi) {
        // One committed state per chunk, built lazily by the first
        // non-distilled configured-rung draw and discarded on failure.
        std::unique_ptr<CommittedOracle> state;
        for (std::size_t i = lo; i < hi; ++i) {
          RandomStream stream = streams.stream(i);
          out[i] = draw_indexed(i, stream, state);
        }
      },
      /*grain=*/1);
  return out;
}

std::vector<DrawBatchOutcome> SamplerSession::draw_many_batched(
    const std::vector<DrawBatchRequest>& requests,
    const ExecutionContext& ctx) {
  throw_if_poisoned();
  // Per-request stream forks, each consuming exactly what a standalone
  // `RandomStream rng(seed); draw_many(count, rng, ctx)` would consume
  // (one split of the seeded root stream) — the whole determinism
  // contract lives here.
  std::vector<MachineStreams> streams;
  streams.reserve(requests.size());
  std::size_t total = 0;
  for (const DrawBatchRequest& request : requests) {
    RandomStream root(request.seed);
    streams.emplace_back(root);
    total += request.count;
  }
  // Flat index → (request, request-local draw index). The local index is
  // what draw_indexed keys streams, failpoint scopes, and guard events
  // on, so a coalesced draw is indistinguishable from its standalone
  // counterpart.
  std::vector<std::size_t> request_of(total);
  std::vector<std::size_t> local_of(total);
  {
    std::size_t flat = 0;
    for (std::size_t r = 0; r < requests.size(); ++r) {
      for (std::size_t i = 0; i < requests[r].count; ++i, ++flat) {
        request_of[flat] = r;
        local_of[flat] = i;
      }
    }
  }

  std::vector<SampleResult> flat_results(total);
  std::vector<std::exception_ptr> flat_errors(total);
  ctx.for_each_chunk(
      0, total,
      [&](std::size_t lo, std::size_t hi) {
        // One committed state per chunk, exactly as draw_many: the state
        // is reset between draws, so sharing it across request
        // boundaries never leaks one request's conditioning into the
        // next. Unlike draw_many, a throwing draw is captured per flat
        // index instead of aborting the chunk — failures must be
        // isolated to the request that owns them.
        std::unique_ptr<CommittedOracle> state;
        for (std::size_t i = lo; i < hi; ++i) {
          RandomStream stream = streams[request_of[i]].stream(local_of[i]);
          try {
            flat_results[i] = draw_indexed(local_of[i], stream, state);
          } catch (...) {
            flat_errors[i] = std::current_exception();
          }
        }
      },
      /*grain=*/1);

  std::vector<DrawBatchOutcome> outcomes(requests.size());
  std::size_t flat = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    DrawBatchOutcome& outcome = outcomes[r];
    for (std::size_t i = 0; i < requests[r].count; ++i, ++flat) {
      if (outcome.error == nullptr && flat_errors[flat] != nullptr)
        outcome.error = flat_errors[flat];
    }
    if (outcome.error == nullptr) {
      const std::size_t base = flat - requests[r].count;
      outcome.results.assign(
          std::make_move_iterator(flat_results.begin() +
                                  static_cast<std::ptrdiff_t>(base)),
          std::make_move_iterator(flat_results.begin() +
                                  static_cast<std::ptrdiff_t>(flat)));
    }
  }
  return outcomes;
}

SessionHealth SamplerSession::health() const {
  SessionHealth health;
  health.draws = draws_.load(std::memory_order_relaxed);
  health.failures = failures_.load(std::memory_order_relaxed);
  health.retries = retries_.load(std::memory_order_relaxed);
  health.degraded_proposal =
      degraded_proposal_.load(std::memory_order_relaxed);
  health.degraded_undistilled =
      degraded_undistilled_.load(std::memory_order_relaxed);
  health.degraded_reference =
      degraded_reference_.load(std::memory_order_relaxed);
  health.spectral_refreshes =
      spectral_refreshes_.load(std::memory_order_relaxed);
  health.starvations = starvations_.load(std::memory_order_relaxed);
  health.proposal_drifts = proposal_drifts_.load(std::memory_order_relaxed);
  health.session_epoch = epoch_;
  health.poisoned = poisoned_.load(std::memory_order_acquire);
  if (health.poisoned) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    health.poison_reason = poison_reason_;
  }
  return health;
}

}  // namespace pardpp
