// Tests for the Pfaffian: Parlett-Reid vs recursive expansion, the
// Pf(A)^2 = det(A) identity, and degenerate cases.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/pfaffian.h"
#include "support/random.h"

namespace pardpp {
namespace {

Matrix random_skew(std::size_t n, RandomStream& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = -v;
    }
  }
  return a;
}

TEST(Pfaffian, TwoByTwo) {
  Matrix a(2, 2);
  a(0, 1) = 3.5;
  a(1, 0) = -3.5;
  const auto pf = pfaffian_log(a);
  EXPECT_EQ(pf.sign, 1);
  EXPECT_NEAR(std::exp(pf.log_abs), 3.5, 1e-12);
  EXPECT_NEAR(pfaffian_small(a), 3.5, 1e-12);
}

TEST(Pfaffian, FourByFourClosedForm) {
  // Pf = a12 a34 - a13 a24 + a14 a23.
  Matrix a(4, 4);
  const auto set = [&a](std::size_t i, std::size_t j, double v) {
    a(i, j) = v;
    a(j, i) = -v;
  };
  set(0, 1, 2.0);
  set(0, 2, -3.0);
  set(0, 3, 4.0);
  set(1, 2, 5.0);
  set(1, 3, -6.0);
  set(2, 3, 7.0);
  const double expected = 2.0 * 7.0 - (-3.0) * (-6.0) + 4.0 * 5.0;
  const auto pf = pfaffian_log(a);
  EXPECT_NEAR(pf.sign * std::exp(pf.log_abs), expected, 1e-10);
  EXPECT_NEAR(pfaffian_small(a), expected, 1e-10);
}

TEST(Pfaffian, OddDimensionIsZero) {
  RandomStream rng(1);
  const Matrix a = random_skew(5, rng);
  EXPECT_EQ(pfaffian_log(a).sign, 0);
  EXPECT_DOUBLE_EQ(pfaffian_small(a), 0.0);
}

TEST(Pfaffian, EmptyMatrixIsOne) {
  const auto pf = pfaffian_log(Matrix(0, 0));
  EXPECT_EQ(pf.sign, 1);
  EXPECT_DOUBLE_EQ(pf.log_abs, 0.0);
}

TEST(Pfaffian, RejectsNonSkew) {
  Matrix a = Matrix::identity(4);
  EXPECT_THROW((void)pfaffian_log(a), InvalidArgument);
}

class PfaffianRandom : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(PfaffianRandom, MatchesRecursiveExpansion) {
  const auto [n, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 17 + 3);
  const Matrix a = random_skew(static_cast<std::size_t>(n), rng);
  const double brute = pfaffian_small(a);
  const auto pf = pfaffian_log(a);
  if (std::abs(brute) < 1e-12) {
    EXPECT_EQ(pf.sign, 0);
  } else {
    EXPECT_NEAR(pf.sign * std::exp(pf.log_abs), brute,
                1e-8 * std::abs(brute));
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, PfaffianRandom,
                         ::testing::Combine(::testing::Values(2, 4, 6, 8, 10),
                                            ::testing::Values(1, 2, 3, 4)));

class PfaffianSquared : public ::testing::TestWithParam<int> {};

TEST_P(PfaffianSquared, EqualsDeterminant) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const Matrix a = random_skew(12, rng);
  const auto pf = pfaffian_log(a);
  const auto det = signed_log_det(a);
  ASSERT_NE(pf.sign, 0);
  EXPECT_NEAR(2.0 * pf.log_abs, det.log_abs, 1e-7);
  EXPECT_EQ(det.sign, 1);  // det of even skew = Pf^2 >= 0
}

INSTANTIATE_TEST_SUITE_P(Seeds, PfaffianSquared,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Pfaffian, StructuralZero) {
  // Two isolated pairs cannot be matched across: Pf = product of pair
  // entries; zeroing one pair's entry kills the Pfaffian.
  Matrix a(4, 4);
  a(0, 1) = 1.0;
  a(1, 0) = -1.0;
  // vertices 2,3 disconnected from everything.
  const auto pf = pfaffian_log(a);
  EXPECT_EQ(pf.sign, 0);
}

}  // namespace
}  // namespace pardpp
