#include "dpp/ensemble.h"

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "support/error.h"

namespace pardpp {

Matrix marginal_kernel(const Matrix& l) {
  check_arg(l.square(), "marginal_kernel: matrix not square");
  const std::size_t n = l.rows();
  Matrix a = l;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const auto lu = lu_factor(std::move(a));
  check_numeric(!lu.singular(), "marginal_kernel: I + L singular");
  Matrix k = Matrix::identity(n);
  k -= lu.inverse();
  return k;
}

Matrix ensemble_from_kernel(const Matrix& k) {
  check_arg(k.square(), "ensemble_from_kernel: matrix not square");
  const std::size_t n = k.rows();
  Matrix a = Matrix::identity(n);
  a -= k;
  const auto lu = lu_factor(std::move(a));
  check_numeric(!lu.singular(),
                "ensemble_from_kernel: I - K singular (kernel has an "
                "eigenvalue at 1; no finite L-ensemble exists)");
  // L = K (I - K)^{-1} = (I - K)^{-1} - I.
  Matrix l = lu.inverse();
  for (std::size_t i = 0; i < n; ++i) l(i, i) -= 1.0;
  return l;
}

double log_partition_function(const Matrix& l) {
  check_arg(l.square(), "log_partition_function: matrix not square");
  Matrix a = l;
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += 1.0;
  const auto sld = signed_log_det(a);
  check_numeric(sld.sign > 0,
                "log_partition_function: det(I + L) not positive — L is not "
                "a valid ensemble matrix");
  return sld.log_abs;
}

void validate_ensemble(const Matrix& l, bool symmetric) {
  check_arg(l.square(), "validate_ensemble: matrix not square");
  if (symmetric) {
    check_arg(l.is_symmetric(1e-8),
              "validate_ensemble: matrix is not symmetric");
    check_arg(is_psd(l), "validate_ensemble: symmetric matrix is not PSD");
  } else {
    check_arg(is_npsd(l),
              "validate_ensemble: L + L^T is not PSD (Definition 4)");
  }
}

}  // namespace pardpp
