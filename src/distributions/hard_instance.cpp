#include "distributions/hard_instance.h"

#include <cmath>

#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp {

HardInstanceOracle::HardInstanceOracle(std::size_t n, std::size_t k) : k_(k) {
  check_arg(n % 2 == 0, "HardInstanceOracle: n must be even");
  check_arg(k % 2 == 0, "HardInstanceOracle: k must be even");
  check_arg(k <= n, "HardInstanceOracle: k exceeds n");
  partner_.resize(n);
  for (std::size_t i = 0; i < n; i += 2) {
    partner_[i] = static_cast<int>(i + 1);
    partner_[i + 1] = static_cast<int>(i);
  }
  free_pairs_ = n / 2;
  forced_ = 0;
}

double HardInstanceOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  // Classify T: forced elements contribute probability one; free-pair
  // elements require their pair to be selected. A pair hit twice (a
  // "duplicate" in the paper's §7 terminology) is one selected pair.
  std::vector<bool> seen(partner_.size(), false);
  std::size_t pairs_touched = 0;
  std::size_t forced_in_t = 0;
  for (const int i : t) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < partner_.size(),
              "HardInstanceOracle: index out of range");
    check_arg(!seen[static_cast<std::size_t>(i)],
              "HardInstanceOracle: duplicate index in T");
    seen[static_cast<std::size_t>(i)] = true;
    if (partner_[static_cast<std::size_t>(i)] < 0) ++forced_in_t;
  }
  for (const int i : t) {
    const int p = partner_[static_cast<std::size_t>(i)];
    if (p < 0) continue;
    // Count each touched pair once (when we see its smaller-index member
    // among those present, or the element itself if the partner is not in
    // T).
    if (seen[static_cast<std::size_t>(p)] && p < i) continue;
    ++pairs_touched;
  }
  // Pairs still needed in total: (k - forced_) / 2 among free_pairs_.
  const std::size_t pairs_needed = (k_ - forced_) / 2;
  if (pairs_touched > pairs_needed) return kNegInf;
  if (pairs_touched > free_pairs_) return kNegInf;
  (void)forced_in_t;
  // P = C(F - q, J - q) / C(F, J) with F free pairs, J needed, q touched.
  return log_binomial(free_pairs_ - pairs_touched,
                      pairs_needed - pairs_touched) -
         log_binomial(free_pairs_, pairs_needed);
}

std::vector<double> HardInstanceOracle::marginals() const {
  std::vector<double> p(partner_.size(), 0.0);
  const std::size_t pairs_needed = (k_ - forced_) / 2;
  const double free_marginal =
      free_pairs_ > 0
          ? static_cast<double>(pairs_needed) / static_cast<double>(free_pairs_)
          : 0.0;
  for (std::size_t i = 0; i < partner_.size(); ++i) {
    p[i] = partner_[i] < 0 ? 1.0 : free_marginal;
  }
  return p;
}

std::unique_ptr<CountingOracle> HardInstanceOracle::condition(
    std::span<const int> t) const {
  check_numeric(log_joint_marginal(t) != kNegInf,
                "HardInstanceOracle: conditioning on a null event");
  auto out = std::unique_ptr<HardInstanceOracle>(new HardInstanceOracle());
  out->k_ = k_ - t.size();
  // Mark removals, then rebuild partners under compaction.
  std::vector<bool> removed(partner_.size(), false);
  for (const int i : t) removed[static_cast<std::size_t>(i)] = true;
  std::vector<int> remap(partner_.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < partner_.size(); ++i)
    if (!removed[i]) remap[i] = next++;
  out->partner_.assign(static_cast<std::size_t>(next), -1);
  out->free_pairs_ = 0;
  out->forced_ = 0;
  for (std::size_t i = 0; i < partner_.size(); ++i) {
    if (removed[i]) continue;
    const int p = partner_[i];
    if (p < 0) {
      // Already forced, stays forced.
      ++out->forced_;
      continue;
    }
    if (removed[static_cast<std::size_t>(p)]) {
      // Partner conditioned in: i becomes forced.
      out->partner_[static_cast<std::size_t>(remap[i])] = -1;
      ++out->forced_;
    } else {
      out->partner_[static_cast<std::size_t>(remap[i])] =
          remap[static_cast<std::size_t>(p)];
      if (p > static_cast<int>(i)) ++out->free_pairs_;
    }
  }
  return out;
}

std::unique_ptr<CountingOracle> HardInstanceOracle::clone() const {
  auto out = std::unique_ptr<HardInstanceOracle>(new HardInstanceOracle());
  out->partner_ = partner_;
  out->k_ = k_;
  out->free_pairs_ = free_pairs_;
  out->forced_ = forced_;
  return out;
}

}  // namespace pardpp
