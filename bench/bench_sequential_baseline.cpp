// EXP-SEQ — baseline audit: the classic JVV86 reduction across every
// distribution family, plus the counting-oracle backend ablation
// (symmetric eigendecomposition path vs general charpoly-engine path on
// the same kernels).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "distributions/hard_instance.h"
#include "distributions/product.h"
#include "dpp/general_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "parallel/pram.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

}  // namespace

int main() {
  print_header("EXP-SEQ-a", "classic reduction depth audit",
               "the sequential sampler's depth is exactly k rounds for "
               "every family — the baseline all parallel results divide");
  Table table({"family", "n", "k", "rounds", "oracle_calls", "wall_ms"});
  RandomStream rng(98001);
  {
    const std::size_t n = 48;
    const std::size_t k = 12;
    const Matrix l = random_psd(n, n, rng, 1e-4);
    const SymmetricKdppOracle oracle(l, k, false);
    PramLedger ledger;
    Timer timer;
    const auto result = sample_sequential(oracle, rng, &ledger);
    table.add_row({"symmetric-kdpp", fmt_int(n), fmt_int(k),
                   fmt_int(result.diag.rounds),
                   fmt_int(result.diag.oracle_calls), fmt(timer.millis(), 1)});
  }
  {
    const std::size_t n = 36;
    const std::size_t k = 9;
    const Matrix l = random_npsd(n, rng, 0.5);
    const GeneralDppOracle oracle(l, k, false);
    PramLedger ledger;
    Timer timer;
    const auto result = sample_sequential(oracle, rng, &ledger);
    table.add_row({"nonsymmetric-kdpp", fmt_int(n), fmt_int(k),
                   fmt_int(result.diag.rounds),
                   fmt_int(result.diag.oracle_calls), fmt(timer.millis(), 1)});
  }
  {
    const std::size_t n = 30;
    const Matrix l = random_psd(n, n, rng, 1e-4);
    std::vector<int> part_of(n);
    for (std::size_t i = 0; i < n; ++i) part_of[i] = i < 15 ? 0 : 1;
    const GeneralDppOracle oracle(l, part_of, {4, 3}, false);
    PramLedger ledger;
    Timer timer;
    const auto result = sample_sequential(oracle, rng, &ledger);
    table.add_row({"partition-dpp(4+3)", fmt_int(n), fmt_int(std::size_t{7}),
                   fmt_int(result.diag.rounds),
                   fmt_int(result.diag.oracle_calls), fmt(timer.millis(), 1)});
  }
  {
    const HardInstanceOracle oracle(512, 128);
    PramLedger ledger;
    Timer timer;
    const auto result = sample_sequential(oracle, rng, &ledger);
    table.add_row({"hard-instance", fmt_int(std::size_t{512}),
                   fmt_int(std::size_t{128}), fmt_int(result.diag.rounds),
                   fmt_int(result.diag.oracle_calls), fmt(timer.millis(), 1)});
  }
  {
    const UniformKSubsetOracle oracle(1024, 256);
    PramLedger ledger;
    Timer timer;
    const auto result = sample_sequential(oracle, rng, &ledger);
    table.add_row({"uniform-k-subset", fmt_int(std::size_t{1024}),
                   fmt_int(std::size_t{256}), fmt_int(result.diag.rounds),
                   fmt_int(result.diag.oracle_calls), fmt(timer.millis(), 1)});
  }
  table.print();

  print_header("EXP-SEQ-b", "counting-oracle backend ablation",
               "eigen/ESP path vs charpoly-engine path on identical "
               "symmetric kernels: same answers, different costs");
  Table table2({"n", "k", "eigen_marginals_ms", "engine_marginals_ms",
                "max_abs_diff"});
  for (const std::size_t n : {16u, 32u, 48u}) {
    const std::size_t k = n / 4;
    const Matrix l = random_psd(n, n, rng, 1e-4);
    const SymmetricKdppOracle fast(l, k, false);
    const GeneralDppOracle slow(l, k, false);
    Timer t1;
    const auto p_fast = fast.marginals();
    const double ms_fast = t1.millis();
    Timer t2;
    const auto p_slow = slow.marginals();
    const double ms_slow = t2.millis();
    double diff = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      diff = std::max(diff, std::abs(p_fast[i] - p_slow[i]));
    table2.add_row({fmt_int(n), fmt_int(k), fmt(ms_fast, 2), fmt(ms_slow, 2),
                    fmt(diff, 10)});
  }
  table2.print();
  return 0;
}
