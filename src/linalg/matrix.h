// Dense matrix type used throughout pardpp.
//
// The library deliberately ships its own small dense-linear-algebra layer
// instead of depending on an external BLAS/LAPACK: the counting oracles the
// paper relies on (determinants, Schur complements, characteristic
// polynomials, Pfaffians) are part of the system being reproduced, and the
// test suite validates them against brute-force enumeration.
//
// `BasicMatrix<T>` is row-major and contiguous; `Matrix` is the real
// (double) instantiation and `CMatrix` the complex one (used by the
// roots-of-unity characteristic-polynomial oracle). Storage is 64-byte
// aligned (AlignedAllocator) and the double hot paths run on the
// runtime-dispatched microkernels of linalg/simd.h (DESIGN.md §2
// convention 10).
#pragma once

#include <complex>
#include <cstddef>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "linalg/simd.h"
#include "parallel/execution.h"
#include "support/error.h"

namespace pardpp {

/// Minimal allocator carrying a 64-byte alignment guarantee. Matrix
/// storage allocated through it starts on a cache-line (and full AVX-512
/// vector) boundary, so the dispatched microkernels' unaligned-load
/// instructions run at aligned-load speed on row 0 — and on *every* row
/// whenever the row length is a multiple of 8 doubles, which the hot
/// shapes (d = 24 feature blocks, n = 128 Schur ensembles) satisfy. The
/// leading dimension is deliberately *not* padded: `flat()` exposes
/// contiguity (rows*cols elements) that gather/scatter and scratch-reuse
/// code relies on, so padding would not be free here.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  // The non-type Alignment parameter defeats the library's automatic
  // allocator rebinding, so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

template <typename T>
class BasicMatrix {
 public:
  using value_type = T;

  BasicMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  BasicMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// rows x cols matrix with every entry set to `fill`.
  BasicMatrix(std::size_t rows, std::size_t cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// n x n identity.
  [[nodiscard]] static BasicMatrix identity(std::size_t n) {
    BasicMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// Diagonal matrix from a vector.
  [[nodiscard]] static BasicMatrix diagonal(std::span<const T> diag) {
    BasicMatrix m(diag.size(), diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  [[nodiscard]] std::span<T> row(std::size_t i) noexcept {
    return std::span<T>(data_.data() + i * cols_, cols_);
  }
  [[nodiscard]] std::span<const T> row(std::size_t i) const noexcept {
    return std::span<const T>(data_.data() + i * cols_, cols_);
  }

  [[nodiscard]] std::span<T> flat() noexcept { return std::span<T>(data_); }
  [[nodiscard]] std::span<const T> flat() const noexcept {
    return std::span<const T>(data_);
  }

  /// Gathered submatrix with the given row and column index lists
  /// (indices may repeat or reorder).
  [[nodiscard]] BasicMatrix gather(std::span<const int> row_idx,
                                   std::span<const int> col_idx) const {
    BasicMatrix out(row_idx.size(), col_idx.size());
    for (std::size_t i = 0; i < row_idx.size(); ++i) {
      const auto r = static_cast<std::size_t>(row_idx[i]);
      check_arg(r < rows_, "gather: row index out of range");
      for (std::size_t j = 0; j < col_idx.size(); ++j) {
        const auto c = static_cast<std::size_t>(col_idx[j]);
        check_arg(c < cols_, "gather: col index out of range");
        out(i, j) = (*this)(r, c);
      }
    }
    return out;
  }

  /// Principal submatrix on an index set.
  [[nodiscard]] BasicMatrix principal(std::span<const int> idx) const {
    return gather(idx, idx);
  }

  [[nodiscard]] BasicMatrix transpose() const {
    BasicMatrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  BasicMatrix& operator+=(const BasicMatrix& o) {
    check_arg(rows_ == o.rows_ && cols_ == o.cols_, "matrix +=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }

  BasicMatrix& operator-=(const BasicMatrix& o) {
    check_arg(rows_ == o.rows_ && cols_ == o.cols_, "matrix -=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }

  BasicMatrix& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  [[nodiscard]] friend BasicMatrix operator+(BasicMatrix a, const BasicMatrix& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend BasicMatrix operator-(BasicMatrix a, const BasicMatrix& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend BasicMatrix operator*(BasicMatrix a, T scalar) {
    a *= scalar;
    return a;
  }
  [[nodiscard]] friend BasicMatrix operator*(T scalar, BasicMatrix a) {
    a *= scalar;
    return a;
  }

  /// Matrix product (ikj loop order for cache friendliness). Row blocks
  /// fan out on the linalg execution context when the matrix is large
  /// enough to amortize the dispatch; each body owns a disjoint output row.
  [[nodiscard]] friend BasicMatrix operator*(const BasicMatrix& a,
                                             const BasicMatrix& b) {
    check_arg(a.cols_ == b.rows_, "matrix *: inner dimension mismatch");
    BasicMatrix out(a.rows_, b.cols_);
    // Deliberately *not* routed through the dispatched kernels: the
    // inlined loop auto-vectorizes, and an indirect call per (i, k)
    // pair costs more than the wider vectors win at the small inner
    // lengths this generic product mostly sees. The double hot paths
    // that matter (Gram, A Bᵀ) have coarse-grained dispatched kernels
    // (multiply_transposed_b, sym_rank_k_update) instead.
    const auto compute_row = [&](std::size_t i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        const T* brow = b.data_.data() + k * b.cols_;
        T* orow = out.data_.data() + i * out.cols_;
        for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aik * brow[j];
      }
    };
    const ExecutionContext& ctx = linalg_context();
    if (a.rows_ >= 64 && ctx.can_fan_out()) {
      ctx.for_each(0, a.rows_, compute_row);
    } else {
      for (std::size_t i = 0; i < a.rows_; ++i) compute_row(i);
    }
    return out;
  }

  /// Matrix-vector product. The double instantiation runs on the
  /// dispatched row-dot kernel, with the table lookup hoisted out of
  /// the row loop (one override/latch resolution per matvec, not per
  /// row).
  [[nodiscard]] std::vector<T> apply(std::span<const T> x) const {
    check_arg(x.size() == cols_, "apply: vector size mismatch");
    std::vector<T> y(rows_, T{});
    if constexpr (std::is_same_v<T, double>) {
      const simd::KernelTable& kernels = simd::active_kernels();
      for (std::size_t i = 0; i < rows_; ++i)
        y[i] = kernels.dot(data_.data() + i * cols_, x.data(), cols_);
    } else {
      for (std::size_t i = 0; i < rows_; ++i) {
        const T* row_ptr = data_.data() + i * cols_;
        T acc{};
        for (std::size_t j = 0; j < cols_; ++j) acc += row_ptr[j] * x[j];
        y[i] = acc;
      }
    }
    return y;
  }

  [[nodiscard]] T trace() const {
    check_arg(square(), "trace: matrix not square");
    T acc{};
    for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
    return acc;
  }

  /// Largest absolute entry (complex: largest modulus).
  [[nodiscard]] double max_abs() const {
    double best = 0.0;
    for (const auto& v : data_) best = std::max(best, std::abs(v));
    return best;
  }

  /// Frobenius norm.
  [[nodiscard]] double frobenius() const {
    double acc = 0.0;
    for (const auto& v : data_) acc += std::norm(std::complex<double>(v));
    return std::sqrt(acc);
  }

  /// True when |A - A^T|_max <= tol (only meaningful for square A).
  [[nodiscard]] bool is_symmetric(double tol = 1e-10) const {
    if (!square()) return false;
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = i + 1; j < cols_; ++j)
        if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    return true;
  }

  /// Symmetrization (A + A^T)/2.
  [[nodiscard]] BasicMatrix symmetric_part() const {
    check_arg(square(), "symmetric_part: matrix not square");
    BasicMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j)
        out(i, j) = ((*this)(i, j) + (*this)(j, i)) / T{2};
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

using Matrix = BasicMatrix<double>;
using CMatrix = BasicMatrix<std::complex<double>>;

/// C = A B^T for row-major A (m x k) and B (n x k). Both operands stream
/// their *rows*, so every inner product walks contiguous memory — the
/// cache-friendly orientation for the Gram/projection hot paths, where the
/// naive `a * b.transpose()` would first materialize the transpose. The
/// whole tiled loop nest runs behind one kernel dispatch (simd::gemm_nt):
/// at the d = 24 feature widths the inner products are too short to pay
/// an indirect call each.
[[nodiscard]] inline Matrix multiply_transposed_b(const Matrix& a,
                                                  const Matrix& b) {
  check_arg(a.cols() == b.cols(),
            "multiply_transposed_b: inner dimension mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k = a.cols();
  Matrix out(m, n);
  if (m == 0 || n == 0) return out;
  simd::gemm_nt(out.flat().data(), n, a.flat().data(), k, m, b.flat().data(),
                k, n, k);
  return out;
}

/// Blocked symmetric rank-k update C += alpha * A^T A, where A is `r` rows
/// of length `n` stored row-major with stride `stride` (a raw scratch
/// buffer, e.g. the half-solved Y of an incremental Schur complement).
/// Only the upper triangle is accumulated, then mirrored — C must be
/// symmetric n x n on entry. The blocked triangle pass runs behind one
/// kernel dispatch (simd::syrk_ut): rows of A are consumed in fixed
/// blocks, fused four at a time, so a resident strip of A is reused
/// across C's triangle without an indirect call per rank-1 update.
inline void sym_rank_k_update(Matrix& c, double alpha, const double* a,
                              std::size_t r, std::size_t n,
                              std::size_t stride) {
  check_arg(c.rows() == n && c.cols() == n,
            "sym_rank_k_update: output shape mismatch");
  if (n == 0) return;
  simd::syrk_ut(c.flat().data(), n, alpha, a, r, n, stride);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = c(i, j);
}

/// Promotes a real matrix to complex.
[[nodiscard]] inline CMatrix to_complex(const Matrix& m) {
  CMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = m(i, j);
  return out;
}

}  // namespace pardpp
