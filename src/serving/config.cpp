#include "serving/config.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/error.h"

namespace pardpp::serving {

namespace {

// %.17g is the shortest fixed format guaranteed to round-trip every
// finite double bit-exactly; strtod parses "nan"/"inf" spellings back.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string format_bool(bool value) { return value ? "1" : "0"; }

[[noreturn]] void bad_value(std::string_view key, std::string_view value,
                            std::string_view expected) {
  throw InvalidArgument("config: key '" + std::string(key) +
                        "': cannot parse '" + std::string(value) + "' as " +
                        std::string(expected));
}

double parse_double(std::string_view key, std::string_view value) {
  const std::string text(value);
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    bad_value(key, value, "a double");
  return parsed;
}

std::size_t parse_size(std::string_view key, std::string_view value) {
  const std::string text(value);
  if (text.empty() || text[0] == '-')
    bad_value(key, value, "a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE)
    bad_value(key, value, "a non-negative integer");
  return static_cast<std::size_t>(parsed);
}

bool parse_bool(std::string_view key, std::string_view value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  bad_value(key, value, "a boolean (0/1/true/false)");
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t'))
    text.remove_suffix(1);
  return text;
}

/// Splits `key=value,...`, trims each pair, and hands it to `apply`
/// (which throws InvalidArgument on an unknown key). Shared by both
/// config parsers so the grammar cannot drift between them.
template <typename Apply>
void parse_pairs(std::string_view text, const Apply& apply) {
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view pair = trim(text.substr(0, comma));
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (pair.empty()) continue;  // tolerate stray/trailing commas
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw InvalidArgument("config: malformed pair '" + std::string(pair) +
                            "' (expected key=value)");
    apply(trim(pair.substr(0, eq)), trim(pair.substr(eq + 1)));
  }
}

std::string list_sampler_kinds() {
  std::string kinds;
  for (const SamplerKind kind : kAllSamplerKinds) {
    if (!kinds.empty()) kinds += ", ";
    kinds += sampler_kind_name(kind);
  }
  return kinds;
}

}  // namespace

std::string SessionConfig::to_string() const {
  const SessionOptions& s = session;
  std::string out;
  const auto field = [&out](std::string_view key, std::string value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  field("kind", sampler_kind_name(s.kind));
  field("use_commit", format_bool(s.use_commit));
  field("distill.enabled", format_bool(s.distill.enabled));
  field("distill.candidate_budget", std::to_string(s.distill.candidate_budget));
  field("distill.max_attempts", std::to_string(s.distill.max_attempts));
  field("distill.persistent_proposal",
        format_bool(s.distill.persistent_proposal));
  field("distill.sparsified_domain",
        std::to_string(s.distill.sparsified_domain));
  field("distill.refresh_interval", std::to_string(s.distill.refresh_interval));
  field("batched.failure_prob", format_double(s.batched.failure_prob));
  field("batched.extra_log_cap", format_double(s.batched.extra_log_cap));
  field("batched.max_batch", std::to_string(s.batched.max_batch));
  field("batched.machine_cap", std::to_string(s.batched.machine_cap));
  field("entropic.c", format_double(s.entropic.c));
  field("entropic.alpha", format_double(s.entropic.alpha));
  field("entropic.cap_multiplier", format_double(s.entropic.cap_multiplier));
  field("entropic.cap_slack", format_double(s.entropic.cap_slack));
  field("entropic.log_ratio_cap", format_double(s.entropic.log_ratio_cap));
  field("entropic.failure_prob", format_double(s.entropic.failure_prob));
  field("entropic.subdivide", format_bool(s.entropic.subdivide));
  field("entropic.beta", format_double(s.entropic.beta));
  field("entropic.max_batch", std::to_string(s.entropic.max_batch));
  field("entropic.machine_cap", std::to_string(s.entropic.machine_cap));
  field("recovery.enabled", format_bool(s.recovery.enabled));
  field("recovery.max_retries", std::to_string(s.recovery.max_retries));
  field("recovery.degrade_proposal", format_bool(s.recovery.degrade_proposal));
  field("recovery.degrade_undistilled",
        format_bool(s.recovery.degrade_undistilled));
  field("recovery.degrade_reference",
        format_bool(s.recovery.degrade_reference));
  return out;
}

SessionConfig SessionConfig::parse(std::string_view text) {
  SessionConfig config;
  SessionOptions& s = config.session;
  parse_pairs(text, [&s](std::string_view key, std::string_view value) {
    if (key == "kind") {
      const auto kind = sampler_kind_from_name(value);
      if (!kind.has_value())
        throw InvalidArgument("config: key 'kind': unknown sampler '" +
                              std::string(value) + "' (expected one of: " +
                              list_sampler_kinds() + ")");
      s.kind = *kind;
    } else if (key == "use_commit") {
      s.use_commit = parse_bool(key, value);
    } else if (key == "distill.enabled") {
      s.distill.enabled = parse_bool(key, value);
    } else if (key == "distill.candidate_budget") {
      s.distill.candidate_budget = parse_size(key, value);
    } else if (key == "distill.max_attempts") {
      s.distill.max_attempts = parse_size(key, value);
    } else if (key == "distill.persistent_proposal") {
      s.distill.persistent_proposal = parse_bool(key, value);
    } else if (key == "distill.sparsified_domain") {
      s.distill.sparsified_domain = parse_size(key, value);
    } else if (key == "distill.refresh_interval") {
      s.distill.refresh_interval = parse_size(key, value);
    } else if (key == "batched.failure_prob") {
      s.batched.failure_prob = parse_double(key, value);
    } else if (key == "batched.extra_log_cap") {
      s.batched.extra_log_cap = parse_double(key, value);
    } else if (key == "batched.max_batch") {
      s.batched.max_batch = parse_size(key, value);
    } else if (key == "batched.machine_cap") {
      s.batched.machine_cap = parse_size(key, value);
    } else if (key == "entropic.c") {
      s.entropic.c = parse_double(key, value);
    } else if (key == "entropic.alpha") {
      s.entropic.alpha = parse_double(key, value);
    } else if (key == "entropic.cap_multiplier") {
      s.entropic.cap_multiplier = parse_double(key, value);
    } else if (key == "entropic.cap_slack") {
      s.entropic.cap_slack = parse_double(key, value);
    } else if (key == "entropic.log_ratio_cap") {
      s.entropic.log_ratio_cap = parse_double(key, value);
    } else if (key == "entropic.failure_prob") {
      s.entropic.failure_prob = parse_double(key, value);
    } else if (key == "entropic.subdivide") {
      s.entropic.subdivide = parse_bool(key, value);
    } else if (key == "entropic.beta") {
      s.entropic.beta = parse_double(key, value);
    } else if (key == "entropic.max_batch") {
      s.entropic.max_batch = parse_size(key, value);
    } else if (key == "entropic.machine_cap") {
      s.entropic.machine_cap = parse_size(key, value);
    } else if (key == "recovery.enabled") {
      s.recovery.enabled = parse_bool(key, value);
    } else if (key == "recovery.max_retries") {
      s.recovery.max_retries = parse_size(key, value);
    } else if (key == "recovery.degrade_proposal") {
      s.recovery.degrade_proposal = parse_bool(key, value);
    } else if (key == "recovery.degrade_undistilled") {
      s.recovery.degrade_undistilled = parse_bool(key, value);
    } else if (key == "recovery.degrade_reference") {
      s.recovery.degrade_reference = parse_bool(key, value);
    } else {
      throw InvalidArgument("config: unknown session key '" +
                            std::string(key) + "'");
    }
  });
  return config;
}

void ServingConfig::validate() const {
  check_arg(max_resident_bytes != 0,
            "ServingConfig::max_resident_bytes: must be positive");
  check_arg(max_queue_depth != 0,
            "ServingConfig::max_queue_depth: must be positive");
  check_arg(max_inflight_per_tenant != 0,
            "ServingConfig::max_inflight_per_tenant: must be positive");
  check_arg(max_draws_per_request != 0,
            "ServingConfig::max_draws_per_request: must be positive");
}

std::string ServingConfig::to_string() const {
  std::string out;
  const auto field = [&out](std::string_view key, std::string value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  field("pool_threads", std::to_string(pool_threads));
  field("max_resident_bytes", std::to_string(max_resident_bytes));
  field("max_queue_depth", std::to_string(max_queue_depth));
  field("max_inflight_per_tenant", std::to_string(max_inflight_per_tenant));
  field("max_draws_per_request", std::to_string(max_draws_per_request));
  return out;
}

ServingConfig ServingConfig::parse(std::string_view text) {
  ServingConfig config;
  parse_pairs(text, [&config](std::string_view key, std::string_view value) {
    if (key == "pool_threads") {
      config.pool_threads = parse_size(key, value);
    } else if (key == "max_resident_bytes") {
      config.max_resident_bytes = parse_size(key, value);
    } else if (key == "max_queue_depth") {
      config.max_queue_depth = parse_size(key, value);
    } else if (key == "max_inflight_per_tenant") {
      config.max_inflight_per_tenant = parse_size(key, value);
    } else if (key == "max_draws_per_request") {
      config.max_draws_per_request = parse_size(key, value);
    } else {
      throw InvalidArgument("config: unknown serving key '" +
                            std::string(key) + "'");
    }
  });
  return config;
}

}  // namespace pardpp::serving
