// Planar graph factories: grids and related dimer-model workloads.
#pragma once

#include "planar/graph.h"
#include "support/random.h"

namespace pardpp {

/// rows x cols grid graph (vertex (r, c) at index r * cols + c). Has a
/// perfect matching iff rows * cols is even.
[[nodiscard]] PlanarGraph grid_graph(std::size_t rows, std::size_t cols);

/// Grid with each edge independently deleted with probability
/// `drop_prob`, re-sampled until the graph still has a perfect matching
/// checked by the caller (this factory only drops edges; it never
/// disconnects parity). Used for non-translation-invariant dimer tests.
[[nodiscard]] PlanarGraph diluted_grid_graph(std::size_t rows,
                                             std::size_t cols,
                                             double drop_prob,
                                             RandomStream& rng);

/// Aztec-diamond-like staircase region of order m (classic dimer
/// workload; 2m(m+1) vertices, all matchable).
[[nodiscard]] PlanarGraph aztec_diamond_graph(std::size_t order);

/// Honeycomb lattice in brick-wall form: the rows x cols grid with the
/// vertical edge below (r, c) kept only when r + c is even. Rectangular
/// patches of the brick wall have exactly *one* perfect matching (the
/// boundary forces every domino) — a useful degenerate workload.
[[nodiscard]] PlanarGraph honeycomb_graph(std::size_t rows, std::size_t cols);

/// The honeycomb patch dual to the a x b x c hexagon of the triangular
/// lattice: vertices are the unit triangles inside the hexagon, edges join
/// triangles sharing a side. Perfect matchings of this graph are exactly
/// the lozenge tilings of the hexagon, counted by MacMahon's box formula
/// prod_{i<=a} prod_{j<=b} prod_{k<=c} (i+j+k-1)/(i+j+k-2).
[[nodiscard]] PlanarGraph hexagon_honeycomb_graph(std::size_t a,
                                                  std::size_t b,
                                                  std::size_t c);

/// MacMahon's box formula: the number of lozenge tilings of the a x b x c
/// hexagon, as a log (exact products, stable for large sides).
[[nodiscard]] double log_macmahon_box(std::size_t a, std::size_t b,
                                      std::size_t c);

}  // namespace pardpp
