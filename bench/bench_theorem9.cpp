// EXP-T9 — Theorem 9: approximate parallel sampling of Partition-DPPs.
//
// Same depth law as Theorem 8, on symmetric PSD ensembles with r = 2, 3
// partition constraints (Definition 7). The counting oracle here is the
// multivariate characteristic-polynomial engine (Prop. 13's polynomial
// interpolation, realized as a tensor roots-of-unity grid).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpp/general_oracle.h"
#include "linalg/factory.h"
#include "sampling/entropic.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

}  // namespace

int main() {
  print_header("EXP-T9", "Theorem 9 (Partition-DPPs, r = O(1))",
               "entropic batched sampler: rounds ~ k^{1/2+c} << k = "
               "sequential depth; partition budgets respected exactly");
  Table table({"r", "counts", "k", "n", "seq_rounds", "ent_rounds",
               "acceptance", "overflow_frac", "budget_violations",
               "ent_ms"});
  RandomStream rng(93001);
  struct Config {
    std::size_t n;
    std::vector<int> part_sizes;
    std::vector<int> counts;
  };
  const std::vector<Config> configs = {
      {24, {12, 12}, {4, 4}},
      {32, {16, 16}, {6, 6}},
      {40, {20, 20}, {8, 6}},
      {48, {24, 24}, {10, 8}},
      {36, {12, 12, 12}, {4, 4, 4}},
  };
  for (const auto& config : configs) {
    const Matrix l = random_psd(config.n, config.n, rng, 1e-4);
    std::vector<int> part_of;
    for (std::size_t a = 0; a < config.part_sizes.size(); ++a)
      for (int i = 0; i < config.part_sizes[a]; ++i)
        part_of.push_back(static_cast<int>(a));
    const GeneralDppOracle oracle(l, part_of, config.counts,
                                  /*validate=*/false);
    const std::size_t k = oracle.sample_size();

    RandomStream seq_rng = rng.split();
    const auto seq = sample_sequential(oracle, seq_rng);

    EntropicOptions options;
    options.c = 0.10;
    options.cap_slack = 3.5;
    RandomStream ent_rng = rng.split();
    Timer timer;
    const auto ent = sample_entropic(oracle, ent_rng, nullptr, options);
    const double ent_ms = timer.millis();

    // Verify the partition budgets on the sample.
    std::vector<int> got(config.counts.size(), 0);
    for (const int item : ent.items)
      ++got[static_cast<std::size_t>(part_of[static_cast<std::size_t>(item)])];
    std::size_t violations = 0;
    for (std::size_t a = 0; a < got.size(); ++a)
      if (got[a] != config.counts[a]) ++violations;

    std::string counts_str;
    for (const int c : config.counts)
      counts_str += (counts_str.empty() ? "" : "+") + std::to_string(c);
    table.add_row({fmt_int(config.counts.size()), counts_str, fmt_int(k),
                   fmt_int(config.n), fmt_int(seq.diag.rounds),
                   fmt_int(ent.diag.rounds),
                   fmt(ent.diag.acceptance_rate()),
                   fmt(static_cast<double>(ent.diag.ratio_overflows) /
                           std::max<std::size_t>(ent.diag.proposals, 1),
                       4),
                   fmt_int(violations), fmt(ent_ms, 1)});
  }
  table.print();
  std::printf(
      "\nbudget_violations must be 0 (the oracle's conditioning keeps the\n"
      "per-part counts exact); ent_rounds < seq_rounds is the parallel\n"
      "speedup of Theorem 9 at these scales.\n");
  return 0;
}
