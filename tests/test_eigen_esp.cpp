// Tests for the symmetric eigensolvers (tred2/tql2 vs Jacobi), elementary
// symmetric polynomials, and characteristic-polynomial extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/charpoly.h"
#include "linalg/esp.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/symmetric_eigen.h"
#include "support/combinatorics.h"
#include "support/logsum.h"
#include "support/random.h"

namespace pardpp {
namespace {

class EigenCrossCheck : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(EigenCrossCheck, QlMatchesJacobi) {
  const auto [n, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 1000 + 7);
  const Matrix a = random_psd(static_cast<std::size_t>(n),
                              static_cast<std::size_t>(std::max(1, n / 2)),
                              rng, 1e-4);
  const auto ql = symmetric_eigen(a);
  const auto jac = jacobi_eigen(a);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ql.values[static_cast<std::size_t>(i)],
                jac.values[static_cast<std::size_t>(i)], 1e-8)
        << "eigenvalue " << i;
  }
  // Eigenvalue-only path agrees too.
  const auto only = symmetric_eigenvalues(a);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(only[static_cast<std::size_t>(i)],
                ql.values[static_cast<std::size_t>(i)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, EigenCrossCheck,
                         ::testing::Combine(::testing::Values(1, 2, 3, 6, 11,
                                                              20, 33),
                                            ::testing::Values(1, 2, 3)));

TEST(Eigen, Reconstruction) {
  RandomStream rng(41);
  const Matrix a = random_psd(8, 8, rng);
  const auto eig = symmetric_eigen(a);
  Matrix recon(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      double acc = 0.0;
      for (std::size_t m = 0; m < 8; ++m)
        acc += eig.vectors(i, m) * eig.values[m] * eig.vectors(j, m);
      recon(i, j) = acc;
    }
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
}

TEST(Eigen, VectorsOrthonormal) {
  RandomStream rng(42);
  const Matrix a = random_psd(7, 7, rng);
  const auto eig = symmetric_eigen(a);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = 0; q < 7; ++q) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 7; ++i)
        dot += eig.vectors(i, p) * eig.vectors(i, q);
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Eigen, KnownSpectrum) {
  // diag(1, 2, 3) in a rotated basis.
  RandomStream rng(43);
  const std::vector<double> spectrum = {1.0, 2.0, 3.0};
  const Matrix a = kernel_with_spectrum(spectrum, rng);
  const auto eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-9);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-9);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-9);
  EXPECT_NEAR(spectral_norm_symmetric(a), 3.0, 1e-9);
}

TEST(Eigen, HandlesZeroAndOneByOne) {
  const auto empty = symmetric_eigen(Matrix(0, 0));
  EXPECT_TRUE(empty.values.empty());
  Matrix one(1, 1);
  one(0, 0) = 5.0;
  const auto single = symmetric_eigen(one);
  EXPECT_DOUBLE_EQ(single.values[0], 5.0);
}

// ---- Elementary symmetric polynomials ----

double brute_esp(std::span<const double> lambda, int j) {
  double total = 0.0;
  for_each_subset(static_cast<int>(lambda.size()), j,
                  [&](std::span<const int> subset) {
                    double prod = 1.0;
                    for (const int i : subset)
                      prod *= lambda[static_cast<std::size_t>(i)];
                    total += prod;
                  });
  return total;
}

class EspTest : public ::testing::TestWithParam<int> {};

TEST_P(EspTest, MatchesBruteForce) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> lambda(7);
  for (auto& v : lambda) v = rng.uniform() * 3.0;
  lambda[2] = 0.0;  // exercise zero handling
  const auto log_e = log_esp(lambda, 7);
  for (int j = 0; j <= 7; ++j) {
    const double brute = brute_esp(lambda, j);
    EXPECT_NEAR(std::exp(log_e[static_cast<std::size_t>(j)]), brute,
                1e-9 * std::max(1.0, brute))
        << "e_" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Esp, LeaveOneOutIdentity) {
  // e_j(lambda) = e_j(lambda \ m) + lambda_m e_{j-1}(lambda \ m).
  RandomStream rng(51);
  std::vector<double> lambda(9);
  for (auto& v : lambda) v = rng.uniform() * 2.0;
  const LogEspTable table(lambda, 5);
  for (std::size_t m = 0; m < 9; ++m) {
    for (std::size_t j = 1; j <= 5; ++j) {
      const double lhs = std::exp(table.log_e(j));
      const double rhs =
          std::exp(table.log_e_without(m, j)) +
          lambda[m] * std::exp(table.log_e_without(m, j - 1));
      EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, lhs));
    }
  }
}

TEST(Esp, LargeValuesStayInLogDomain) {
  // 300 eigenvalues of size ~1e10: e_150 overflows double massively but
  // must be finite in log domain.
  std::vector<double> lambda(300, 1e10);
  const auto log_e = log_esp(lambda, 150);
  EXPECT_TRUE(std::isfinite(log_e[150]));
  // e_150 = C(300,150) * 1e1500.
  EXPECT_NEAR(log_e[150], log_binomial(300, 150) + 150.0 * std::log(1e10),
              1e-6 * log_e[150]);
}

// ---- Characteristic polynomial ----

double brute_minor_sum(const Matrix& m, int j) {
  double total = 0.0;
  for_each_subset(static_cast<int>(m.rows()), j,
                  [&](std::span<const int> subset) {
                    total += det_small(m.principal(subset));
                  });
  return total;
}

class CharPolyTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(CharPolyTest, MatchesBruteForceMinorSums) {
  const auto [seed, symmetric] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) + 100);
  const Matrix m = symmetric ? random_psd(6, 6, rng, 1e-3)
                             : random_npsd(6, rng, 0.7);
  for (std::size_t jstar = 1; jstar <= 6; ++jstar) {
    const auto coeffs = charpoly_log_coeffs(m, jstar);
    const double brute = brute_minor_sum(m, static_cast<int>(jstar));
    const double got = coeffs[jstar].sign * std::exp(coeffs[jstar].log_abs);
    EXPECT_NEAR(got, brute, 1e-7 * std::max(1.0, std::abs(brute)))
        << "coefficient " << jstar;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSymmetry, CharPolyTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()));

TEST(CharPoly, NewtonIdentitiesAgree) {
  RandomStream rng(61);
  const Matrix m = random_psd(5, 5, rng, 1e-3);
  const auto newton = charpoly_newton(m, 5);
  const auto lambda = symmetric_eigenvalues(m);
  const auto log_e = log_esp(lambda, 5);
  for (std::size_t j = 0; j <= 5; ++j) {
    EXPECT_NEAR(newton[j], std::exp(log_e[j]),
                1e-8 * std::max(1.0, newton[j]));
  }
}

TEST(CharPoly, SaddleRadiusTargetsExpectedSize) {
  RandomStream rng(62);
  const Matrix m = random_psd(12, 12, rng, 1e-2);
  const double rho = saddle_point_radius(m, 4.0);
  // Expected size at rho should be ~4: tr(rho M (I + rho M)^{-1}).
  Matrix a = m * rho;
  for (std::size_t i = 0; i < 12; ++i) a(i, i) += 1.0;
  const Matrix inv = lu_factor(a).inverse();
  double expected = 12.0;
  for (std::size_t i = 0; i < 12; ++i) expected -= inv(i, i);
  EXPECT_NEAR(expected, 4.0, 0.05);
}

TEST(CharPoly, ZeroMatrixCoefficients) {
  const Matrix zero(4, 4);
  const auto coeffs = charpoly_log_coeffs(zero, 4);
  EXPECT_EQ(coeffs[0].sign, 1);
  EXPECT_NEAR(coeffs[0].log_abs, 0.0, 1e-9);
  for (std::size_t j = 1; j <= 4; ++j) EXPECT_EQ(coeffs[j].sign, 0);
}

}  // namespace
}  // namespace pardpp
