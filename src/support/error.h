// Error handling primitives shared across the pardpp library.
//
// The library reports contract violations and numerical failures through
// exceptions derived from `pardpp::Error`, so callers can distinguish
// library failures from standard-library ones. Hot inner loops use plain
// `assert`; the `check*` helpers below are for API boundaries, where the
// cost of a branch is negligible relative to the linear algebra behind it.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pardpp {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Thrown when a numerical routine cannot deliver a trustworthy result
/// (singular pivot, non-PSD input to a Cholesky factorization, ...).
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a randomized algorithm exhausts its failure budget
/// (e.g. no rejection-sampling proposal accepted within the machine bound).
class SamplingFailure : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_with_location(std::string_view what,
                                             std::string_view message,
                                             const std::source_location& loc) {
  std::string full;
  full.reserve(message.size() + 64);
  full.append(loc.file_name());
  full.push_back(':');
  full.append(std::to_string(loc.line()));
  full.append(": ");
  full.append(message);
  if (what == "argument") throw InvalidArgument(full);
  if (what == "numeric") throw NumericalError(full);
  throw Error(full);
}
}  // namespace detail

/// Validates an argument precondition; throws InvalidArgument on failure.
inline void check_arg(bool ok, std::string_view message,
                      const std::source_location loc =
                          std::source_location::current()) {
  if (!ok) detail::throw_with_location("argument", message, loc);
}

/// Validates a numerical invariant; throws NumericalError on failure.
inline void check_numeric(bool ok, std::string_view message,
                          const std::source_location loc =
                              std::source_location::current()) {
  if (!ok) detail::throw_with_location("numeric", message, loc);
}

/// Validates a generic invariant; throws Error on failure.
inline void check(bool ok, std::string_view message,
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!ok) detail::throw_with_location("invariant", message, loc);
}

}  // namespace pardpp
