#include "sampling/batched.h"

#include <algorithm>
#include <cmath>

#include "support/combinatorics.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace detail {

std::optional<std::vector<int>> run_batch_round(
    const CountingOracle& mu, std::span<const double> marginals,
    const BatchRound& config, RandomStream& rng, SampleDiagnostics& diag) {
  const std::size_t k = mu.sample_size();
  const std::size_t t = config.batch;
  check_arg(t >= 1 && t <= k, "run_batch_round: invalid batch size");
  // log of k (k-1) ... (k-t+1) = log(C(k,t) t!).
  double log_falling = 0.0;
  for (std::size_t r = 0; r < t; ++r)
    log_falling += std::log(static_cast<double>(k - r));
  const double log_k = std::log(static_cast<double>(k));

  std::vector<double> weights(marginals.begin(), marginals.end());
  std::vector<int> batch(t);
  std::vector<bool> seen(mu.ground_size(), false);
  for (std::size_t trial = 0; trial < config.machines; ++trial) {
    ++diag.proposals;
    // t i.i.d. draws from p / k.
    bool duplicate = false;
    double log_proposal = 0.0;
    for (std::size_t r = 0; r < t; ++r) {
      const auto pick = static_cast<int>(rng.categorical(weights));
      batch[r] = pick;
      log_proposal += std::log(weights[static_cast<std::size_t>(pick)]) - log_k;
      if (seen[static_cast<std::size_t>(pick)]) duplicate = true;
      seen[static_cast<std::size_t>(pick)] = true;
    }
    for (const int b : batch) seen[static_cast<std::size_t>(b)] = false;
    if (duplicate) {
      // Two copies of one element: target mass zero, certain rejection.
      ++diag.duplicate_rejects;
      continue;
    }
    const double log_joint = mu.log_joint_marginal(batch);
    ++diag.oracle_calls;
    if (log_joint == kNegInf) {
      ++diag.duplicate_rejects;
      continue;
    }
    const double log_ratio = log_joint - log_falling - log_proposal;
    if (log_ratio > config.log_cap + 1e-9) {
      // Outside Omega (Algorithm 3); for Lemma 27-compliant targets this
      // is a numerical impossibility and the tests assert it stays zero.
      ++diag.ratio_overflows;
      continue;
    }
    if (rng.bernoulli(std::exp(log_ratio - config.log_cap))) {
      ++diag.accepted_batches;
      return batch;
    }
  }
  return std::nullopt;
}

}  // namespace detail

SampleResult sample_batched(const CountingOracle& mu, RandomStream& rng,
                            PramLedger* ledger,
                            const BatchedOptions& options) {
  SampleResult result;
  IndexTracker tracker(mu.ground_size());
  std::unique_ptr<CountingOracle> current = mu.clone();
  const double round_bound =
      2.0 * std::sqrt(static_cast<double>(mu.sample_size())) + 2.0;
  const double delta_round =
      std::max(options.failure_prob / round_bound, 1e-12);

  while (current->sample_size() > 0) {
    const std::size_t k = current->sample_size();
    const std::size_t m = current->ground_size();
    std::size_t t = options.max_batch == 0
                        ? static_cast<std::size_t>(
                              std::ceil(std::sqrt(static_cast<double>(k))))
                        : options.max_batch;
    t = std::min(t, k);

    // One parallel round of counting queries: all marginals.
    const std::vector<double> p = current->marginals();
    charge_round(ledger, m, m);
    result.diag.oracle_calls += m;

    detail::BatchRound config;
    config.batch = t;
    config.log_cap = static_cast<double>(t) * static_cast<double>(t) /
                         static_cast<double>(k) +
                     options.extra_log_cap;
    // Prop. 25: C log(1/delta') machines boost acceptance to 1 - delta'.
    const double machines_needed =
        std::exp(config.log_cap) * std::log(1.0 / delta_round) * 2.0 + 8.0;
    config.machines = static_cast<std::size_t>(std::min(
        machines_needed, static_cast<double>(options.machine_cap)));

    auto batch =
        detail::run_batch_round(*current, p, config, rng, result.diag);
    // The proposal batch runs as one parallel round of `machines`
    // rejection evaluations (one counting query each).
    charge_round(ledger, config.machines, config.machines);
    result.diag.rounds += 1;
    if (!batch.has_value()) {
      throw SamplingFailure(
          "sample_batched: no proposal accepted within the machine budget "
          "(round failure probability exceeded)");
    }
    for (const int b : *batch) result.items.push_back(tracker.original(b));
    current = current->condition(*batch);
    tracker.remove(std::move(*batch));
  }
  std::sort(result.items.begin(), result.items.end());
  if (ledger != nullptr) result.diag.pram = ledger->stats();
  return result;
}

}  // namespace pardpp
