#include "sampling/intermediate.h"

#include <algorithm>
#include <cmath>

#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp {

DistillationPlan::DistillationPlan(const CountingOracle& base,
                                   DistillOptions options)
    : base_(&base), options_(options), k_(base.sample_size()) {
  const DistillationProfile profile = base.distillation_profile();
  check_arg(!profile.weights.empty(),
            "DistillationPlan: family " + base.name() +
                " does not support distillation");
  check_arg(profile.weights.size() == base.ground_size(),
            "DistillationPlan: profile size mismatch");
  // An understated rank bound would shrink the Maclaurin bound below
  // real restricted partition functions and silently bias the output
  // law — the one profile mistake exactness cannot survive.
  check_arg(profile.rank_bound >= k_,
            "DistillationPlan: profile rank_bound below k");
  m_ = options_.candidate_budget != 0
           ? options_.candidate_budget
           : std::max<std::size_t>(64, 4 * k_ * k_);
  check_arg(m_ >= k_, "DistillationPlan: candidate budget below k");

  double tau = 0.0;
  cumulative_.resize(profile.weights.size());
  for (std::size_t i = 0; i < profile.weights.size(); ++i) {
    const double w = profile.weights[i];
    check_arg(w >= 0.0, "DistillationPlan: negative weight");
    tau += w;
    cumulative_[i] = tau;
  }
  check_arg(k_ == 0 || tau > 0.0, "DistillationPlan: all weights zero");
  row_scale_.resize(profile.weights.size());
  const double md = static_cast<double>(m_);
  for (std::size_t i = 0; i < profile.weights.size(); ++i) {
    const double w = profile.weights[i];
    row_scale_[i] = w > 0.0 ? std::sqrt(tau / (md * w)) : 0.0;
  }

  // log M = log C(r, k) + k log(tau / r): Maclaurin's bound on e_k of a
  // PSD spectrum with at most r nonzero values summing to tau (maximized
  // at the uniform spectrum). r < k means no restriction can carry mass;
  // the base constructor checks already exclude that, but keep log M
  // finite so the failure mode is max_attempts, not NaN.
  const std::size_t r =
      std::max<std::size_t>(std::min(profile.rank_bound, m_), k_);
  log_m_ = k_ == 0 ? 0.0
                   : log_binomial(r, k_) +
                         static_cast<double>(k_) *
                             (std::log(tau) - std::log(static_cast<double>(r)));
}

std::unique_ptr<CountingOracle> DistillationPlan::propose(
    RandomStream& rng, std::vector<int>& items,
    std::vector<double>& scales) const {
  items.clear();
  scales.clear();
  items.reserve(m_);
  scales.reserve(m_);
  const double tau = cumulative_.back();
  for (std::size_t j = 0; j < m_; ++j) {
    const double target = rng.uniform() * tau;
    auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
    if (it == cumulative_.end()) --it;  // target == tau at roundoff
    const auto i = static_cast<std::size_t>(it - cumulative_.begin());
    items.push_back(static_cast<int>(i));
    scales.push_back(row_scale_[i]);
  }
  return base_->restrict_to(items, scales);
}

SampleResult DistillationPlan::draw(RandomStream& rng,
                                    const InnerSampler& inner) const {
  if (k_ == 0) return {};
  std::vector<int> items;
  std::vector<double> scales;
  std::size_t duplicate_rejects = 0;
  for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const auto restricted = propose(rng, items, scales);
    const double log_z = restricted->log_partition();
    // The acceptance uniform is consumed on every attempt (convention in
    // the header), so the stream position after a rejection does not
    // depend on why the pool was rejected.
    const double u = rng.uniform();
    if (u <= 0.0 || std::log(u) >= log_z - log_m_) continue;
    SampleResult result = inner(*restricted, rng);
    result.diag.proposals += attempt + 1;
    result.diag.accepted_batches += 1;
    for (int& item : result.items)
      item = items[static_cast<std::size_t>(item)];
    std::sort(result.items.begin(), result.items.end());
    const bool distinct =
        std::adjacent_find(result.items.begin(), result.items.end()) ==
        result.items.end();
    // Parallel rows make duplicate selection a probability-zero event;
    // reaching one means roundoff promoted an exactly-null cell, which
    // the family tolerances treat as a rejection, not a sample.
    if (!distinct) {
      ++duplicate_rejects;  // survives into the returned draw's counters
      continue;
    }
    result.diag.duplicate_rejects += duplicate_rejects;
    return result;
  }
  throw SamplingFailure(
      "DistillationPlan: no candidate pool accepted within max_attempts "
      "(spectrum far from the Maclaurin-tight uniform case — raise "
      "candidate_budget)");
}

}  // namespace pardpp
