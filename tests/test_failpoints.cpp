// FailpointRegistry unit tests: trigger semantics (count/skip/prob),
// seeded reproducibility, scope-keyed deterministic firing, the
// PARDPP_FAILPOINTS spec parser, and the guard-site probes themselves
// (cholesky pivot, parallel task bodies, oracle query_many chunks).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/factory.h"
#include "parallel/execution.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "support/failpoint.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

// Every test leaves the process-wide registry clean, pass or fail.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

TEST_F(FailpointTest, InactiveRegistryIsSilent) {
  EXPECT_FALSE(FailpointRegistry::armed());
  EXPECT_FALSE(failpoint("nonexistent.site"));
  EXPECT_EQ(FailpointRegistry::instance().hits("nonexistent.site"), 0u);
}

TEST_F(FailpointTest, CountTriggerFiresExactlyCountTimes) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kCount;
  spec.count = 2;
  FailpointRegistry::instance().arm("t.count", spec);
  EXPECT_TRUE(FailpointRegistry::armed());
  EXPECT_TRUE(failpoint("t.count"));
  EXPECT_TRUE(failpoint("t.count"));
  EXPECT_FALSE(failpoint("t.count"));
  EXPECT_FALSE(failpoint("t.count"));
  EXPECT_EQ(FailpointRegistry::instance().hits("t.count"), 4u);
  EXPECT_EQ(FailpointRegistry::instance().fires("t.count"), 2u);
}

TEST_F(FailpointTest, SkipDefersTheTrigger) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kCount;
  spec.skip = 2;
  spec.count = 1;
  FailpointRegistry::instance().arm("t.skip", spec);
  EXPECT_FALSE(failpoint("t.skip"));
  EXPECT_FALSE(failpoint("t.skip"));
  EXPECT_TRUE(failpoint("t.skip"));
  EXPECT_FALSE(failpoint("t.skip"));
}

TEST_F(FailpointTest, ProbabilityTriggerReplaysFromItsSeed) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kProbability;
  spec.probability = 0.5;
  spec.seed = 42;
  const auto pattern_of = [&](std::uint64_t seed) {
    FailpointSpec s = spec;
    s.seed = seed;
    FailpointRegistry::instance().arm("t.prob", s);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(failpoint("t.prob"));
    return pattern;
  };
  const auto first = pattern_of(42);
  const auto replay = pattern_of(42);
  EXPECT_EQ(first, replay) << "re-arming must reset the hit counter and "
                              "replay the identical firing pattern";
  const auto other_seed = pattern_of(43);
  EXPECT_NE(first, other_seed);
  // ~50% firing rate, and both outcomes occur.
  std::size_t fires = 0;
  for (const bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 16u);
  EXPECT_LT(fires, 48u);
}

TEST_F(FailpointTest, ScopedHitsCountPerScope) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kCount;
  spec.count = 1;
  FailpointRegistry::instance().arm("t.scoped", spec);
  {
    const FailpointScope scope(7);
    EXPECT_TRUE(failpoint("t.scoped"));
    EXPECT_FALSE(failpoint("t.scoped"));
  }
  {
    // A fresh scope restarts the per-scope ordinal: fires again.
    const FailpointScope scope(8);
    EXPECT_TRUE(failpoint("t.scoped"));
    EXPECT_FALSE(failpoint("t.scoped"));
  }
  EXPECT_EQ(FailpointRegistry::instance().fires("t.scoped"), 2u);
}

TEST_F(FailpointTest, ScopeTokenKeysTheProbabilityHash) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kProbability;
  spec.probability = 0.5;
  spec.seed = 11;
  FailpointRegistry::instance().arm("t.token", spec);
  const auto pattern_under = [&](std::uint64_t token) {
    const FailpointScope scope(token);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(failpoint("t.token"));
    return pattern;
  };
  const auto token1 = pattern_under(1);
  const auto token1_again = pattern_under(1);
  EXPECT_EQ(token1, token1_again)
      << "same token must replay the identical pattern";
  EXPECT_NE(token1, pattern_under(2));
}

TEST_F(FailpointTest, ScopedOnlySpecSuppressedOutsideScopes) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kProbability;
  spec.probability = 1.0;
  spec.scoped_only = true;
  FailpointRegistry::instance().arm("t.scopedonly", spec);
  EXPECT_FALSE(failpoint("t.scopedonly"));
  {
    const FailpointScope scope(3);
    EXPECT_TRUE(failpoint("t.scopedonly"));
  }
  EXPECT_FALSE(failpoint("t.scopedonly"));
}

TEST_F(FailpointTest, SpecParserArmsSchedules) {
  auto& registry = FailpointRegistry::instance();
  EXPECT_EQ(registry.arm_from_spec(
                "a.site=count:2,skip:1; b.site=prob:0.25,seed:9,scoped"),
            2u);
  EXPECT_TRUE(FailpointRegistry::armed());
  EXPECT_FALSE(failpoint("a.site"));  // skip 1
  EXPECT_TRUE(failpoint("a.site"));
  EXPECT_TRUE(failpoint("a.site"));
  EXPECT_FALSE(failpoint("a.site"));  // count 2 exhausted
  EXPECT_FALSE(failpoint("b.site"));  // scoped_only, no scope active
  EXPECT_EQ(registry.arm_from_spec("c.site=off"), 1u);
  EXPECT_FALSE(failpoint("c.site"));
}

TEST_F(FailpointTest, SpecParserRejectsMalformedSchedules) {
  auto& registry = FailpointRegistry::instance();
  EXPECT_THROW((void)registry.arm_from_spec("noequals"), InvalidArgument);
  EXPECT_THROW((void)registry.arm_from_spec("a=count:xyz"), InvalidArgument);
  EXPECT_THROW((void)registry.arm_from_spec("a=prob:1.5"), InvalidArgument);
  EXPECT_THROW((void)registry.arm_from_spec("a=bogus:1"), InvalidArgument);
}

TEST_F(FailpointTest, DisarmAllQuiesces) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kProbability;
  spec.probability = 1.0;
  FailpointRegistry::instance().arm("t.off", spec);
  EXPECT_TRUE(failpoint("t.off"));
  FailpointRegistry::instance().disarm_all();
  EXPECT_FALSE(FailpointRegistry::armed());
  EXPECT_FALSE(failpoint("t.off"));
}

// ---- the wired guard sites fire as their documented typed errors ----

TEST_F(FailpointTest, CholeskyPivotSiteThrowsNumericalError) {
  RandomStream setup(90210);
  const Matrix a = random_psd(6, 6, setup, 1e-2);
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kCount;
  spec.count = 1;
  FailpointRegistry::instance().arm("linalg.cholesky.pivot", spec);
  EXPECT_THROW((void)cholesky_or_throw(a), NumericalError);
  // The trigger is exhausted: the same call now succeeds — the session
  // retry story in miniature.
  EXPECT_NO_THROW((void)cholesky_or_throw(a));
}

TEST_F(FailpointTest, ParallelTaskSiteThrowsAndPoolStaysUsable) {
  ThreadPool pool(4);
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kCount;
  spec.count = 1;
  FailpointRegistry::instance().arm("parallel.task", spec);
  std::atomic<int> counter{0};
  EXPECT_THROW(
      parallel_for(pool, 0, 256, [&](std::size_t) { ++counter; }),
      Error);
  FailpointRegistry::instance().disarm_all();
  counter = 0;
  parallel_for(pool, 0, 256, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 256);
}

TEST_F(FailpointTest, QueryManyChunkSiteThrowsNumericalError) {
  const testing::EnumeratedOracle oracle(
      6, 2, [](std::span<const int>) { return 0.0; });
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kProbability;
  spec.probability = 1.0;
  FailpointRegistry::instance().arm("oracle.query_many", spec);
  const std::vector<int> t0;
  const std::vector<std::span<const int>> ts = {std::span<const int>(t0)};
  std::vector<double> out(1);
  EXPECT_THROW(oracle.query_many(ts, out, ExecutionContext::serial()),
               NumericalError);
}

}  // namespace
}  // namespace pardpp
