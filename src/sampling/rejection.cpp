#include "sampling/rejection.h"

#include <cmath>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// Normalized per-domain quantities shared by every trial: the setup the
// FiniteRejection state computes once per run and the one-shot entry
// point once per call — one implementation, so the determinism-critical
// arithmetic cannot drift between the two paths.
struct RejectionSetup {
  std::vector<double> proposal_probs;
  double log_zt = 0.0;
  double log_zp = 0.0;
};

RejectionSetup make_setup(std::span<const double> log_target,
                          std::span<const double> log_proposal) {
  check_arg(log_target.size() == log_proposal.size(),
            "rejection_sample_finite: domain size mismatch");
  RejectionSetup setup;
  setup.log_zt = logsumexp(log_target);
  setup.log_zp = logsumexp(log_proposal);
  check_arg(setup.log_zt != kNegInf && setup.log_zp != kNegInf,
            "rejection_sample_finite: degenerate masses");
  setup.proposal_probs.resize(log_proposal.size());
  for (std::size_t i = 0; i < setup.proposal_probs.size(); ++i)
    setup.proposal_probs[i] = std::exp(log_proposal[i] - setup.log_zp);
  return setup;
}

// The wave-driven trial loop shared by the one-shot entry points and the
// reusable FiniteRejection state: all normalizations arrive precomputed,
// so both paths consume the stream identically.
RejectionOutcome run_rejection(std::span<const double> log_target,
                               std::span<const double> log_proposal,
                               std::span<const double> proposal_probs,
                               double log_zt, double log_zp, double log_cap,
                               std::size_t machines, RandomStream& rng,
                               const ExecutionContext& ctx) {
  struct Trial {
    std::size_t value = 0;
    bool overflow = false;
    bool accepted = false;
  };

  RejectionOutcome out;
  run_trial_waves<Trial>(
      ctx, machines, rng,
      [&](Trial& trial, RandomStream stream) {
        trial.value = stream.categorical(proposal_probs);
        const double log_ratio = (log_target[trial.value] - log_zt) -
                                 (log_proposal[trial.value] - log_zp);
        if (log_ratio > log_cap + 1e-12) {
          trial.overflow = true;
          return;
        }
        trial.accepted = stream.bernoulli(std::exp(log_ratio - log_cap));
      },
      [](std::span<Trial>) {},
      [&](Trial& trial) {
        ++out.proposals_used;
        if (trial.overflow) {
          ++out.overflows;
          return false;
        }
        if (trial.accepted) {
          out.value = trial.value;
          return true;
        }
        return false;
      },
      // One categorical and one Bernoulli draw per trial: dispatching
      // these individually would cost more than evaluating them.
      /*evaluate_grain=*/256);
  return out;
}

}  // namespace

FiniteRejection::FiniteRejection(std::vector<double> log_target,
                                 std::vector<double> log_proposal,
                                 double log_cap)
    : log_target_(std::move(log_target)),
      log_proposal_(std::move(log_proposal)),
      log_cap_(log_cap) {
  RejectionSetup setup = make_setup(log_target_, log_proposal_);
  proposal_probs_ = std::move(setup.proposal_probs);
  log_zt_ = setup.log_zt;
  log_zp_ = setup.log_zp;
}

RejectionOutcome FiniteRejection::draw(std::size_t machines,
                                       RandomStream& rng,
                                       const ExecutionContext& ctx) const {
  return run_rejection(log_target_, log_proposal_, proposal_probs_, log_zt_,
                       log_zp_, log_cap_, machines, rng, ctx);
}

RejectionOutcome rejection_sample_finite(std::span<const double> log_target,
                                         std::span<const double> log_proposal,
                                         double log_cap, std::size_t machines,
                                         RandomStream& rng) {
  return rejection_sample_finite(log_target, log_proposal, log_cap, machines,
                                 rng, ExecutionContext::serial());
}

RejectionOutcome rejection_sample_finite(std::span<const double> log_target,
                                         std::span<const double> log_proposal,
                                         double log_cap, std::size_t machines,
                                         RandomStream& rng,
                                         const ExecutionContext& ctx) {
  const RejectionSetup setup = make_setup(log_target, log_proposal);
  return run_rejection(log_target, log_proposal, setup.proposal_probs,
                       setup.log_zt, setup.log_zp, log_cap, machines, rng,
                       ctx);
}

}  // namespace pardpp
