// Validation of every counting oracle against exhaustive enumeration:
// joint marginals, singleton marginals, conditioning consistency — plus
// the ConditionalState property fuzz: the incremental batch-query path
// must match the from-scratch resolve to 1e-10 on randomized ensembles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "distributions/hard_instance.h"
#include "distributions/product.h"
#include "dpp/feature_oracle.h"
#include "dpp/general_oracle.h"
#include "dpp/subdivision.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "parallel/thread_pool.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::EnumeratedOracle;

// Compares oracle queries against enumeration for every T of size <= 2
// plus a couple of larger batches.
void expect_oracle_matches_enumeration(const CountingOracle& oracle,
                                       const EnumeratedOracle& truth,
                                       double tol) {
  const int n = static_cast<int>(oracle.ground_size());
  ASSERT_EQ(oracle.ground_size(), truth.ground_size());
  ASSERT_EQ(oracle.sample_size(), truth.sample_size());
  // Singleton marginals.
  const auto p = oracle.marginals();
  const auto p_true = truth.marginals();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(p[static_cast<std::size_t>(i)],
                p_true[static_cast<std::size_t>(i)], tol)
        << "marginal of " << i;
  }
  // Joint marginals of all pairs.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const std::vector<int> t = {a, b};
      const double got = oracle.log_joint_marginal(t);
      const double want = truth.log_joint_marginal(t);
      if (want == kNegInf) {
        EXPECT_TRUE(got == kNegInf || std::exp(got) < tol)
            << "pair (" << a << "," << b << ")";
      } else {
        EXPECT_NEAR(std::exp(got), std::exp(want), tol)
            << "pair (" << a << "," << b << ")";
      }
    }
  }
  // A few triples.
  for (int start = 0; start + 2 < n; start += 2) {
    const std::vector<int> t = {start, start + 1, start + 2};
    if (t.size() > oracle.sample_size()) break;
    const double got = oracle.log_joint_marginal(t);
    const double want = truth.log_joint_marginal(t);
    if (want == kNegInf) {
      EXPECT_TRUE(got == kNegInf || std::exp(got) < tol);
    } else {
      EXPECT_NEAR(std::exp(got), std::exp(want), tol);
    }
  }
}

// ---- Symmetric k-DPP ----

class SymmetricOracleTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SymmetricOracleTest, MatchesEnumeration) {
  const auto [k, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 97);
  const int n = 8;
  const Matrix l = random_psd(static_cast<std::size_t>(n), 6, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, static_cast<std::size_t>(k));
  const EnumeratedOracle truth(n, k, [&l](std::span<const int> s) {
    return signed_log_det(l.principal(s)).log_abs;
  });
  expect_oracle_matches_enumeration(oracle, truth, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(KAndSeeds, SymmetricOracleTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                                            ::testing::Values(1, 2, 3)));

TEST(SymmetricOracle, ConditioningConsistency) {
  RandomStream rng(201);
  const Matrix l = random_psd(8, 8, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 4);
  const std::vector<int> t = {2, 5};
  const auto conditioned = oracle.condition(t);
  // P[T' ⊆ S | T ⊆ S] = P[T ∪ T' ⊆ S] / P[T ⊆ S] (with index remap:
  // removing {2,5} maps old 3 -> 2, old 7 -> 5).
  const std::vector<int> t_prime_old = {3, 7};
  const std::vector<int> t_prime_new = {2, 5};
  const std::vector<int> joint = {2, 3, 5, 7};
  const double lhs = conditioned->log_joint_marginal(t_prime_new);
  const double rhs =
      oracle.log_joint_marginal(joint) - oracle.log_joint_marginal(t);
  EXPECT_NEAR(lhs, rhs, 1e-7);
  EXPECT_EQ(conditioned->ground_size(), 6u);
  EXPECT_EQ(conditioned->sample_size(), 2u);
}

TEST(SymmetricOracle, MarginalsSumToK) {
  RandomStream rng(202);
  const Matrix l = random_psd(10, 10, rng, 1e-3);
  for (const std::size_t k : {1u, 3u, 5u, 9u}) {
    const SymmetricKdppOracle oracle(l, k);
    const auto p = oracle.marginals();
    double sum = 0.0;
    for (const double v : p) sum += v;
    EXPECT_NEAR(sum, static_cast<double>(k), 1e-6);
  }
}

TEST(SymmetricOracle, RejectsInvalidInput) {
  RandomStream rng(203);
  Matrix not_psd = Matrix::identity(4);
  not_psd(0, 0) = -1.0;
  EXPECT_THROW(SymmetricKdppOracle(not_psd, 2), InvalidArgument);
  const Matrix l = random_npsd(4, rng, 0.8);
  EXPECT_THROW(SymmetricKdppOracle(l, 2), InvalidArgument);  // not symmetric
  const Matrix ok = random_psd(4, 4, rng);
  EXPECT_THROW(SymmetricKdppOracle(ok, 5), InvalidArgument);  // k > n
}

TEST(SymmetricOracle, RankDeficiencyGivesZeroPartition) {
  RandomStream rng(204);
  const Matrix l = random_psd(6, 2, rng, 0.0);  // rank 2 exactly
  const SymmetricKdppOracle oracle(l, 4);       // k = 4 > rank
  EXPECT_THROW((void)oracle.marginals(), NumericalError);
}

// ---- General (nonsymmetric) k-DPP ----

class GeneralOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(GeneralOracleTest, MatchesEnumeration) {
  const auto [k, seed, symmetric] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 131 + 5);
  const int n = 8;
  const Matrix l = symmetric
                       ? random_psd(static_cast<std::size_t>(n), 6, rng, 1e-3)
                       : random_npsd(static_cast<std::size_t>(n), rng, 0.6);
  const GeneralDppOracle oracle(l, static_cast<std::size_t>(k));
  const EnumeratedOracle truth(n, k, [&l](std::span<const int> s) {
    const auto sld = signed_log_det(l.principal(s));
    return sld.sign > 0 ? sld.log_abs : kNegInf;
  });
  expect_oracle_matches_enumeration(oracle, truth, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(KSeedsSymmetry, GeneralOracleTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Bool()));

TEST(GeneralOracle, AgreesWithSymmetricOracleOnSymmetricInput) {
  RandomStream rng(211);
  const Matrix l = random_psd(9, 9, rng, 1e-3);
  const SymmetricKdppOracle fast(l, 3);
  const GeneralDppOracle slow(l, 3);
  const auto p_fast = fast.marginals();
  const auto p_slow = slow.marginals();
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_NEAR(p_fast[i], p_slow[i], 1e-7);
  const std::vector<int> t = {1, 4, 7};
  EXPECT_NEAR(fast.log_joint_marginal(t), slow.log_joint_marginal(t), 1e-6);
}

TEST(GeneralOracle, ConditioningConsistency) {
  RandomStream rng(212);
  const Matrix l = random_npsd(8, rng, 0.5);
  const GeneralDppOracle oracle(l, 4);
  const std::vector<int> t = {1, 6};
  const auto conditioned = oracle.condition(t);
  const std::vector<int> pair_new = {0, 3};  // old {0, 4}
  const std::vector<int> joint = {0, 1, 4, 6};
  EXPECT_NEAR(conditioned->log_joint_marginal(pair_new),
              oracle.log_joint_marginal(joint) - oracle.log_joint_marginal(t),
              1e-6);
}

// ---- Partition-DPP ----

class PartitionOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionOracleTest, MatchesEnumeration) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 211 + 17);
  const int n = 8;
  const Matrix l = random_psd(static_cast<std::size_t>(n), 8, rng, 1e-3);
  // Two parts: elements 0..3 in part 0, 4..7 in part 1; pick 2 + 1.
  std::vector<int> part_of = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> counts = {2, 1};
  const GeneralDppOracle oracle(l, part_of, counts);
  EXPECT_EQ(oracle.sample_size(), 3u);
  const EnumeratedOracle truth(n, 3, [&](std::span<const int> s) {
    int c0 = 0;
    for (const int i : s)
      if (i < 4) ++c0;
    if (c0 != 2) return kNegInf;
    const auto sld = signed_log_det(l.principal(s));
    return sld.sign > 0 ? sld.log_abs : kNegInf;
  });
  expect_oracle_matches_enumeration(oracle, truth, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionOracleTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(PartitionOracle, ThreeParts) {
  RandomStream rng(221);
  const int n = 9;
  const Matrix l = random_psd(static_cast<std::size_t>(n), 9, rng, 1e-3);
  std::vector<int> part_of = {0, 0, 0, 1, 1, 1, 2, 2, 2};
  std::vector<int> counts = {1, 1, 1};
  const GeneralDppOracle oracle(l, part_of, counts);
  const EnumeratedOracle truth(n, 3, [&](std::span<const int> s) {
    std::vector<int> c(3, 0);
    for (const int i : s) ++c[static_cast<std::size_t>(i / 3)];
    if (c[0] != 1 || c[1] != 1 || c[2] != 1) return kNegInf;
    const auto sld = signed_log_det(l.principal(s));
    return sld.sign > 0 ? sld.log_abs : kNegInf;
  });
  expect_oracle_matches_enumeration(oracle, truth, 1e-6);
}

TEST(PartitionOracle, CrossPartitionJointIsZeroWhenBudgetExceeded) {
  RandomStream rng(222);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  std::vector<int> part_of = {0, 0, 0, 1, 1, 1};
  std::vector<int> counts = {1, 2};
  const GeneralDppOracle oracle(l, part_of, counts);
  // Two elements from part 0 exceed its budget of 1.
  const std::vector<int> t = {0, 1};
  EXPECT_EQ(oracle.log_joint_marginal(t), kNegInf);
}

TEST(PartitionOracle, InfeasibleCountsRejected) {
  RandomStream rng(223);
  const Matrix l = random_psd(4, 4, rng);
  std::vector<int> part_of = {0, 0, 1, 1};
  std::vector<int> counts = {3, 0};  // part 0 has only 2 elements
  EXPECT_THROW(GeneralDppOracle(l, part_of, counts), InvalidArgument);
}

TEST(PartitionOracle, ConditioningDecrementsBudgets) {
  RandomStream rng(224);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  std::vector<int> part_of = {0, 0, 0, 1, 1, 1};
  std::vector<int> counts = {1, 1};
  const GeneralDppOracle oracle(l, part_of, counts);
  const std::vector<int> t = {1};  // part 0 exhausted
  const auto conditioned = oracle.condition(t);
  const auto p = conditioned->marginals();
  // Remaining part-0 elements (new indices 0, 1) have zero marginal.
  EXPECT_NEAR(p[0], 0.0, 1e-9);
  EXPECT_NEAR(p[1], 0.0, 1e-9);
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

// ---- Uniform k-subsets ----

TEST(UniformOracle, MatchesEnumeration) {
  const UniformKSubsetOracle oracle(7, 3);
  const EnumeratedOracle truth(7, 3, [](std::span<const int>) { return 0.0; });
  expect_oracle_matches_enumeration(oracle, truth, 1e-10);
}

TEST(UniformOracle, ConditionReducesBoth) {
  const UniformKSubsetOracle oracle(7, 3);
  const std::vector<int> t = {0, 6};
  const auto conditioned = oracle.condition(t);
  EXPECT_EQ(conditioned->ground_size(), 5u);
  EXPECT_EQ(conditioned->sample_size(), 1u);
  EXPECT_NEAR(conditioned->marginals()[0], 0.2, 1e-12);
}

// ---- Hard instance (§7) ----

TEST(HardInstance, MatchesEnumeration) {
  // n = 8, k = 4: mu uniform over unions of 2 pairs.
  const HardInstanceOracle oracle(8, 4);
  const EnumeratedOracle truth(8, 4, [](std::span<const int> s) {
    // mass 1 iff s is a union of pairs (2i, 2i+1).
    for (std::size_t a = 0; a < s.size(); a += 2) {
      if (s[a] % 2 != 0 || s[a + 1] != s[a] + 1) return kNegInf;
    }
    return 0.0;
  });
  expect_oracle_matches_enumeration(oracle, truth, 1e-10);
}

TEST(HardInstance, PositiveCorrelationInsidePairs) {
  const HardInstanceOracle oracle(16, 4);
  // P[{0,1} ⊆ S] = (k/2)/(n/2) = 2/8, much larger than p_0 p_1 = (1/4)^2.
  const std::vector<int> pair = {0, 1};
  EXPECT_NEAR(std::exp(oracle.log_joint_marginal(pair)), 0.25, 1e-10);
  const auto p = oracle.marginals();
  EXPECT_NEAR(p[0] * p[1], 0.0625, 1e-10);
}

TEST(HardInstance, CrossPairJointMatchesHypergeometric) {
  const HardInstanceOracle oracle(12, 4);
  // P[{0, 2} ⊆ S]: both pairs selected = C(4,0)/C(6,2) = 1/15.
  const std::vector<int> t = {0, 2};
  EXPECT_NEAR(std::exp(oracle.log_joint_marginal(t)), 1.0 / 15.0, 1e-10);
}

TEST(HardInstance, ConditioningForcesPartner) {
  const HardInstanceOracle oracle(8, 4);
  const std::vector<int> t = {2};  // partner 3 becomes forced
  const auto conditioned = oracle.condition(t);
  const auto p = conditioned->marginals();
  // New index of old 3 is 2.
  EXPECT_DOUBLE_EQ(p[2], 1.0);
  EXPECT_EQ(conditioned->sample_size(), 3u);
  // Remaining free elements have marginal (pairs_needed=1)/(free_pairs=3).
  EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-12);
}

TEST(HardInstance, ConditionOnForcedThenResolves) {
  const HardInstanceOracle oracle(8, 4);
  const std::vector<int> t = {2, 3};  // a full pair
  const auto conditioned = oracle.condition(t);
  EXPECT_EQ(conditioned->sample_size(), 2u);
  EXPECT_EQ(conditioned->ground_size(), 6u);
  const auto p = conditioned->marginals();
  for (const double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(HardInstance, RejectsOddParameters) {
  EXPECT_THROW(HardInstanceOracle(7, 4), InvalidArgument);
  EXPECT_THROW(HardInstanceOracle(8, 3), InvalidArgument);
  EXPECT_THROW(HardInstanceOracle(4, 6), InvalidArgument);
}

// ---- ConditionalState: incremental batch queries vs from-scratch ----

// Draws a uniformly random distinct subset of [n] of the given size, in
// shuffled (not sorted) order, so the incremental Cholesky extension is
// exercised on arbitrary prefixes.
std::vector<int> random_subset(std::size_t n, std::size_t size,
                               RandomStream& rng) {
  std::vector<int> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<int>(i);
  for (std::size_t i = 0; i < size; ++i) {
    const auto j = i + static_cast<std::size_t>(
                           rng.uniform_index(static_cast<std::uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(size);
  return pool;
}

// One state reused across every query of one oracle (the wave pattern):
// each answer must match the from-scratch resolve to 1e-10, and -inf
// (probability zero) must agree exactly.
void expect_state_matches_from_scratch(const CountingOracle& oracle,
                                       RandomStream& rng, int queries) {
  oracle.prepare_concurrent();
  const auto state = oracle.make_conditional_state();
  const std::size_t n = oracle.ground_size();
  const std::size_t k = oracle.sample_size();
  for (int q = 0; q < queries; ++q) {
    const std::size_t tsize =
        static_cast<std::size_t>(rng.uniform_index(k + 1));
    const auto t = random_subset(n, tsize, rng);
    const double incremental = state->log_joint(t);
    const double reference = oracle.log_joint_marginal(t);
    if (reference == kNegInf || incremental == kNegInf) {
      EXPECT_EQ(incremental, reference) << oracle.name() << " |T|=" << tsize;
      continue;
    }
    EXPECT_NEAR(incremental, reference, 1e-10)
        << oracle.name() << " |T|=" << tsize;
  }
}

TEST(ConditionalStateFuzz, SymmetricIncrementalMatchesFromScratch) {
  RandomStream rng(424201);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_index(5));
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.uniform_index(n - 1));
    const Matrix l = random_psd(n, n, rng, 1e-3);
    const SymmetricKdppOracle oracle(l, k);
    expect_state_matches_from_scratch(oracle, rng, 24);
  }
}

TEST(ConditionalStateFuzz, LowRankIncrementalMatchesFromScratch) {
  RandomStream rng(424202);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_index(9));
    const std::size_t d = 4 + static_cast<std::size_t>(rng.uniform_index(4));
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.uniform_index(d - 1));
    const Matrix features = random_gaussian(n, d, rng);
    const FeatureKdppOracle oracle(features, k);
    expect_state_matches_from_scratch(oracle, rng, 24);
  }
}

TEST(ConditionalStateFuzz, NonsymmetricIncrementalMatchesFromScratch) {
  RandomStream rng(424203);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_index(3));
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.uniform_index(4));
    const Matrix l = random_npsd(n, rng, 0.6);
    const GeneralDppOracle oracle(l, k);
    expect_state_matches_from_scratch(oracle, rng, 12);
  }
}

TEST(ConditionalStateFuzz, QueryManyMatchesSerialLoopAcrossChunkLayouts) {
  // query_many answers must be independent of how queries land on chunks
  // (and therefore on the pool): compare a wide pooled batch against a
  // per-query serial loop.
  RandomStream rng(424204);
  const Matrix l = random_psd(9, 9, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 4);
  std::vector<std::vector<int>> storage;
  for (int q = 0; q < 40; ++q)
    storage.push_back(random_subset(9, 1 + rng.uniform_index(4), rng));
  const std::vector<std::span<const int>> queries(storage.begin(),
                                                  storage.end());
  std::vector<double> serial(queries.size());
  oracle.query_many(queries, serial, ExecutionContext::serial());
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool, nullptr);
  std::vector<double> pooled(queries.size());
  oracle.query_many(queries, pooled, ctx);
  EXPECT_EQ(serial, pooled);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double reference = oracle.log_joint_marginal(queries[q]);
    if (reference == kNegInf) {
      EXPECT_EQ(serial[q], kNegInf);
    } else {
      EXPECT_NEAR(serial[q], reference, 1e-10);
    }
  }
}

// ---- CommittedOracle: incremental commit path vs condition() chain ----

// Picks a random batch of the given size with P[batch ⊆ S] > 0 under
// `oracle` (bounded retries, then falls back to a singleton of maximal
// marginal), so commits never land on probability-zero events.
std::vector<int> random_feasible_batch(const CountingOracle& oracle,
                                       std::size_t size, RandomStream& rng) {
  const std::size_t n = oracle.ground_size();
  for (int attempt = 0; attempt < 24; ++attempt) {
    auto batch = random_subset(n, size, rng);
    if (oracle.log_joint_marginal(batch) != kNegInf) return batch;
  }
  const auto p = oracle.marginals();
  std::size_t best = 0;
  for (std::size_t i = 1; i < p.size(); ++i)
    if (p[i] > p[best]) best = i;
  return {static_cast<int>(best)};
}

// Drives one full run — commit() on the incremental state, condition()
// on the reference chain — and pins the two conditionals against each
// other after every accepted round: sizes, marginal vectors, random joint
// queries (direct and through a ConditionalState), and the committed-mass
// diagnostic against the base oracle's from-scratch resolve.
void expect_commit_matches_condition(const CountingOracle& base,
                                     RandomStream& rng) {
  base.prepare_concurrent();
  const auto committed = base.make_committed();
  const auto reference = make_condition_reference(base);
  IndexTracker tracker(base.ground_size());
  std::vector<int> committed_originals;
  while (committed->sample_size() > 0) {
    ASSERT_EQ(committed->sample_size(), reference->sample_size());
    ASSERT_EQ(committed->ground_size(), reference->ground_size());
    const auto p_commit = committed->marginals();
    const auto p_ref = reference->marginals();
    ASSERT_EQ(p_commit.size(), p_ref.size());
    for (std::size_t i = 0; i < p_ref.size(); ++i)
      EXPECT_NEAR(p_commit[i], p_ref[i], 1e-10) << base.name() << " i=" << i;
    const std::size_t k = committed->sample_size();
    const std::size_t m = committed->ground_size();
    const auto state = committed->make_conditional_state();
    for (int q = 0; q < 8; ++q) {
      const auto t = random_subset(
          m, static_cast<std::size_t>(rng.uniform_index(k + 1)), rng);
      const double want = reference->log_joint_marginal(t);
      const double direct = committed->log_joint_marginal(t);
      const double incremental = state->log_joint(t);
      if (want == kNegInf) {
        EXPECT_EQ(direct, kNegInf) << base.name();
        EXPECT_EQ(incremental, kNegInf) << base.name();
        continue;
      }
      EXPECT_NEAR(direct, want, 1e-10) << base.name() << " |T|=" << t.size();
      EXPECT_NEAR(incremental, want, 1e-10)
          << base.name() << " |T|=" << t.size();
    }
    // Commit a feasible batch on both paths, handing the commit the
    // accepted trial's counting answer like the samplers do.
    const std::size_t batch_size =
        std::min<std::size_t>(1 + rng.uniform_index(2), k);
    const auto batch = random_feasible_batch(*reference, batch_size, rng);
    const double log_joint = reference->log_joint_marginal(batch);
    committed->commit(batch, log_joint);
    reference->commit(batch, log_joint);
    for (const int b : tracker.originals(batch))
      committed_originals.push_back(b);
    tracker.remove(batch);
    EXPECT_EQ(committed->committed_count(), reference->committed_count());
    // The committed-mass diagnostic (families that track it): the run's
    // prefix mass must match the base oracle's from-scratch resolve.
    const double mass = committed->log_committed_mass();
    if (!std::isnan(mass)) {
      EXPECT_NEAR(mass, base.log_joint_marginal(committed_originals), 1e-9)
          << base.name() << " committed=" << committed->committed_count();
    }
  }
  // reset() rewinds to the base distribution.
  committed->reset();
  EXPECT_EQ(committed->committed_count(), 0u);
  EXPECT_EQ(committed->ground_size(), base.ground_size());
  EXPECT_EQ(committed->sample_size(), base.sample_size());
  const auto p_reset = committed->marginals();
  const auto p_base = base.marginals();
  for (std::size_t i = 0; i < p_base.size(); ++i)
    EXPECT_NEAR(p_reset[i], p_base[i], 1e-12);
}

TEST(CommittedOracleFuzz, SymmetricCommitMatchesCondition) {
  RandomStream rng(515201);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_index(5));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.uniform_index(n - 2));
    const Matrix l = random_psd(n, n, rng, 1e-3);
    const SymmetricKdppOracle oracle(l, k);
    expect_commit_matches_condition(oracle, rng);
  }
}

TEST(CommittedOracleFuzz, SymmetricCommitStaysOnFactorNativePath) {
  // On a well-conditioned kernel the commit path must never pay the
  // eigensolve fallback: every round's counting basis comes from the
  // Cholesky-native downdate, and the refresh counter stays at zero
  // across full draws and reset() cycles. The condition() reference
  // wrapper reports zero by construction.
  RandomStream rng(515207);
  const std::size_t n = 48;
  const std::size_t k = 6;
  const Matrix l = random_psd(n, n, rng, 1e-2);
  const SymmetricKdppOracle oracle(l, k);
  const auto committed = oracle.make_committed();
  for (int pass = 0; pass < 3; ++pass) {
    if (pass > 0) committed->reset();
    while (committed->committed_count() < k) {
      const auto p = committed->marginals();
      std::size_t best = 0;
      for (std::size_t i = 1; i < p.size(); ++i)
        if (p[i] > p[best]) best = i;
      const std::vector<int> batch = {static_cast<int>(best)};
      committed->commit(batch, std::log(p[best]));
    }
    EXPECT_EQ(committed->spectral_refreshes(), 0u);
  }
  const auto reference = make_condition_reference(oracle);
  EXPECT_EQ(reference->spectral_refreshes(), 0u);
}

TEST(CommittedOracleFuzz, LowRankCommitMatchesCondition) {
  RandomStream rng(515202);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_index(9));
    const std::size_t d = 4 + static_cast<std::size_t>(rng.uniform_index(4));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.uniform_index(d - 2));
    const Matrix features = random_gaussian(n, d, rng);
    const FeatureKdppOracle oracle(features, k);
    expect_commit_matches_condition(oracle, rng);
  }
}

TEST(CommittedOracleFuzz, NonsymmetricCommitMatchesCondition) {
  RandomStream rng(515203);
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_index(3));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.uniform_index(3));
    const Matrix l = random_npsd(n, rng, 0.6);
    const GeneralDppOracle oracle(l, k);
    expect_commit_matches_condition(oracle, rng);
  }
}

TEST(CommittedOracleFuzz, PartitionCommitSeedsThePartitionCoefficient) {
  // Partition-DPP commit: the seeded partition coefficient must agree
  // with a from-scratch conditioned oracle's grid sweep.
  RandomStream rng(515204);
  const std::size_t n = 8;
  const Matrix l = random_psd(n, n, rng, 1e-3);
  std::vector<int> part_of = {0, 0, 0, 1, 1, 1, 1, 0};
  std::vector<int> counts = {2, 2};
  const GeneralDppOracle oracle(l, part_of, counts);
  expect_commit_matches_condition(oracle, rng);
}

TEST(CommittedOracleFuzz, CommitOnNullEventThrowsAndLeavesStateIntact) {
  // Two identical items: committing both together is a probability-zero
  // event. The commit must throw without mutating the state — a caught
  // failure may not poison later rounds (the condition() reference is
  // strongly exception-safe here, so the commit path must be too).
  RandomStream rng(515206);
  Matrix b = random_gaussian(5, 2, rng);
  for (std::size_t c = 0; c < 2; ++c) b(1, c) = b(0, c);
  const Matrix l = multiply_transposed_b(b, b);
  const SymmetricKdppOracle oracle(l, 2, /*validate=*/false);
  const auto committed = oracle.make_committed();
  const std::vector<int> null_batch = {0, 1};
  EXPECT_THROW(committed->commit(null_batch, kNegInf), NumericalError);
  EXPECT_EQ(committed->committed_count(), 0u);
  const auto p_after = committed->marginals();
  const auto p_base = oracle.marginals();
  for (std::size_t i = 0; i < p_base.size(); ++i)
    EXPECT_NEAR(p_after[i], p_base[i], 1e-12);
  // A feasible commit still works and stays consistent with condition().
  const std::vector<int> batch = {0, 3};
  ASSERT_NE(oracle.log_joint_marginal(batch), kNegInf);
  committed->commit(batch, oracle.log_joint_marginal(batch));
  EXPECT_NEAR(committed->log_committed_mass(),
              oracle.log_joint_marginal(batch), 1e-9);
  const auto conditioned = oracle.condition(batch);
  const auto p_commit = committed->marginals();
  const auto p_want = conditioned->marginals();
  for (std::size_t i = 0; i < p_want.size(); ++i)
    EXPECT_NEAR(p_commit[i], p_want[i], 1e-10);
}

TEST(CommittedOracleFuzz, DefaultWrapperCoversCombinatorialOracles) {
  // Families without an incremental commit ride the condition() wrapper:
  // behaviour must match a hand-rolled condition() chain exactly.
  RandomStream rng(515205);
  const UniformKSubsetOracle oracle(9, 4);
  expect_commit_matches_condition(oracle, rng);
}

// ---- Subdivision wrapper (Definition 30 / Prop. 32) ----

TEST(Subdivision, MarginalsAndJointsReduceToBase) {
  RandomStream rng(231);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  auto base = std::make_unique<SymmetricKdppOracle>(l, 3);
  const auto base_p = base->marginals();
  const SubdividedOracle sub(std::move(base), 0.5);
  ASSERT_GE(sub.ground_size(), 6u);
  const auto p = sub.marginals();
  // Copy marginal = base marginal / copies; per-element sums recover base.
  std::vector<double> per_base(6, 0.0);
  for (std::size_t c = 0; c < sub.ground_size(); ++c) {
    const int b = sub.origin_of(static_cast<int>(c));
    ASSERT_GE(b, 0);
    per_base[static_cast<std::size_t>(b)] += p[c];
  }
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(per_base[i], base_p[i], 1e-9);
}

TEST(Subdivision, TwoCopiesOfOneElementHaveZeroJoint) {
  RandomStream rng(232);
  const Matrix l = random_psd(4, 4, rng, 1e-2);
  auto base = std::make_unique<SymmetricKdppOracle>(l, 2);
  const SubdividedOracle sub(std::move(base), 0.3);
  // Find an element with >= 2 copies.
  int first = -1;
  int second = -1;
  for (std::size_t c = 0; c < sub.ground_size() && second < 0; ++c) {
    for (std::size_t d = c + 1; d < sub.ground_size(); ++d) {
      if (sub.origin_of(static_cast<int>(c)) ==
          sub.origin_of(static_cast<int>(d))) {
        first = static_cast<int>(c);
        second = static_cast<int>(d);
        break;
      }
    }
  }
  ASSERT_GE(second, 0) << "beta = 0.3 should create duplicate copies";
  const std::vector<int> t = {first, second};
  EXPECT_EQ(sub.log_joint_marginal(t), kNegInf);
}

TEST(Subdivision, Prop32MarginalUpperBound) {
  RandomStream rng(233);
  // Very skewed marginals.
  std::vector<double> spectrum = {4.0, 0.02, 0.02, 0.01, 0.01, 0.01};
  const Matrix l = kernel_with_spectrum(spectrum, rng);
  auto base = std::make_unique<SymmetricKdppOracle>(l, 2, false);
  const double beta = 0.5;
  const SubdividedOracle sub(std::move(base), beta);
  const auto p = sub.marginals();
  const double bound = (1.0 + std::sqrt(beta)) * 2.0 /
                       static_cast<double>(sub.ground_size());
  for (const double v : p) {
    EXPECT_LE(v, bound * (1.0 + 1e-9));
  }
}

TEST(Subdivision, ConditioningKillsSiblingCopies) {
  RandomStream rng(234);
  const Matrix l = random_psd(4, 4, rng, 1e-2);
  auto base = std::make_unique<SymmetricKdppOracle>(l, 2);
  const SubdividedOracle sub(std::move(base), 0.3);
  // Condition on copy 0; all siblings of its original must die.
  const int original = sub.origin_of(0);
  const std::vector<int> t = {0};
  const auto conditioned = sub.condition(t);
  const auto* sub_cond = dynamic_cast<const SubdividedOracle*>(conditioned.get());
  ASSERT_NE(sub_cond, nullptr);
  const auto p = conditioned->marginals();
  int live_siblings = 0;
  for (std::size_t c = 0; c < conditioned->ground_size(); ++c) {
    if (sub_cond->origin_of(static_cast<int>(c)) < 0) {
      EXPECT_DOUBLE_EQ(p[c], 0.0);
    } else {
      ++live_siblings;
    }
  }
  EXPECT_GT(live_siblings, 0);
  (void)original;
}

}  // namespace
}  // namespace pardpp
