// Unified configuration façade for the serving layer (DESIGN.md §2
// convention 13).
//
// One config representation flows from wire request to primed session:
// `SessionConfig` wraps the sampling-side `SessionOptions` POD surface
// and gives it the three things serving needs — `validate()` (typed
// InvalidArgument naming the offending field), and a canonical text
// round-trip (`to_string`/`parse`) shared by the CLI flags, the daemon
// protocol, and the kernel fingerprint. `ServingConfig` does the same
// for the server's own knobs (pool size, admission control, registry
// budget).
//
// Canonical form: every field, in a fixed order, as `key=value` pairs
// joined by commas — so equal configs produce byte-equal strings and a
// parsed config re-serializes to the canonical spelling regardless of
// the input's field order or float formatting. Doubles print with %.17g
// (bit-exact round trip); booleans as 0/1; the sampler kind by its
// sampler_kind_name. `parse` accepts any subset of keys over defaults
// and throws InvalidArgument naming an unknown key or unparsable value.
// The one non-POD SessionOptions member, the guard_events sink, is
// process-local and deliberately outside the text surface.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "sampling/session.h"

namespace pardpp::serving {

/// SessionOptions plus the serialization/validation surface. The wrapped
/// options are the single source of truth — callers hand `.session` to
/// SamplerSession unchanged.
struct SessionConfig {
  SessionOptions session;

  /// Delegates to SessionOptions::validate (typed InvalidArgument naming
  /// the field); `sample_size` enables the k-relative checks when known.
  void validate(std::size_t sample_size = 0) const {
    session.validate(sample_size);
  }

  /// Canonical text form (see file comment). parse(to_string(c)) == c.
  [[nodiscard]] std::string to_string() const;

  /// Parses `key=value,...` over defaults. Throws InvalidArgument naming
  /// an unknown key, a malformed pair, or an unparsable value. An empty
  /// (or all-whitespace) string yields the defaults.
  [[nodiscard]] static SessionConfig parse(std::string_view text);
};

/// Server-side knobs: worker pool, registry budget, admission control.
struct ServingConfig {
  /// Worker threads for the shared ExecutionContext (0 = physical
  /// concurrency). One pool serves every session — coalesced batches
  /// fan out across it.
  std::size_t pool_threads = 0;
  /// Registry LRU budget: least-recently-used sessions are evicted once
  /// the sum of resident-byte estimates exceeds this.
  std::size_t max_resident_bytes = std::size_t{256} << 20;
  /// Admission control: submissions beyond this queue depth are rejected
  /// with Overloaded instead of stalling.
  std::size_t max_queue_depth = 1024;
  /// Admission control: per-tenant in-flight cap, so one tenant cannot
  /// monopolize the queue.
  std::size_t max_inflight_per_tenant = 64;
  /// Largest draw count a single request may ask for.
  std::size_t max_draws_per_request = 4096;

  /// Throws InvalidArgument naming the offending field (every cap must
  /// be positive; pool_threads may be 0 = auto).
  void validate() const;

  /// Canonical text form; parse(to_string(c)) == c.
  [[nodiscard]] std::string to_string() const;

  /// Parses `key=value,...` over defaults; same error contract as
  /// SessionConfig::parse.
  [[nodiscard]] static ServingConfig parse(std::string_view text);
};

}  // namespace pardpp::serving
