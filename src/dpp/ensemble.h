// L-ensemble fundamentals (paper §3.2).
//
// A DPP on [n] is parameterized by an ensemble matrix L with nonnegative
// principal minors: P[Y] ∝ det(L_Y), partition function det(I + L). The
// marginal kernel K = L(I+L)^{-1} gives containment probabilities
// P[A ⊆ Y] = det(K_A); the two parameterizations are interconvertible via
// equations (1)/(2) of the paper.
#pragma once

#include "linalg/matrix.h"

namespace pardpp {

/// K = L (I + L)^{-1} = I - (I + L)^{-1} (paper eq. (1)).
[[nodiscard]] Matrix marginal_kernel(const Matrix& l);

/// L = K (I - K)^{-1} (paper eq. (2)); requires sigma_max(K) < 1.
[[nodiscard]] Matrix ensemble_from_kernel(const Matrix& k);

/// log det(I + L), the log partition function of the unconstrained DPP.
[[nodiscard]] double log_partition_function(const Matrix& l);

/// Validates that L defines a DPP of the requested symmetry class; throws
/// InvalidArgument otherwise. `symmetric` demands L = L^T PSD; otherwise
/// L + L^T PSD (Definition 4).
void validate_ensemble(const Matrix& l, bool symmetric);

}  // namespace pardpp
