#include "planar/fkt.h"

#include <algorithm>
#include <map>
#include <queue>

#include "planar/faces.h"

namespace pardpp {

KasteleynOrientation fkt_orientation(const PlanarGraph& g) {
  const std::size_t n = g.num_vertices();
  check_arg(g.components().size() <= 1,
            "fkt_orientation: graph must be connected");
  KasteleynOrientation out;
  out.matrix = Matrix(n, n);
  out.orientation.assign(g.num_edges(), false);
  if (g.num_edges() == 0) return out;

  // Edge index lookup.
  std::map<std::pair<int, int>, std::size_t> edge_index;
  for (std::size_t e = 0; e < g.num_edges(); ++e)
    edge_index[g.edges()[e]] = e;
  const auto edge_of = [&edge_index](int u, int v) {
    return edge_index.at({std::min(u, v), std::max(u, v)});
  };

  // 1. BFS spanning tree; tree edges oriented low-id -> high-id (i.e.
  // orientation[e] = true, since edges are stored (min, max)).
  std::vector<bool> in_tree(g.num_edges(), false);
  std::vector<bool> determined(g.num_edges(), false);
  {
    std::vector<bool> visited(n, false);
    std::queue<int> queue;
    queue.push(0);
    visited[0] = true;
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      for (const int u : g.neighbors(v)) {
        if (visited[static_cast<std::size_t>(u)]) continue;
        visited[static_cast<std::size_t>(u)] = true;
        const std::size_t e = edge_of(v, u);
        in_tree[e] = true;
        determined[e] = true;
        out.orientation[e] = true;
        queue.push(u);
      }
    }
  }

  // 2. Faces and the dual tree over non-tree edges.
  const auto decomposition = compute_faces(g);
  check(decomposition.euler == 2,
        "fkt_orientation: Euler check failed (not a planar embedding)");
  const std::size_t num_faces = decomposition.faces.size();
  // For each dart, which face contains it.
  std::map<std::pair<int, int>, std::size_t> face_of_dart;
  for (std::size_t f = 0; f < num_faces; ++f)
    for (const auto& dart : decomposition.faces[f].darts)
      face_of_dart[dart] = f;

  // Dual adjacency via non-tree edges.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> dual(
      num_faces);  // face -> (other face, edge index)
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (in_tree[e]) continue;
    const auto [u, v] = g.edges()[e];
    const std::size_t f1 = face_of_dart.at({u, v});
    const std::size_t f2 = face_of_dart.at({v, u});
    check(f1 != f2, "fkt_orientation: bridge among non-tree edges");
    dual[f1].emplace_back(f2, e);
    dual[f2].emplace_back(f1, e);
  }

  // 3. Peel the dual tree from the leaves toward the outer-face root.
  // Every processed internal face has exactly one undetermined edge.
  std::vector<std::size_t> undetermined_count(num_faces, 0);
  for (std::size_t f = 0; f < num_faces; ++f)
    undetermined_count[f] = dual[f].size();
  std::queue<std::size_t> ready;
  for (std::size_t f = 0; f < num_faces; ++f) {
    if (f != decomposition.outer_face && undetermined_count[f] == 1)
      ready.push(f);
  }
  std::vector<bool> processed(num_faces, false);
  std::size_t processed_count = 0;
  while (!ready.empty()) {
    const std::size_t f = ready.front();
    ready.pop();
    if (processed[f]) continue;
    processed[f] = true;
    ++processed_count;
    // Find the single undetermined boundary edge.
    std::size_t pending_edge = g.num_edges();
    std::size_t parent_face = num_faces;
    for (const auto& [other, e] : dual[f]) {
      if (!determined[e]) {
        check(pending_edge == g.num_edges(),
              "fkt_orientation: leaf face with several undetermined edges");
        pending_edge = e;
        parent_face = other;
      }
    }
    check(pending_edge != g.num_edges(),
          "fkt_orientation: face with no undetermined edge before fixing");
    // Count clockwise edges of this face. The dart walk traverses
    // internal faces counterclockwise (positive area), so an edge is
    // clockwise iff it is oriented against its dart.
    std::size_t clockwise = 0;
    bool pending_dart_forward = true;  // dart agrees with (min -> max)?
    for (const auto& [u, v] : decomposition.faces[f].darts) {
      const std::size_t e = edge_of(u, v);
      const bool dart_forward = u < v;
      if (e == pending_edge) {
        pending_dart_forward = dart_forward;
        continue;
      }
      // orientation[e] true means min -> max; the edge runs along the
      // dart iff orientation matches the dart direction.
      const bool along_dart = (out.orientation[e] == dart_forward);
      if (!along_dart) ++clockwise;
    }
    // Fix the pending edge to make `clockwise` odd.
    const bool need_clockwise = (clockwise % 2 == 0);
    // Pending edge clockwise <=> oriented against its dart in this face.
    out.orientation[pending_edge] =
        need_clockwise ? !pending_dart_forward : pending_dart_forward;
    determined[pending_edge] = true;
    if (parent_face != decomposition.outer_face && !processed[parent_face]) {
      std::size_t remaining = 0;
      for (const auto& [other, e] : dual[parent_face]) {
        (void)other;
        if (!determined[e]) ++remaining;
      }
      if (remaining == 1) ready.push(parent_face);
    }
  }
  check(processed_count + 1 == num_faces,
        "fkt_orientation: dual-tree peeling did not reach every face");

  // 4. Signed skew adjacency matrix.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edges()[e];
    const double sign = out.orientation[e] ? 1.0 : -1.0;
    out.matrix(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) = sign;
    out.matrix(static_cast<std::size_t>(v), static_cast<std::size_t>(u)) = -sign;
  }
  return out;
}

}  // namespace pardpp
