// SamplerSession — many draws from one distribution, preprocessing paid
// once (DESIGN.md §2 convention 7).
//
// The per-sample entry points (sample_sequential & co.) rebuild the base
// oracle's spectral preprocessing on every call: they clone the oracle,
// whose lazy caches start cold. A session inverts the ownership: the base
// oracle is primed once at construction, every draw runs the sampler's
// round loop on a long-lived CommittedOracle that reads those shared
// caches at round 0 and maintains its own conditional state incrementally
// afterwards, and `draw_many` dispatches independent draws concurrently
// on the ExecutionContext's pool (one committed state per chunk, one
// deterministic stream per sample index) — the cross-sample throughput
// axis, on top of the per-round commit-path savings.
//
// Determinism: identical seed ⇒ identical sample sequence at every pool
// size (draw i consumes the stream forked for index i, never a worker's).
// With `use_commit = false` the session runs the condition() reference
// path instead — per-round conditioned oracles, per-draw base
// preprocessing — which draws the identical samples from the same seed:
// the bit-identity contract bench_throughput and the statistical harness
// pin down.
#pragma once

#include <memory>
#include <vector>

#include "distributions/oracle.h"
#include "parallel/execution.h"
#include "sampling/batched.h"
#include "sampling/diagnostics.h"
#include "sampling/entropic.h"
#include "sampling/intermediate.h"
#include "support/random.h"

namespace pardpp {

enum class SamplerKind {
  kSequential,  ///< JVV86 reduction, depth k
  kBatched,     ///< Algorithm 1 / Theorem 10, depth ~ sqrt(k)
  kEntropic,    ///< Theorem 29 batched rejection
};

[[nodiscard]] constexpr const char* sampler_kind_name(
    SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::kSequential:
      return "sequential";
    case SamplerKind::kBatched:
      return "batched";
    case SamplerKind::kEntropic:
      return "entropic";
  }
  return "unknown";
}

struct SessionOptions {
  SamplerKind kind = SamplerKind::kSequential;
  /// false = run the condition() reference path (fresh conditioned oracle
  /// per accepted round, fresh preprocessing per draw) — the baseline the
  /// commit path is benchmarked and bit-compared against.
  bool use_commit = true;
  /// Opt-in intermediate-sampling front end (DESIGN.md §2 convention 8):
  /// each draw distills the ground set to a small candidate pool and runs
  /// `kind` on the restriction, so per-draw cost is independent of n.
  /// With distillation the session primes the O(n) distillation plan
  /// instead of the base oracle's full-n spectral caches; `use_commit`
  /// still selects commit vs condition() for the inner run, and both
  /// paths draw bit-identical samples from one seed.
  DistillOptions distill;
  BatchedOptions batched;
  EntropicOptions entropic;
};

class SamplerSession {
 public:
  /// `base` must outlive the session. Construction primes the base
  /// oracle's lazy caches (prepare_concurrent), so concurrent draws read
  /// them read-only.
  explicit SamplerSession(const CountingOracle& base,
                          SessionOptions options = {});

  /// One draw on the session's serial state (reset + run; scratch and the
  /// base preprocessing are reused across calls).
  [[nodiscard]] SampleResult draw(RandomStream& rng);

  /// `count` independent draws, dispatched in chunks on the context's
  /// pool with one committed state per chunk. Draw i consumes a private
  /// stream forked from `rng` by index (the caller's stream advances by
  /// exactly one split), so the result sequence is a function of the seed
  /// alone — never of the pool size or the chunk layout.
  [[nodiscard]] std::vector<SampleResult> draw_many(
      std::size_t count, RandomStream& rng, const ExecutionContext& ctx);

  [[nodiscard]] const SessionOptions& options() const noexcept {
    return options_;
  }

  /// The primed distillation plan (nullptr unless distill.enabled) — the
  /// persistent-proposal stats surface for benches and tests.
  [[nodiscard]] const DistillationPlan* distillation_plan() const noexcept {
    return plan_.get();
  }

 private:
  [[nodiscard]] std::unique_ptr<CommittedOracle> make_state() const;
  [[nodiscard]] SampleResult run(CommittedOracle& state,
                                 RandomStream& rng) const;
  [[nodiscard]] SampleResult draw_distilled(RandomStream& rng) const;

  const CountingOracle* base_;
  SessionOptions options_;
  std::unique_ptr<CommittedOracle> serial_state_;
  std::unique_ptr<DistillationPlan> plan_;  // non-null iff distill.enabled
};

}  // namespace pardpp
