// Shared test utilities: enumeration-backed ground truth and
// total-variation distribution checks.
#pragma once

#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "distributions/oracle.h"
#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp::testing {

/// Exact distribution over k-subsets of [n], stored by lexicographic rank.
struct ExactDistribution {
  int n = 0;
  int k = 0;
  std::vector<double> probs;  // indexed by SubsetIndexer rank

  [[nodiscard]] double prob_of(std::span<const int> subset) const {
    const SubsetIndexer indexer(n, k);
    return probs[indexer.rank(subset)];
  }
};

/// Builds the exact distribution from an unnormalized log-mass callback.
inline ExactDistribution exact_distribution(
    int n, int k,
    const std::function<double(std::span<const int>)>& log_mass) {
  ExactDistribution dist;
  dist.n = n;
  dist.k = k;
  const SubsetIndexer indexer(n, k);
  std::vector<double> log_masses(indexer.count(), kNegInf);
  for_each_subset(n, k, [&](std::span<const int> subset) {
    log_masses[indexer.rank(subset)] = log_mass(subset);
  });
  const double log_z = logsumexp(log_masses);
  dist.probs.resize(log_masses.size());
  for (std::size_t i = 0; i < log_masses.size(); ++i)
    dist.probs[i] = std::exp(log_masses[i] - log_z);
  return dist;
}

/// Total variation distance between the exact distribution and the
/// empirical distribution of `samples` (each a sorted k-subset).
inline double empirical_tv(const ExactDistribution& dist,
                           const std::vector<std::vector<int>>& samples) {
  const SubsetIndexer indexer(dist.n, dist.k);
  std::vector<double> counts(dist.probs.size(), 0.0);
  for (const auto& s : samples) counts[indexer.rank(s)] += 1.0;
  double tv = 0.0;
  const double total = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    tv += std::abs(counts[i] / total - dist.probs[i]);
  return 0.5 * tv;
}

/// Pearson chi-square goodness-of-fit of `samples` against the exact
/// distribution, pooling cells with expected count below `min_expected`
/// into one bucket (the standard validity fix for sparse cells). Returns
/// the statistic and the degrees of freedom actually used.
struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
};

inline ChiSquareResult chi_square_subsets(
    const ExactDistribution& dist,
    const std::vector<std::vector<int>>& samples,
    double min_expected = 5.0) {
  const SubsetIndexer indexer(dist.n, dist.k);
  std::vector<double> counts(dist.probs.size(), 0.0);
  for (const auto& s : samples) counts[indexer.rank(s)] += 1.0;
  const double total = static_cast<double>(samples.size());
  ChiSquareResult out;
  double pooled_expected = 0.0;
  double pooled_observed = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expected = dist.probs[i] * total;
    if (expected < min_expected) {
      pooled_expected += expected;
      pooled_observed += counts[i];
      continue;
    }
    const double diff = counts[i] - expected;
    out.statistic += diff * diff / expected;
    ++cells;
  }
  // The pooled bucket always enters, but with its denominator floored at
  // one expected count: a plain chi-square term for a tiny pooled
  // expectation would inflate the false-alarm rate (heavy Poisson tail),
  // while dropping the bucket would let a sampler emit mass on
  // near-zero-probability outcomes unseen. The floor keeps both failure
  // modes bounded: correct samplers add O(1) to the statistic, samplers
  // leaking real mass onto impossible outcomes add O(observed^2).
  if (pooled_expected > 0.0 || pooled_observed > 0.0) {
    const double diff = pooled_observed - pooled_expected;
    out.statistic += diff * diff / std::max(pooled_expected, 1.0);
    ++cells;
  }
  out.dof = cells > 1 ? static_cast<double>(cells - 1) : 1.0;
  return out;
}

/// Upper chi-square quantile via the Wilson–Hilferty cube approximation:
/// the value exceeded with the probability of a standard normal exceeding
/// `z` (z = 4 keeps the false-alarm rate of a seeded test near 3e-5).
inline double chi_square_quantile(double dof, double z) {
  const double h = 2.0 / (9.0 * dof);
  const double c = 1.0 - h + z * std::sqrt(h);
  return dof * c * c * c;
}

/// Generic TV between an exact map distribution and empirical counts
/// (for matchings and other non-subset outcomes).
template <typename Key>
double empirical_tv_map(const std::map<Key, double>& exact,
                        const std::map<Key, std::size_t>& counts,
                        std::size_t total) {
  double tv = 0.0;
  for (const auto& [key, p] : exact) {
    const auto it = counts.find(key);
    const double phat =
        it == counts.end()
            ? 0.0
            : static_cast<double>(it->second) / static_cast<double>(total);
    tv += std::abs(phat - p);
  }
  for (const auto& [key, c] : counts) {
    if (exact.find(key) == exact.end())
      tv += static_cast<double>(c) / static_cast<double>(total);
  }
  return 0.5 * tv;
}

/// Counting oracle backed by exhaustive enumeration — the ground truth
/// every real oracle is validated against. O(C(n,k)) everywhere.
class EnumeratedOracle final : public CountingOracle {
 public:
  EnumeratedOracle(int n, int k,
                   std::function<double(std::span<const int>)> log_mass)
      : n_(n), k_(k), indexer_(n, k) {
    log_masses_.assign(indexer_.count(), kNegInf);
    for_each_subset(n, k, [&](std::span<const int> subset) {
      log_masses_[indexer_.rank(subset)] = log_mass(subset);
    });
    log_z_ = logsumexp(log_masses_);
    check_arg(log_z_ != kNegInf, "EnumeratedOracle: zero total mass");
  }

  [[nodiscard]] std::size_t ground_size() const override {
    return static_cast<std::size_t>(n_);
  }
  [[nodiscard]] std::size_t sample_size() const override {
    return static_cast<std::size_t>(k_);
  }

  [[nodiscard]] double log_joint_marginal(
      std::span<const int> t) const override {
    if (t.size() > static_cast<std::size_t>(k_)) return kNegInf;
    double acc = kNegInf;
    for_each_subset(n_, k_, [&](std::span<const int> subset) {
      for (const int want : t) {
        bool found = false;
        for (const int have : subset)
          if (have == want) found = true;
        if (!found) return;
      }
      acc = log_add(acc, log_masses_[indexer_.rank(subset)]);
    });
    return acc - log_z_;
  }

  [[nodiscard]] std::vector<double> marginals() const override {
    std::vector<double> p(static_cast<std::size_t>(n_), 0.0);
    for_each_subset(n_, k_, [&](std::span<const int> subset) {
      const double mass =
          std::exp(log_masses_[indexer_.rank(subset)] - log_z_);
      for (const int i : subset) p[static_cast<std::size_t>(i)] += mass;
    });
    return p;
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override {
    // Remap: remaining elements keep order.
    std::vector<int> keep;
    std::vector<bool> in_t(static_cast<std::size_t>(n_), false);
    for (const int i : t) in_t[static_cast<std::size_t>(i)] = true;
    for (int i = 0; i < n_; ++i)
      if (!in_t[static_cast<std::size_t>(i)]) keep.push_back(i);
    std::vector<int> t_sorted(t.begin(), t.end());
    std::sort(t_sorted.begin(), t_sorted.end());
    const int new_n = static_cast<int>(keep.size());
    const int new_k = k_ - static_cast<int>(t.size());
    auto mass = [this, keep, t_sorted](std::span<const int> subset) {
      std::vector<int> full = t_sorted;
      for (const int i : subset)
        full.push_back(keep[static_cast<std::size_t>(i)]);
      std::sort(full.begin(), full.end());
      return log_masses_[indexer_.rank(full)];
    };
    return std::make_unique<EnumeratedOracle>(new_n, new_k, mass);
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override {
    auto copy = std::make_unique<EnumeratedOracle>(
        n_, k_, [](std::span<const int>) { return 0.0; });
    copy->log_masses_ = log_masses_;
    copy->log_z_ = log_z_;
    return copy;
  }

  [[nodiscard]] std::string name() const override { return "enumerated"; }

 private:
  int n_;
  int k_;
  SubsetIndexer indexer_;
  std::vector<double> log_masses_;
  double log_z_ = 0.0;
};

}  // namespace pardpp::testing
