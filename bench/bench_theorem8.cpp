// EXP-T8 — Theorem 8: approximate parallel sampling of nonsymmetric
// k-DPPs.
//
// The general entropically-independent sampler (Theorem 29) runs batches
// of l ~ k^{1/2 - c}: depth ~ k^{1/2 + c} rounds instead of the
// sequential k, at the price of the Algorithm 3 restriction (rare "bad
// events" with ratio above the Lemma 36 cap). We sweep k and the exponent
// c on random nonsymmetric PSD ensembles (Definition 4) and report rounds,
// acceptance, and bad-event frequency.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "dpp/general_oracle.h"
#include "linalg/factory.h"
#include "parallel/pram.h"
#include "sampling/entropic.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

}  // namespace

int main() {
  print_header("EXP-T8", "Theorem 8 (nonsymmetric k-DPPs)",
               "batched rounds ~ k / l with l = floor(k^{1/2-c}), i.e. "
               "depth ~ k^{1/2+c} << k; bad events (ratio > cap) rare");
  Table table({"k", "n", "c", "batch_l", "seq_rounds", "ent_rounds",
               "k^{0.5+c}", "acceptance", "overflow_frac", "seq_ms",
               "ent_ms"});
  RandomStream rng(92001);
  for (const std::size_t k : {4u, 8u, 16u, 32u}) {
    const std::size_t n = 3 * k;
    const Matrix l = random_npsd(n, rng, 0.5);
    const GeneralDppOracle oracle(l, k, /*validate=*/false);

    Timer seq_timer;
    RandomStream seq_rng = rng.split();
    const auto seq = sample_sequential(oracle, seq_rng);
    const double seq_ms = seq_timer.millis();

    for (const double c : {0.10, 0.25}) {
      EntropicOptions options;
      options.c = c;
      options.cap_slack = 3.0;
      RandomStream ent_rng = rng.split();
      Timer ent_timer;
      const auto ent = sample_entropic(oracle, ent_rng, nullptr, options);
      const double ent_ms = ent_timer.millis();
      const std::size_t batch = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::floor(std::pow(static_cast<double>(k), 0.5 - c))));
      table.add_row(
          {fmt_int(k), fmt_int(n), fmt(c, 2), fmt_int(batch),
           fmt_int(seq.diag.rounds), fmt_int(ent.diag.rounds),
           fmt(std::pow(static_cast<double>(k), 0.5 + c), 1),
           fmt(ent.diag.acceptance_rate()),
           fmt(static_cast<double>(ent.diag.ratio_overflows) /
                   std::max<std::size_t>(ent.diag.proposals, 1),
               4),
           fmt(seq_ms, 1), fmt(ent_ms, 1)});
    }
  }
  table.print();
  std::printf(
      "\nNote: ent_rounds counts both the marginal round and the proposal\n"
      "round of each batch; the paper's depth unit is oracle rounds. With\n"
      "small k the batch l = floor(k^{1/2-c}) is 1-2, so the crossover\n"
      "against the sequential baseline emerges as k grows (see\n"
      "bench_hard_instance for the same law driven to k = 4096).\n");
  return 0;
}
