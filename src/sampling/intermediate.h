// Intermediate sampling (distillation) front end — exact draws whose
// per-draw cost is independent of the ground-set size n (DESIGN.md §2
// convention 8; Anari–Liu–Vuong 2204.02570, Barthelmé–Tremblay–Amblard
// 2210.17358).
//
// The exact samplers pay O(n)-and-worse preprocessing per conditional
// round, which caps practical n at a few thousand. Distillation first
// i.i.d.-downsamples a small candidate pool under per-item weight
// over-estimates read off the ensemble diagonal, runs the existing exact
// sampler on the weight-rescaled restriction to the pool, and
// accepts/rejects on the restricted partition function — and the output
// law is *exactly* the target k-DPP:
//
//   Draw m candidates c_1..c_m i.i.d. ~ q, q_i = w_i / τ (w = ensemble
//   diagonal, τ = Σw), and restrict the ensemble to the c_j with row
//   scales s_j = sqrt(τ / (m w_{c_j})) — so every diagonal entry of the
//   restricted ensemble is exactly τ/m and its trace is exactly τ.
//   Accept the pool with probability Z(C)/M, where Z(C) = e_k(restricted
//   spectrum) and M = C(r,k)(τ/r)^k with r = min(rank_bound, m): by
//   Maclaurin's inequality e_k of any PSD spectrum with at most r nonzero
//   values summing to τ is at most M, so the ratio is a probability for
//   EVERY pool — that is what makes the scheme exact rather than
//   approximate. On acceptance, sample positions J from the restricted
//   k-DPP (law ∝ det of the restricted ensemble block) and output
//   {c_j : j ∈ J}. Marginalizing over pools, the probability of emitting
//   a fixed size-k set S factorizes —
//     P(S) = (1/M) E_C[ Σ_J 1{c_J ≅ S} det(L̃_J) ]
//          = (m!/((m-k)! m^k)) det(L_S) / M  ∝  det(L_S)
//   — because each ordered injection of S into the pool contributes
//   Π_{i∈S} q_i from the proposal times Π_{i∈S} τ/(m w_i) from the row
//   scales, which cancels to m^{-k} independently of S; repeated items
//   yield parallel rows (det 0), so collisions never emit an invalid set.
//   Rejected pools are redrawn, which leaves the conditional law
//   untouched. The acceptance rate is (Π_{j<k}(1 - j/m)) · Z/M: the
//   first factor is the position-collision mass (Ω(1) once m ≳ k²), the
//   second how far the spectrum is from the uniform one Maclaurin is
//   tight on.
//
// Determinism protocol (a per-plan invariant, like the commit path's
// draw protocols): one attempt consumes exactly m+1 uniforms — m
// inverse-CDF candidate draws in pool order, then one acceptance uniform
// (consumed even when Z(C) = 0 forces rejection) — and the inner sampler
// consumes its own family protocol only on the accepted pool. Everything
// is drawn from the caller's stream, so SamplerSession's per-draw stream
// forking makes distilled draws bit-reproducible at every pool size.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "distributions/oracle.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

struct DistillOptions {
  /// Routes SamplerSession draws through the distillation front end.
  bool enabled = false;
  /// Candidate-pool size m (0 = auto: max(64, 4k²), the point where the
  /// position-collision factor Π(1 - j/m) stays above ~7/8).
  std::size_t candidate_budget = 0;
  /// Candidate pools proposed per draw before SamplingFailure. The
  /// acceptance rate is ensemble-dependent (near 1 for flat spectra); a
  /// run hitting this bound signals a spectrum distillation fits badly.
  std::size_t max_attempts = 100000;
};

/// The distillation plan for one base oracle: proposal weights, their
/// cumulative table, and the Maclaurin acceptance bound, computed once at
/// session-prime time in O(n) from the oracle's DistillationProfile —
/// never forcing the full-n spectral caches. Immutable after
/// construction; concurrent draws share it read-only.
class DistillationPlan {
 public:
  /// Runs the exact sampler on one accepted restricted oracle,
  /// consuming the draw's stream (SamplerSession passes its kind +
  /// commit/reference dispatch).
  using InnerSampler =
      std::function<SampleResult(const CountingOracle&, RandomStream&)>;

  /// Throws InvalidArgument when the oracle's family does not support
  /// distillation (empty profile).
  DistillationPlan(const CountingOracle& base, DistillOptions options);

  /// One exact draw: propose pools until acceptance, run `inner` on the
  /// accepted restriction, map positions back to ground-set ids.
  /// Diagnostics: proposals = pools proposed, accepted_batches = 1,
  /// plus the inner run's counters.
  [[nodiscard]] SampleResult draw(RandomStream& rng,
                                  const InnerSampler& inner) const;

  [[nodiscard]] std::size_t candidate_budget() const noexcept { return m_; }
  /// log M — the Maclaurin bound every restricted log-partition is
  /// compared against (tests assert log Z(C) <= log M on fuzzed pools).
  [[nodiscard]] double log_accept_bound() const noexcept { return log_m_; }

  /// Draws one candidate pool + its row scales (appended to the cleared
  /// outputs; exactly m_ uniforms) and builds the restricted oracle.
  /// Exposed for the fuzz tests; draw() is the sampling entry point.
  [[nodiscard]] std::unique_ptr<CountingOracle> propose(
      RandomStream& rng, std::vector<int>& items,
      std::vector<double>& scales) const;

 private:
  const CountingOracle* base_;
  DistillOptions options_;
  std::size_t k_;
  std::size_t m_;                    // candidate-pool size
  double log_m_;                     // log Maclaurin bound M
  std::vector<double> cumulative_;   // prefix sums of the weights
  std::vector<double> row_scale_;    // sqrt(tau / (m w_i)) per item
};

}  // namespace pardpp
