#!/usr/bin/env python3
"""Unit tests for the perf-trajectory comparator (scripts/compare_bench.py).

Exercised directly by the CI lint job (`python3 -m unittest discover -s
scripts`), so regressions in the gating logic fail before the build
matrix spends an hour discovering them the hard way. Each test builds a
baseline/current directory pair under a tempdir and asserts on the exit
code of `compare()` — the same entry point the workflow calls.
"""

import json
import os
import shutil
import tempfile
import unittest

import compare_bench

HOST_A = {
    "host_cpus": 8,
    "host_nproc": 8,
    "host_cpu_model": "TestCPU v1",
    "simd": "avx2",
}
HOST_B = {
    "host_cpus": 64,
    "host_nproc": 32,
    "host_cpu_model": "TestCPU v2",
    "simd": "avx2",
}
# Same machine as HOST_A but run with the scalar fallback forced
# (PARDPP_SIMD=scalar): timings across dispatch arms are advisory.
HOST_A_SCALAR = dict(HOST_A, simd="scalar")


def record(wall_ms, host=None, **identity):
    entry = {"experiment": "unit", "family": "f", "pool": 1}
    entry.update(identity)
    entry["wall_ms"] = wall_ms
    entry.update(host or {})
    return entry


class CompareBenchTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="compare-bench-test-")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)

    def write_dir(self, name, records):
        directory = os.path.join(self.tmp, name)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "BENCH_unit.json"), "w") as out:
            json.dump(records, out)
        return directory

    def compare(self, baseline, current, advisory=False):
        return compare_bench.compare(
            baseline, current, warn=0.10, fail=0.25, advisory=advisory
        )

    def test_missing_baseline_dir_is_not_gating(self):
        current = self.write_dir("current", [record(100.0, HOST_A)])
        missing = os.path.join(self.tmp, "does-not-exist")
        self.assertEqual(self.compare(missing, current), 0)

    def test_missing_current_records_fail(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        empty = os.path.join(self.tmp, "empty")
        os.makedirs(empty)
        self.assertEqual(self.compare(baseline, empty), 1)

    def test_new_record_without_baseline_is_informational(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir(
            "current",
            [record(100.0, HOST_A), record(5000.0, HOST_A, n=999)],
        )
        self.assertEqual(self.compare(baseline, current), 0)

    def test_same_host_regression_gates(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(baseline, current), 1)

    def test_advisory_downgrades_regression_to_exit_zero(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(baseline, current, advisory=True), 0)

    def test_host_mismatch_downgrades_regression_to_warning(self):
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_B)])
        self.assertEqual(self.compare(baseline, current), 0)

    def test_host_fields_are_not_identity(self):
        # A runner change must not orphan the record pair: the records
        # still match, and a within-threshold timing passes cleanly.
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(101.0, HOST_B)])
        self.assertEqual(self.compare(baseline, current), 0)

    def test_records_without_host_fields_still_gate(self):
        # Pre-provenance records (older snapshots) carry no host fields;
        # absence on either side must not be read as a mismatch.
        baseline = self.write_dir("baseline", [record(100.0)])
        current = self.write_dir("current", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(baseline, current), 1)

    def test_simd_arm_mismatch_downgrades_regression_to_warning(self):
        # Same machine, but the current run forced the scalar fallback:
        # the slowdown is the arm, not a code regression.
        baseline = self.write_dir("baseline", [record(100.0, HOST_A)])
        current = self.write_dir("current", [record(200.0, HOST_A_SCALAR)])
        self.assertEqual(self.compare(baseline, current), 0)

    def test_scaling_regression_gates_on_matching_host_cpus(self):
        # Pool-4 wall clock is unchanged, but the pool-1 reference got
        # faster, so the parallel speedup collapsed 4.0x -> 2.0x. No
        # individual timing regresses; only the scaling gate can catch
        # this.
        baseline = self.write_dir(
            "baseline",
            [record(100.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        current = self.write_dir(
            "current",
            [record(50.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        self.assertEqual(self.compare(baseline, current), 1)
        self.assertEqual(self.compare(baseline, current, advisory=True), 0)

    def test_scaling_drop_across_host_cpus_is_advisory(self):
        # Same speedup collapse, but the runs disagree on host_cpus:
        # speedups from different core counts are never comparable.
        baseline = self.write_dir(
            "baseline",
            [record(100.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        current = self.write_dir(
            "current",
            [record(50.0, HOST_B, pool=1), record(25.0, HOST_B, pool=4)],
        )
        self.assertEqual(self.compare(baseline, current), 0)

    def test_scaling_improvement_passes(self):
        baseline = self.write_dir(
            "baseline",
            [record(100.0, HOST_A, pool=1), record(50.0, HOST_A, pool=4)],
        )
        current = self.write_dir(
            "current",
            [record(100.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        self.assertEqual(self.compare(baseline, current), 0)

    def test_scaling_without_pool1_reference_is_skipped(self):
        # A baseline that never recorded pool 1 yields no speedup to
        # compare against; the current run's scaling is informational.
        baseline = self.write_dir(
            "baseline", [record(25.0, HOST_A, pool=4)]
        )
        current = self.write_dir(
            "current",
            [record(1000.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        self.assertEqual(self.compare(baseline, current), 0)

    def test_scaling_speedups_groups_by_identity_minus_pool(self):
        records = compare_bench.load_records(
            self.write_dir(
                "out",
                [
                    record(100.0, HOST_A, pool=1, n=64),
                    record(25.0, HOST_A, pool=4, n=64),
                    record(200.0, HOST_A, pool=1, n=128),
                    record(40.0, HOST_A, pool=4, n=128),
                ],
            )
        )
        speedups = compare_bench.scaling_speedups(records)
        self.assertEqual(len(speedups), 2)
        by_n = {
            dict(rest)["n"]: speedup
            for (_, rest, _), (speedup, _) in speedups.items()
        }
        self.assertAlmostEqual(by_n[64], 4.0)
        self.assertAlmostEqual(by_n[128], 5.0)

    def test_snapshot_round_trip_keeps_scaling_gate_live(self):
        bench_dir = self.write_dir(
            "out",
            [record(100.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        snapshot = os.path.join(self.tmp, "BENCH_trajectory.json")
        self.assertEqual(compare_bench.write_snapshot(snapshot, bench_dir), 0)
        exploded = compare_bench.snapshot_as_baseline(
            snapshot, os.path.join(self.tmp, "exploded")
        )
        collapsed = self.write_dir(
            "collapsed",
            [record(50.0, HOST_A, pool=1), record(25.0, HOST_A, pool=4)],
        )
        self.assertEqual(self.compare(exploded, collapsed), 1)
        other_cpus = self.write_dir(
            "other-cpus",
            [record(50.0, HOST_B, pool=1), record(25.0, HOST_B, pool=4)],
        )
        self.assertEqual(self.compare(exploded, other_cpus), 0)

    def test_steady_state_records_round_trip_and_gate(self):
        # EXP-SS records measure `steady_draw_ms` and carry per-plan
        # proposal stats (p_domain, tail_rate, refreshes, ...) that vary
        # run to run: the stats must not be identity (a changed refresh
        # count must not orphan the pair), while profile/mode must be
        # (the persistent and per-draw rows are distinct series), and
        # the steady timing must survive the snapshot round trip and
        # gate a same-host slowdown.
        def steady(ms, host, **stats):
            entry = {
                "experiment": "steadystate_distill",
                "family": "feature",
                "profile": "spiked",
                "mode": "persistent",
                "n": 1000000,
                "steady_draw_ms": ms,
            }
            entry.update(stats)
            entry.update(host)
            return entry

        bench_dir = self.write_dir(
            "out",
            [steady(0.5, HOST_A, p_domain=0.97, tail_rate=0.03,
                    heavy_tail_pools=4, refreshes=7,
                    speedup_vs_perdraw=1.2)],
        )
        snapshot = os.path.join(self.tmp, "BENCH_trajectory.json")
        self.assertEqual(compare_bench.write_snapshot(snapshot, bench_dir), 0)
        with open(snapshot) as handle:
            (entry,) = json.load(handle)
        self.assertEqual(entry["steady_draw_ms"], 0.5)
        self.assertEqual(entry["mode"], "persistent")
        self.assertNotIn("refreshes", entry)  # stat, not identity/timing
        exploded = compare_bench.snapshot_as_baseline(
            snapshot, os.path.join(self.tmp, "exploded")
        )
        # Different stats, same identity: still matched, and the 2x
        # steady-state slowdown gates.
        slower = self.write_dir(
            "slower",
            [steady(1.0, HOST_A, p_domain=0.90, tail_rate=0.10,
                    heavy_tail_pools=900, refreshes=901,
                    speedup_vs_perdraw=0.6)],
        )
        self.assertEqual(self.compare(exploded, slower), 1)
        # A different proposal mode is a new series, not a regression.
        perdraw = self.write_dir(
            "perdraw",
            [dict(steady(1.0, HOST_A), mode="perdraw")],
        )
        self.assertEqual(self.compare(exploded, perdraw), 0)

    def test_snapshot_round_trip_preserves_host_fields(self):
        bench_dir = self.write_dir("out", [record(100.0, HOST_A)])
        snapshot = os.path.join(self.tmp, "BENCH_trajectory.json")
        self.assertEqual(compare_bench.write_snapshot(snapshot, bench_dir), 0)
        with open(snapshot) as handle:
            entries = json.load(handle)
        self.assertEqual(len(entries), 1)
        for field in compare_bench.HOST_FIELDS:
            self.assertIn(field, entries[0])
        # Exploding the snapshot back into a baseline keeps the mismatch
        # machinery live: a regression on different hardware is advisory.
        exploded = compare_bench.snapshot_as_baseline(
            snapshot, os.path.join(self.tmp, "exploded")
        )
        current = self.write_dir("current", [record(200.0, HOST_B)])
        self.assertEqual(self.compare(exploded, current), 0)
        same_host = self.write_dir("same-host", [record(200.0, HOST_A)])
        self.assertEqual(self.compare(exploded, same_host), 1)

    def test_serving_records_pair_across_batch_shapes_and_gate(self):
        # EXP-SRV records carry coalescing/registry telemetry (batches,
        # coalesced_per_batch, queue_peak, ...) that depends on dispatch
        # timing, so two runs of the same config rarely agree on it: the
        # telemetry must not be identity. Both the coalesced wall clock
        # (wall_ms) and the one-session-per-request baseline
        # (persession_wall_ms) are timings that survive the snapshot and
        # gate a same-host slowdown.
        def serving(wall, persession, host, **stats):
            entry = {
                "experiment": "serving_coalescing",
                "family": "symmetric",
                "n": 128,
                "k": 10,
                "requests": 16,
                "pool": 1,
                "wall_ms": wall,
                "persession_wall_ms": persession,
            }
            entry.update(stats)
            entry.update(host)
            return entry

        bench_dir = self.write_dir(
            "out",
            [serving(30.0, 200.0, HOST_A, batches=4, coalesced_per_batch=4.0,
                     max_coalesced=7, queue_peak=12, sessions=1,
                     poisoned_replacements=0, speedup_vs_persession=6.6,
                     persession_draws_per_sec=80.0)],
        )
        snapshot = os.path.join(self.tmp, "BENCH_trajectory.json")
        self.assertEqual(compare_bench.write_snapshot(snapshot, bench_dir), 0)
        with open(snapshot) as handle:
            (entry,) = json.load(handle)
        self.assertEqual(entry["persession_wall_ms"], 200.0)
        self.assertNotIn("batches", entry)  # telemetry, not identity
        exploded = compare_bench.snapshot_as_baseline(
            snapshot, os.path.join(self.tmp, "exploded")
        )
        # Different batch shape, same identity: paired and clean.
        reshaped = self.write_dir(
            "reshaped",
            [serving(31.0, 201.0, HOST_A, batches=16, coalesced_per_batch=1.0,
                     max_coalesced=1, queue_peak=1, sessions=1,
                     poisoned_replacements=0, speedup_vs_persession=6.5,
                     persession_draws_per_sec=79.0)],
        )
        self.assertEqual(self.compare(exploded, reshaped), 0)
        # A regression in either timing lane gates: here the coalesced
        # path doubled while the baseline held still.
        slower = self.write_dir(
            "slower",
            [serving(60.0, 200.0, HOST_A, batches=4)],
        )
        self.assertEqual(self.compare(exploded, slower), 1)

    def test_guard_counters_are_informational_not_identity(self):
        # Session health counters (retries / degraded_draws /
        # guard_failures) differ between a clean baseline and a
        # fault-injection run. The records must still pair up — a
        # degraded run is the same experiment, not an orphan — and the
        # counter deltas themselves must not gate.
        baseline = self.write_dir(
            "baseline",
            [
                record(
                    100.0,
                    HOST_A,
                    retries=0,
                    degraded_draws=0,
                    guard_failures=0,
                )
            ],
        )
        current = self.write_dir(
            "current",
            [
                record(
                    101.0,
                    HOST_A,
                    retries=7,
                    degraded_draws=5,
                    guard_failures=2,
                )
            ],
        )
        for field in ("retries", "degraded_draws", "guard_failures"):
            self.assertIn(field, compare_bench.NON_IDENTITY_FIELDS)
        # Paired and within threshold: clean pass. Were the counters
        # identity, the baseline record would be orphaned and the new
        # record informational — masking a real timing regression below.
        self.assertEqual(self.compare(baseline, current), 0)
        regressed = self.write_dir(
            "regressed",
            [record(200.0, HOST_A, retries=7, degraded_draws=5)],
        )
        self.assertEqual(self.compare(baseline, regressed), 1)


if __name__ == "__main__":
    unittest.main()
