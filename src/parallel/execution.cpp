#include "parallel/execution.h"

namespace pardpp {

namespace {
ExecutionContext& mutable_linalg_context() noexcept {
  static ExecutionContext context;  // serial until a pool is attached
  return context;
}
}  // namespace

const ExecutionContext& linalg_context() noexcept {
  return mutable_linalg_context();
}

void set_linalg_pool(ThreadPool* pool) noexcept {
  mutable_linalg_context() = ExecutionContext(pool, nullptr);
}

}  // namespace pardpp
