// Wire protocol for the `serve` daemon: length-prefixed frames carrying
// line-oriented text requests/responses (DESIGN.md §2 convention 13,
// grammar in README "Serving").
//
// Framing: a 4-byte big-endian payload length, then the payload. A
// declared length above kMaxFrameBytes is unrecoverable (the stream
// cannot be resynchronized) and throws ProtocolError; a truncated
// trailing frame simply never completes (FrameReader::next keeps
// returning nullopt), which is how a clean EOF mid-frame is told apart
// from garbage.
//
// Requests: first line is the verb (`sample`, `stats`, `shutdown`),
// remaining lines `key=value`. The `config` value is the canonical
// SessionConfig text (serving/config.h) — the same representation the
// CLI flags produce and the kernel fingerprint hashes. Responses: first
// line `status=<code>`, then body lines; status codes mirror the CLI
// exit-code taxonomy (3 = invalid argument, 4 = numerical, 5 = sampling
// failure, 6 = starvation) plus 1 = malformed request and 7 =
// overloaded, so a wire client and a CLI user read the same numbers for
// the same failures.
//
// Every parser here is fuzz-hardened: arbitrary payload bytes must
// produce a typed ProtocolError (or a parsed request), never a crash —
// test_serving pins that with truncated frames, oversize lengths,
// unknown verbs, and garbage fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "linalg/matrix.h"
#include "serving/config.h"
#include "serving/server.h"
#include "support/error.h"

namespace pardpp::serving {

/// Malformed wire input: bad framing, unknown verb, unparsable field.
/// Maps to ResponseStatus::kMalformed, never to a daemon crash.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Hard cap on one frame's payload (64 MiB — a 1448×1448 double ensemble
/// in text still fits). Anything larger is a framing error.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

/// 4-byte big-endian length + payload. Throws ProtocolError when the
/// payload exceeds kMaxFrameBytes.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() arbitrary byte chunks, next() pops
/// complete payloads in order (nullopt when no complete frame is
/// buffered). Throws ProtocolError on an oversize declared length; the
/// reader is then unusable (the stream cannot be resynced).
class FrameReader {
 public:
  void feed(std::string_view bytes);
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes of an incomplete trailing frame still buffered (EOF with
  /// pending() != 0 means the peer truncated a frame).
  [[nodiscard]] std::size_t pending() const noexcept {
    return buffer_.size() - cursor_;
  }

 private:
  std::string buffer_;
  std::size_t cursor_ = 0;  // consumed prefix, compacted in feed()
};

/// Response status codes. 0/2–6 mirror the CLI exit codes for the same
/// exception taxonomy; 1 and 7 are wire-only.
enum class ResponseStatus : int {
  kOk = 0,
  kMalformed = 1,       ///< ProtocolError: unparsable request
  kInternalError = 2,   ///< pardpp::Error outside the taxonomy below
  kInvalidArgument = 3,
  kNumericalError = 4,
  kSamplingFailure = 5,
  kStarvation = 6,
  kOverloaded = 7,      ///< admission control rejected; retry later
};

[[nodiscard]] const char* response_status_name(ResponseStatus status) noexcept;

/// Classifies a caught exception onto the wire status taxonomy (most
/// specific type wins, mirroring the CLI's catch ladder).
[[nodiscard]] ResponseStatus status_for_exception(
    const std::exception_ptr& error) noexcept;

/// `sample` request: draw `count` samples from the kernel carried inline.
struct SampleRequest {
  std::string tenant = "default";
  std::uint64_t seed = 0;
  std::size_t count = 1;
  std::size_t k = 0;
  /// Matrix semantics: "features" (n×d feature rows, FeatureKdppOracle)
  /// or "kernel" (square ensemble; symmetric → SymmetricKdppOracle,
  /// otherwise GeneralDppOracle).
  std::string matrix_kind = "kernel";
  /// Canonical SessionConfig text ("" = defaults).
  std::string config;
  Matrix matrix;
};

struct StatsRequest {};
struct ShutdownRequest {};

using Request = std::variant<SampleRequest, StatsRequest, ShutdownRequest>;

/// Parses one frame payload. Throws ProtocolError naming the verb/field
/// on any malformed input; never crashes on arbitrary bytes.
[[nodiscard]] Request parse_request(std::string_view payload);

/// Client-side encoder for SampleRequest (tests, the smoke driver, and
/// in-process clients) — emits exactly what parse_request accepts.
[[nodiscard]] std::string encode_sample_request(const SampleRequest& request);

/// `status=<code>\n` + body. The body is returned verbatim (callers
/// build line-oriented `key=value` bodies).
[[nodiscard]] std::string format_response(ResponseStatus status,
                                          std::string_view body);

/// Splits a response payload back into (status, body) — the client half
/// of format_response. Throws ProtocolError on a malformed status line.
[[nodiscard]] std::pair<ResponseStatus, std::string> parse_response(
    std::string_view payload);

/// Lowers a parsed SampleRequest onto the serving API: validates and
/// canonicalizes the config, fingerprints (family, matrix, k, canonical
/// config), and packages the oracle factory + resident-bytes estimate.
/// Throws InvalidArgument on a config/kind the serving layer rejects.
[[nodiscard]] ServerRequest make_server_request(const SampleRequest& request);

}  // namespace pardpp::serving
