#include "planar/grid.h"

#include <cmath>

namespace pardpp {

PlanarGraph grid_graph(std::size_t rows, std::size_t cols) {
  check_arg(rows >= 1 && cols >= 1, "grid_graph: empty grid");
  std::vector<std::array<double, 2>> coords;
  coords.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      coords.push_back({static_cast<double>(c), static_cast<double>(r)});
  PlanarGraph g(std::move(coords));
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<int>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

PlanarGraph diluted_grid_graph(std::size_t rows, std::size_t cols,
                               double drop_prob, RandomStream& rng) {
  check_arg(drop_prob >= 0.0 && drop_prob < 1.0,
            "diluted_grid_graph: drop probability in [0,1)");
  std::vector<std::array<double, 2>> coords;
  coords.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      coords.push_back({static_cast<double>(c), static_cast<double>(r)});
  PlanarGraph g(std::move(coords));
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<int>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Keep a horizontal "spine" of matchable dominoes intact so a
      // perfect matching always survives (columns paired 2 by 2).
      if (c + 1 < cols) {
        const bool spine = (c % 2 == 0);
        if (spine || !rng.bernoulli(drop_prob))
          g.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        if (!rng.bernoulli(drop_prob)) g.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  return g;
}

PlanarGraph honeycomb_graph(std::size_t rows, std::size_t cols) {
  check_arg(rows >= 1 && cols >= 1, "honeycomb_graph: empty lattice");
  std::vector<std::array<double, 2>> coords;
  coords.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      coords.push_back({static_cast<double>(c), static_cast<double>(r)});
  PlanarGraph g(std::move(coords));
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<int>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows && (r + c) % 2 == 0)
        g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

PlanarGraph hexagon_honeycomb_graph(std::size_t a, std::size_t b,
                                    std::size_t c) {
  check_arg(a >= 1 && b >= 1 && c >= 1, "hexagon_honeycomb_graph: empty");
  // Hexagon polygon: walk a steps at 0 degrees, b at 60, c at 120, a at
  // 180, b at 240, c at 300 on the triangular lattice (unit steps).
  const double dirs[6][2] = {{1.0, 0.0},   {0.5, 0.866025403784438647},
                             {-0.5, 0.866025403784438647},
                             {-1.0, 0.0},  {-0.5, -0.866025403784438647},
                             {0.5, -0.866025403784438647}};
  const std::size_t steps[6] = {a, b, c, a, b, c};
  std::vector<std::array<double, 2>> polygon;
  double px = 0.0;
  double py = 0.0;
  for (int side = 0; side < 6; ++side) {
    for (std::size_t s = 0; s < steps[static_cast<std::size_t>(side)]; ++s) {
      polygon.push_back({px, py});
      px += dirs[side][0];
      py += dirs[side][1];
    }
  }
  const auto inside = [&polygon](double x, double y) {
    // Standard ray-casting point-in-polygon.
    bool in = false;
    for (std::size_t i = 0, j = polygon.size() - 1; i < polygon.size();
         j = i++) {
      const auto& pi = polygon[i];
      const auto& pj = polygon[j];
      if (((pi[1] > y) != (pj[1] > y)) &&
          (x < (pj[0] - pi[0]) * (y - pi[1]) / (pj[1] - pi[1]) + pi[0])) {
        in = !in;
      }
    }
    return in;
  };
  // Enumerate unit up/down triangles of the triangular lattice over the
  // hexagon's bounding range; keep those whose centroid lies inside.
  // Lattice points: p(i, j) = i * (1,0) + j * (1/2, sqrt(3)/2).
  const auto lattice = [](int i, int j) {
    return std::array<double, 2>{static_cast<double>(i) + 0.5 * j,
                                 0.866025403784438647 * j};
  };
  const int span = static_cast<int>(a + b + c) + 2;
  struct Triangle {
    std::array<double, 2> centroid;
    std::array<std::pair<int, int>, 3> corners;
  };
  std::vector<Triangle> triangles;
  for (int j = -span; j <= span; ++j) {
    for (int i = -span; i <= span; ++i) {
      // Up triangle: (i,j), (i+1,j), (i,j+1).
      // Down triangle: (i+1,j), (i+1,j+1), (i,j+1).
      const auto p00 = lattice(i, j);
      const auto p10 = lattice(i + 1, j);
      const auto p01 = lattice(i, j + 1);
      const auto p11 = lattice(i + 1, j + 1);
      const std::array<double, 2> up_centroid = {
          (p00[0] + p10[0] + p01[0]) / 3.0, (p00[1] + p10[1] + p01[1]) / 3.0};
      if (inside(up_centroid[0], up_centroid[1])) {
        triangles.push_back(
            {up_centroid, {{{i, j}, {i + 1, j}, {i, j + 1}}}});
      }
      const std::array<double, 2> down_centroid = {
          (p10[0] + p11[0] + p01[0]) / 3.0, (p10[1] + p11[1] + p01[1]) / 3.0};
      if (inside(down_centroid[0], down_centroid[1])) {
        triangles.push_back(
            {down_centroid, {{{i + 1, j}, {i + 1, j + 1}, {i, j + 1}}}});
      }
    }
  }
  std::vector<std::array<double, 2>> coords;
  coords.reserve(triangles.size());
  for (const auto& t : triangles) coords.push_back(t.centroid);
  PlanarGraph g(std::move(coords));
  // Edge when two triangles share two lattice corners.
  for (std::size_t s = 0; s < triangles.size(); ++s) {
    for (std::size_t t = s + 1; t < triangles.size(); ++t) {
      int shared = 0;
      for (const auto& cs : triangles[s].corners)
        for (const auto& ct : triangles[t].corners) shared += (cs == ct);
      if (shared == 2)
        g.add_edge(static_cast<int>(s), static_cast<int>(t));
    }
  }
  return g;
}

double log_macmahon_box(std::size_t a, std::size_t b, std::size_t c) {
  double acc = 0.0;
  for (std::size_t i = 1; i <= a; ++i)
    for (std::size_t j = 1; j <= b; ++j)
      for (std::size_t k = 1; k <= c; ++k)
        acc += std::log(static_cast<double>(i + j + k - 1)) -
               std::log(static_cast<double>(i + j + k - 2));
  return acc;
}

PlanarGraph aztec_diamond_graph(std::size_t order) {
  check_arg(order >= 1, "aztec_diamond_graph: order must be positive");
  // Vertices = unit-square centers (x + 1/2, y + 1/2) with
  // |x + 1/2| + |y + 1/2| <= order; adjacent squares share an edge.
  const auto m = static_cast<int>(order);
  std::vector<std::array<double, 2>> coords;
  std::vector<std::pair<int, int>> cells;
  for (int x = -m; x < m; ++x) {
    for (int y = -m; y < m; ++y) {
      const double cx = x + 0.5;
      const double cy = y + 0.5;
      if (std::abs(cx) + std::abs(cy) <= static_cast<double>(m)) {
        cells.emplace_back(x, y);
        coords.push_back({cx, cy});
      }
    }
  }
  PlanarGraph g(std::move(coords));
  const auto find_cell = [&cells](int x, int y) -> int {
    for (std::size_t i = 0; i < cells.size(); ++i)
      if (cells[i].first == x && cells[i].second == y)
        return static_cast<int>(i);
    return -1;
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto [x, y] = cells[i];
    const int right = find_cell(x + 1, y);
    if (right >= 0) g.add_edge(static_cast<int>(i), right);
    const int up = find_cell(x, y + 1);
    if (up >= 0) g.add_edge(static_cast<int>(i), up);
  }
  return g;
}

}  // namespace pardpp
