#include "dpp/feature_oracle.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"
#include "support/logsum.h"

namespace pardpp {

FeatureKdppOracle::FeatureKdppOracle(Matrix features, std::size_t k)
    : features_(std::move(features)), k_(k) {
  check_arg(k_ <= features_.rows(),
            "FeatureKdppOracle: k exceeds ground size");
  check_arg(k_ <= features_.cols(),
            "FeatureKdppOracle: k exceeds the feature dimension "
            "(rank bound)");
}

const LowRankEigen& FeatureKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = eigen_from_features(features_);
  return *eigen_;
}

const LogEspTable& FeatureKdppOracle::esp() const {
  if (!esp_.has_value()) esp_ = LogEspTable(eigen().values, k_);
  return *esp_;
}

std::vector<double> FeatureKdppOracle::marginals() const {
  const std::size_t n = ground_size();
  std::vector<double> p(n, 0.0);
  if (k_ == 0) return p;
  const auto& eig = eigen();
  const auto& table = esp();
  check_numeric(eig.values.size() >= k_,
                "FeatureKdppOracle: rank below k — partition function zero");
  const double log_z = table.log_e(k_);
  check_numeric(log_z != kNegInf,
                "FeatureKdppOracle: partition function zero");
  const std::size_t modes = eig.values.size();
  std::vector<double> w(modes, 0.0);
  for (std::size_t m = 0; m < modes; ++m) {
    w[m] = std::exp(std::log(eig.values[m]) +
                    table.log_e_without(m, k_ - 1) - log_z);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t m = 0; m < modes; ++m) {
      const double v = eig.vectors(i, m);
      acc += w[m] * v * v;
    }
    p[i] = std::min(acc, 1.0);
  }
  return p;
}

double FeatureKdppOracle::log_joint_marginal(std::span<const int> t) const {
  const std::size_t tsize = t.size();
  if (tsize > k_) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T) = det(Gram of the T rows of B).
  Matrix gram_t(tsize, tsize);
  for (std::size_t a = 0; a < tsize; ++a) {
    for (std::size_t b = a; b < tsize; ++b) {
      double acc = 0.0;
      for (std::size_t c = 0; c < features_.cols(); ++c)
        acc += features_(static_cast<std::size_t>(t[a]), c) *
               features_(static_cast<std::size_t>(t[b]), c);
      gram_t(a, b) = acc;
      gram_t(b, a) = acc;
    }
  }
  const auto chol = cholesky(gram_t);
  if (!chol.has_value()) return kNegInf;
  const double log_det_t = chol->log_det();
  const double log_z = esp().log_e(k_);
  if (tsize == k_) return log_det_t - log_z;
  // Conditioned features; spectrum from the reduced Gram matrix.
  Matrix conditioned;
  try {
    conditioned = condition_features(features_, t);
  } catch (const NumericalError&) {
    return kNegInf;
  }
  const Matrix gram = conditioned.transpose() * conditioned;
  auto lambda = symmetric_eigenvalues(gram);
  double top = 0.0;
  for (const double v : lambda) top = std::max(top, v);
  for (double& v : lambda) {
    if (v < top * 1e-12 * static_cast<double>(lambda.size())) v = 0.0;
  }
  const auto log_e = log_esp(lambda, k_ - tsize);
  const double tail = log_e[k_ - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_z;
}

std::unique_ptr<CountingOracle> FeatureKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  return std::make_unique<FeatureKdppOracle>(condition_features(features_, t),
                                             k_ - t.size());
}

std::unique_ptr<CountingOracle> FeatureKdppOracle::clone() const {
  return std::make_unique<FeatureKdppOracle>(features_, k_);
}

void FeatureKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
}

}  // namespace pardpp
