// Random and structured kernel factories.
//
// The paper's experiments need families of ensemble matrices with
// controllable structure: symmetric PSD kernels (Wishart, RBF, low-rank,
// projection-like), nonsymmetric PSD kernels (Definition 4: L + L^T PSD),
// and spectrally bounded marginal kernels for the filtering algorithm.
// Every generator takes an explicit RandomStream for reproducibility.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "support/random.h"

namespace pardpp {

/// rows x cols matrix of i.i.d. standard normals.
[[nodiscard]] Matrix random_gaussian(std::size_t rows, std::size_t cols,
                                     RandomStream& rng);

/// Random symmetric PSD matrix of the given rank: B B^T / rank with B an
/// n x rank Gaussian, plus `ridge` * I to keep principal blocks invertible.
[[nodiscard]] Matrix random_psd(std::size_t n, std::size_t rank,
                                RandomStream& rng, double ridge = 1e-6);

/// Random nonsymmetric PSD matrix (Definition 4): S + W with S symmetric
/// PD and W skew-symmetric scaled by `skew_scale` relative to S. Any skew
/// part preserves L + L^T = 2S >= 0.
[[nodiscard]] Matrix random_npsd(std::size_t n, RandomStream& rng,
                                 double skew_scale = 0.5,
                                 std::size_t rank = 0);

/// n points uniform in the unit cube of dimension `dim`, rows of the
/// returned matrix.
[[nodiscard]] Matrix random_points(std::size_t n, std::size_t dim,
                                   RandomStream& rng);

/// Gaussian RBF kernel K_ij = exp(-|x_i - x_j|^2 / (2 bandwidth^2)) over
/// the rows of `points` — the classic data-summarization DPP kernel.
[[nodiscard]] Matrix rbf_kernel(const Matrix& points, double bandwidth);

/// Random n x k matrix with orthonormal columns (Gaussian + modified
/// Gram-Schmidt).
[[nodiscard]] Matrix random_orthonormal(std::size_t n, std::size_t k,
                                        RandomStream& rng);

/// Symmetric kernel with the given spectrum and a random eigenbasis.
[[nodiscard]] Matrix kernel_with_spectrum(std::span<const double> spectrum,
                                          RandomStream& rng);

/// Rescales a symmetric PSD matrix so its largest eigenvalue equals
/// `target` (no-op for the zero matrix).
[[nodiscard]] Matrix scaled_to_spectral_norm(Matrix m, double target);

/// Random balanced partition of {0..n-1} into r non-empty parts;
/// part_of[i] in [0, r).
[[nodiscard]] std::vector<int> random_partition(std::size_t n, std::size_t r,
                                                RandomStream& rng);

}  // namespace pardpp
