// Direct unit tests of the CharPolyEngine — the multivariate
// generating-polynomial machinery behind the general counting oracle —
// validated against brute-force principal-minor sums.
#include <gtest/gtest.h>

#include <cmath>

#include "dpp/charpoly_engine.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "support/combinatorics.h"
#include "support/logsum.h"
#include "support/random.h"

namespace pardpp {
namespace {

// Brute force: sum of det(M_S) over S ⊇ T with per-part counts of S\T
// equal to j.
double brute_count_superset(const Matrix& m, std::span<const int> part_of,
                            std::span<const int> t, std::span<const int> j) {
  const int n = static_cast<int>(m.rows());
  double total = 0.0;
  std::size_t extra = 0;
  for (const int v : j) extra += static_cast<std::size_t>(v);
  // Enumerate all subsets of the complement of T of size `extra`.
  std::vector<int> rest;
  for (int i = 0; i < n; ++i) {
    bool in_t = false;
    for (const int x : t) in_t = in_t || (x == i);
    if (!in_t) rest.push_back(i);
  }
  for_each_subset(static_cast<int>(rest.size()), static_cast<int>(extra),
                  [&](std::span<const int> pick) {
                    std::vector<int> counts(j.size(), 0);
                    std::vector<int> full(t.begin(), t.end());
                    for (const int p : pick) {
                      const int elem = rest[static_cast<std::size_t>(p)];
                      full.push_back(elem);
                      ++counts[static_cast<std::size_t>(
                          part_of[static_cast<std::size_t>(elem)])];
                    }
                    for (std::size_t a = 0; a < j.size(); ++a)
                      if (counts[a] != j[a]) return;
                    std::sort(full.begin(), full.end());
                    total += det_small(m.principal(full));
                  });
  return total;
}

class EngineSinglePart : public ::testing::TestWithParam<std::tuple<int, bool>> {
};

TEST_P(EngineSinglePart, CountsMatchBruteForce) {
  const auto [seed, symmetric] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 911 + 2);
  const std::size_t n = 7;
  const Matrix m = symmetric ? random_psd(n, n, rng, 1e-3)
                             : random_npsd(n, rng, 0.7);
  const std::vector<int> part_of(n, 0);
  for (int k = 1; k <= 5; ++k) {
    const std::vector<int> counts = {k};
    CharPolyEngine engine(m, part_of, 1, counts);
    const auto got = engine.log_count(counts);
    const double want = brute_count_superset(m, part_of, {}, counts);
    ASSERT_GT(want, 0.0);
    EXPECT_NEAR(got.sign * std::exp(got.log_abs), want,
                1e-7 * std::max(1.0, want))
        << "k = " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSymmetry, EngineSinglePart,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()));

TEST(Engine, SupersetCountsMatchBruteForce) {
  RandomStream rng(921);
  const std::size_t n = 7;
  const Matrix m = random_npsd(n, rng, 0.5);
  const std::vector<int> part_of(n, 0);
  const std::vector<int> counts = {4};
  CharPolyEngine engine(m, part_of, 1, counts);
  for (const std::vector<int>& t :
       {std::vector<int>{0}, {2, 5}, {0, 3, 6}}) {
    const std::vector<int> remaining = {
        4 - static_cast<int>(t.size())};
    const auto got = engine.log_count_superset(t, remaining);
    const double want = brute_count_superset(m, part_of, t, remaining);
    EXPECT_NEAR(got.sign * std::exp(got.log_abs), want,
                1e-7 * std::max(1.0, std::abs(want)))
        << "|T| = " << t.size();
  }
}

TEST(Engine, MultiPartCountsMatchBruteForce) {
  RandomStream rng(922);
  const std::size_t n = 8;
  const Matrix m = random_psd(n, n, rng, 1e-3);
  const std::vector<int> part_of = {0, 1, 0, 1, 2, 2, 0, 1};
  const std::vector<int> counts = {2, 1, 1};
  CharPolyEngine engine(m, part_of, 3, counts);
  const auto got = engine.log_count(counts);
  const double want = brute_count_superset(m, part_of, {}, counts);
  EXPECT_NEAR(got.sign * std::exp(got.log_abs), want, 1e-7 * want);
  // Superset with one element conditioned.
  const std::vector<int> t = {4};  // part 2
  const std::vector<int> rest = {2, 1, 0};
  const auto got2 = engine.log_count_superset(t, rest);
  const double want2 = brute_count_superset(m, part_of, t, rest);
  EXPECT_NEAR(got2.sign * std::exp(got2.log_abs), want2,
              1e-7 * std::max(1.0, want2));
}

TEST(Engine, MarginalNumeratorsMatchBruteForce) {
  RandomStream rng(923);
  const std::size_t n = 6;
  const Matrix m = random_npsd(n, rng, 0.6);
  const std::vector<int> part_of = {0, 0, 0, 1, 1, 1};
  const std::vector<int> counts = {1, 2};
  CharPolyEngine engine(m, part_of, 2, counts);
  const auto numerators = engine.marginal_numerators();
  for (std::size_t i = 0; i < n; ++i) {
    // Brute: sum det(M_S) over feasible S containing i.
    double want = 0.0;
    for_each_subset(static_cast<int>(n), 3, [&](std::span<const int> s) {
      bool has = false;
      int c0 = 0;
      for (const int x : s) {
        has = has || (x == static_cast<int>(i));
        if (x < 3) ++c0;
      }
      if (!has || c0 != 1) return;
      want += det_small(m.principal(s));
    });
    const double got =
        numerators[i].sign * std::exp(numerators[i].log_abs);
    EXPECT_NEAR(got, want, 1e-8 * std::max(1.0, std::abs(want)))
        << "element " << i;
  }
}

TEST(Engine, InfeasibleCoefficientIsZero) {
  RandomStream rng(924);
  const Matrix m = random_psd(5, 5, rng, 1e-3);
  const std::vector<int> part_of = {0, 0, 0, 1, 1};
  CharPolyEngine engine(m, part_of, 2, {1, 1});
  // Requesting 3 from part 1 (size 2) must give a zero coefficient.
  const std::vector<int> bad = {1, 3};
  const auto got = engine.log_count(bad);
  EXPECT_EQ(got.sign, 0);
  // Negative index likewise.
  const std::vector<int> negative = {-1, 1};
  EXPECT_EQ(engine.log_count(negative).sign, 0);
}

TEST(Engine, MemoryBudgetGuard) {
  RandomStream rng(925);
  const Matrix m = random_psd(40, 40, rng, 1e-3);
  const std::vector<int> part_of(40, 0);
  CharPolyEngine engine(m, part_of, 1, {10}, /*memory_budget=*/1000.0);
  const std::vector<int> counts = {10};
  EXPECT_THROW((void)engine.log_count(counts), InvalidArgument);
}

TEST(Engine, InputValidation) {
  RandomStream rng(926);
  const Matrix m = random_psd(4, 4, rng);
  EXPECT_THROW(CharPolyEngine(m, {0, 0, 0}, 1, {2}), InvalidArgument);
  EXPECT_THROW(CharPolyEngine(m, {0, 0, 0, 2}, 2, {1, 1}), InvalidArgument);
  EXPECT_THROW(CharPolyEngine(m, {0, 0, 0, 0}, 1, {-1}), InvalidArgument);
}

TEST(Engine, AgreementAcrossConditioningChain) {
  // Chain rule: Z * P[a ∈ S] * P[b ∈ S | a] = count of sets ⊇ {a, b}.
  RandomStream rng(927);
  const std::size_t n = 8;
  const Matrix m = random_npsd(n, rng, 0.5);
  const std::vector<int> part_of(n, 0);
  const std::vector<int> counts = {3};
  CharPolyEngine engine(m, part_of, 1, counts);
  const std::vector<int> ab = {1, 4};
  const std::vector<int> one = {2};
  const auto joint = engine.log_count_superset(ab, one);
  // Via brute force on the generic identity.
  const double want = brute_count_superset(m, part_of, ab, one);
  EXPECT_NEAR(joint.sign * std::exp(joint.log_abs), want,
              1e-7 * std::max(1.0, want));
}

}  // namespace
}  // namespace pardpp
