#include "sampling/entropic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dpp/subdivision.h"
#include "sampling/batched.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// Lemma 36 cap: KL(mu_l || mu'_l) <= (l^2 / k)(log(2n/k)/alpha + 1); the
// acceptance-ratio log concentrates around the KL divergence, so the cap
// is that bound scaled by `cap_multiplier` plus `cap_slack`.
double lemma36_cap(std::size_t l, std::size_t k, std::size_t n,
                   const EntropicOptions& options) {
  const double ratio = static_cast<double>(l) * static_cast<double>(l) /
                       static_cast<double>(k);
  const double log_term =
      std::log(std::max(2.0 * static_cast<double>(n) /
                            static_cast<double>(k),
                        2.0)) /
      options.alpha;
  return options.cap_multiplier * ratio * (log_term + 1.0) +
         options.cap_slack;
}

}  // namespace

SampleResult sample_entropic_on(CommittedOracle& state, RandomStream& rng,
                                const ExecutionContext& ctx,
                                const EntropicOptions& options) {
  check_arg(options.c > 0.0 && options.c <= 0.5,
            "sample_entropic: need 0 < c <= 1/2");
  check_arg(options.alpha > 0.0, "sample_entropic: alpha must be positive");
  check_arg(state.committed_count() == 0,
            "sample_entropic_on: state not at its base distribution");
  SampleResult result;
  IndexTracker tracker(state.ground_size());
  const auto k0 = static_cast<double>(state.sample_size());
  // Rounds are bounded by ~ k / l; budget the failure probability across a
  // generous estimate.
  const double round_bound = 2.0 * k0 + 2.0;
  const double delta_round =
      std::max(options.failure_prob / round_bound, 1e-12);

  while (state.sample_size() > 0) {
    const std::size_t k = state.sample_size();
    std::size_t l =
        options.max_batch != 0
            ? options.max_batch
            : static_cast<std::size_t>(std::floor(
                  std::pow(static_cast<double>(k), 0.5 - options.c)));
    l = std::clamp<std::size_t>(l, 1, k);

    // Optional isotropic transformation for this round.
    const CountingOracle* round_oracle = &state;
    std::unique_ptr<SubdividedOracle> subdivided;
    if (options.subdivide) {
      subdivided =
          std::make_unique<SubdividedOracle>(state.clone(), options.beta);
      round_oracle = subdivided.get();
    }
    const std::size_t m = round_oracle->ground_size();
    const std::vector<double> p = round_oracle->marginals();
    ctx.charge(m, m);
    result.diag.oracle_calls += m;

    detail::BatchRound config;
    config.batch = l;
    if (l == 1) {
      // A single draw from the normalized marginals *is* the 1-marginal
      // distribution: the ratio is identically 1 and the step is exact.
      config.log_cap = 0.0;
    } else if (std::isnan(options.log_ratio_cap)) {
      config.log_cap = lemma36_cap(l, k, m, options);
    } else {
      config.log_cap = options.log_ratio_cap;
    }
    const double machines_needed =
        std::exp(std::min(config.log_cap, 18.0)) *
            std::log(1.0 / delta_round) * 2.0 +
        16.0;
    config.machines = static_cast<std::size_t>(std::min(
        machines_needed, static_cast<double>(options.machine_cap)));

    auto accepted = detail::run_batch_round(*round_oracle, p, config, rng,
                                            ctx, result.diag);
    ctx.charge(config.machines, config.machines);
    result.diag.rounds += 1;
    if (!accepted.has_value()) {
      throw SamplingFailure(
          "sample_entropic: no proposal accepted within the machine budget; "
          "raise cap_slack / machine_cap or reduce the batch exponent");
    }
    // Map accepted copies back to base elements when subdivided. The
    // accepted counting answer refers to the subdivided distribution
    // then, so it is not forwarded to commit.
    std::vector<int> base_batch;
    double commit_log_joint = accepted->log_joint;
    base_batch.reserve(accepted->batch.size());
    if (options.subdivide) {
      for (const int c : accepted->batch)
        base_batch.push_back(subdivided->origin_of(c));
      commit_log_joint = std::numeric_limits<double>::quiet_NaN();
    } else {
      base_batch = std::move(accepted->batch);
    }
    for (const int b : base_batch) result.items.push_back(tracker.original(b));
    state.commit(base_batch, commit_log_joint);
    tracker.remove(std::move(base_batch));
  }
  std::sort(result.items.begin(), result.items.end());
  if (ctx.ledger() != nullptr) result.diag.pram = ctx.ledger()->stats();
  return result;
}

SampleResult sample_entropic(const CountingOracle& mu, RandomStream& rng,
                             const ExecutionContext& ctx,
                             const EntropicOptions& options) {
  const auto state = mu.make_committed();
  return sample_entropic_on(*state, rng, ctx, options);
}

SampleResult sample_entropic(const CountingOracle& mu, RandomStream& rng,
                             PramLedger* ledger,
                             const EntropicOptions& options) {
  return sample_entropic(mu, rng, ExecutionContext::serial(ledger), options);
}

}  // namespace pardpp
