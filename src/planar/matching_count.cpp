#include "planar/matching_count.h"

#include "linalg/pfaffian.h"
#include "support/logsum.h"

namespace pardpp {

MatchingCounter::MatchingCounter(const PlanarGraph& g)
    : graph_(&g), orientation_(fkt_orientation(g)) {}

double MatchingCounter::log_count() const {
  const auto pf = pfaffian_log(orientation_.matrix);
  return pf.sign == 0 ? kNegInf : pf.log_abs;
}

double MatchingCounter::log_count_alive(std::span<const int> alive) const {
  if (alive.empty()) return 0.0;  // the empty matching
  const auto pf = pfaffian_log(orientation_.matrix.principal(alive));
  return pf.sign == 0 ? kNegInf : pf.log_abs;
}

}  // namespace pardpp
