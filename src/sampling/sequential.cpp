#include "sampling/sequential.h"

#include <algorithm>

namespace pardpp {

SampleResult sample_sequential_on(CommittedOracle& state, RandomStream& rng,
                                  PramLedger* ledger) {
  check_arg(state.committed_count() == 0,
            "sample_sequential_on: state not at its base distribution");
  SampleResult result;
  IndexTracker tracker(state.ground_size());
  while (state.sample_size() > 0) {
    const std::size_t m = state.ground_size();
    // One parallel round: m counting queries evaluate all marginals.
    charge_round(ledger, m, m);
    result.diag.rounds += 1;
    result.diag.oracle_calls += m;
    const MarginalDraw draw = state.draw_marginal(rng);
    result.items.push_back(tracker.original(draw.index));
    const std::vector<int> batch = {draw.index};
    state.commit(batch, draw.log_marginal);
    tracker.remove(batch);
  }
  std::sort(result.items.begin(), result.items.end());
  if (ledger != nullptr) result.diag.pram = ledger->stats();
  return result;
}

SampleResult sample_sequential(const CountingOracle& mu, RandomStream& rng,
                               PramLedger* ledger) {
  const auto state = mu.make_committed();
  return sample_sequential_on(*state, rng, ledger);
}

}  // namespace pardpp
