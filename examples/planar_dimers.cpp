// Uniform dimer covers of a grid — the planar perfect-matching sampler of
// Theorem 11 on the statistical-physics workload that motivated Kasteleyn.
//
// Draws a uniformly random domino tiling of a grid via the separator
// sampler, prints it as ASCII art, and reports horizontal/vertical dimer
// statistics plus the parallel-depth advantage over the sequential
// sampler.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

void print_tiling(std::size_t rows, std::size_t cols, const Matching& m) {
  // Each cell shows a letter pairing it with its partner.
  std::vector<std::string> canvas(rows, std::string(cols * 2 - 1, ' '));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) canvas[r][2 * c] = 'o';
  for (const auto& [u, v] : m) {
    const auto ru = static_cast<std::size_t>(u) / cols;
    const auto cu = static_cast<std::size_t>(u) % cols;
    const auto rv = static_cast<std::size_t>(v) / cols;
    const auto cv = static_cast<std::size_t>(v) % cols;
    if (ru == rv) {
      canvas[ru][2 * std::min(cu, cv) + 1] = '-';
    } else {
      // Vertical dimer: mark both cells.
      canvas[std::min(ru, rv)][2 * cu] = '|';
      canvas[std::max(ru, rv)][2 * cu] = '\'';
    }
  }
  for (const auto& row : canvas) std::printf("  %s\n", row.c_str());
}

}  // namespace

int main() {
  RandomStream rng(5);
  const std::size_t rows = 8;
  const std::size_t cols = 12;
  const auto g = grid_graph(rows, cols);

  // Exact counts first: Kasteleyn's Pfaffian.
  const MatchingCounter counter(g);
  std::printf("grid %zux%zu: log #tilings = %.3f (#tilings ~ %.3e)\n", rows,
              cols, counter.log_count(), std::exp(counter.log_count()));

  PramLedger sep_ledger;
  const auto tiling = sample_matching_separator(g, rng, &sep_ledger);
  std::printf("\none uniform tiling (o- horizontal, | vertical):\n");
  print_tiling(rows, cols, tiling.matching);

  // Dimer statistics across samples.
  const int trials = 40;
  double horizontal = 0.0;
  double total = 0.0;
  double sep_depth = 0.0;
  double seq_depth = 0.0;
  for (int i = 0; i < trials; ++i) {
    PramLedger sep_i;
    const auto m = sample_matching_separator(g, rng, &sep_i);
    sep_depth += sep_i.stats().depth;
    PramLedger seq_i;
    (void)sample_matching_sequential(g, rng, &seq_i);
    seq_depth += seq_i.stats().depth;
    for (const auto& [u, v] : m.matching) {
      horizontal += (static_cast<std::size_t>(u) / cols ==
                     static_cast<std::size_t>(v) / cols)
                        ? 1.0
                        : 0.0;
      total += 1.0;
    }
  }
  std::printf(
      "\nacross %d samples: horizontal dimer fraction %.3f (aspect %zux%zu "
      "biases it mildly)\n",
      trials, horizontal / total, rows, cols);
  std::printf(
      "mean parallel depth: separator sampler %.1f rounds vs sequential "
      "%.1f rounds (n/2 = %zu)\n",
      sep_depth / trials, seq_depth / trials, rows * cols / 2);
  return 0;
}
