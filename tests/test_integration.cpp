// Cross-module integration tests: sampler agreement through shared
// statistics, Lemma 14 concentration, subdivision over non-determinantal
// oracles, planar edge-marginal consistency, and PRAM ledger coherence.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "distributions/hard_instance.h"
#include "dpp/feature_oracle.h"
#include "dpp/hkpv.h"
#include "dpp/subdivision.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "linalg/symmetric_eigen.h"
#include "planar/grid.h"
#include "planar/matching_count.h"
#include "planar/matching_sampler.h"
#include "sampling/batched.h"
#include "sampling/entropic.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

TEST(Integration, ThreeSamplersAgreeOnSingletonFrequencies) {
  // Sequential (exact), batched (exact), HKPV (exact) must produce the
  // same singleton inclusion frequencies on one moderate kernel where
  // enumeration is out of reach (n = 30).
  RandomStream rng(8001);
  const std::size_t n = 30;
  const std::size_t k = 6;
  const Matrix l = random_psd(n, n, rng, 1e-4);
  const SymmetricKdppOracle oracle(l, k, false);
  const auto exact = oracle.marginals();
  const int trials = 3000;
  std::vector<double> freq_seq(n, 0.0);
  std::vector<double> freq_batch(n, 0.0);
  std::vector<double> freq_hkpv(n, 0.0);
  for (int i = 0; i < trials; ++i) {
    for (const int v : sample_sequential(oracle, rng).items)
      freq_seq[static_cast<std::size_t>(v)] += 1.0;
    for (const int v : sample_batched(oracle, rng).items)
      freq_batch[static_cast<std::size_t>(v)] += 1.0;
    for (const int v : hkpv_sample_kdpp(l, k, rng))
      freq_hkpv[static_cast<std::size_t>(v)] += 1.0;
  }
  // 4-sigma band for a binomial with p <= 0.5.
  const double noise = 4.0 * std::sqrt(0.25 / trials);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(freq_seq[i] / trials, exact[i], noise);
    EXPECT_NEAR(freq_batch[i] / trials, exact[i], noise);
    EXPECT_NEAR(freq_hkpv[i] / trials, exact[i], noise);
  }
}

TEST(Integration, Lemma14SizeConcentration) {
  // Strongly Rayleigh size concentration: |S| stays within
  // O(E|S| log(1/eps)) with probability 1 - eps. Sample an unconstrained
  // DPP and check the empirical tail.
  RandomStream rng(8002);
  const std::size_t n = 40;
  std::vector<double> spectrum(n);
  for (std::size_t i = 0; i < n; ++i) spectrum[i] = 0.15;  // E|S| ~ 5.2
  const Matrix kernel = kernel_with_spectrum(spectrum, rng);
  // L = K (I - K)^{-1}; for the flat spectrum this is kernel / 0.85.
  const Matrix l = kernel * (1.0 / 0.85);
  const double mean = 40.0 * 0.15;
  const int trials = 4000;
  int exceed = 0;
  for (int i = 0; i < trials; ++i) {
    const auto s = hkpv_sample_dpp(l, rng);
    if (static_cast<double>(s.size()) > 3.0 * mean) ++exceed;
  }
  EXPECT_LT(static_cast<double>(exceed) / trials, 0.01);
}

TEST(Integration, SubdivisionOverNonDeterminantalOracle) {
  // Definition 30 is distribution-agnostic: wrap the §7 hard instance and
  // verify the subdivided marginals/joints reduce correctly.
  auto base = std::make_unique<HardInstanceOracle>(12, 4);
  const auto base_p = base->marginals();
  const SubdividedOracle sub(std::move(base), 0.5);
  const auto p = sub.marginals();
  std::vector<double> per_base(12, 0.0);
  for (std::size_t c = 0; c < sub.ground_size(); ++c)
    per_base[static_cast<std::size_t>(sub.origin_of(static_cast<int>(c)))] +=
        p[c];
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_NEAR(per_base[i], base_p[i], 1e-12);
  // Entropic sampling through subdivision still hits the right TV.
  RandomStream rng(8003);
  const HardInstanceOracle oracle(12, 4);
  EntropicOptions options;
  options.subdivide = true;
  options.beta = 0.5;
  options.cap_slack = 4.0;
  const auto exact = testing::exact_distribution(
      12, 4, [](std::span<const int> s) {
        for (std::size_t a = 0; a < s.size(); a += 2) {
          if (s[a] % 2 != 0 || s[a + 1] != s[a] + 1) return kNegInf;
        }
        return 0.0;
      });
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 15000; ++i)
    samples.push_back(sample_entropic(oracle, rng, nullptr, options).items);
  EXPECT_LT(testing::empirical_tv(exact, samples), 0.05);
}

TEST(Integration, FeatureOracleThroughSequentialSampler) {
  RandomStream rng(8004);
  const std::size_t n = 8;
  const Matrix b = random_gaussian(n, 5, rng);
  const Matrix l = b * b.transpose();
  const FeatureKdppOracle oracle(b, 3);
  const auto exact = testing::exact_distribution(
      static_cast<int>(n), 3, [&l](std::span<const int> s) {
        const auto sld = signed_log_det(l.principal(s));
        return sld.sign > 0 ? sld.log_abs : kNegInf;
      });
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(sample_sequential(oracle, rng).items);
  EXPECT_LT(testing::empirical_tv(exact, samples), 0.04);
}

TEST(Integration, PlanarEdgeMarginalsMatchSamplerFrequencies) {
  // P[e in M] from Pfaffian ratios must match the separator sampler's
  // empirical edge frequencies — ties the counting oracle, conditioning
  // and the sampler together.
  RandomStream rng(8005);
  const auto g = grid_graph(4, 4);
  const MatchingCounter counter(g);
  const double log_total = counter.log_count();
  const int trials = 20000;
  std::map<std::pair<int, int>, double> freq;
  for (int i = 0; i < trials; ++i) {
    for (const auto& e : sample_matching_separator(g, rng).matching)
      freq[e] += 1.0;
  }
  for (const auto& [u, v] : g.edges()) {
    std::vector<int> alive;
    for (std::size_t w = 0; w < g.num_vertices(); ++w) {
      if (static_cast<int>(w) != u && static_cast<int>(w) != v)
        alive.push_back(static_cast<int>(w));
    }
    const double exact =
        std::exp(counter.log_count_alive(alive) - log_total);
    const double measured = freq[{u, v}] / trials;
    EXPECT_NEAR(measured, exact, 4.5 * std::sqrt(0.25 / trials))
        << "edge (" << u << "," << v << ")";
  }
}

TEST(Integration, LedgerDepthOrdering) {
  // For one kernel: sequential depth > batched depth; both consistent
  // with diag.rounds.
  RandomStream rng(8006);
  const std::size_t n = 64;
  const std::size_t k = 16;
  const Matrix l = random_psd(n, n, rng, 1e-4);
  const SymmetricKdppOracle oracle(l, k, false);
  PramLedger seq_ledger;
  PramLedger batch_ledger;
  const auto seq = sample_sequential(oracle, rng, &seq_ledger);
  const auto batch = sample_batched(oracle, rng, &batch_ledger);
  EXPECT_EQ(seq.items.size(), k);
  EXPECT_EQ(batch.items.size(), k);
  EXPECT_GT(seq_ledger.stats().depth, batch_ledger.stats().depth);
  EXPECT_EQ(seq_ledger.stats().rounds, k);
  // Batched: 2 ledger rounds (marginals + proposals) per diag round.
  EXPECT_EQ(batch_ledger.stats().rounds, 2 * batch.diag.rounds);
  // Work exceeds depth whenever any round used > 1 machine.
  EXPECT_GE(seq_ledger.stats().work, seq_ledger.stats().depth);
  EXPECT_GE(batch_ledger.stats().work, batch_ledger.stats().depth);
}

TEST(Integration, RepeatedConditioningMatchesDirectConditioning) {
  // Conditioning twice on singletons equals conditioning once on the
  // pair, across oracle families.
  RandomStream rng(8007);
  const Matrix l = random_psd(9, 9, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 4);
  const std::vector<int> pair = {2, 6};
  const auto direct = oracle.condition(pair);
  const std::vector<int> first = {2};
  auto step = oracle.condition(first);
  const std::vector<int> second = {5};  // old index 6 after removing 2
  step = step->condition(second);
  const auto p_direct = direct->marginals();
  const auto p_step = step->marginals();
  ASSERT_EQ(p_direct.size(), p_step.size());
  for (std::size_t i = 0; i < p_direct.size(); ++i)
    EXPECT_NEAR(p_direct[i], p_step[i], 1e-8);
}

}  // namespace
}  // namespace pardpp
