#include "dpp/hkpv.h"

#include <cmath>

#include "linalg/esp.h"
#include "linalg/symmetric_eigen.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// Phase 2 of HKPV: given n x d matrix V with orthonormal columns, sample d
// items of the projection DPP with kernel V V^T.
std::vector<int> sample_projection_dpp(Matrix v, RandomStream& rng) {
  const std::size_t n = v.rows();
  std::size_t d = v.cols();
  std::vector<int> items;
  items.reserve(d);
  std::vector<double> weights(n);
  while (d > 0) {
    // P[item i] = |row_i|^2 / d.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < d; ++j) acc += v(i, j) * v(i, j);
      weights[i] = acc;
    }
    const auto pick = rng.categorical(weights);
    items.push_back(static_cast<int>(pick));
    if (d == 1) break;
    // Eliminate the coordinate `pick`: pivot on the column with the
    // largest |V(pick, j)|, fold it into the others, drop it, and
    // re-orthonormalize (modified Gram-Schmidt) for stability.
    std::size_t pivot = 0;
    double best = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double mag = std::abs(v(pick, j));
      if (mag > best) {
        best = mag;
        pivot = j;
      }
    }
    check_numeric(best > 1e-14, "hkpv: degenerate projection step");
    for (std::size_t j = 0; j < d; ++j) {
      if (j == pivot) continue;
      const double factor = v(pick, j) / v(pick, pivot);
      for (std::size_t i = 0; i < n; ++i) v(i, j) -= factor * v(i, pivot);
    }
    // Drop the pivot column by moving the last column into its slot.
    if (pivot != d - 1) {
      for (std::size_t i = 0; i < n; ++i) v(i, pivot) = v(i, d - 1);
    }
    --d;
    // Re-orthonormalize the first d columns.
    for (std::size_t j = 0; j < d; ++j) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += v(i, j) * v(i, prev);
        for (std::size_t i = 0; i < n; ++i) v(i, j) -= dot * v(i, prev);
      }
      double norm = 0.0;
      for (std::size_t i = 0; i < n; ++i) norm += v(i, j) * v(i, j);
      norm = std::sqrt(norm);
      check_numeric(norm > 1e-14, "hkpv: collapsed column during projection");
      for (std::size_t i = 0; i < n; ++i) v(i, j) /= norm;
    }
  }
  return items;
}

Matrix gather_columns(const Matrix& v, const std::vector<std::size_t>& cols) {
  Matrix out(v.rows(), cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j)
    for (std::size_t i = 0; i < v.rows(); ++i) out(i, j) = v(i, cols[j]);
  return out;
}

}  // namespace

std::vector<int> hkpv_sample_dpp(const Matrix& l, RandomStream& rng) {
  check_arg(l.is_symmetric(1e-8), "hkpv_sample_dpp: matrix not symmetric");
  const auto eig = symmetric_eigen(l);
  std::vector<std::size_t> selected;
  for (std::size_t m = 0; m < eig.values.size(); ++m) {
    const double lambda = std::max(eig.values[m], 0.0);
    if (rng.bernoulli(lambda / (1.0 + lambda))) selected.push_back(m);
  }
  if (selected.empty()) return {};
  return sample_projection_dpp(gather_columns(eig.vectors, selected), rng);
}

std::vector<int> hkpv_sample_kdpp(const Matrix& l, std::size_t k,
                                  RandomStream& rng) {
  check_arg(l.is_symmetric(1e-8), "hkpv_sample_kdpp: matrix not symmetric");
  const std::size_t n = l.rows();
  check_arg(k <= n, "hkpv_sample_kdpp: k exceeds ground size");
  if (k == 0) return {};
  const auto eig = symmetric_eigen(l);
  // Select a k-subset of eigenvectors with probability prod lambda / e_k:
  // walk m = n..1 including m with probability
  // lambda_m e_{r-1}(lambda_{<m}) / e_r(lambda_{<=m}).
  const LogEspTable table(eig.values, k);
  check_numeric(table.log_e(k) != kNegInf,
                "hkpv_sample_kdpp: e_k = 0 (rank below k)");
  std::vector<std::size_t> selected;
  std::size_t r = k;
  // prefix esp over lambda_{0..m-1} is exactly LogEspTable's prefix; we
  // recompute the needed values with local tables to stay within the
  // public esp API.
  std::vector<std::vector<double>> prefix(n + 1);
  prefix[0].assign(k + 1, kNegInf);
  prefix[0][0] = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    prefix[m + 1] = prefix[m];
    const double lambda = std::max(eig.values[m], 0.0);
    if (lambda > 0.0) {
      const double log_l = std::log(lambda);
      for (std::size_t j = k; j >= 1; --j) {
        prefix[m + 1][j] =
            log_add(prefix[m + 1][j], log_l + prefix[m + 1][j - 1]);
      }
    }
  }
  for (std::size_t m = n; m-- > 0 && r > 0;) {
    const double lambda = std::max(eig.values[m], 0.0);
    if (m + 1 < r) break;  // cannot happen with e_k > 0; defensive
    double log_p = kNegInf;
    if (lambda > 0.0 && prefix[m][r - 1] != kNegInf) {
      log_p = std::log(lambda) + prefix[m][r - 1] - prefix[m + 1][r];
    }
    if (m == r - 1 || rng.bernoulli(std::exp(std::min(log_p, 0.0)))) {
      // When only r eigenvalues remain they must all be selected.
      selected.push_back(m);
      --r;
    }
  }
  check_numeric(r == 0, "hkpv_sample_kdpp: eigenvector selection failed");
  return sample_projection_dpp(gather_columns(eig.vectors, selected), rng);
}

}  // namespace pardpp
