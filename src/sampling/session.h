// SamplerSession — many draws from one distribution, preprocessing paid
// once (DESIGN.md §2 convention 7).
//
// The per-sample entry points (sample_sequential & co.) rebuild the base
// oracle's spectral preprocessing on every call: they clone the oracle,
// whose lazy caches start cold. A session inverts the ownership: the base
// oracle is primed once at construction, every draw runs the sampler's
// round loop on a long-lived CommittedOracle that reads those shared
// caches at round 0 and maintains its own conditional state incrementally
// afterwards, and `draw_many` dispatches independent draws concurrently
// on the ExecutionContext's pool (one committed state per chunk, one
// deterministic stream per sample index) — the cross-sample throughput
// axis, on top of the per-round commit-path savings.
//
// Determinism: identical seed ⇒ identical sample sequence at every pool
// size (draw i consumes the stream forked for index i, never a worker's).
// With `use_commit = false` the session runs the condition() reference
// path instead — per-round conditioned oracles, per-draw base
// preprocessing — which draws the identical samples from the same seed:
// the bit-identity contract bench_throughput and the statistical harness
// pin down.
//
// Failure model (DESIGN.md §2 convention 12): a draw that throws leaves
// the session reusable — per-chunk committed states are discarded on
// failure and rebuilt on the next draw — with one exception: a
// ProposalDriftError that no ladder rung absorbs indicts the *shared*
// persistent proposal plan, so the session poisons itself and every
// subsequent draw throws SessionPoisoned until the caller rebuilds it.
// `RecoveryOptions` turns failures into policy: each draw gets a retry
// budget and a bounded degradation ladder (persistent proposal → per-draw
// proposal → undistilled path → condition() reference), every attempt
// consuming a private stream forked from the draw's stream by attempt
// index — so recovered draws remain a function of the seed alone, at
// every pool size. All retry/degradation/guard activity is observable
// through the GuardEvent sink and the lifetime counters `health()`
// returns.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "distributions/oracle.h"
#include "parallel/execution.h"
#include "sampling/batched.h"
#include "sampling/diagnostics.h"
#include "sampling/entropic.h"
#include "sampling/intermediate.h"
#include "support/random.h"

namespace pardpp {

enum class SamplerKind {
  kSequential,  ///< JVV86 reduction, depth k
  kBatched,     ///< Algorithm 1 / Theorem 10, depth ~ sqrt(k)
  kEntropic,    ///< Theorem 29 batched rejection
};

[[nodiscard]] constexpr const char* sampler_kind_name(
    SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::kSequential:
      return "sequential";
    case SamplerKind::kBatched:
      return "batched";
    case SamplerKind::kEntropic:
      return "entropic";
  }
  return "unknown";
}

/// Every sampler kind, in declaration order — the programmatic source for
/// usage strings and config enumerations (keep in sync with SamplerKind).
inline constexpr std::array<SamplerKind, 3> kAllSamplerKinds = {
    SamplerKind::kSequential, SamplerKind::kBatched, SamplerKind::kEntropic};

/// Inverse of sampler_kind_name: nullopt for unknown names, so callers
/// (the CLI, the config parser) report their own typed error instead of
/// string-compare ladders drifting out of sync with the enum.
[[nodiscard]] constexpr std::optional<SamplerKind> sampler_kind_from_name(
    std::string_view name) noexcept {
  for (const SamplerKind kind : kAllSamplerKinds) {
    if (name == sampler_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

/// Thrown by every draw on a poisoned session (what() carries the
/// poisoning reason). Poisoning is deliberate and narrow: it marks shared
/// state (the persistent proposal plan) as untrustworthy, not a transient
/// per-draw failure. Rebuild the session to recover.
class SessionPoisoned : public Error {
 public:
  using Error::Error;
};

/// Per-draw retry/degradation policy. Disabled by default: a failing
/// draw then throws its typed error directly (the pre-recovery contract,
/// and the zero-overhead configuration).
struct RecoveryOptions {
  /// Master switch. NOTE: enabling recovery changes the per-draw stream
  /// protocol (each attempt consumes a stream forked from the draw's
  /// stream by attempt index, instead of the draw stream directly), so
  /// recovered sequences are reproducible but not bit-comparable to
  /// recovery-off sequences.
  bool enabled = false;
  /// Extra attempts per draw after the first (so max_retries = 3 means
  /// at most 4 attempts). When the ladder has no rung left to degrade
  /// to, remaining attempts retry the last rung.
  std::size_t max_retries = 3;
  /// Ladder rung: persistent proposal → per-draw proposal (same distill
  /// options minus persistence; primes a second plan at construction).
  bool degrade_proposal = true;
  /// Ladder rung: distilled → undistilled full-n path (lazily pays the
  /// base oracle's full preprocessing on first use).
  bool degrade_undistilled = true;
  /// Ladder rung: commit path → condition() reference.
  bool degrade_reference = true;

  /// Throws InvalidArgument naming the offending field: enabled recovery
  /// with a zero retry budget, or with every ladder rung disabled, is a
  /// silent no-op the caller almost certainly did not intend.
  void validate() const;
};

struct SessionOptions {
  SamplerKind kind = SamplerKind::kSequential;
  /// false = run the condition() reference path (fresh conditioned oracle
  /// per accepted round, fresh preprocessing per draw) — the baseline the
  /// commit path is benchmarked and bit-compared against.
  bool use_commit = true;
  /// Opt-in intermediate-sampling front end (DESIGN.md §2 convention 8):
  /// each draw distills the ground set to a small candidate pool and runs
  /// `kind` on the restriction, so per-draw cost is independent of n.
  /// With distillation the session primes the O(n) distillation plan
  /// instead of the base oracle's full-n spectral caches; `use_commit`
  /// still selects commit vs condition() for the inner run, and both
  /// paths draw bit-identical samples from one seed.
  DistillOptions distill;
  BatchedOptions batched;
  EntropicOptions entropic;
  /// Per-draw retry/degradation policy (convention 12).
  RecoveryOptions recovery;
  /// Optional observer of retry/degradation/guard events; see
  /// GuardEventSink for the invocation contract.
  GuardEventSink guard_events;

  /// Whole-config validation, called at SamplerSession construction so a
  /// bad config fails fast with a typed InvalidArgument naming the field
  /// instead of surfacing as a deep NumericalError or a silent no-op.
  /// `sample_size` is the target k when known (0 skips the k-relative
  /// distillation checks); delegates to RecoveryOptions::validate and
  /// DistillOptions::validate.
  void validate(std::size_t sample_size = 0) const;
};

/// Lifetime counters snapshot from SamplerSession::health(). All counts
/// are since construction, across draw() and draw_many().
struct SessionHealth {
  std::uint64_t draws = 0;        ///< draw attempts started (incl. failed)
  std::uint64_t failures = 0;     ///< draws that threw out of the session
  std::uint64_t retries = 0;      ///< extra recovery attempts consumed
  std::uint64_t degraded_proposal = 0;     ///< draws served on rung 1
  std::uint64_t degraded_undistilled = 0;  ///< draws served on rung 2
  std::uint64_t degraded_reference = 0;    ///< draws served on rung 3
  std::uint64_t spectral_refreshes = 0;    ///< eigensolve fallbacks paid
  std::uint64_t starvations = 0;           ///< DistillationStarvation seen
  std::uint64_t proposal_drifts = 0;       ///< ProposalDriftError seen
  /// Process-wide monotone epoch stamped at session construction: two
  /// snapshots with different epochs came from different SamplerSession
  /// objects, so registry consumers detect a poisoned-session replacement
  /// across snapshots even when every counter happens to match.
  std::uint64_t session_epoch = 0;
  bool poisoned = false;
  std::string poison_reason;  ///< empty unless poisoned
};

/// One coalesced sub-request for SamplerSession::draw_many_batched: a
/// request's draws are a function of its own seed alone, exactly as if it
/// had run `RandomStream rng(seed); draw_many(count, rng, ctx)` by itself.
struct DrawBatchRequest {
  std::size_t count = 0;
  std::uint64_t seed = 0;
};

/// Per-request outcome of a coalesced batch. Failures are isolated per
/// request: `error` holds the first failing draw's exception (by draw
/// index) and `results` is empty; on success `error` is null and
/// `results` has exactly `count` samples.
struct DrawBatchOutcome {
  std::vector<SampleResult> results;
  std::exception_ptr error;
};

class SamplerSession {
 public:
  /// `base` must outlive the session. Construction primes the base
  /// oracle's lazy caches (prepare_concurrent), so concurrent draws read
  /// them read-only.
  explicit SamplerSession(const CountingOracle& base,
                          SessionOptions options = {});

  /// One draw on the session's serial state (reset + run; scratch and the
  /// base preprocessing are reused across calls). Throws SessionPoisoned
  /// on a poisoned session; any other throw leaves the session reusable.
  [[nodiscard]] SampleResult draw(RandomStream& rng);

  /// `count` independent draws, dispatched in chunks on the context's
  /// pool with one committed state per chunk. Draw i consumes a private
  /// stream forked from `rng` by index (the caller's stream advances by
  /// exactly one split), so the result sequence is a function of the seed
  /// alone — never of the pool size or the chunk layout. A throwing draw
  /// propagates exactly one typed exception (the first, in completion
  /// order) after all in-flight chunks drain; the session stays reusable
  /// unless the failure poisoned it.
  [[nodiscard]] std::vector<SampleResult> draw_many(
      std::size_t count, RandomStream& rng, const ExecutionContext& ctx);

  /// Coalesced serving entry point: flattens many per-seed requests into
  /// one chunked dispatch on the context's pool. Determinism contract:
  /// request r's results are bit-identical to a standalone
  /// `RandomStream rng(requests[r].seed); draw_many(requests[r].count,
  /// rng, ctx)` at every pool size — each request forks its own
  /// MachineStreams from its own seed, and draw i of a request consumes
  /// the stream for its request-local index. Unlike draw_many, a failing
  /// draw does not throw out: it fails only its own request's outcome
  /// (other requests in the batch still complete), except that a failure
  /// which poisons the session makes the remaining draws fail with
  /// SessionPoisoned. Throws SessionPoisoned if already poisoned.
  [[nodiscard]] std::vector<DrawBatchOutcome> draw_many_batched(
      const std::vector<DrawBatchRequest>& requests,
      const ExecutionContext& ctx);

  [[nodiscard]] const SessionOptions& options() const noexcept {
    return options_;
  }

  /// The process-wide monotone epoch stamped at construction (see
  /// SessionHealth::session_epoch).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// The primed distillation plan (nullptr unless distill.enabled) — the
  /// persistent-proposal stats surface for benches and tests.
  [[nodiscard]] const DistillationPlan* distillation_plan() const noexcept {
    return plan_.get();
  }

  /// Snapshot of the session's lifetime failure/recovery counters.
  /// Thread-safe; counters are relaxed atomics, so a snapshot taken
  /// while draws are in flight is approximate but never torn per-field.
  [[nodiscard]] SessionHealth health() const;

 private:
  /// Degradation ladder rungs, in order. kConfigured is whatever the
  /// options selected; later rungs only apply where they differ from it.
  enum class Rung { kConfigured = 0, kPerDrawProposal, kUndistilled,
                    kReference };

  [[nodiscard]] std::unique_ptr<CommittedOracle> make_state() const;
  [[nodiscard]] SampleResult run(CommittedOracle& state,
                                 RandomStream& rng) const;
  [[nodiscard]] SampleResult draw_with_plan(const DistillationPlan& plan,
                                            RandomStream& rng) const;
  [[nodiscard]] SampleResult run_rung(
      Rung rung, std::unique_ptr<CommittedOracle>& slot,
      RandomStream& rng) const;
  [[nodiscard]] SampleResult draw_indexed(
      std::size_t index, RandomStream& rng,
      std::unique_ptr<CommittedOracle>& slot);
  [[nodiscard]] Rung next_rung(Rung rung) const;
  void ensure_base_primed() const;
  void throw_if_poisoned() const;
  void note_success(SampleResult& result, Rung rung, std::size_t attempt,
                    std::size_t index);
  /// Classifies a failed attempt into counters/events; poisons on an
  /// unrecovered drift when `final_failure`.
  void note_failure(std::size_t index, std::size_t attempt,
                    const std::exception_ptr& error, bool final_failure);
  void poison(std::size_t index, std::size_t attempt,
              const std::string& reason);
  void emit(GuardEventKind kind, std::size_t index, std::size_t attempt,
            std::string detail) const;

  const CountingOracle* base_;
  SessionOptions options_;
  std::uint64_t epoch_;  // stamped from a process-wide monotone counter
  std::unique_ptr<CommittedOracle> serial_state_;
  std::unique_ptr<DistillationPlan> plan_;  // non-null iff distill.enabled
  // Rung 1's plan: same distillation minus the persistent proposal
  // (non-null only when recovery can degrade a persistent plan).
  std::unique_ptr<DistillationPlan> perdraw_plan_;
  mutable std::once_flag base_primed_;  // rungs 2/3 of a distilled session

  std::atomic<std::uint64_t> serial_index_{0};  // draw() scope/event index
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> degraded_proposal_{0};
  std::atomic<std::uint64_t> degraded_undistilled_{0};
  std::atomic<std::uint64_t> degraded_reference_{0};
  std::atomic<std::uint64_t> spectral_refreshes_{0};
  std::atomic<std::uint64_t> starvations_{0};
  std::atomic<std::uint64_t> proposal_drifts_{0};
  std::atomic<bool> poisoned_{false};
  mutable std::mutex state_mutex_;  // guards poison_reason_ + sink calls
  std::string poison_reason_;
};

}  // namespace pardpp
