// Cholesky (L L^T) factorization for symmetric positive (semi)definite
// matrices, plus PSD validation helpers.
//
// The symmetric DPP code paths use Cholesky both as the fast determinant /
// solve backend and as the arbiter of "is this kernel actually PSD"
// (failure injection tests rely on the strictness of that check).
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

/// Lower-triangular Cholesky factor with solve/determinant helpers.
class CholeskyDecomposition {
 public:
  explicit CholeskyDecomposition(Matrix lower) : lower_(std::move(lower)) {}

  [[nodiscard]] std::size_t size() const noexcept { return lower_.rows(); }
  [[nodiscard]] const Matrix& lower() const noexcept { return lower_; }

  /// log det A = 2 * sum log diag(L).
  [[nodiscard]] double log_det() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < size(); ++i) acc += std::log(lower_(i, i));
    return 2.0 * acc;
  }

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::vector<double> b) const {
    check_arg(b.size() == size(), "cholesky solve: size mismatch");
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      for (std::size_t j = 0; j < i; ++j) acc -= lower_(i, j) * b[j];
      b[i] = acc / lower_(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = b[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lower_(j, ii) * b[j];
      b[ii] = acc / lower_(ii, ii);
    }
    return b;
  }

  /// Solves A X = B.
  [[nodiscard]] Matrix solve_matrix(const Matrix& b) const {
    Matrix x(b.rows(), b.cols());
    std::vector<double> col(b.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
      for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      col = solve(std::move(col));
      for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = col[i];
    }
    return x;
  }

 private:
  Matrix lower_;
};

/// Attempts a Cholesky factorization; returns nullopt when the matrix is
/// not positive definite beyond `tol` (relative to the largest diagonal).
[[nodiscard]] inline std::optional<CholeskyDecomposition> cholesky(
    const Matrix& a, double tol = 1e-12) {
  check_arg(a.square(), "cholesky: matrix not square");
  const std::size_t n = a.rows();
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::abs(a(i, i)));
  const double threshold = std::max(tol * max_diag, 1e-300);
  Matrix lower(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= lower(j, k) * lower(j, k);
    if (diag <= threshold) return std::nullopt;
    const double ljj = std::sqrt(diag);
    lower(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= lower(i, k) * lower(j, k);
      lower(i, j) = acc / ljj;
    }
  }
  return CholeskyDecomposition(std::move(lower));
}

/// Cholesky that throws NumericalError on non-PD input.
[[nodiscard]] inline CholeskyDecomposition cholesky_or_throw(const Matrix& a,
                                                             double tol = 1e-12) {
  auto result = cholesky(a, tol);
  check_numeric(result.has_value(), "cholesky: matrix not positive definite");
  return std::move(*result);
}

/// True when the symmetric matrix is PSD up to `jitter` on the diagonal.
/// (A + jitter*I must be positive definite.)
[[nodiscard]] inline bool is_psd(const Matrix& a, double jitter = 1e-9) {
  if (!a.square() || !a.is_symmetric(1e-8)) return false;
  Matrix shifted = a;
  double scale = a.max_abs();
  if (scale == 0.0) scale = 1.0;
  for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += jitter * scale;
  return cholesky(shifted).has_value();
}

/// True when L + L^T is PSD, i.e. L is nonsymmetric positive semidefinite
/// in the sense of Definition 4 of the paper.
[[nodiscard]] inline bool is_npsd(const Matrix& l, double jitter = 1e-9) {
  if (!l.square()) return false;
  return is_psd(l.symmetric_part(), jitter);
}

}  // namespace pardpp
