// The paper's §7 hard instance for batched rejection sampling.
//
// Ground set [n] (n even) is partitioned into pairs S_i = (2i, 2i+1);
// mu is uniform over unions of k/2 pairs (eq. (5) of the paper). The
// distribution is Omega(1)-fractionally log-concave yet *positively*
// correlated inside pairs, which makes the acceptance ratio of i.i.d.
// proposal batches blow up with the number of "duplicates" (pairs hit
// twice): P[a mu_l draw has >= t duplicates] = (Theta(l^2/k))^t. The
// counting oracle is closed-form, so the batched samplers can be driven to
// k in the thousands at negligible oracle cost — this instance powers both
// the depth-scaling benches and bench_hard_instance.
//
// State under conditioning: an element whose partner was conditioned away
// becomes "forced" (it belongs to every sample); untouched pairs remain
// exchangeable.
#pragma once

#include "distributions/oracle.h"

namespace pardpp {

class HardInstanceOracle final : public CountingOracle {
 public:
  /// Fresh instance: n even, k even, k <= n, mu uniform on pair unions.
  HardInstanceOracle(std::size_t n, std::size_t k);

  [[nodiscard]] std::size_t ground_size() const override {
    return partner_.size();
  }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override { return "hard-instance"; }

  /// Number of untouched (free) pairs.
  [[nodiscard]] std::size_t free_pairs() const { return free_pairs_; }

  /// Number of forced singles (partner already conditioned in).
  [[nodiscard]] std::size_t forced() const { return forced_; }

 private:
  HardInstanceOracle() = default;

  // partner_[i]: current index of i's partner, or -1 when i is forced.
  std::vector<int> partner_;
  std::size_t k_ = 0;
  std::size_t free_pairs_ = 0;
  std::size_t forced_ = 0;
};

}  // namespace pardpp
