#include "linalg/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/simd_block.inl"

namespace pardpp::simd {

namespace detail {

double dot_scalar(const double* a, const double* b, std::size_t n) noexcept {
  // Fixed blocked order: four independent accumulators over 4-element
  // blocks (breaking the single-chain dependency), a scalar tail, then
  // the combine ((acc0+acc1)+(acc2+acc3))+tail. Mirrors the AVX2 arm's
  // block structure so the arms track each other closely.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((acc0 + acc1) + (acc2 + acc3)) + tail;
}

void dot4_scalar(const double* a, const double* b0, const double* b1,
                 const double* b2, const double* b3, std::size_t n,
                 double* out) noexcept {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = a[i];
    acc0 += av * b0[i];
    acc1 += av * b1[i];
    acc2 += av * b2[i];
    acc3 += av * b3[i];
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

void axpy_scalar(double* y, double alpha, const double* x,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scaled_copy_scalar(double* dst, double s, const double* src,
                        std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] = s * src[i];
}

namespace {

/// Primitive set the shared blocked nests (simd_block.inl) instantiate
/// against for the scalar arm. Everything is defined in this TU, so the
/// calls inline into the nests.
struct ScalarPrims {
  // The dot4 streaming nest auto-vectorizes well portably; the packed
  // broadcast tile does not.
  static constexpr bool kPackedGemm = false;
  static double dot(const double* a, const double* b, std::size_t n) noexcept {
    return dot_scalar(a, b, n);
  }
  static void dot4(const double* a, const double* b0, const double* b1,
                   const double* b2, const double* b3, std::size_t n,
                   double* out) noexcept {
    dot4_scalar(a, b0, b1, b2, b3, n, out);
  }
  static void opacc_4x8(double* tile, const double* ca, const double* cb,
                        std::size_t r, std::size_t stride) noexcept {
    for (std::size_t t = 0; t < 32; ++t) tile[t] = 0.0;
    for (std::size_t p = 0; p < r; ++p) {
      const double* ap = ca + p * stride;
      const double* bp = cb + p * stride;
      for (std::size_t ii = 0; ii < 4; ++ii) {
        const double av = ap[ii];
        double* trow = tile + ii * 8;
        for (std::size_t jj = 0; jj < 8; ++jj) trow[jj] += av * bp[jj];
      }
    }
  }
};

}  // namespace

void gemm_nt_scalar(double* c, std::size_t ldc, const double* a,
                    std::size_t lda, std::size_t m, const double* b,
                    std::size_t ldb, std::size_t n, std::size_t k) noexcept {
  gemm_nt_blocked<ScalarPrims>(c, ldc, a, lda, m, b, ldb, n, k);
}

void syrk_ut_scalar(double* c, std::size_t ldc, double alpha, const double* a,
                    std::size_t r, std::size_t n,
                    std::size_t stride) noexcept {
  syrk_ut_blocked<ScalarPrims>(c, ldc, alpha, a, r, n, stride);
}

#if defined(PARDPP_SIMD_HAVE_AVX2)
// Defined in linalg/simd_avx2.cpp, the only TU built with -mavx2 -mfma.
double dot_avx2(const double* a, const double* b, std::size_t n) noexcept;
void dot4_avx2(const double* a, const double* b0, const double* b1,
               const double* b2, const double* b3, std::size_t n,
               double* out) noexcept;
void axpy_avx2(double* y, double alpha, const double* x,
               std::size_t n) noexcept;
void scaled_copy_avx2(double* dst, double s, const double* src,
                      std::size_t n) noexcept;
void gemm_nt_avx2(double* c, std::size_t ldc, const double* a,
                  std::size_t lda, std::size_t m, const double* b,
                  std::size_t ldb, std::size_t n, std::size_t k) noexcept;
void syrk_ut_avx2(double* c, std::size_t ldc, double alpha, const double* a,
                  std::size_t r, std::size_t n, std::size_t stride) noexcept;
#endif

}  // namespace detail

namespace {

constexpr KernelTable kScalarTable = {
    detail::dot_scalar,         detail::dot4_scalar,
    detail::axpy_scalar,        detail::scaled_copy_scalar,
    detail::gemm_nt_scalar,     detail::syrk_ut_scalar,
    Path::kScalar};

#if defined(PARDPP_SIMD_HAVE_AVX2)
constexpr KernelTable kAvx2Table = {
    detail::dot_avx2,         detail::dot4_avx2,
    detail::axpy_avx2,        detail::scaled_copy_avx2,
    detail::gemm_nt_avx2,     detail::syrk_ut_avx2,
    Path::kAvx2};
#endif

/// The latched default: resolved from PARDPP_SIMD exactly once, on the
/// first dispatched kernel call of the process.
const KernelTable* latched_table() noexcept {
  static const KernelTable* const table =
      &kernel_table(resolve_path(std::getenv("PARDPP_SIMD")));
  return table;
}

/// Test/bench override slot (ScopedPathOverride); null = use the latch.
std::atomic<const KernelTable*> g_override{nullptr};

}  // namespace

bool avx2_compiled() noexcept {
#if defined(PARDPP_SIMD_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Path resolve_path(const char* override_value) noexcept {
  const bool avx2_usable = avx2_compiled() && avx2_supported();
  if (override_value != nullptr) {
    if (std::strcmp(override_value, "scalar") == 0) return Path::kScalar;
    if (std::strcmp(override_value, "avx2") == 0)
      return avx2_usable ? Path::kAvx2 : Path::kScalar;
    // Unknown strings (and "auto") fall through to autodetection: a typo
    // must never select an arm the host cannot execute.
  }
  return avx2_usable ? Path::kAvx2 : Path::kScalar;
}

const KernelTable& kernel_table(Path path) noexcept {
#if defined(PARDPP_SIMD_HAVE_AVX2)
  if (path == Path::kAvx2 && avx2_supported()) return kAvx2Table;
#else
  (void)path;
#endif
  return kScalarTable;
}

const KernelTable& active_kernels() noexcept {
  const KernelTable* override_table =
      g_override.load(std::memory_order_acquire);
  return override_table != nullptr ? *override_table : *latched_table();
}

Path active_path() noexcept { return active_kernels().path; }

const char* path_name() noexcept {
  return active_path() == Path::kAvx2 ? "avx2" : "scalar";
}

ScopedPathOverride::ScopedPathOverride(Path path) noexcept
    : previous_(g_override.exchange(&kernel_table(path),
                                    std::memory_order_acq_rel)) {}

ScopedPathOverride::~ScopedPathOverride() {
  g_override.store(previous_, std::memory_order_release);
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
  return active_kernels().dot(a, b, n);
}

void dot4(const double* a, const double* b0, const double* b1,
          const double* b2, const double* b3, std::size_t n,
          double* out) noexcept {
  active_kernels().dot4(a, b0, b1, b2, b3, n, out);
}

void axpy(double* y, double alpha, const double* x, std::size_t n) noexcept {
  active_kernels().axpy(y, alpha, x, n);
}

void scaled_copy(double* dst, double s, const double* src,
                 std::size_t n) noexcept {
  active_kernels().scaled_copy(dst, s, src, n);
}

void gemm_nt(double* c, std::size_t ldc, const double* a, std::size_t lda,
             std::size_t m, const double* b, std::size_t ldb, std::size_t n,
             std::size_t k) noexcept {
  active_kernels().gemm_nt(c, ldc, a, lda, m, b, ldb, n, k);
}

void syrk_ut(double* c, std::size_t ldc, double alpha, const double* a,
             std::size_t r, std::size_t n, std::size_t stride) noexcept {
  active_kernels().syrk_ut(c, ldc, alpha, a, r, n, stride);
}

}  // namespace pardpp::simd
