// Counting oracle for symmetric k-DPPs in the low-rank (dual) feature
// representation L = B B^T, B of shape n x d.
//
// Every operation stays within O(n d^2 + d^3):
//   Z           = e_k(nonzero spectrum of B^T B)
//   P[i ∈ S]    = sum over nonzero modes of the usual ESP weights
//   P[T ⊆ S]    = det(Gram(B_T)) e_{k-t}(spectrum of conditioned features)
//   conditioning = feature-space projection (rank drops by |T|).
// Mirrors SymmetricKdppOracle exactly (the test suite checks agreement);
// use it when n is large and the kernel is genuinely low-rank — which is
// every practical data-summarization / recommender deployment.
//
// Batch queries go through a ConditionalState (oracle.h) that conditions
// entirely in feature space: with P the projection onto span(B_T rows),
// the conditioned Gram is (I - P) G (I - P) for the cached G = B^T B, so
// a query costs O(t d^2 + t^2 d) instead of the from-scratch
// O(n d t + n d^2) feature projection — the n factor drops out entirely.
#pragma once

#include <optional>

#include "distributions/oracle.h"
#include "linalg/esp.h"
#include "linalg/lowrank.h"
#include "linalg/matrix.h"

namespace pardpp {

class FeatureKdppOracle final : public CountingOracle {
 public:
  /// k-DPP with ensemble B B^T. Requires k <= rank(B).
  FeatureKdppOracle(Matrix features, std::size_t k);

  [[nodiscard]] std::size_t ground_size() const override {
    return features_.rows();
  }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  /// Restriction to (possibly repeated) items with per-row scales: one
  /// gather_scaled_rows pass, then the same family on the m x d result —
  /// the restricted Gram is rebuilt by the blocked sym_rank_k_update
  /// kernel, never from the full-n caches.
  [[nodiscard]] std::unique_ptr<CountingOracle> restrict_to(
      std::span<const int> items,
      std::span<const double> scales) const override;
  /// weights[i] = |b_i|² (the ensemble diagonal), rank_bound = d. One
  /// O(n d) pass; does not force the full-n eigendecomposition.
  [[nodiscard]] DistillationProfile distillation_profile() const override;
  /// log e_k of the Gram spectrum.
  [[nodiscard]] double log_partition() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override { return "feature-kdpp"; }
  void prepare_concurrent() const override;
  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override;
  /// Exact two-stage mixture draw (eigenmode ~ ESP weight, then item ~
  /// squared eigenvector entry): one O(d^3) mode table and one O(n d)
  /// matvec — the marginal vector is never assembled.
  [[nodiscard]] MarginalDraw draw_marginal(RandomStream& rng) const override;
  /// Commit-path state: conditioning folded into the cached d x d Gram by
  /// rank-2 projection updates and into the item features by rank-1
  /// projections — no per-round feature re-materialization, no per-round
  /// O(n d^2) Gram rebuild (DESIGN.md §2 convention 7).
  [[nodiscard]] std::unique_ptr<CommittedOracle> make_committed()
      const override;

  [[nodiscard]] const Matrix& features() const noexcept { return features_; }

 private:
  class State;
  class Committed;

  const LowRankEigen& eigen() const;
  const LogEspTable& esp() const;
  const Matrix& gram() const;
  const std::vector<double>& marginal_cache() const;
  const std::vector<double>& log_marginal_cache() const;

  Matrix features_;
  std::size_t k_;
  mutable std::optional<LowRankEigen> eigen_;
  mutable std::optional<LogEspTable> esp_;
  mutable std::optional<Matrix> gram_;
  mutable std::optional<std::vector<double>> marginals_;
  mutable std::optional<std::vector<double>> log_marginals_;
};

}  // namespace pardpp
