// Brute-force perfect-matching enumeration (ground truth for tests).
#pragma once

#include <cstdint>
#include <vector>

#include "planar/graph.h"

namespace pardpp {

/// A perfect matching as a sorted list of (u, v) edges with u < v.
using Matching = std::vector<std::pair<int, int>>;

/// All perfect matchings of g by backtracking. Intended for small graphs
/// (n <= ~24).
[[nodiscard]] std::vector<Matching> enumerate_perfect_matchings(
    const PlanarGraph& g);

/// #PM by the same backtracking (no materialization).
[[nodiscard]] std::uint64_t count_perfect_matchings_brute(
    const PlanarGraph& g);

/// Canonical form: sorts edge endpoints and the edge list.
[[nodiscard]] Matching canonical_matching(Matching m);

}  // namespace pardpp
