#include "distributions/explicit.h"

#include <algorithm>
#include <cmath>

#include "support/logsum.h"

namespace pardpp {

ExplicitOracle::ExplicitOracle(std::size_t n, std::size_t k)
    : n_(n), k_(k), indexer_(static_cast<int>(n), static_cast<int>(k)) {}

ExplicitOracle::ExplicitOracle(
    std::size_t n, std::size_t k,
    const std::function<double(std::span<const int>)>& log_mass)
    : ExplicitOracle(n, k) {
  log_masses_.assign(indexer_.count(), kNegInf);
  for_each_subset(static_cast<int>(n), static_cast<int>(k),
                  [&](std::span<const int> subset) {
                    log_masses_[indexer_.rank(subset)] = log_mass(subset);
                  });
  log_z_ = logsumexp(log_masses_);
  check_arg(log_z_ != kNegInf, "ExplicitOracle: zero total mass");
}

double ExplicitOracle::log_probability(std::span<const int> subset) const {
  return log_masses_[indexer_.rank(subset)] - log_z_;
}

double ExplicitOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  for (std::size_t a = 0; a < t.size(); ++a) {
    check_arg(t[a] >= 0 && static_cast<std::size_t>(t[a]) < n_,
              "ExplicitOracle: index out of range");
    for (std::size_t b = a + 1; b < t.size(); ++b)
      check_arg(t[a] != t[b], "ExplicitOracle: duplicate index");
  }
  double acc = kNegInf;
  for_each_subset(static_cast<int>(n_), static_cast<int>(k_),
                  [&](std::span<const int> subset) {
                    for (const int want : t) {
                      if (!std::binary_search(subset.begin(), subset.end(),
                                              want))
                        return;
                    }
                    acc = log_add(acc, log_masses_[indexer_.rank(subset)]);
                  });
  return acc - log_z_;
}

std::vector<double> ExplicitOracle::marginals() const {
  std::vector<double> p(n_, 0.0);
  for_each_subset(static_cast<int>(n_), static_cast<int>(k_),
                  [&](std::span<const int> subset) {
                    const double mass =
                        std::exp(log_masses_[indexer_.rank(subset)] - log_z_);
                    for (const int i : subset)
                      p[static_cast<std::size_t>(i)] += mass;
                  });
  return p;
}

std::unique_ptr<CountingOracle> ExplicitOracle::condition(
    std::span<const int> t) const {
  check_numeric(log_joint_marginal(t) != kNegInf,
                "ExplicitOracle: conditioning on a null event");
  std::vector<int> keep;
  std::vector<bool> in_t(n_, false);
  for (const int i : t) in_t[static_cast<std::size_t>(i)] = true;
  for (std::size_t i = 0; i < n_; ++i)
    if (!in_t[i]) keep.push_back(static_cast<int>(i));
  std::vector<int> t_sorted(t.begin(), t.end());
  std::sort(t_sorted.begin(), t_sorted.end());
  return std::make_unique<ExplicitOracle>(
      keep.size(), k_ - t.size(), [&](std::span<const int> subset) {
        std::vector<int> full = t_sorted;
        for (const int i : subset)
          full.push_back(keep[static_cast<std::size_t>(i)]);
        std::sort(full.begin(), full.end());
        return log_masses_[indexer_.rank(full)];
      });
}

std::unique_ptr<CountingOracle> ExplicitOracle::clone() const {
  auto copy = std::unique_ptr<ExplicitOracle>(new ExplicitOracle(n_, k_));
  copy->log_masses_ = log_masses_;
  copy->log_z_ = log_z_;
  return copy;
}

}  // namespace pardpp
