#include "sampling/intermediate.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "support/combinatorics.h"
#include "support/failpoint.h"
#include "support/logsum.h"

namespace pardpp {

void DistillOptions::validate(std::size_t k) const {
  check_arg(max_attempts != 0,
            "DistillOptions::max_attempts: must be positive (every draw "
            "proposes at least one candidate pool)");
  if (candidate_budget != 0 && k != 0) {
    check_arg(candidate_budget >= k,
              "DistillOptions::candidate_budget: " +
                  std::to_string(candidate_budget) +
                  " cannot seat a sample of size " + std::to_string(k) +
                  " (every pool would starve)");
  }
  if (sparsified_domain != 0) {
    check_arg(persistent_proposal,
              "DistillOptions::sparsified_domain: set without "
              "persistent_proposal — the domain size only shapes the "
              "persistent sparsified proposal and would be silently "
              "ignored");
    if (k != 0) {
      check_arg(sparsified_domain >= k,
                "DistillOptions::sparsified_domain: " +
                    std::to_string(sparsified_domain) +
                    " is below the sample size " + std::to_string(k) +
                    " (the alias domain could never cover a sample)");
    }
  }
}

DistillationPlan::DistillationPlan(const CountingOracle& base,
                                   DistillOptions options)
    : base_(&base), options_(options), k_(base.sample_size()) {
  options_.validate(k_);
  const DistillationProfile profile = base.distillation_profile();
  check_arg(!profile.weights.empty(),
            "DistillationPlan: family " + base.name() +
                " does not support distillation");
  check_arg(profile.weights.size() == base.ground_size(),
            "DistillationPlan: profile size mismatch");
  // An understated rank bound would shrink the Maclaurin bound below
  // real restricted partition functions and silently bias the output
  // law — the one profile mistake exactness cannot survive.
  check_arg(profile.rank_bound >= k_,
            "DistillationPlan: profile rank_bound below k");
  m_ = options_.candidate_budget != 0
           ? options_.candidate_budget
           : std::max<std::size_t>(64, 4 * k_ * k_);
  check_arg(m_ >= k_, "DistillationPlan: candidate budget below k");

  double tau = 0.0;
  cumulative_.resize(profile.weights.size());
  for (std::size_t i = 0; i < profile.weights.size(); ++i) {
    const double w = profile.weights[i];
    check_arg(w >= 0.0, "DistillationPlan: negative weight");
    tau += w;
    cumulative_[i] = tau;
    if (w > 0.0) last_positive_ = i;
  }
  check_arg(k_ == 0 || tau > 0.0, "DistillationPlan: all weights zero");
  row_scale_.resize(profile.weights.size());
  const double md = static_cast<double>(m_);
  for (std::size_t i = 0; i < profile.weights.size(); ++i) {
    const double w = profile.weights[i];
    row_scale_[i] = w > 0.0 ? std::sqrt(tau / (md * w)) : 0.0;
  }

  // log M = log C(r, k) + k log(tau / r): Maclaurin's bound on e_k of a
  // PSD spectrum with at most r nonzero values summing to tau (maximized
  // at the uniform spectrum). r < k means no restriction can carry mass;
  // the base constructor checks already exclude that, but keep log M
  // finite so the failure mode is max_attempts, not NaN.
  rank_r_ = std::max<std::size_t>(std::min(profile.rank_bound, m_), k_);
  log_m_ =
      k_ == 0
          ? 0.0
          : log_binomial(rank_r_, k_) +
                static_cast<double>(k_) *
                    (std::log(tau) - std::log(static_cast<double>(rank_r_)));

  if (options_.persistent_proposal && k_ > 0) build_persistent_tables();
}

void DistillationPlan::build_persistent_tables() {
  const std::size_t n = cumulative_.size();
  // (weight, id) pairs for the positive-weight items, reconstructed from
  // the authoritative prefix-sum table so revalidate_domain() resums the
  // exact same values the alias/tail masses were built from.
  std::vector<std::pair<double, int>> positive;
  positive.reserve(n);
  double prev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = cumulative_[i] - prev;
    prev = cumulative_[i];
    if (w > 0.0) positive.emplace_back(w, static_cast<int>(i));
  }

  const auto heavier = [](const std::pair<double, int>& a,
                          const std::pair<double, int>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // strict total order => deterministic D
  };
  std::size_t log2n = 1;
  while ((static_cast<std::size_t>(1) << log2n) < n) ++log2n;
  const std::size_t auto_size =
      std::max(m_, k_ * log2n * log2n);
  const std::size_t target = options_.sparsified_domain != 0
                                 ? options_.sparsified_domain
                                 : auto_size;
  const std::size_t t = std::min(target, positive.size());
  if (t < positive.size())
    std::nth_element(positive.begin(), positive.begin() + t, positive.end(),
                     heavier);
  std::sort(positive.begin(), positive.begin() + t, heavier);

  domain_items_.reserve(t);
  domain_mass_ = 0.0;
  for (std::size_t c = 0; c < t; ++c) {
    domain_items_.push_back(positive[c].second);
    domain_mass_ += positive[c].first;
  }
  // Tail in ascending-id order: the compacted cumulative table must be
  // monotone for the binary-search fallback.
  std::vector<std::pair<double, int>> tail(positive.begin() + t,
                                           positive.end());
  std::sort(tail.begin(), tail.end(),
            [](const std::pair<double, int>& a,
               const std::pair<double, int>& b) { return a.second < b.second; });
  tail_items_.reserve(tail.size());
  tail_cumulative_.reserve(tail.size());
  tail_mass_ = 0.0;
  for (const auto& [w, id] : tail) {
    tail_mass_ += w;
    tail_items_.push_back(id);
    tail_cumulative_.push_back(tail_mass_);
  }
  const double total = domain_mass_ + tail_mass_;
  p_domain_ = tail_items_.empty() ? 1.0 : domain_mass_ / total;

  // Heavy-tail budget: E[tail candidates per pool] = m (1 - p_D); a pool
  // beyond twice that (floored so sub-1 expectations do not flag every
  // stray tail hit) is the rare event that triggers re-validation.
  const double expected_tail =
      static_cast<double>(m_) * (1.0 - p_domain_);
  tail_budget_ = std::max<std::size_t>(
      4, static_cast<std::size_t>(2.0 * std::ceil(expected_tail)));

  // Vose alias table over D: cell c keeps its own item with probability
  // alias_prob_[c], otherwise the donated alias_other_[c]. Scaled
  // weights p_c = w_c * t / mass partition [0, t) exactly (up to one
  // rounding per cell), so a single uniform serves cell + coin.
  alias_prob_.assign(t, 1.0);
  alias_other_.resize(t);
  for (std::size_t c = 0; c < t; ++c)
    alias_other_[c] = static_cast<std::uint32_t>(c);
  std::vector<double> scaled(t);
  for (std::size_t c = 0; c < t; ++c)
    scaled[c] = positive[c].first * static_cast<double>(t) / domain_mass_;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(t);
  large.reserve(t);
  for (std::size_t c = t; c-- > 0;) {  // fixed order => deterministic table
    (scaled[c] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(c));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    alias_prob_[s] = scaled[s];
    alias_other_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to roundoff; they keep their own item.
}

std::size_t DistillationPlan::candidate_index(double target) const {
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  // target == tau at roundoff: clamp to the last positive-weight index —
  // trailing zero-weight items share the final cumulative value but have
  // row_scale_ == 0, and emitting one would inject a null row the
  // proposal law assigns probability zero.
  if (it == cumulative_.end()) return last_positive_;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

std::size_t DistillationPlan::propose_candidate_persistent(
    double u, std::size_t& tail_hits) const {
  if (tail_items_.empty() || u < p_domain_) {
    // Rescale the in-domain uniform onto [0, 1) and spend it on the
    // one-uniform alias lookup: integer part picks the cell, fractional
    // part is the cell's keep/alias coin.
    double v = tail_items_.empty() ? u : u / p_domain_;
    const auto t = static_cast<double>(domain_items_.size());
    double cell_f = v * t;
    auto cell = static_cast<std::size_t>(cell_f);
    if (cell >= domain_items_.size()) {  // v == 1 at roundoff
      cell = domain_items_.size() - 1;
      cell_f = static_cast<double>(cell) + 1.0;
    }
    const double frac = cell_f - static_cast<double>(cell);
    const std::size_t slot =
        frac < alias_prob_[cell] ? cell : alias_other_[cell];
    return static_cast<std::size_t>(domain_items_[slot]);
  }
  // Tail fallback: rescale the remainder onto the compacted exact
  // cumulative table — same inverse-CDF law as the full-n path,
  // restricted to [n] \ D.
  ++tail_hits;
  const double rem = (u - p_domain_) / (1.0 - p_domain_);
  const double target = rem * tail_mass_;
  auto it = std::upper_bound(tail_cumulative_.begin(), tail_cumulative_.end(),
                             target);
  if (it == tail_cumulative_.end()) --it;  // target == tail mass at roundoff
  return static_cast<std::size_t>(
      tail_items_[static_cast<std::size_t>(it - tail_cumulative_.begin())]);
}

std::unique_ptr<CountingOracle> DistillationPlan::propose(
    RandomStream& rng, std::vector<int>& items, std::vector<double>& scales,
    PoolStats* pool_stats) const {
  check_arg(k_ > 0,
            "DistillationPlan::propose: k == 0 has no candidate pool "
            "(draw() returns the empty sample without proposing)");
  items.clear();
  scales.clear();
  items.reserve(m_);
  scales.reserve(m_);
  std::size_t tail_hits = 0;
  if (!domain_items_.empty()) {
    for (std::size_t j = 0; j < m_; ++j) {
      const std::size_t i = propose_candidate_persistent(rng.uniform(),
                                                         tail_hits);
      items.push_back(static_cast<int>(i));
      scales.push_back(row_scale_[i]);
    }
    const std::uint64_t pool_count =
        pools_.fetch_add(1, std::memory_order_relaxed) + 1;
    tail_candidates_.fetch_add(tail_hits, std::memory_order_relaxed);
    const bool heavy = tail_hits > tail_budget_;
    if (heavy) heavy_tail_pools_.fetch_add(1, std::memory_order_relaxed);
    if (heavy || (options_.refresh_interval != 0 &&
                  pool_count % options_.refresh_interval == 0))
      revalidate_domain();
    if (pool_stats != nullptr) *pool_stats = {tail_hits, heavy};
  } else {
    const double tau = cumulative_.back();
    for (std::size_t j = 0; j < m_; ++j) {
      const std::size_t i = candidate_index(rng.uniform() * tau);
      items.push_back(static_cast<int>(i));
      scales.push_back(row_scale_[i]);
    }
    if (pool_stats != nullptr) *pool_stats = {};
  }
  return base_->restrict_to(items, scales);
}

DistillationPlan::ProposalStats DistillationPlan::proposal_stats()
    const noexcept {
  return {pools_.load(std::memory_order_relaxed),
          tail_candidates_.load(std::memory_order_relaxed),
          heavy_tail_pools_.load(std::memory_order_relaxed),
          refreshes_.load(std::memory_order_relaxed)};
}

void DistillationPlan::revalidate_domain() const {
  if (domain_items_.empty()) return;
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  if (failpoint("distill.revalidate"))
    throw ProposalDriftError(
        "DistillationPlan: injected revalidation failure "
        "[failpoint distill.revalidate]");
  const double tau = cumulative_.back();
  // Resum the domain mass from the authoritative full-n table (w_i is
  // the prefix-sum difference, the exact value the tables were built
  // from) and re-derive the tail mass as the complement.
  double domain_mass = 0.0;
  for (const int id : domain_items_) {
    const auto i = static_cast<std::size_t>(id);
    const double below = i == 0 ? 0.0 : cumulative_[i - 1];
    domain_mass += cumulative_[i] - below;
  }
  const double tol = 1e-9 * std::max(tau, 1.0);
  if (std::abs(domain_mass - domain_mass_) > tol)
    throw ProposalDriftError(
        "DistillationPlan: sparsified-domain mass drifted from the "
        "primed value — profile mutated under the plan; rebuild it");
  if (std::abs((domain_mass_ + tail_mass_) - tau) > tol)
    throw ProposalDriftError(
        "DistillationPlan: domain + tail mass no longer sums to tau "
        "— profile mutated under the plan; rebuild it");
  // Re-derive the Maclaurin bound from tau and the cached rank bound: the
  // acceptance test divides by M every pool, so a drifted bound silently
  // reweights the output law — exactly the failure the refresh rule
  // exists to catch. (Deliberately NOT re-querying
  // base_->distillation_profile() here: that is an O(n d) weight
  // recompute, and revalidation sits on the steady-state hot path.)
  const double log_m_now =
      log_binomial(rank_r_, k_) +
      static_cast<double>(k_) *
          (std::log(tau) - std::log(static_cast<double>(rank_r_)));
  if (std::abs(log_m_now - log_m_) >
      1e-12 * std::max(std::abs(log_m_), 1.0))
    throw ProposalDriftError(
        "DistillationPlan: Maclaurin acceptance bound drifted from "
        "the primed value — profile mutated under the plan");
}

SampleResult DistillationPlan::draw(RandomStream& rng,
                                    const InnerSampler& inner) const {
  if (k_ == 0) return {};
  std::vector<int> items;
  std::vector<double> scales;
  std::size_t duplicate_rejects = 0;
  std::size_t tail_candidates = 0;
  std::size_t heavy_tail_pools = 0;
  PoolStats pool_stats;
  for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const auto restricted = propose(rng, items, scales, &pool_stats);
    tail_candidates += pool_stats.tail_candidates;
    heavy_tail_pools += pool_stats.heavy_tail ? 1 : 0;
    const double log_z = restricted->log_partition();
    // The acceptance uniform is consumed on every attempt (convention in
    // the header), so the stream position after a rejection does not
    // depend on why the pool was rejected.
    const double u = rng.uniform();
    // Injected rejection AFTER the acceptance uniform is consumed: the
    // stream protocol is preserved, and a rejected-and-redrawn pool
    // leaves the output law untouched (the exactness argument in the
    // header) — the one fault class whose injection is law-invariant at
    // any rate, which is what lets the CI fault leg run the statistical
    // harness with this site armed.
    if (failpoint("distill.accept")) continue;
    if (u <= 0.0 || std::log(u) >= log_z - log_m_) continue;
    SampleResult result = inner(*restricted, rng);
    result.diag.proposals += attempt + 1;
    result.diag.accepted_batches += 1;
    for (int& item : result.items)
      item = items[static_cast<std::size_t>(item)];
    std::sort(result.items.begin(), result.items.end());
    const bool distinct =
        std::adjacent_find(result.items.begin(), result.items.end()) ==
        result.items.end();
    // Parallel rows make duplicate selection a probability-zero event;
    // reaching one means roundoff promoted an exactly-null cell, which
    // the family tolerances treat as a rejection, not a sample.
    if (!distinct) {
      ++duplicate_rejects;  // survives into the returned draw's counters
      continue;
    }
    result.diag.duplicate_rejects += duplicate_rejects;
    result.diag.tail_candidates += tail_candidates;
    result.diag.heavy_tail_pools += heavy_tail_pools;
    return result;
  }
  SampleDiagnostics diag;
  diag.proposals = options_.max_attempts;
  diag.duplicate_rejects = duplicate_rejects;
  diag.tail_candidates = tail_candidates;
  diag.heavy_tail_pools = heavy_tail_pools;
  throw DistillationStarvation(
      "DistillationPlan: no candidate pool accepted within max_attempts "
      "(attempts=" +
          std::to_string(options_.max_attempts) +
          ", duplicate_rejects=" + std::to_string(duplicate_rejects) +
          ", candidate_budget=" + std::to_string(m_) +
          "; spectrum far from the Maclaurin-tight uniform case — raise "
          "candidate_budget)",
      diag);
}

}  // namespace pardpp
