#include "serving/registry.h"

#include <utility>

namespace pardpp::serving {

ServingSession::ServingSession(std::unique_ptr<CountingOracle> oracle,
                               SessionOptions options,
                               std::size_t resident_bytes)
    : oracle_(std::move(oracle)), resident_bytes_(resident_bytes) {
  // Chain the per-kind counters in front of any caller sink. The sink
  // runs under the session's state mutex, so the increments are cheap
  // relaxed stores on an already-serialized path.
  GuardEventSink user_sink = std::move(options.guard_events);
  options.guard_events = [this, user_sink = std::move(user_sink)](
                             const GuardEvent& event) {
    const auto kind = static_cast<std::size_t>(event.kind);
    if (kind < guard_counts_.size())
      guard_counts_[kind].fetch_add(1, std::memory_order_relaxed);
    if (user_sink) user_sink(event);
  };
  session_ = std::make_unique<SamplerSession>(*oracle_, std::move(options));
}

std::array<std::uint64_t, kGuardEventKindCount>
ServingSession::guard_event_counts() const {
  std::array<std::uint64_t, kGuardEventKindCount> counts{};
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = guard_counts_[i].load(std::memory_order_relaxed);
  return counts;
}

std::shared_ptr<ServingSession> SessionRegistry::acquire(
    const KernelFingerprint& fingerprint, const SessionOptions& options,
    std::size_t resident_bytes, const OracleFactory& make_oracle) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  const auto found = index_.find(fingerprint);
  if (found != index_.end()) {
    const auto entry_it = found->second;
    if (!entry_it->session->session().health().poisoned) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, entry_it);  // touch
      return entry_it->session;
    }
    // Poisoned: build the replacement first, so a throwing rebuild
    // leaves the poisoned entry resident (the next acquire retries the
    // rebuild; handing out the poisoned session is never an option —
    // every draw on it throws SessionPoisoned anyway).
    auto replacement = std::make_shared<ServingSession>(
        make_oracle(), options, resident_bytes);
    ++stats_.poisoned_replacements;
    stats_.resident_bytes -= entry_it->session->resident_bytes();
    stats_.resident_bytes += replacement->resident_bytes();
    entry_it->session = std::move(replacement);
    lru_.splice(lru_.begin(), lru_, entry_it);
    evict_over_budget_locked();
    return lru_.front().session;
  }
  ++stats_.misses;
  auto session = std::make_shared<ServingSession>(make_oracle(), options,
                                                  resident_bytes);
  lru_.push_front(Entry{fingerprint, std::move(session)});
  index_.emplace(fingerprint, lru_.begin());
  stats_.resident_bytes += lru_.front().session->resident_bytes();
  ++stats_.sessions;
  evict_over_budget_locked();
  return lru_.front().session;
}

void SessionRegistry::evict_over_budget_locked() {
  while (stats_.resident_bytes > options_.max_resident_bytes &&
         lru_.size() > 1) {
    const Entry& coldest = lru_.back();
    stats_.resident_bytes -= coldest.session->resident_bytes();
    index_.erase(coldest.fingerprint);
    lru_.pop_back();
    --stats_.sessions;
    ++stats_.evictions;
  }
}

std::shared_ptr<ServingSession> SessionRegistry::peek(
    const KernelFingerprint& fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = index_.find(fingerprint);
  return found == index_.end() ? nullptr : found->second->session;
}

std::vector<KernelFingerprint> SessionRegistry::lru_order() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<KernelFingerprint> order;
  order.reserve(lru_.size());
  for (const Entry& entry : lru_) order.push_back(entry.fingerprint);
  return order;
}

std::vector<std::pair<KernelFingerprint, std::shared_ptr<ServingSession>>>
SessionRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<KernelFingerprint, std::shared_ptr<ServingSession>>>
      out;
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) out.emplace_back(entry.fingerprint,
                                                   entry.session);
  return out;
}

RegistryStats SessionRegistry::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SessionRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.sessions = 0;
  stats_.resident_bytes = 0;
}

}  // namespace pardpp::serving
