#include "support/failpoint.h"

#include <cstdlib>
#include <cstdio>

namespace pardpp {

namespace {

thread_local FailpointScope* tls_scope = nullptr;

/// splitmix64 finalizer — the same mixer random.h seeds streams with, so
/// a failpoint schedule's decisions are as well-distributed as the
/// sampler's own stream forks.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

[[nodiscard]] std::uint64_t parse_u64(std::string_view text,
                                      std::string_view site) {
  std::uint64_t value = 0;
  if (text.empty())
    throw InvalidArgument("failpoint spec '" + std::string(site) +
                          "': empty number");
  for (const char c : text) {
    check_arg(c >= '0' && c <= '9',
              "failpoint spec: malformed number '" + std::string(text) + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

[[nodiscard]] double parse_prob(std::string_view text, std::string_view site) {
  try {
    const double p = std::stod(std::string(text));
    check_arg(p >= 0.0 && p <= 1.0,
              "failpoint spec '" + std::string(site) +
                  "': prob must be in [0, 1]");
    return p;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("failpoint spec '" + std::string(site) +
                          "': malformed probability '" + std::string(text) +
                          "'");
  }
}

}  // namespace

// ---- FailpointScope ----

FailpointScope::FailpointScope(std::uint64_t token) noexcept
    : token_(token), previous_(tls_scope) {
  tls_scope = this;
}

FailpointScope::~FailpointScope() { tls_scope = previous_; }

FailpointScope* FailpointScope::current() noexcept { return tls_scope; }

std::uint64_t FailpointScope::next_hit(const void* site) {
  for (auto& [key, count] : hits_)
    if (key == site) return ++count;
  hits_.emplace_back(site, 1);
  return 1;
}

// ---- FailpointRegistry ----

std::atomic<bool> FailpointRegistry::armed_{false};

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

FailpointRegistry::FailpointRegistry() {
  // Env arming happens here so any translation unit's first failpoint()
  // probe — or the eager reference below — activates a canned schedule
  // without programmatic setup. A malformed schedule must not throw out
  // of a static initializer; report and run clean instead.
  const char* env = std::getenv("PARDPP_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  try {
    const std::size_t armed = arm_from_spec(env);
    if (armed > 0)
      std::fprintf(stderr, "pardpp: PARDPP_FAILPOINTS armed %zu site(s)\n",
                   armed);
  } catch (const Error& error) {
    std::fprintf(stderr, "pardpp: ignoring PARDPP_FAILPOINTS: %s\n",
                 error.what());
    disarm_all();
  }
}

FailpointRegistry::Site* FailpointRegistry::find(std::string_view site) {
  for (const auto& s : sites_)
    if (s->name == site) return s.get();
  return nullptr;
}

const FailpointRegistry::Site* FailpointRegistry::find(
    std::string_view site) const {
  for (const auto& s : sites_)
    if (s->name == site) return s.get();
  return nullptr;
}

void FailpointRegistry::refresh_armed_locked() {
  bool any = false;
  for (const auto& s : sites_)
    any = any || s->spec.trigger != FailpointSpec::Trigger::kOff;
  armed_.store(any, std::memory_order_relaxed);
}

void FailpointRegistry::arm(std::string site, FailpointSpec spec) {
  check_arg(!site.empty(), "failpoint: empty site name");
  check_arg(spec.trigger != FailpointSpec::Trigger::kProbability ||
                (spec.probability >= 0.0 && spec.probability <= 1.0),
            "failpoint: probability must be in [0, 1]");
  const std::lock_guard<std::mutex> lock(mutex_);
  Site* existing = find(site);
  if (existing == nullptr) {
    sites_.push_back(std::make_unique<Site>());
    existing = sites_.back().get();
    existing->name = std::move(site);
  }
  existing->spec = spec;
  existing->hits = 0;
  existing->fires = 0;
  existing->unscoped_hits = 0;
  refresh_armed_locked();
}

std::size_t FailpointRegistry::arm_from_spec(std::string_view text) {
  std::size_t armed = 0;
  while (!text.empty()) {
    const auto semi = text.find(';');
    const std::string_view entry = trim(text.substr(0, semi));
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    check_arg(eq != std::string_view::npos && eq > 0,
              "failpoint spec: expected 'site=trigger', got '" +
                  std::string(entry) + "'");
    const std::string_view site = trim(entry.substr(0, eq));
    std::string_view items = entry.substr(eq + 1);
    FailpointSpec spec;
    while (!items.empty()) {
      const auto comma = items.find(',');
      const std::string_view item = trim(items.substr(0, comma));
      items = comma == std::string_view::npos ? std::string_view{}
                                              : items.substr(comma + 1);
      if (item.empty()) continue;
      const auto colon = item.find(':');
      const std::string_view key = item.substr(0, colon);
      const std::string_view value =
          colon == std::string_view::npos ? std::string_view{}
                                          : item.substr(colon + 1);
      if (key == "count") {
        spec.trigger = FailpointSpec::Trigger::kCount;
        spec.count = parse_u64(value, site);
      } else if (key == "prob") {
        spec.trigger = FailpointSpec::Trigger::kProbability;
        spec.probability = parse_prob(value, site);
      } else if (key == "skip") {
        spec.skip = parse_u64(value, site);
      } else if (key == "seed") {
        spec.seed = parse_u64(value, site);
      } else if (key == "scoped") {
        spec.scoped_only = true;
      } else if (key == "off") {
        spec.trigger = FailpointSpec::Trigger::kOff;
      } else {
        throw InvalidArgument("failpoint spec '" + std::string(site) +
                              "': unknown item '" + std::string(item) + "'");
      }
    }
    arm(std::string(site), spec);
    ++armed;
  }
  return armed;
}

void FailpointRegistry::disarm(std::string_view site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (Site* s = find(site); s != nullptr)
    s->spec.trigger = FailpointSpec::Trigger::kOff;
  refresh_armed_locked();
}

void FailpointRegistry::disarm_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FailpointRegistry::should_fire(std::string_view site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find(site);
  if (s == nullptr || s->spec.trigger == FailpointSpec::Trigger::kOff)
    return false;
  FailpointScope* scope = FailpointScope::current();
  if (s->spec.scoped_only && scope == nullptr) return false;
  ++s->hits;
  // The hit ordinal the trigger sees: per (scope, site) inside a scope —
  // making the decision sequence a pure function of the scope token —
  // else the global per-site counter.
  std::uint64_t ordinal;
  std::uint64_t token = 0;
  if (scope != nullptr) {
    ordinal = scope->next_hit(s);
    token = scope->token();
  } else {
    ordinal = ++s->unscoped_hits;
  }
  bool fire = false;
  if (ordinal > s->spec.skip) {
    switch (s->spec.trigger) {
      case FailpointSpec::Trigger::kCount:
        fire = ordinal <= s->spec.skip + s->spec.count;
        break;
      case FailpointSpec::Trigger::kProbability: {
        const std::uint64_t h =
            mix64(mix64(s->spec.seed ^ mix64(token)) ^ ordinal);
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
        fire = u < s->spec.probability;
        break;
      }
      case FailpointSpec::Trigger::kOff:
        break;
    }
  }
  if (fire) ++s->fires;
  return fire;
}

std::uint64_t FailpointRegistry::hits(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Site* s = find(site);
  return s == nullptr ? 0 : s->hits;
}

std::uint64_t FailpointRegistry::fires(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Site* s = find(site);
  return s == nullptr ? 0 : s->fires;
}

namespace {
// Eagerly constructs the registry so a PARDPP_FAILPOINTS schedule arms
// at load time, not at the first probe.
[[maybe_unused]] const bool kFailpointsLoaded =
    (FailpointRegistry::instance(), true);
}  // namespace

}  // namespace pardpp
