// Distillation front end (DESIGN.md §2 convention 8): statistical
// exactness against enumeration at pools {1, hw}, bit-identity against
// the condition() reference, the Maclaurin acceptance bound on fuzzed
// candidate pools, and restrict_to() against from-scratch restricted
// ensembles to 1e-10.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lowrank.h"
#include "linalg/lu.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/intermediate.h"
#include "sampling/sequential.h"
#include "sampling/session.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::chi_square_quantile;
using testing::chi_square_subsets;
using testing::ExactDistribution;

std::vector<std::size_t> stat_pool_sizes() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sizes = {1};
  if (hw > 1) sizes.push_back(hw);
  return sizes;
}

// Distilled draw_many at every pool size from one seed: asserts the
// sequences are identical across pool sizes and identical to the
// condition() reference session's (use_commit = false, same distillation
// plan), then returns the pool-1 sequence for the distribution checks.
std::vector<std::vector<int>> collect_distilled(const CountingOracle& oracle,
                                                SessionOptions options,
                                                std::uint64_t seed,
                                                std::size_t trials) {
  SessionOptions reference_options = options;
  reference_options.use_commit = false;
  SamplerSession session(oracle, options);
  SamplerSession reference_session(oracle, reference_options);

  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : stat_pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    auto results = session.draw_many(trials, rng, ctx);
    std::vector<std::vector<int>> samples;
    samples.reserve(results.size());
    for (auto& r : results) samples.push_back(std::move(r.items));
    per_pool.push_back(std::move(samples));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]) << "pool size index " << p;

  RandomStream reference_rng(seed);
  auto reference = reference_session.draw_many(trials, reference_rng,
                                               ExecutionContext::serial());
  EXPECT_EQ(reference.size(), per_pool[0].size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(per_pool[0][i], reference[i].items)
        << "distilled commit path diverged from the condition() reference "
           "at draw "
        << i;
  return per_pool[0];
}

void expect_matches(const ExactDistribution& dist,
                    const std::vector<std::vector<int>>& samples) {
  const auto chi = chi_square_subsets(dist, samples);
  EXPECT_LT(chi.statistic, chi_square_quantile(chi.dof, 4.0))
      << "chi-square dof " << chi.dof;
  EXPECT_LT(testing::empirical_tv(dist, samples), 0.08);
}

// ---- statistical exactness of the distilled output law ----

TEST(DistilledFeatureStatTest, SequentialMatchesEnumeration) {
  RandomStream setup(771001);
  const std::size_t n = 10;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.distill.enabled = true;
  const auto samples = collect_distilled(oracle, options, 77101, 2400);
  expect_matches(dist, samples);
}

TEST(DistilledFeatureStatTest, BatchedInnerKindMatchesEnumeration) {
  RandomStream setup(771002);
  const std::size_t n = 9;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.kind = SamplerKind::kBatched;
  options.batched.failure_prob = 1e-6;
  options.distill.enabled = true;
  options.distill.candidate_budget = 48;
  const auto samples = collect_distilled(oracle, options, 77102, 2000);
  expect_matches(dist, samples);
}

TEST(DistilledSymmetricStatTest, SequentialMatchesEnumeration) {
  RandomStream setup(771003);
  const std::size_t n = 8;
  const std::size_t k = 2;
  const Matrix l = random_psd(n, n, setup, 1e-3);
  const SymmetricKdppOracle oracle(l, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.distill.enabled = true;
  options.distill.candidate_budget = 40;
  const auto samples = collect_distilled(oracle, options, 77103, 2000);
  expect_matches(dist, samples);
}

// ---- acceptance bound: log Z(C) <= log M on every fuzzed pool ----

TEST(DistillationPlanTest, MaclaurinBoundDominatesFuzzedPools) {
  RandomStream setup(771004);
  RandomStream rng(771005);
  std::vector<int> items;
  std::vector<double> scales;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(setup.uniform_index(40));
    const std::size_t d = 2 + static_cast<std::size_t>(setup.uniform_index(5));
    const std::size_t k =
        1 + static_cast<std::size_t>(setup.uniform_index(std::min(d, n) - 1 + 1));
    Matrix features = random_gaussian(n, d, setup);
    // Half the trials get a spiked row scale so the weights are far from
    // uniform — the regime where a wrong bound would be caught.
    if (trial % 2 == 0)
      for (std::size_t c = 0; c < d; ++c) features(0, c) *= 40.0;
    const FeatureKdppOracle oracle(features, k);
    DistillOptions options;
    options.candidate_budget = 24;
    const DistillationPlan plan(oracle, options);
    for (int pool = 0; pool < 40; ++pool) {
      const auto restricted = plan.propose(rng, items, scales);
      ASSERT_EQ(items.size(), plan.candidate_budget());
      EXPECT_LE(restricted->log_partition(),
                plan.log_accept_bound() + 1e-9)
          << "n=" << n << " d=" << d << " k=" << k;
    }
  }
}

TEST(DistillationPlanTest, UnsupportedFamilyThrows) {
  const testing::EnumeratedOracle oracle(
      5, 2, [](std::span<const int>) { return 0.0; });
  EXPECT_THROW(DistillationPlan(oracle, DistillOptions{}), InvalidArgument);
}

// ---- restrict_to against from-scratch restricted ensembles ----

TEST(RestrictToFuzz, FeatureMatchesFromScratchAndSymmetricTo1e10) {
  RandomStream setup(771006);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(setup.uniform_index(8));
    const std::size_t d = 3 + static_cast<std::size_t>(setup.uniform_index(3));
    const std::size_t k = 2;
    const Matrix features = random_gaussian(n, d, setup);
    const FeatureKdppOracle oracle(features, k);

    const std::size_t m = 6 + static_cast<std::size_t>(setup.uniform_index(6));
    std::vector<int> items(m);
    std::vector<double> scales(m);
    for (std::size_t j = 0; j < m; ++j) {
      items[j] = static_cast<int>(setup.uniform_index(n));  // repeats allowed
      scales[j] = 0.25 + setup.uniform();
    }

    const auto restricted = oracle.restrict_to(items, scales);
    ASSERT_EQ(restricted->ground_size(), m);

    // From-scratch reference 1: gather + scale the rows, rebuild the
    // family. Reference 2: the dense symmetric family on the explicit
    // restricted ensemble diag(s) L_items diag(s) — a cross-family check
    // through an entirely different spectral path.
    const Matrix gathered = gather_scaled_rows(features, items, scales);
    const FeatureKdppOracle scratch(gathered, k);
    const Matrix l_restricted =
        multiply_transposed_b(gathered, gathered);
    const SymmetricKdppOracle cross(l_restricted, k, /*validate=*/false);

    const auto p = restricted->marginals();
    const auto p_scratch = scratch.marginals();
    const auto p_cross = cross.marginals();
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(p[i], p_scratch[i], 1e-10);
      EXPECT_NEAR(p[i], p_cross[i], 1e-10);
    }
    EXPECT_NEAR(restricted->log_partition(), cross.log_partition(), 1e-8);

    for (int q = 0; q < 6; ++q) {
      const int a = static_cast<int>(setup.uniform_index(m));
      int b = static_cast<int>(setup.uniform_index(m));
      if (b == a) b = (b + 1) % static_cast<int>(m);
      const std::vector<int> t = {a, b};
      const double lj = restricted->log_joint_marginal(t);
      const double lj_cross = cross.log_joint_marginal(t);
      if (lj == kNegInf || lj_cross == kNegInf) {
        // Repeated items give exactly-null joint cells; both paths must
        // agree the cell is (numerically) null.
        EXPECT_LT(std::max(lj, lj_cross), -20.0);
      } else {
        EXPECT_NEAR(lj, lj_cross, 1e-10);
      }
    }
  }
}

TEST(RestrictToFuzz, SymmetricMatchesFromScratchTo1e10) {
  RandomStream setup(771007);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(setup.uniform_index(6));
    const std::size_t k = 2;
    const Matrix l = random_psd(n, n, setup, 1e-4);
    const SymmetricKdppOracle oracle(l, k);

    const std::size_t m = 5 + static_cast<std::size_t>(setup.uniform_index(5));
    std::vector<int> items(m);
    std::vector<double> scales(m);
    for (std::size_t j = 0; j < m; ++j) {
      items[j] = static_cast<int>(setup.uniform_index(n));
      scales[j] = 0.25 + setup.uniform();
    }
    const auto restricted = oracle.restrict_to(items, scales);

    Matrix sub(m, m);
    for (std::size_t a = 0; a < m; ++a)
      for (std::size_t b = 0; b < m; ++b)
        sub(a, b) = scales[a] * scales[b] *
                    l(static_cast<std::size_t>(items[a]),
                      static_cast<std::size_t>(items[b]));
    const SymmetricKdppOracle scratch(sub, k, /*validate=*/false);

    const auto p = restricted->marginals();
    const auto p_scratch = scratch.marginals();
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(p[i], p_scratch[i], 1e-10);
    EXPECT_NEAR(restricted->log_partition(), scratch.log_partition(), 1e-10);
  }
}

// ---- satellite bugfixes: edge cases of the proposal machinery ----

// Trailing zero-weight items share the final cumulative value with the
// last positive item; the target == tau roundoff fallback must clamp to
// the positive index — a zero-weight pick has row_scale_ == 0 and would
// inject a null row with proposal probability zero.
TEST(DistillationPlanTest, EndRoundoffClampsToLastPositiveWeight) {
  RandomStream setup(771009);
  const std::size_t n = 8;
  const std::size_t d = 3;
  Matrix features = random_gaussian(n, d, setup);
  // Rows 5..7 are exact zeros: weight 0, cumulative flat at tau.
  for (std::size_t i = 5; i < n; ++i)
    for (std::size_t c = 0; c < d; ++c) features(i, c) = 0.0;
  double tau = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < d; ++c) tau += features(i, c) * features(i, c);
  const FeatureKdppOracle oracle(features, 2);
  const DistillationPlan plan(oracle, DistillOptions{});

  // Exactly tau (the roundoff event rng.uniform() * tau == tau) and
  // anything beyond must resolve to item 4, never to a null row 5..7.
  EXPECT_EQ(plan.candidate_index(tau), 4u);
  EXPECT_EQ(plan.candidate_index(std::nextafter(tau, 2.0 * tau)), 4u);
  // Sanity: interior targets never land on a zero-weight item either.
  RandomStream rng(771010);
  for (int i = 0; i < 2000; ++i)
    EXPECT_LT(plan.candidate_index(rng.uniform() * tau), 5u);
}

// k = 0 plans have no candidate pool: draw() returns the empty sample,
// and the public propose() entry point must reject instead of reading
// the degenerate all-zero cumulative table.
TEST(DistillationPlanTest, ProposeRejectsKZeroExplicitly) {
  const Matrix features(5, 3);  // all-zero: rank 0, tau = 0
  const FeatureKdppOracle oracle(features, 0);
  const DistillationPlan plan(oracle, DistillOptions{});
  RandomStream rng(771011);
  std::vector<int> items;
  std::vector<double> scales;
  EXPECT_THROW((void)plan.propose(rng, items, scales), InvalidArgument);
  const auto result = plan.draw(
      rng, [](const CountingOracle&, RandomStream&) -> SampleResult {
        ADD_FAILURE() << "inner sampler must not run for k = 0";
        return {};
      });
  EXPECT_TRUE(result.items.empty());
}

// Starvation must carry its forensic trail: attempts in the message and
// in diag.proposals, duplicate_rejects alongside. max_attempts = 1 on a
// spiked spectrum rejects with constant probability per seed, so some
// seed in a small range starves deterministically.
TEST(DistillationPlanTest, StarvationCarriesAttemptsAndDuplicateRejects) {
  RandomStream setup(771012);
  Matrix features = random_gaussian(12, 3, setup);
  for (std::size_t c = 0; c < 3; ++c) features(0, c) *= 40.0;
  const FeatureKdppOracle oracle(features, 2);
  DistillOptions options;
  options.max_attempts = 1;
  const DistillationPlan plan(oracle, options);
  const auto inner = [](const CountingOracle& restricted,
                        RandomStream& inner_rng) {
    return sample_sequential(restricted, inner_rng);
  };

  bool starved = false;
  for (std::uint64_t seed = 0; seed < 64 && !starved; ++seed) {
    RandomStream rng(881000 + seed);
    try {
      (void)plan.draw(rng, inner);
    } catch (const DistillationStarvation& failure) {
      starved = true;
      EXPECT_EQ(failure.diag.proposals, 1u);
      EXPECT_EQ(failure.diag.duplicate_rejects, 0u);
      const std::string what = failure.what();
      EXPECT_NE(what.find("attempts=1"), std::string::npos) << what;
      EXPECT_NE(what.find("duplicate_rejects=0"), std::string::npos) << what;
    }
  }
  EXPECT_TRUE(starved)
      << "no seed in the range rejected its only attempt — the spiked "
         "spectrum should reject a constant fraction of pools";
}

// The session layer annotates the starvation with its own context and
// passes the diagnostics through unchanged.
TEST(SamplerSessionTest, StarvationSurfacesSessionContext) {
  RandomStream setup(771013);
  Matrix features = random_gaussian(12, 3, setup);
  for (std::size_t c = 0; c < 3; ++c) features(0, c) *= 40.0;
  const FeatureKdppOracle oracle(features, 2);
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.max_attempts = 1;
  SamplerSession session(oracle, options);

  bool starved = false;
  for (std::uint64_t seed = 0; seed < 64 && !starved; ++seed) {
    RandomStream rng(882000 + seed);
    try {
      (void)session.draw(rng);
    } catch (const DistillationStarvation& failure) {
      starved = true;
      EXPECT_EQ(failure.diag.proposals, 1u);
      const std::string what = failure.what();
      EXPECT_NE(what.find("family feature-kdpp"), std::string::npos) << what;
      EXPECT_NE(what.find("kind sequential"), std::string::npos) << what;
    }
  }
  EXPECT_TRUE(starved);
}

// ---- persistent sparsified proposal (DESIGN.md §2 convention 11) ----

// The per-candidate law must be exactly q = w / tau whichever side of the
// domain split serves it: empirical candidate frequencies from the
// two-level alias + tail decomposition against the weights, with a tiny
// domain so the tail fallback carries most of the mass.
TEST(PersistentProposalTest, CandidateLawMatchesWeightsThroughBothLevels) {
  RandomStream setup(771014);
  const std::size_t n = 12;
  const std::size_t d = 3;
  Matrix features = random_gaussian(n, d, setup);
  for (std::size_t c = 0; c < d; ++c) features(2, c) *= 6.0;  // skew
  std::vector<double> weights(n, 0.0);
  double tau = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c)
      weights[i] += features(i, c) * features(i, c);
    tau += weights[i];
  }
  const FeatureKdppOracle oracle(features, 2);
  DistillOptions options;
  options.candidate_budget = 24;
  options.persistent_proposal = true;
  options.sparsified_domain = 3;
  const DistillationPlan plan(oracle, options);
  ASSERT_EQ(plan.domain_size(), 3u);
  ASSERT_LT(plan.domain_mass_fraction(), 1.0);

  RandomStream rng(771015);
  std::vector<int> items;
  std::vector<double> scales;
  std::vector<double> counts(n, 0.0);
  const int pools = 3000;
  for (int p = 0; p < pools; ++p) {
    (void)plan.propose(rng, items, scales);
    for (std::size_t j = 0; j < items.size(); ++j) {
      counts[static_cast<std::size_t>(items[j])] += 1.0;
      EXPECT_GT(scales[j], 0.0);
    }
  }
  const double total = static_cast<double>(pools) * 24.0;
  double tv = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    tv += std::abs(counts[i] / total - weights[i] / tau);
  EXPECT_LT(0.5 * tv, 0.02);
  const auto stats = plan.proposal_stats();
  EXPECT_EQ(stats.pools, static_cast<std::uint64_t>(pools));
  EXPECT_GT(stats.tail_candidates, 0u);  // both levels actually exercised
}

// Full output-law exactness of the persistent mode against enumeration,
// including the pool-size sweep and condition() reference bit-identity
// that collect_distilled pins — with a small forced domain so draws mix
// alias and tail candidates.
TEST(DistilledFeatureStatTest, PersistentProposalMatchesEnumeration) {
  RandomStream setup(771016);
  const std::size_t n = 10;
  const std::size_t d = 4;
  const std::size_t k = 3;
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k), [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions options;
  options.distill.enabled = true;
  options.distill.persistent_proposal = true;
  options.distill.sparsified_domain = 4;
  const auto samples = collect_distilled(oracle, options, 77104, 2400);
  expect_matches(dist, samples);
}

// The refresh rule's heavy-tail branch: a skewed profile whose domain
// captures ~98% of the mass leaves ~1.4 expected tail hits per pool
// (budget 4), so a pool with 5+ tail hits is the rare heavy-tail event —
// a few percent per pool, certain across 800 — and each one must
// trigger an immediate re-validation.
TEST(PersistentProposalTest, HeavyTailPoolsTriggerRevalidation) {
  RandomStream setup(771017);
  Matrix features = random_gaussian(40, 3, setup);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t c = 0; c < 3; ++c) features(i, c) *= 20.0;
  const FeatureKdppOracle oracle(features, 2);
  DistillOptions options;
  options.candidate_budget = 64;
  options.persistent_proposal = true;
  options.sparsified_domain = 4;
  options.refresh_interval = 0;  // isolate the heavy-tail trigger
  const DistillationPlan plan(oracle, options);
  ASSERT_GT(plan.domain_mass_fraction(), 0.9);
  ASSERT_LT(plan.domain_mass_fraction(), 1.0);

  RandomStream rng(771018);
  std::vector<int> items;
  std::vector<double> scales;
  for (int p = 0; p < 800; ++p) (void)plan.propose(rng, items, scales);
  const auto stats = plan.proposal_stats();
  EXPECT_EQ(stats.pools, 800u);
  EXPECT_GT(stats.tail_candidates, 0u);
  EXPECT_GT(stats.heavy_tail_pools, 0u);
  EXPECT_LT(stats.heavy_tail_pools, 100u);  // heavy pools stay rare
  EXPECT_EQ(stats.refreshes, stats.heavy_tail_pools);  // each revalidated

  // A tiny-domain draw() surfaces the tail counters in the per-draw
  // diagnostics (nearly every candidate falls back to the tail there).
  DistillOptions tiny = options;
  tiny.sparsified_domain = 2;  // = k, the smallest domain validate() admits
  const DistillationPlan tiny_plan(oracle, tiny);
  const auto result = tiny_plan.draw(
      rng, [](const CountingOracle& restricted, RandomStream& inner_rng) {
        return sample_sequential(restricted, inner_rng);
      });
  EXPECT_GT(result.diag.tail_candidates, 0u);
}

// Periodic refresh: interval 1 re-validates after every pool; the
// re-validation against an unmutated profile passes and counts.
TEST(PersistentProposalTest, PeriodicRefreshRevalidatesEveryPool) {
  RandomStream setup(771019);
  const Matrix features = random_gaussian(20, 4, setup);
  const FeatureKdppOracle oracle(features, 2);
  DistillOptions options;
  options.candidate_budget = 16;
  options.persistent_proposal = true;
  options.sparsified_domain = 20;  // full domain: no heavy-tail noise
  options.refresh_interval = 1;
  const DistillationPlan plan(oracle, options);
  EXPECT_DOUBLE_EQ(plan.domain_mass_fraction(), 1.0);

  RandomStream rng(771020);
  std::vector<int> items;
  std::vector<double> scales;
  for (int p = 0; p < 5; ++p) (void)plan.propose(rng, items, scales);
  const auto stats = plan.proposal_stats();
  EXPECT_EQ(stats.pools, 5u);
  EXPECT_EQ(stats.refreshes, 5u);
  EXPECT_EQ(stats.heavy_tail_pools, 0u);
  plan.revalidate_domain();  // direct call is also part of the surface
  EXPECT_EQ(plan.proposal_stats().refreshes, 6u);
}

// Adversarial weight profiles through both proposal modes: trailing
// zeros, a single heavy item, and a near-degenerate spectrum. Every pool
// must carry positive row scales, in-range items, and a restricted
// partition below the Maclaurin bound.
TEST(PersistentProposalTest, AdversarialProfilesFuzz) {
  RandomStream setup(771021);
  RandomStream rng(771022);
  std::vector<int> items;
  std::vector<double> scales;
  for (int profile = 0; profile < 3; ++profile) {
    const std::size_t n = 14;
    const std::size_t d = 3;
    Matrix features = random_gaussian(n, d, setup);
    if (profile == 0) {  // trailing zero weights
      for (std::size_t i = 10; i < n; ++i)
        for (std::size_t c = 0; c < d; ++c) features(i, c) = 0.0;
    } else if (profile == 1) {  // single heavy item
      for (std::size_t c = 0; c < d; ++c) features(0, c) *= 1e3;
    } else {  // near-degenerate spectrum: rows nearly parallel
      for (std::size_t i = 1; i < n; ++i)
        for (std::size_t c = 0; c < d; ++c)
          features(i, c) = features(0, c) + 1e-4 * features(i, c);
    }
    const FeatureKdppOracle oracle(features, 2);
    for (const bool persistent : {false, true}) {
      DistillOptions options;
      options.candidate_budget = 24;
      options.persistent_proposal = persistent;
      if (persistent) options.sparsified_domain = 4;
      const DistillationPlan plan(oracle, options);
      for (int pool = 0; pool < 30; ++pool) {
        const auto restricted = plan.propose(rng, items, scales);
        ASSERT_EQ(items.size(), plan.candidate_budget());
        for (std::size_t j = 0; j < items.size(); ++j) {
          ASSERT_GE(items[j], 0);
          ASSERT_LT(items[j], static_cast<int>(n));
          ASSERT_GT(scales[j], 0.0) << "null row proposed (profile "
                                    << profile << ", persistent "
                                    << persistent << ")";
        }
        EXPECT_LE(restricted->log_partition(), plan.log_accept_bound() + 1e-9);
      }
    }
  }
}

// Tiny ground sets: the restricted oracle against exhaustive enumeration
// of the restricted ensemble — the ground truth for the cross-family
// fuzz above.
TEST(RestrictToFuzz, FeatureRestrictionMatchesEnumeration) {
  RandomStream setup(771008);
  const std::size_t n = 7;
  const std::size_t d = 3;
  const std::size_t k = 2;
  const Matrix features = random_gaussian(n, d, setup);
  const FeatureKdppOracle oracle(features, k);

  const std::vector<int> items = {4, 1, 1, 6, 0, 3};
  std::vector<double> scales(items.size());
  for (std::size_t j = 0; j < items.size(); ++j)
    scales[j] = 0.5 + setup.uniform();
  const auto restricted = oracle.restrict_to(items, scales);

  const Matrix gathered = gather_scaled_rows(features, items, scales);
  const Matrix l_restricted = multiply_transposed_b(gathered, gathered);
  const testing::EnumeratedOracle enumerated(
      static_cast<int>(items.size()), static_cast<int>(k),
      [&](std::span<const int> s) {
        return signed_log_det(l_restricted.principal(s)).log_abs;
      });

  const auto p = restricted->marginals();
  const auto p_enum = enumerated.marginals();
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_NEAR(p[i], p_enum[i], 1e-10);
}

}  // namespace
}  // namespace pardpp
