#!/usr/bin/env python3
"""Perf-trajectory comparator for BENCH_*.json series.

Every bench emits a JSON array of flat records into bench-out/. Records
are matched between a baseline and a current run by their *identity*
fields (experiment, family, n, d, k, pool, ...) — everything that is not
a measurement — and the wall-time measurement fields of matching records
are compared as ratios:

    ratio = current / baseline
    ratio > 1 + warn_threshold  -> warning  (::warning in GitHub Actions)
    ratio > 1 + fail_threshold  -> failure  (exit 1, ::error)

Faster-than-baseline records and records present on only one side are
reported informationally. `--advisory` downgrades failures to warnings —
the mode for comparing against the in-repo BENCH_trajectory.json
snapshot, which is recorded on a different machine class than the CI
runners.

Parallel scaling is a first-class trajectory metric: records that carry
a `pool` identity field are grouped by identity-minus-pool, each pool's
speedup over the group's pool-1 record is computed from `wall_ms`, and
the speedups are compared between baseline and current. A scaling drop
beyond the thresholds gates — but only when `host_cpus` agree on both
sides; speedups measured on different core counts are never comparable,
so a mismatch downgrades the drop to advisory.

Snapshot mode (`--write-snapshot FILE DIR`) curates the trajectory file
tracked in-repo: identity fields plus wall-time measurements, sorted by
key, so the diff of a PR shows exactly which timings moved.
"""

import argparse
import json
import os
import sys

# Measurement fields: compared as timings (lower is better) when present.
TIME_FIELDS = (
    "wall_ms",
    "scalar_ms",
    "draw_ms",
    "steady_draw_ms",
    "prime_ms",
    "full_draw_ms",
    "full_prime_ms",
    "condition_baseline_ms",
    "persession_wall_ms",
)

# Host provenance fields stamped into every record by bench_util.h.
# Never identity (a runner change must not orphan every record), but
# consulted when gating: a mismatch between baseline and current host
# downgrades fail-level slowdowns to warnings, because wall-clock deltas
# measured on different hardware are advisory, not evidence of a code
# regression. `simd` (the dispatch arm the run selected) is provenance
# for the same reason: a scalar-forced run is not comparable to an AVX2
# run, so a cross-arm pair is treated exactly like a host change.
HOST_FIELDS = ("host_cpus", "host_nproc", "host_cpu_model", "simd")

# Fields that are measurements or run-dependent flags, never identity.
NON_IDENTITY_FIELDS = set(TIME_FIELDS) | set(HOST_FIELDS) | {
    "spectral_refreshes",
    "samples_per_sec",
    "speedup",
    "speedup_vs_condition",
    "draw_speedup_vs_full",
    "speedup_vs_perdraw",
    "draws_per_sec",
    "p_domain",
    "tail_rate",
    "heavy_tail_pools",
    "refreshes",
    "law_ok",
    "accept_rate",
    "chi_square",
    "dof",
    "identical",
    "regression",
    "full_estimated",
    "depth",
    "work",
    "machines",
    "rounds",
    "oracle_calls",
    "pram_depth",
    "queries_per_wave",
    "q_per_wave",
    # Session failure/recovery counters (convention 12): informational
    # health telemetry, all zero unless a PARDPP_FAILPOINTS schedule was
    # armed for the run — never part of a record's identity.
    "retries",
    "degraded_draws",
    "guard_failures",
    # Serving-layer telemetry (convention 13, EXP-SRV): batch shapes and
    # registry counters are measurements of one run's scheduling, never
    # identity — two runs of the same config may batch differently.
    "speedup_vs_persession",
    "persession_draws_per_sec",
    "batches",
    "coalesced_per_batch",
    "max_coalesced",
    "queue_peak",
    "sessions",
    "poisoned_replacements",
}


def load_records(directory):
    """-> {(file, identity-key): {field: value}} for all BENCH_*.json."""
    records = {}
    if not os.path.isdir(directory):
        return records
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path) as handle:
                series = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"::warning::could not parse {path}: {error}")
            continue
        for record in series:
            identity = tuple(
                sorted(
                    (field, value)
                    for field, value in record.items()
                    if field not in NON_IDENTITY_FIELDS
                )
            )
            records[(name, identity)] = record
    return records


def host_mismatch(base, record):
    """True when both records carry a host field and they disagree."""
    return any(
        field in base and field in record
        and str(base[field]) != str(record[field])
        for field in HOST_FIELDS
    )


def cpus_match(base, record):
    """True only when both records agree on host_cpus.

    Stricter than `not host_mismatch`: parallel-scaling comparisons need
    a positively matching core count to gate, so a record missing the
    stamp (pre-provenance snapshots) stays advisory rather than gating
    against an unknown baseline topology.
    """
    return (
        "host_cpus" in base and "host_cpus" in record
        and str(base["host_cpus"]) == str(record["host_cpus"])
    )


def scaling_speedups(records):
    """-> {(file, identity-minus-pool, pool): (speedup, record)}.

    Groups records that carry a `pool` identity field by everything else
    in their identity, then computes each pool's speedup over the
    group's pool-1 wall clock. Groups without a pool-1 record (or with a
    non-positive reference) contribute nothing.
    """
    groups = {}
    for (name, identity), record in records.items():
        pool = None
        rest = []
        for field, value in identity:
            if field == "pool":
                pool = value
            else:
                rest.append((field, value))
        if pool is None or "wall_ms" not in record:
            continue
        try:
            pool = int(pool)
        except (TypeError, ValueError):
            continue
        groups.setdefault((name, tuple(rest)), {})[pool] = record
    speedups = {}
    for (name, rest), by_pool in groups.items():
        reference = by_pool.get(1)
        if reference is None:
            continue
        ref_wall = float(reference["wall_ms"])
        if ref_wall <= 0.0:
            continue
        for pool, record in by_pool.items():
            if pool == 1:
                continue
            wall = float(record["wall_ms"])
            if wall <= 0.0:
                continue
            speedups[(name, rest, pool)] = (ref_wall / wall, record)
    return speedups


def compare_scaling(baseline, current, warn, fail, advisory):
    """Gates per-pool speedups; -> (matched, warnings, failures)."""
    base_scaling = scaling_speedups(baseline)
    cur_scaling = scaling_speedups(current)
    matched = 0
    warnings = 0
    failures = 0
    for key, (cur_speedup, cur_record) in sorted(cur_scaling.items()):
        if key not in base_scaling:
            continue
        base_speedup, base_record = base_scaling[key]
        matched += 1
        name, rest, pool = key
        fields = ", ".join(f"{field}={value}" for field, value in rest)
        line = (
            f"{name} [{fields}] scaling@pool={pool}: "
            f"{base_speedup:.2f}x -> {cur_speedup:.2f}x"
        )
        comparable = cpus_match(base_record, cur_record)
        if cur_speedup < base_speedup * (1.0 - fail):
            if not comparable:
                warnings += 1
                print(
                    "::warning::scaling drop beyond fail threshold "
                    f"(host_cpus differ: advisory): {line}"
                )
            else:
                failures += 1
                level = "warning" if advisory else "error"
                print(f"::{level}::scaling drop beyond fail threshold: {line}")
        elif cur_speedup < base_speedup * (1.0 - warn):
            warnings += 1
            print(f"::warning::scaling drop: {line}")
        else:
            print(f"ok: {line}")
    return matched, warnings, failures


def describe(key):
    name, identity = key
    fields = ", ".join(f"{field}={value}" for field, value in identity)
    return f"{name} [{fields}]"


def compare(baseline_dir, current_dir, warn, fail, advisory):
    baseline = load_records(baseline_dir)
    current = load_records(current_dir)
    if not baseline:
        print(f"no baseline records under {baseline_dir}; nothing to gate")
        return 0
    if not current:
        print(f"::error::no current records under {current_dir}")
        return 1

    matched = 0
    warnings = 0
    failures = 0
    for key, record in sorted(current.items()):
        if key not in baseline:
            print(f"new record (no baseline): {describe(key)}")
            continue
        base = baseline[key]
        mismatch = host_mismatch(base, record)
        for field in TIME_FIELDS:
            if field not in record or field not in base:
                continue
            base_value = float(base[field])
            cur_value = float(record[field])
            if base_value <= 0.0:
                continue
            matched += 1
            ratio = cur_value / base_value
            line = (
                f"{describe(key)} {field}: {base_value:.3f} -> "
                f"{cur_value:.3f} ms ({ratio:.2f}x)"
            )
            if ratio > 1.0 + fail:
                if mismatch:
                    warnings += 1
                    print(
                        "::warning::slowdown beyond fail threshold "
                        f"(host mismatch: advisory): {line}"
                    )
                else:
                    failures += 1
                    level = "warning" if advisory else "error"
                    print(
                        f"::{level}::slowdown beyond fail threshold: {line}"
                    )
            elif ratio > 1.0 + warn:
                warnings += 1
                print(f"::warning::slowdown: {line}")
            else:
                print(f"ok: {line}")
    for key in sorted(baseline):
        if key not in current:
            print(f"baseline record disappeared: {describe(key)}")

    scaled, scale_warn, scale_fail = compare_scaling(
        baseline, current, warn, fail, advisory
    )
    warnings += scale_warn
    failures += scale_fail

    print(
        f"\ncompared {matched} timings and {scaled} scaling points: "
        f"{warnings} warnings, {failures} beyond the fail threshold"
        + (" (advisory)" if advisory else "")
    )
    return 1 if failures and not advisory else 0


def write_snapshot(path, directory):
    records = load_records(directory)
    if not records:
        print(f"::error::no records under {directory} to snapshot")
        return 1
    snapshot = []
    for (name, identity), record in sorted(records.items()):
        entry = {"file": name}
        entry.update({field: value for field, value in identity})
        for field in HOST_FIELDS + TIME_FIELDS:
            if field in record:
                entry[field] = record[field]
        snapshot.append(entry)
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path} ({len(snapshot)} records)")
    return 0


def snapshot_as_baseline(snapshot_path, tmp_dir):
    """Explodes a trajectory snapshot back into per-file record maps."""
    with open(snapshot_path) as handle:
        snapshot = json.load(handle)
    per_file = {}
    for entry in snapshot:
        entry = dict(entry)
        name = entry.pop("file")
        per_file.setdefault(name, []).append(entry)
    os.makedirs(tmp_dir, exist_ok=True)
    for name, series in per_file.items():
        with open(os.path.join(tmp_dir, name), "w") as handle:
            json.dump(series, handle)
    return tmp_dir


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="baseline bench-out dir")
    parser.add_argument("current", nargs="?", help="current bench-out dir")
    parser.add_argument("--warn", type=float, default=0.10,
                        help="warn at > this fractional slowdown")
    parser.add_argument("--fail", type=float, default=0.25,
                        help="fail at > this fractional slowdown")
    parser.add_argument("--advisory", action="store_true",
                        help="report fail-level slowdowns as warnings only")
    parser.add_argument("--snapshot", metavar="FILE",
                        help="use a BENCH_trajectory.json snapshot as the "
                             "baseline instead of a directory")
    parser.add_argument("--write-snapshot", nargs=2,
                        metavar=("FILE", "DIR"),
                        help="write a curated trajectory snapshot of DIR "
                             "to FILE and exit")
    args = parser.parse_args()

    if args.write_snapshot:
        return write_snapshot(*args.write_snapshot)
    if args.snapshot:
        if args.current is None:
            args.current = args.baseline
        if args.current is None:
            parser.error("--snapshot needs a current directory")
        args.baseline = snapshot_as_baseline(
            args.snapshot, os.path.join(args.current, ".snapshot-baseline")
        )
    if args.baseline is None or args.current is None:
        parser.error("need baseline and current directories")
    return compare(args.baseline, args.current, args.warn, args.fail,
                   args.advisory)


if __name__ == "__main__":
    sys.exit(main())
