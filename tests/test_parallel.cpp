// Unit tests for the thread pool, parallel_for, and the PRAM cost ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <mutex>
#include <utility>
#include <numeric>

#include "parallel/parallel_for.h"
#include "parallel/pram.h"
#include "parallel/thread_pool.h"

namespace pardpp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 42; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ParallelFor, CoversFullRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, 257, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, GrainCoversFullRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  parallel_for(pool, 0, 200, [&](std::size_t i) { ++hits[i]; },
               /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, GrainAboveRangeRunsSerially) {
  ThreadPool pool(4);
  std::vector<int> hits(8, 0);  // non-atomic: single-threaded by grain
  parallel_for(pool, 0, 8, [&](std::size_t i) { ++hits[i]; },
               /*grain=*/64);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForChunks, PartitionsRangeExactly) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunks(pool, 5, 105, [&](std::size_t lo, std::size_t hi) {
    const std::scoped_lock lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t cursor = 5;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, cursor);
    EXPECT_LT(lo, hi);
    cursor = hi;
  }
  EXPECT_EQ(cursor, 105u);
}

TEST(ParallelFor, MatchesSerialSum) {
  ThreadPool pool(4);
  std::vector<double> out(1000);
  parallel_for(pool, 0, 1000,
               [&](std::size_t i) { out[i] = static_cast<double>(i) * 0.5; });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * 999.0 * 1000.0 / 2.0);
}

TEST(ParallelInvoke, RunsAllThunks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 10; ++i) thunks.push_back([&counter] { ++counter; });
  parallel_invoke(pool, std::move(thunks));
  EXPECT_EQ(counter.load(), 10);
}

// ---- exception propagation out of parallel bodies (convention 12) ----
//
// The failure-atomicity contract the sampling stack builds on: the first
// exception (in completion order) wins, every in-flight worker drains
// before the rethrow, the pool survives, and nested parallel sections
// propagate through the nesting guard without deadlock. The stress
// variants are the TSan regression surface — run the suite under
// -fsanitize=thread to certify the drain path.

TEST(ParallelFor, FirstExceptionWinsAndRangeStopsCleanly) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    parallel_for(pool, 0, 512, [&](std::size_t i) {
      if (i == 137) throw Error("first-exception-wins probe");
      ++ran;
    });
    FAIL() << "expected the body's Error to propagate";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "first-exception-wins probe");
  }
  // Everything that started finished: no torn iteration, no hang.
  EXPECT_LT(ran.load(), 512);
}

TEST(ParallelFor, AllBodiesThrowingYieldsExactlyOneException) {
  ThreadPool pool(4);
  int caught = 0;
  try {
    parallel_for(pool, 0, 256, [&](std::size_t) {
      throw Error("every body throws");
    });
  } catch (const Error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(ParallelFor, PoolIsReusableAfterAThrowingBody) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 0, 64,
                            [](std::size_t) { throw Error("boom"); }),
               Error);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 0, 64, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedThrowPropagatesThroughTheNestingGuard) {
  // The inner parallel_for runs inline on a worker thread (nesting
  // guard); its exception must cross both levels without deadlocking
  // the shared pool.
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 8,
                            [&](std::size_t outer) {
                              parallel_for(pool, 0, 8, [&](std::size_t i) {
                                if (outer == 3 && i == 5)
                                  throw Error("nested boom");
                              });
                            }),
               Error);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 32, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelInvoke, ThrowingThunkPropagatesAfterAllDrain) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 8; ++i) {
    thunks.push_back([&finished, i] {
      if (i == 4) throw Error("invoke boom");
      ++finished;
    });
  }
  EXPECT_THROW(parallel_invoke(pool, std::move(thunks)), Error);
  EXPECT_EQ(finished.load(), 7) << "non-throwing thunks must all drain";
}

TEST(ParallelFor, ThrowStressSharedPool) {
  // TSan stress: repeated throwing parallel sections on one shared pool,
  // alternating with clean sections, exercising the drain/rethrow path
  // for races between the failing chunk and still-running workers.
  ThreadPool pool(4);
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::atomic<int> clean{0};
    EXPECT_THROW(
        parallel_for(pool, 0, 128,
                     [&](std::size_t i) {
                       if (i % 17 == static_cast<std::size_t>(iteration % 17))
                         throw Error("stress boom");
                       ++clean;
                     }),
        Error);
    std::atomic<int> counter{0};
    parallel_for(pool, 0, 64, [&](std::size_t) { ++counter; });
    ASSERT_EQ(counter.load(), 64) << "iteration " << iteration;
  }
}

TEST(Pram, SequentialRoundsAccumulateDepth) {
  PramLedger ledger;
  ledger.round(10, 10);
  ledger.round(5, 5);
  ledger.round(1, 0);
  EXPECT_DOUBLE_EQ(ledger.stats().depth, 3.0);
  EXPECT_EQ(ledger.stats().rounds, 3u);
  EXPECT_EQ(ledger.stats().max_machines, 10u);
  EXPECT_EQ(ledger.stats().oracle_calls, 15u);
  EXPECT_DOUBLE_EQ(ledger.stats().work, 16.0);
}

TEST(Pram, ForkJoinTakesMaxDepthAndSumsWork) {
  PramStats a;
  a.depth = 5;
  a.work = 50;
  a.rounds = 5;
  a.max_machines = 4;
  a.oracle_calls = 50;
  PramStats b;
  b.depth = 3;
  b.work = 30;
  b.rounds = 3;
  b.max_machines = 8;
  b.oracle_calls = 30;
  PramLedger ledger;
  ledger.round(2, 2);  // pre-fork round
  const std::vector<PramStats> children = {a, b};
  ledger.fork_join(children);
  EXPECT_DOUBLE_EQ(ledger.stats().depth, 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(ledger.stats().work, 2.0 + 80.0);
  EXPECT_EQ(ledger.stats().max_machines, 12u);  // 4 + 8 concurrent
  EXPECT_EQ(ledger.stats().oracle_calls, 82u);
}

TEST(Pram, NullLedgerHelpersAreSafe) {
  EXPECT_NO_THROW(charge_round(nullptr, 10, 10));
}

TEST(Pram, AppendSequentialComposes) {
  PramStats a;
  a.depth = 2;
  a.rounds = 2;
  a.work = 4;
  PramStats b;
  b.depth = 3;
  b.rounds = 3;
  b.work = 9;
  a.append_sequential(b);
  EXPECT_DOUBLE_EQ(a.depth, 5.0);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_DOUBLE_EQ(a.work, 13.0);
}

}  // namespace
}  // namespace pardpp
