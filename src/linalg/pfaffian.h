// Pfaffians of skew-symmetric matrices.
//
// Kasteleyn's theorem reduces counting perfect matchings of a planar graph
// to the Pfaffian of a signed adjacency matrix (paper §6 / [Kas67]); this
// is the counting oracle behind the planar-matching samplers. The
// production path is the Parlett-Reid L T L^T tridiagonalization with
// pivoting (O(n^3), log-magnitude accumulation); a recursive cofactor
// expansion is provided for cross-checking at test sizes.
#pragma once

#include "linalg/lu.h"
#include "linalg/matrix.h"

namespace pardpp {

/// log |Pf(A)| and sign(Pf(A)) for a skew-symmetric matrix with an even
/// number of rows. Odd dimension or a structurally zero Pfaffian yields
/// {kNegInf, 0}. The input must satisfy A = -A^T (checked).
[[nodiscard]] SignedLogDet pfaffian_log(Matrix a);

/// Pfaffian by recursive expansion along the first row; O(n!!) — test
/// sizes only (n <= 12 or so).
[[nodiscard]] double pfaffian_small(const Matrix& a);

}  // namespace pardpp
