// Cardinality distribution of an unconstrained DPP (Remark 15 / Prop. 13.2).
//
// P[|S| = j] = e_j(L) / det(I + L): the sizes follow the coefficients of
// det(I + zL). Sampling an unconstrained DPP reduces to drawing |S| from
// this distribution and then running a k-DPP sampler — the composition the
// paper uses to lift every fixed-size result to the unconstrained case.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "support/random.h"

namespace pardpp {

/// log e_j(L) for j = 0..n (unnormalized log size-weights). `symmetric`
/// selects the eigenvalue path; otherwise the characteristic-polynomial
/// interpolation path is used. Entries for impossible sizes are -inf.
[[nodiscard]] std::vector<double> cardinality_log_weights(const Matrix& l,
                                                          bool symmetric);

/// Draws a size from (normalized) log-weights.
[[nodiscard]] std::size_t sample_cardinality(
    std::span<const double> log_weights, RandomStream& rng);

}  // namespace pardpp
