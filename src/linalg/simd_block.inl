// Blocked loop nests of the coarse-grained microkernels (simd::gemm_nt,
// simd::syrk_ut), included by BOTH arm translation units and instantiated
// against each arm's primitive set so the primitives inline. Dispatching
// per inner product would cost more than the vectors win at the feature
// widths the samplers run (d = 24 Gram blocks, n = 128 Schur ensembles);
// hoisting the whole nest behind one indirect call removes that overhead.
//
// The blocking constants — and therefore every summation order — are
// fixed here at compile time: a pure function of (arm, shape), never of
// the pool size or thread count (DESIGN.md §2 convention 10). Ragged
// edges (shapes off the 4/8 tile grid) run shared scalar code, identical
// in both arms; the hot shapes (d = 24, n = 128) tile exactly. The GEMM
// nest differs *between* arms (P::kPackedGemm) because the fastest
// structure does; within an arm it is deterministic, and the arms agree
// to 1e-10 relative (fuzz-enforced).
//
// `P` supplies the register-blocked inner kernels:
//  * dot / dot4 — single-row GEMM kernels (also the public primitives),
//    used for ragged edges and the huge-k fallback;
//  * gemm_pack_4x8 — c[4][8] = A-rows x packed-B^T tile: the output tile
//    lives in registers across the whole k loop (broadcast A, two packed
//    B loads, eight FMAs per k step — no per-output lane reduction);
//  * opacc_4x8 — tile[4][8] = sum_p a_cols[p,0..3] outer b_cols[p,0..7],
//    the SYRK kernel: the C tile lives in registers across the entire
//    row stream, so memory traffic is the A columns alone.
#include <algorithm>
#include <cstddef>

namespace pardpp::simd::detail {

/// k cap for the on-stack packed-B^T tile of the GEMM nest (16 KiB).
/// Larger k falls back to the unpacked dot4 nest — same threshold in
/// both arms, so the per-element summation order stays arm-independent
/// in structure.
constexpr std::size_t kGemmPackMaxK = 256;

/// Packs eight consecutive B rows (length k, stride ldb) into a
/// transposed k x 8 tile: bt[kk*8 + jj] = b[jj*ldb + kk]. Shared by both
/// arms; the pack is done once per column tile and reused across every
/// row of A.
inline void pack_b8(double* bt, const double* b, std::size_t ldb,
                    std::size_t k) noexcept {
  for (std::size_t kk = 0; kk < k; ++kk)
    for (std::size_t jj = 0; jj < 8; ++jj) bt[kk * 8 + jj] = b[jj * ldb + kk];
}

/// Strided column dot: sum_p a[p*stride] * b[p*stride]. Shared scalar
/// edge path of the SYRK nest — identical in both arms.
inline double col_dot(const double* a, const double* b, std::size_t r,
                      std::size_t stride) noexcept {
  double acc = 0.0;
  for (std::size_t p = 0; p < r; ++p) acc += a[p * stride] * b[p * stride];
  return acc;
}

/// Unpacked fallback nest: a tile of B rows stays L1-resident across
/// consecutive rows of A, four B rows share each A-row load through dot4.
template <typename P>
inline void gemm_nt_dot4(double* c, std::size_t ldc, const double* a,
                         std::size_t lda, std::size_t m, const double* b,
                         std::size_t ldb, std::size_t n,
                         std::size_t k) noexcept {
  constexpr std::size_t kTile = 64;
  for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
    const std::size_t j1 = std::min(n, j0 + kTile);
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a + i * lda;
      double* crow = c + i * ldc;
      std::size_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        P::dot4(arow, b + j * ldb, b + (j + 1) * ldb, b + (j + 2) * ldb,
                b + (j + 3) * ldb, k, crow + j);
      }
      for (; j < j1; ++j) crow[j] = P::dot(arow, b + j * ldb, k);
    }
  }
}

/// C (m x n, stride ldc) = A (m x k, stride lda) * B^T (B: n rows of
/// length k, stride ldb). Each eight-column tile of B is packed
/// (transposed) once into a contiguous k x 8 scratch tile, then swept by
/// 4 x 8 register tiles down all of A — the packed layout turns every
/// inner step into two contiguous loads plus four broadcasts, with no
/// lane reduction per output. Ragged rows/columns and k beyond the pack
/// cap run the dot4 nest.
template <typename P>
inline void gemm_nt_blocked(double* c, std::size_t ldc, const double* a,
                            std::size_t lda, std::size_t m, const double* b,
                            std::size_t ldb, std::size_t n,
                            std::size_t k) noexcept {
  // Each arm declares the nest that is fastest *for it*: the packed tile
  // only pays off when broadcasts and contiguous tile loads beat the
  // dot4 streaming form, which is true of the AVX2 arm but not of the
  // portable one. Per arm the choice is a compile-time constant, so the
  // summation order stays a pure function of (arm, shape).
  if constexpr (!P::kPackedGemm) {
    gemm_nt_dot4<P>(c, ldc, a, lda, m, b, ldb, n, k);
    return;
  } else {
  if (k > kGemmPackMaxK || n < 8 || m < 4) {
    gemm_nt_dot4<P>(c, ldc, a, lda, m, b, ldb, n, k);
    return;
  }
  double bt[kGemmPackMaxK * 8];
  const std::size_t nj8 = n - n % 8;
  const std::size_t mi4 = m - m % 4;
  for (std::size_t j0 = 0; j0 < nj8; j0 += 8) {
    pack_b8(bt, b + j0 * ldb, ldb, k);
    for (std::size_t i = 0; i < mi4; i += 4)
      P::gemm_pack_4x8(c + i * ldc + j0, ldc, a + i * lda, lda, bt, k);
    for (std::size_t i = mi4; i < m; ++i) {
      const double* arow = a + i * lda;
      double* crow = c + i * ldc;
      P::dot4(arow, b + j0 * ldb, b + (j0 + 1) * ldb, b + (j0 + 2) * ldb,
              b + (j0 + 3) * ldb, k, crow + j0);
      P::dot4(arow, b + (j0 + 4) * ldb, b + (j0 + 5) * ldb,
              b + (j0 + 6) * ldb, b + (j0 + 7) * ldb, k, crow + j0 + 4);
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    std::size_t j = nj8;
    for (; j + 4 <= n; j += 4) {
      P::dot4(arow, b + j * ldb, b + (j + 1) * ldb, b + (j + 2) * ldb,
              b + (j + 3) * ldb, k, crow + j);
    }
    for (; j < n; ++j) crow[j] = P::dot(arow, b + j * ldb, k);
  }
  }
}

/// Upper triangle of C (n x n, stride ldc) += alpha * A^T A for A with r
/// rows of length n (stride `stride`). The triangle is covered by 4 x 8
/// register tiles: each tile accumulates its block of column products
/// across the whole row stream in registers, then merges the j >= i
/// entries (diagonal-straddling tiles compute a few below-diagonal
/// products and discard them — cheaper than ragged tile shapes).
template <typename P>
inline void syrk_ut_blocked(double* c, std::size_t ldc, double alpha,
                            const double* a, std::size_t r, std::size_t n,
                            std::size_t stride) noexcept {
  const std::size_t ni4 = n - n % 4;
  const std::size_t nj8 = n - n % 8;
  for (std::size_t i0 = 0; i0 < ni4; i0 += 4) {
    for (std::size_t j0 = (i0 / 8) * 8; j0 < nj8; j0 += 8) {
      double tile[32];
      P::opacc_4x8(tile, a + i0, a + j0, r, stride);
      for (std::size_t ii = 0; ii < 4; ++ii) {
        const std::size_t i = i0 + ii;
        double* crow = c + i * ldc;
        for (std::size_t jj = 0; jj < 8; ++jj) {
          const std::size_t j = j0 + jj;
          if (j >= i) crow[j] += alpha * tile[ii * 8 + jj];
        }
      }
    }
    for (std::size_t ii = 0; ii < 4; ++ii) {
      const std::size_t i = i0 + ii;
      double* crow = c + i * ldc;
      for (std::size_t j = std::max(i, nj8); j < n; ++j)
        crow[j] += alpha * col_dot(a + i, a + j, r, stride);
    }
  }
  for (std::size_t i = ni4; i < n; ++i) {
    double* crow = c + i * ldc;
    for (std::size_t j = i; j < n; ++j)
      crow[j] += alpha * col_dot(a + i, a + j, r, stride);
  }
}

}  // namespace pardpp::simd::detail
