// The classic sequential sampling-to-counting reduction [JVV86] (paper §1).
//
// Pick the k elements one at a time: in each round compute all conditional
// marginals (one parallel round of counting queries), draw one element
// proportionally, condition, repeat. Depth Theta(k) — the baseline every
// parallel sampler in this library is measured against.
#pragma once

#include "distributions/oracle.h"
#include "parallel/pram.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

/// Exact sample from the oracle's distribution; depth = k rounds.
[[nodiscard]] SampleResult sample_sequential(const CountingOracle& mu,
                                             RandomStream& rng,
                                             PramLedger* ledger = nullptr);

}  // namespace pardpp
