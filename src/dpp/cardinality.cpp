#include "dpp/cardinality.h"

#include <cmath>

#include "linalg/charpoly.h"
#include "linalg/esp.h"
#include "linalg/symmetric_eigen.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

std::vector<double> cardinality_log_weights(const Matrix& l, bool symmetric) {
  check_arg(l.square(), "cardinality_log_weights: matrix not square");
  const std::size_t n = l.rows();
  if (symmetric) {
    const auto lambda = symmetric_eigenvalues(l);
    return log_esp(lambda, n);
  }
  // General path: interpolate at the saddle point of the expected size so
  // the bulk of the distribution is extracted at full precision (the far
  // tails are negligible probabilities; Lemma 14 concentration).
  const auto coeffs = charpoly_log_coeffs(l, n);
  std::vector<double> out(n + 1, kNegInf);
  for (std::size_t j = 0; j <= n; ++j) {
    if (coeffs[j].sign > 0) out[j] = coeffs[j].log_abs;
  }
  return out;
}

std::size_t sample_cardinality(std::span<const double> log_weights,
                               RandomStream& rng) {
  check_arg(!log_weights.empty(), "sample_cardinality: empty weights");
  const double log_z = logsumexp(log_weights);
  check_arg(log_z != kNegInf, "sample_cardinality: all weights zero");
  std::vector<double> probs(log_weights.size());
  for (std::size_t j = 0; j < probs.size(); ++j)
    probs[j] = std::exp(log_weights[j] - log_z);
  return rng.categorical(probs);
}

}  // namespace pardpp
