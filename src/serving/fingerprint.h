// Stable 128-bit kernel fingerprints — the session-registry key.
//
// A fingerprint identifies "the same serving session": the oracle family,
// the exact ensemble/feature bytes, the target sample size, and the
// canonical session-config text (serving/config.h), so two requests that
// would prime byte-identical sessions hash identically and coalesce onto
// one registry entry. The hash is two decorrelated splitmix-finalizer
// lanes over length-delimited fields — deterministic across runs and
// processes on the same architecture, collision-resistant enough for a
// registry key, and NOT cryptographic (a tenant who can choose kernel
// bytes could search for collisions; tenants this layer serves are
// trusted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "linalg/matrix.h"

namespace pardpp::serving {

struct KernelFingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const KernelFingerprint&,
                         const KernelFingerprint&) = default;

  /// 32 lowercase hex digits (hi then lo) — the wire/stats spelling.
  [[nodiscard]] std::string to_string() const;
};

/// Hasher for unordered containers keyed by fingerprint.
struct KernelFingerprintHasher {
  [[nodiscard]] std::size_t operator()(
      const KernelFingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental builder. Every field is length-delimited before its bytes
/// are mixed, so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
class FingerprintBuilder {
 public:
  void mix_bytes(const void* data, std::size_t size);
  void mix(std::string_view text);
  void mix_u64(std::uint64_t value);
  /// Dimensions plus the raw row-major double bytes (bit-pattern hash:
  /// -0.0 and 0.0, or differently-rounded entries, are different kernels).
  void mix_matrix(const Matrix& matrix);
  [[nodiscard]] KernelFingerprint finish() const;

 private:
  void mix_word(std::uint64_t word);

  std::uint64_t a_ = 0x6a09e667f3bcc908ULL;  // sqrt(2), sqrt(3) fractions
  std::uint64_t b_ = 0xbb67ae8584caa73bULL;
};

/// The registry key for one serving session: family tag ("features",
/// "symmetric", "general", ...), the ensemble or feature matrix, the
/// target sample size, and the canonical config text from
/// SessionConfig::to_string (canonical — so two spellings of the same
/// config fingerprint identically).
[[nodiscard]] KernelFingerprint fingerprint_kernel(
    std::string_view family, const Matrix& matrix, std::size_t sample_size,
    std::string_view canonical_config);

}  // namespace pardpp::serving
