#include "dpp/symmetric_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/schur.h"
#include "support/combinatorics.h"
#include "support/failpoint.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// Guard constants of the factor-native commit path (DESIGN.md §2
// convention 9). A trip on any of them forces one spectral refresh —
// correctness never depends on the fast path being well-conditioned.
constexpr double kTraceCondGuard = 1e3;       // t_abs / t per trace
constexpr double kNewtonProductGuard = 1e5;   // trace ratio x esp ratio
constexpr double kMarginalItemGuard = 1e-4;   // numer / |term| floor
constexpr double kMarginalSumTol = 1e-8;      // |sum p - k| / k
constexpr double kCommitDriftGuard = 1e-8;    // eliminated-row residual
constexpr std::size_t kMaxMarginalFixups = 4; // exact per-item resolves

// From-scratch joint marginal of the k-DPP with ensemble `l` and partition
// log_z = log e_k(lambda(l)) — the arithmetic both the base oracle and the
// commit-path state resolve reference queries with.
double log_joint_scratch(const Matrix& l, std::size_t k, double log_z,
                         std::span<const int> t) {
  const std::size_t tsize = t.size();
  if (tsize > k) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T): zero (or numerically non-PD) blocks mean P[T ⊆ S] = 0.
  const Matrix lt = l.principal(t);
  const auto chol_t = cholesky(lt);
  if (!chol_t.has_value()) return kNegInf;
  const double log_det_t = chol_t->log_det();
  if (tsize == k) return log_det_t - log_z;
  // e_{k-t} of the conditional ensemble's spectrum.
  const auto keep = complement_indices(l.rows(), t);
  const auto schur = schur_complement(l, keep, t, /*symmetric=*/true);
  auto lambda = symmetric_eigenvalues(schur.reduced);
  clamp_spectrum_to_rank(lambda);
  const auto log_e = log_esp(lambda, k - tsize);
  const double tail = log_e[k - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_z;
}

// Marginal vector p_i = sum_m w_m V_im^2 from the cached spectral factors.
std::vector<double> marginals_from_spectrum(const SymmetricEigen& eig,
                                            const LogEspTable& table,
                                            std::size_t k) {
  const std::size_t n = eig.values.size();
  std::vector<double> p(n, 0.0);
  if (k == 0 || n == 0) return p;
  const double log_z = table.log_e(k);
  check_numeric(log_z != kNegInf,
                "SymmetricKdppOracle: partition function is zero "
                "(rank of L below k)");
  // The weights are probabilities of eigenvector selection (they sum to
  // k), so the accumulation is safe in linear domain.
  std::vector<double> w;
  esp_mode_weights(eig.values, table, k, w);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      const double v = eig.vectors(i, m);
      acc += w[m] * v * v;
    }
    p[i] = std::min(acc, 1.0);
  }
  return p;
}

// Validates a Newton ESP evaluation against its trace inputs: every
// trace must be positive, finite, and within its |term| guard, every e_j
// must pass the cancellation monitor, and the *product* of the worst
// trace ratio and the worst esp ratio must stay under the combined guard
// — trace drift is amplified by exactly the esp cancellation ratio, so
// the product is what bounds the relative error (~eps * product).
bool newton_trustworthy(std::span<const double> traces,
                        std::span<const double> traces_abs,
                        const NewtonEsp& ne, std::size_t jmax) {
  double trace_ratio = 1.0;
  for (std::size_t v = 1; v <= jmax; ++v) {
    const double t = traces[v - 1];
    const double ta = traces_abs[v - 1];
    if (!std::isfinite(t) || !std::isfinite(ta) || t <= 0.0 ||
        ta > kTraceCondGuard * t)
      return false;
    trace_ratio = std::max(trace_ratio, ta / t);
  }
  double esp_ratio = 1.0;
  for (std::size_t j = 1; j <= jmax; ++j) {
    if (!ne.well_conditioned(j, kEspCancelGuard)) return false;
    esp_ratio = std::max(esp_ratio, ne.abs[j] / ne.e[j]);
  }
  return trace_ratio * esp_ratio <= kNewtonProductGuard;
}

// Seeds a PowerBasis (passed generically — the type is private to the
// oracle) from a clamped spectrum: d_v[i] = sum_m lamhat_m^v V_im^2,
// t_v = sum_m lamhat_m^v, with |term| companions equal to the values
// (every contribution is nonnegative). This is both the base oracle's
// basis construction and the drift reset of a commit-path spectral
// refresh. `basis.scale` must be set by the caller.
template <typename Basis>
void seed_basis_from_spectrum(const SymmetricEigen& eig,
                              std::span<const double> clamped,
                              std::size_t jmax, Basis& basis) {
  const std::size_t n = clamped.size();
  basis.log_scale = std::log(basis.scale);
  basis.traces.assign(jmax, 0.0);
  basis.diag.assign(jmax * n, 0.0);
  for (std::size_t m = 0; m < n; ++m) {
    const double lam = clamped[m] / basis.scale;
    if (lam <= 0.0) continue;
    double p = 1.0;
    for (std::size_t v = 1; v <= jmax; ++v) {
      p *= lam;
      basis.traces[v - 1] += p;
      double* row = basis.diag.data() + (v - 1) * n;
      for (std::size_t i = 0; i < n; ++i) {
        const double vi = eig.vectors(i, m);
        row[i] += p * vi * vi;
      }
    }
  }
  basis.traces_abs = basis.traces;
  basis.diag_abs = basis.diag;
}

}  // namespace

SymmetricKdppOracle::SymmetricKdppOracle(Matrix l, std::size_t k,
                                         bool validate)
    : l_(std::move(l)), k_(k) {
  check_arg(l_.square(), "SymmetricKdppOracle: matrix not square");
  check_arg(k_ <= l_.rows(), "SymmetricKdppOracle: k exceeds ground size");
  if (validate) validate_ensemble(l_, /*symmetric=*/true);
}

const SymmetricEigen& SymmetricKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = symmetric_eigen(l_);
  return *eigen_;
}

const LogEspTable& SymmetricKdppOracle::esp() const {
  if (!esp_.has_value()) {
    // Clamp roundoff-level eigenvalues to exact zeros so rank deficiency
    // is detected (e_k of a rank-r spectrum must vanish for k > r).
    std::vector<double> lambda = eigen().values;
    clamp_spectrum_to_rank(lambda);
    esp_ = LogEspTable(lambda, k_);
  }
  return *esp_;
}

const SymmetricKdppOracle::PowerBasis& SymmetricKdppOracle::power_basis()
    const {
  if (!power_.has_value()) {
    PowerBasis basis;
    double max_diag = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
      max_diag = std::max(max_diag, std::abs(l_(i, i)));
    basis.scale = max_diag > 0.0 ? max_diag : 1.0;
    std::vector<double> lambda = eigen().values;
    clamp_spectrum_to_rank(lambda);
    seed_basis_from_spectrum(eigen(), lambda, k_, basis);
    power_ = std::move(basis);
  }
  return *power_;
}

double SymmetricKdppOracle::log_partition() const { return esp().log_e(k_); }

const std::vector<double>& SymmetricKdppOracle::marginal_cache() const {
  if (!marginals_.has_value()) {
    if (k_ == 0 || ground_size() == 0) {
      marginals_ = std::vector<double>(ground_size(), 0.0);
    } else {
      marginals_ = marginals_from_spectrum(eigen(), esp(), k_);
    }
  }
  return *marginals_;
}

const std::vector<double>& SymmetricKdppOracle::log_marginal_cache() const {
  if (!log_marginals_.has_value())
    log_marginals_ = log_probabilities(marginal_cache());
  return *log_marginals_;
}

std::vector<double> SymmetricKdppOracle::marginals() const {
  return marginal_cache();
}

double SymmetricKdppOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  if (t.empty()) return 0.0;
  return log_joint_scratch(l_, k_, log_partition(), t);
}

// Wave-scoped incremental query evaluator (oracle.h): answers each query
// against the shared prefix already folded into the view it was created
// from — the base oracle's caches, or the commit-path state's refreshed
// caches — extending by the proposal batch with an incrementally grown
// Cholesky factor. Singleton extensions short-circuit to the cached
// marginals; small extensions resolve *factor-side* through the shared
// power basis (BlockMomentProbe + Newton identities, no eigensolve); the
// rest fall back to a scratch-reusing Schur complement + eigensolve.
class SymmetricKdppOracle::State final : public ConditionalState {
 public:
  State(const Matrix& l, std::size_t k, double log_z,
        const std::vector<double>* log_marginals, const PowerBasis* basis)
      : l_(l), k_(k), log_z_(log_z), log_marginals_(log_marginals),
        basis_(basis), chol_(k) {}

  [[nodiscard]] double log_joint(std::span<const int> t) override {
    const std::size_t tsize = t.size();
    const std::size_t n = l_.rows();
    if (tsize > k_) return kNegInf;
    if (tsize == 0) return 0.0;
    for (const int i : t)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "log_joint: index out of range");
    if (tsize == 1 && log_z_ != kNegInf && log_marginals_ != nullptr)
      return (*log_marginals_)[static_cast<std::size_t>(t[0])];
    // Incremental Cholesky of L_T, one bordered row per element; a
    // non-PD extension means P[T ⊆ S] = 0 (duplicates land here too).
    // The threshold is seeded with the whole block's largest diagonal so
    // the singularity verdict matches the from-scratch cholesky(L_T)
    // exactly, independent of the batch's element order.
    double max_diag = 0.0;
    for (const int i : t)
      max_diag = std::max(max_diag, std::abs(l_(static_cast<std::size_t>(i),
                                               static_cast<std::size_t>(i))));
    chol_.clear(max_diag);
    row_.resize(tsize);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto tr = static_cast<std::size_t>(t[r]);
      for (std::size_t c = 0; c <= r; ++c)
        row_[c] = l_(tr, static_cast<std::size_t>(t[c]));
      if (!chol_.append(std::span<const double>(row_.data(), r + 1)))
        return kNegInf;
    }
    const double log_det_t = chol_.log_det();
    if (tsize == k_) return log_det_t - log_z_;
    // Factor-side tail: downdate the shared power basis through the
    // already-built block factor and recover e_{k-t} by Newton's
    // identities — no reduced matrix, no eigensolve. Gated by the cost
    // heuristic (probe = |T|(k-|T|) matvecs vs one n^3 eigensolve) and
    // the conditioning guards; any trip falls through to the spectral
    // path, which also owns the exact rank-deficiency (-inf) semantics.
    const std::size_t vmax = k_ - tsize;
    if (basis_ != nullptr && basis_->traces.size() >= vmax &&
        tsize * vmax <= 2 * n) {
      probe_.build(l_, basis_->scale, t, chol_, vmax);
      probe_.downdated_traces(basis_->traces, basis_->traces_abs, vmax,
                              traces_, traces_abs_);
      const NewtonEsp ne = esp_from_power_traces(traces_, vmax);
      // The failpoint forces the cancellation guard's fallback branch —
      // the spectral path below, which is exact — so recovery tests can
      // exercise it on well-conditioned kernels.
      if (newton_trustworthy(traces_, traces_abs_, ne, vmax) &&
          !failpoint("symmetric.query.guard")) {
        const double tail = std::log(ne.e[vmax]) +
                            static_cast<double>(vmax) * basis_->log_scale;
        return log_det_t + tail - log_z_;
      }
    }
    // e_{k-t} of the conditional spectrum, via the already-built factor.
    complement_into(t, n);
    schur_complement_sym_into(l_, keep_, t, chol_, y_, reduced_);
    lambda_ = symmetric_eigenvalues(reduced_);
    clamp_spectrum_to_rank(lambda_);
    const auto log_e = log_esp(lambda_, k_ - tsize);
    const double tail = log_e[k_ - tsize];
    if (tail == kNegInf) return kNegInf;
    return log_det_t + tail - log_z_;
  }

 private:
  // complement_indices into reused storage (t is distinct by the time the
  // Cholesky of L_T succeeded).
  void complement_into(std::span<const int> t, std::size_t n) {
    mask_.assign(n, 0);
    for (const int i : t) mask_[static_cast<std::size_t>(i)] = 1;
    keep_.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) keep_.push_back(static_cast<int>(i));
  }

  const Matrix& l_;
  std::size_t k_;
  double log_z_;
  const std::vector<double>* log_marginals_;
  const PowerBasis* basis_;
  IncrementalCholesky chol_;
  BlockMomentProbe probe_;
  std::vector<double> traces_;
  std::vector<double> traces_abs_;
  std::vector<double> row_;
  std::vector<char> mask_;
  std::vector<int> keep_;
  std::vector<double> y_;
  std::vector<double> lambda_;
  Matrix reduced_;
};

std::unique_ptr<ConditionalState> SymmetricKdppOracle::make_conditional_state()
    const {
  const double log_z = log_partition();
  const std::vector<double>* lm =
      log_z != kNegInf ? &log_marginal_cache() : nullptr;
  return std::make_unique<State>(l_, k_, log_z, lm, &power_basis());
}

// ---- the commit path (DESIGN.md §2 conventions 7 and 9) ----
//
// One long-lived conditional: `commit(batch)` folds the accepted batch
// into the state in place — the batch's bordered Cholesky rows are
// appended to the persistent factors, the conditional ensemble is updated
// by the half-solve Schur complement on reused buffers, and the counting
// caches are refreshed *factor-natively*: the power-trace / diagonal-
// moment basis is downdated through the accepted block's factor
// (BlockMomentProbe), e_j recovered by Newton's identities, and the
// marginal vector by the adjugate expansion — no per-round eigensolve.
// Cancellation monitors ride every quantity; a guard trip (or eliminated-
// row drift past its bound) forces one spectral refresh, which also
// reseeds the basis from the clamped spectrum. Until the first commit
// every query reads the base oracle's shared caches, so a session that
// primes the base once amortizes the O(n^3) spectral preprocessing across
// every draw.
class SymmetricKdppOracle::Committed final : public CommittedOracle {
 public:
  explicit Committed(const SymmetricKdppOracle& base)
      : base_(&base), k_cur_(base.k_) {
    base_chol_.reserve(base.k_);
    reset();
  }

  void commit(std::span<const int> batch, double /*log_joint*/) override {
    const std::size_t tsize = batch.size();
    if (tsize == 0) return;
    check_arg(tsize <= k_cur_, "commit: |batch| exceeds k");
    const Matrix& src = ensemble();
    const std::size_t n = src.rows();
    for (const int i : batch)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "commit: index out of range");
    // Factor the elimination block of the *current* conditional — the
    // accepted trial's bordered rows, the same arithmetic the query state
    // used to answer it. This validates the batch (P[batch ⊆ S] > 0)
    // before anything else mutates, so a throw here leaves the state
    // exactly as it was.
    check_numeric(!failpoint("symmetric.commit.pivot"),
                  "commit: injected pivot failure "
                  "[failpoint symmetric.commit.pivot]");
    double max_diag = 0.0;
    for (const int i : batch)
      max_diag = std::max(max_diag, std::abs(src(static_cast<std::size_t>(i),
                                                 static_cast<std::size_t>(i))));
    elim_chol_.clear(max_diag);
    row_.resize(tsize);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto tr = static_cast<std::size_t>(batch[r]);
      for (std::size_t c = 0; c <= r; ++c)
        row_[c] = src(tr, static_cast<std::size_t>(batch[c]));
      check_numeric(
          elim_chol_.append(std::span<const double>(row_.data(), r + 1)),
          "commit: conditioning on a probability-zero event");
    }
    // Grow the committed base-prefix factor (chol of L_base[T, T], one
    // bordered row per accepted element, in commit order). Kept behind
    // commit_prefix() so log_committed_mass() stays O(1); a numerically
    // borderline block only disables the diagnostic, never the commit.
    if (base_ok_) {
      const Matrix& lb = base_->l_;
      for (std::size_t r = 0; r < tsize && base_ok_; ++r) {
        const auto br = static_cast<std::size_t>(
            ids_[static_cast<std::size_t>(batch[r])]);
        row_.resize(base_chol_.size() + 1);
        for (std::size_t c = 0; c < committed_ids_.size(); ++c)
          row_[c] = lb(br, static_cast<std::size_t>(committed_ids_[c]));
        for (std::size_t c = 0; c < r; ++c)
          row_[committed_ids_.size() + c] =
              lb(br, static_cast<std::size_t>(
                         ids_[static_cast<std::size_t>(batch[c])]));
        row_[base_chol_.size()] = lb(br, br);
        base_ok_ = base_chol_.append(row_);
      }
      if (base_ok_) {
        base_chol_.commit_prefix();
      } else {
        base_chol_.truncate();  // drop this batch's partial rows
      }
    }
    // Stage the factor-native moment downdate against the pre-commit
    // ensemble (the probe reads `src`, which the swap below retires) and
    // check the eliminated rows' residuals against the drift bound.
    const std::size_t k_next = k_cur_ - tsize;
    const bool fast_ok = k_next > 0 && stage_downdate(src, batch, k_next);
    // Condition in place by the half-solve Schur complement on
    // persistent scratch.
    mask_.assign(n, 0);
    for (const int i : batch) mask_[static_cast<std::size_t>(i)] = 1;
    keep_.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) keep_.push_back(static_cast<int>(i));
    schur_complement_sym_into(src, keep_, batch, elim_chol_, y_, next_);
    std::swap(m_, next_);
    // Record the accepted ids in batch order — the same order their
    // bordered rows joined the committed factor. Then re-index: delete +
    // compact, order preserved (condition() semantics).
    for (const int b : batch)
      committed_ids_.push_back(ids_[static_cast<std::size_t>(b)]);
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) ids_[w++] = ids_[i];
    ids_.resize(w);
    k_cur_ = k_next;
    ++rounds_;
    if (k_cur_ == 0) {
      trivial_refresh();
    } else if (fast_ok) {
      adopt_staged_basis(n);
      finalize_fast();
    } else {
      spectral_refresh();
    }
  }

  void reset() override {
    k_cur_ = base_->k_;
    rounds_ = 0;
    ids_.clear();
    for (std::size_t i = 0; i < base_->ground_size(); ++i)
      ids_.push_back(static_cast<int>(i));
    committed_ids_.clear();
    base_ok_ = true;
    double max_diag = 0.0;
    for (std::size_t i = 0; i < base_->ground_size(); ++i)
      max_diag = std::max(max_diag, std::abs(base_->l_(i, i)));
    base_chol_.clear(max_diag);
    // The run-fixed moment scale matches the base power basis'
    // construction (same formula over the same diagonal); the basis data
    // itself is populated on first commit, off the base oracle's primed
    // basis. spectral_refreshes_ is deliberately *not* rewound — it is a
    // monotone counter and sessions report per-run deltas.
    basis_ = PowerBasis{};
    basis_.scale = max_diag > 0.0 ? max_diag : 1.0;
    basis_.log_scale = std::log(basis_.scale);
    log_e_.clear();
    eig_.reset();
    esp_.reset();
    marginals_.reset();
    log_marginals_.reset();
  }

  [[nodiscard]] std::size_t committed_count() const override {
    return committed_ids_.size();
  }

  [[nodiscard]] double log_committed_mass() const override {
    if (!base_ok_) return std::numeric_limits<double>::quiet_NaN();
    // Chain rule: P[T ⊆ S] = det(L_T) e_{k-t}(lambda(L^T)) / e_k(lambda).
    return base_chol_.log_det() + log_partition() - base_->log_partition();
  }

  [[nodiscard]] std::size_t spectral_refreshes() const override {
    return spectral_refreshes_;
  }

  [[nodiscard]] std::size_t ground_size() const override {
    return rounds_ == 0 ? base_->ground_size() : m_.rows();
  }
  [[nodiscard]] std::size_t sample_size() const override { return k_cur_; }

  [[nodiscard]] double log_joint_marginal(
      std::span<const int> t) const override {
    if (t.size() > k_cur_) return kNegInf;
    if (t.empty()) return 0.0;
    return log_joint_scratch(ensemble(), k_cur_, log_partition(), t);
  }

  [[nodiscard]] std::vector<double> marginals() const override {
    return marginal_cache();
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override {
    check_arg(t.size() <= k_cur_, "condition: |T| exceeds k");
    const auto result = condition_ensemble(ensemble(), t, /*symmetric=*/true);
    return std::make_unique<SymmetricKdppOracle>(result.reduced,
                                                 k_cur_ - t.size(),
                                                 /*validate=*/false);
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override {
    return std::make_unique<SymmetricKdppOracle>(ensemble(), k_cur_,
                                                 /*validate=*/false);
  }

  [[nodiscard]] std::string name() const override { return base_->name(); }

  void prepare_concurrent() const override {
    // Post-commit state is refreshed eagerly by commit() itself; only the
    // base oracle's shared caches are lazy.
    if (rounds_ == 0) base_->prepare_concurrent();
  }

  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override {
    const double log_z = log_partition();
    const std::vector<double>* lm =
        log_z != kNegInf ? &log_marginal_cache() : nullptr;
    const PowerBasis* basis =
        rounds_ == 0 ? &base_->power_basis() : &basis_;
    return std::make_unique<State>(ensemble(), k_cur_, log_z, lm, basis);
  }

 private:
  [[nodiscard]] const Matrix& ensemble() const {
    return rounds_ == 0 ? base_->l_ : m_;
  }
  [[nodiscard]] double log_partition() const {
    return rounds_ == 0 ? base_->log_partition() : log_e_[k_cur_];
  }
  [[nodiscard]] const std::vector<double>& marginal_cache() const {
    if (rounds_ == 0) return base_->marginal_cache();
    check_numeric(marginals_.has_value(),
                  "SymmetricKdppOracle: partition function is zero "
                  "(rank of L below k)");
    return *marginals_;
  }
  [[nodiscard]] const std::vector<double>& log_marginal_cache() const {
    if (rounds_ == 0) return base_->log_marginal_cache();
    check_numeric(log_marginals_.has_value(),
                  "SymmetricKdppOracle: partition function is zero "
                  "(rank of L below k)");
    return *log_marginals_;
  }

  // Builds the moment probe over the accepted block's factor and stages
  // downdated traces / diagonal moments for the conditional. Returns
  // false — caller refactorizes spectrally — when the eliminated rows'
  // residual moments exceed the drift bound: in exact arithmetic they are
  // zero, so their magnitude *is* the accumulated factorization drift.
  bool stage_downdate(const Matrix& src, std::span<const int> batch,
                      std::size_t k_next) {
    const PowerBasis& pb = rounds_ == 0 ? base_->power_basis() : basis_;
    if (pb.traces.size() < k_next) return false;
    staged_scale_ = pb.scale;
    staged_log_scale_ = pb.log_scale;
    probe_.build(src, pb.scale, batch, elim_chol_, k_next);
    probe_.downdated_traces(pb.traces, pb.traces_abs, k_next, staged_traces_,
                            staged_traces_abs_);
    probe_.downdated_diag(pb.diag, pb.diag_abs, k_next, staged_diag_,
                          staged_diag_abs_);
    const std::size_t n = src.rows();
    const std::size_t vcheck = std::min<std::size_t>(2, k_next);
    for (std::size_t v = 1; v <= vcheck; ++v) {
      for (const int b : batch) {
        const double d =
            staged_diag_[(v - 1) * n + static_cast<std::size_t>(b)];
        const double da =
            staged_diag_abs_[(v - 1) * n + static_cast<std::size_t>(b)];
        if (!(std::abs(d) <= kCommitDriftGuard * da)) return false;
      }
    }
    return true;
  }

  // Adopts the staged basis for the new conditional: traces move over,
  // diagonal moments are compacted onto the kept rows (the eliminated
  // rows' residuals were just checked against the drift bound).
  void adopt_staged_basis(std::size_t old_n) {
    basis_.scale = staged_scale_;
    basis_.log_scale = staged_log_scale_;
    basis_.traces.swap(staged_traces_);
    basis_.traces_abs.swap(staged_traces_abs_);
    const std::size_t new_n = keep_.size();
    basis_.diag.resize(k_cur_ * new_n);
    basis_.diag_abs.resize(k_cur_ * new_n);
    for (std::size_t v = 1; v <= k_cur_; ++v) {
      const double* sd = staged_diag_.data() + (v - 1) * old_n;
      const double* sda = staged_diag_abs_.data() + (v - 1) * old_n;
      double* dd = basis_.diag.data() + (v - 1) * new_n;
      double* dda = basis_.diag_abs.data() + (v - 1) * new_n;
      for (std::size_t j = 0; j < new_n; ++j) {
        const auto si = static_cast<std::size_t>(keep_[j]);
        dd[j] = sd[si];
        dda[j] = sda[si];
      }
    }
  }

  // Factor-native refresh: Newton e_j from the downdated traces, the
  // marginal vector from the adjugate expansion over the downdated
  // diagonal moments. Items whose numerator fails its cancellation floor
  // (small marginals amplify the alternating sum's roundoff) are resolved
  // exactly one by one; more than kMaxMarginalFixups of them — or any
  // global guard trip, including the sum rule |sum p - k| — demotes the
  // whole round to a spectral refresh.
  void finalize_fast() {
    const NewtonEsp ne = esp_from_power_traces(basis_.traces, k_cur_);
    // The failpoint demotes the round to a spectral refresh — the same
    // exact fallback a genuine cancellation-guard trip pays.
    if (!newton_trustworthy(basis_.traces, basis_.traces_abs, ne, k_cur_) ||
        failpoint("symmetric.commit.guard")) {
      spectral_refresh();
      return;
    }
    const std::size_t n = m_.rows();
    const std::size_t kc = k_cur_;
    std::vector<double> p(n, 0.0);
    fixups_.clear();
    const double ek = ne.e[kc];
    for (std::size_t i = 0; i < n; ++i) {
      double numer = 0.0;
      double numer_abs = 0.0;
      double sign = 1.0;
      for (std::size_t v = 1; v <= kc; ++v) {
        numer += sign * ne.e[kc - v] * basis_.diag[(v - 1) * n + i];
        numer_abs += ne.abs[kc - v] * basis_.diag_abs[(v - 1) * n + i];
        sign = -sign;
      }
      if (!std::isfinite(numer) || !std::isfinite(numer_abs)) {
        spectral_refresh();
        return;
      }
      if (numer >= kMarginalItemGuard * numer_abs) {
        p[i] = std::min(numer / ek, 1.0);
      } else {
        fixups_.push_back(i);
        if (fixups_.size() > kMaxMarginalFixups) {
          spectral_refresh();
          return;
        }
      }
    }
    log_e_.assign(kc + 1, 0.0);
    for (std::size_t j = 1; j <= kc; ++j)
      log_e_[j] =
          std::log(ne.e[j]) + static_cast<double>(j) * basis_.log_scale;
    for (const std::size_t i : fixups_) {
      const int idx = static_cast<int>(i);
      const double lp = log_joint_scratch(m_, kc, log_e_[kc],
                                          std::span<const int>(&idx, 1));
      p[i] = lp == kNegInf ? 0.0 : std::min(std::exp(lp), 1.0);
    }
    double sum = 0.0;
    for (const double v : p) sum += v;
    if (!(std::abs(sum - static_cast<double>(kc)) <=
          kMarginalSumTol * static_cast<double>(kc))) {
      spectral_refresh();
      return;
    }
    eig_.reset();
    esp_.reset();
    marginals_ = std::move(p);
    log_marginals_ = log_probabilities(*marginals_);
  }

  // Full spectral fallback: one eigensolve of the conditional, log e_j
  // from the clamped spectrum's table, marginals from the spectrum, and
  // the moment basis reseeded exactly — the forced refactorization of
  // DESIGN.md §2 convention 9, after which accumulated drift is zero.
  void spectral_refresh() {
    ++spectral_refreshes_;
    eig_ = symmetric_eigen(m_);
    std::vector<double> lambda = eig_->values;
    clamp_spectrum_to_rank(lambda);
    esp_ = LogEspTable(lambda, k_cur_);
    log_e_.resize(k_cur_ + 1);
    for (std::size_t j = 0; j <= k_cur_; ++j) log_e_[j] = esp_->log_e(j);
    seed_basis_from_spectrum(*eig_, lambda, k_cur_, basis_);
    if (log_e_[k_cur_] == kNegInf) {
      // Degenerate conditional: marginal access must keep throwing like
      // the from-scratch resolve would, so the vectors stay unset.
      marginals_.reset();
      log_marginals_.reset();
    } else {
      marginals_ = marginals_from_spectrum(*eig_, *esp_, k_cur_);
      log_marginals_ = log_probabilities(*marginals_);
    }
  }

  // k has been exhausted: e_0 = 1 is the only counting fact left, and
  // every marginal is zero.
  void trivial_refresh() {
    eig_.reset();
    esp_.reset();
    log_e_.assign(1, 0.0);
    basis_.traces.clear();
    basis_.traces_abs.clear();
    basis_.diag.clear();
    basis_.diag_abs.clear();
    marginals_ = std::vector<double>(m_.rows(), 0.0);
    log_marginals_ = log_probabilities(*marginals_);
  }

  const SymmetricKdppOracle* base_;
  std::size_t k_cur_;
  std::size_t rounds_ = 0;
  std::size_t spectral_refreshes_ = 0;
  Matrix m_;                       // conditional ensemble (valid after round 1)
  std::vector<int> ids_;           // current index -> base index
  std::vector<int> committed_ids_; // base ids in commit order
  bool base_ok_ = true;
  IncrementalCholesky base_chol_;  // committed prefix over the base matrix
  IncrementalCholesky elim_chol_;  // per-commit elimination block factor
  PowerBasis basis_;               // factor-native counting basis
  std::vector<double> log_e_;      // log e_j of the conditional, j=0..k_cur_
  std::optional<SymmetricEigen> eig_;  // spectral-fallback caches
  std::optional<LogEspTable> esp_;
  std::optional<std::vector<double>> marginals_;
  std::optional<std::vector<double>> log_marginals_;
  // reused scratch
  BlockMomentProbe probe_;
  double staged_scale_ = 1.0;
  double staged_log_scale_ = 0.0;
  std::vector<double> staged_traces_;
  std::vector<double> staged_traces_abs_;
  std::vector<double> staged_diag_;
  std::vector<double> staged_diag_abs_;
  std::vector<std::size_t> fixups_;
  std::vector<double> row_;
  std::vector<char> mask_;
  std::vector<int> keep_;
  std::vector<double> y_;
  Matrix next_;
};

std::unique_ptr<CommittedOracle> SymmetricKdppOracle::make_committed() const {
  return std::make_unique<Committed>(*this);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  const auto result = condition_ensemble(l_, t, /*symmetric=*/true);
  return std::make_unique<SymmetricKdppOracle>(result.reduced, k_ - t.size(),
                                               /*validate=*/false);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::restrict_to(
    std::span<const int> items, std::span<const double> scales) const {
  check_arg(items.size() >= k_, "restrict_to: fewer items than k");
  check_arg(scales.empty() || scales.size() == items.size(),
            "restrict_to: scales/items size mismatch");
  const std::size_t m = items.size();
  for (const int item : items)
    check_arg(item >= 0 && static_cast<std::size_t>(item) < l_.rows(),
              "restrict_to: index out of range");
  Matrix sub(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    const double sa = scales.empty() ? 1.0 : scales[a];
    for (std::size_t b = a; b < m; ++b) {
      const double sb = scales.empty() ? 1.0 : scales[b];
      const double v = sa * sb *
                       l_(static_cast<std::size_t>(items[a]),
                          static_cast<std::size_t>(items[b]));
      sub(a, b) = v;
      sub(b, a) = v;
    }
  }
  return std::make_unique<SymmetricKdppOracle>(std::move(sub), k_,
                                               /*validate=*/false);
}

DistillationProfile SymmetricKdppOracle::distillation_profile() const {
  DistillationProfile profile;
  profile.rank_bound = l_.rows();
  profile.weights.resize(l_.rows());
  for (std::size_t i = 0; i < l_.rows(); ++i) profile.weights[i] = l_(i, i);
  return profile;
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::clone() const {
  return std::make_unique<SymmetricKdppOracle>(l_, k_, /*validate=*/false);
}

void SymmetricKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
  (void)power_basis();
  // Rank-deficient ensembles (e_k = 0) keep the degenerate from-scratch
  // semantics; marginals would throw, so only prime the feasible case.
  if (log_partition() != kNegInf) (void)log_marginal_cache();
}

}  // namespace pardpp
