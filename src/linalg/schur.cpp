#include "linalg/schur.h"

#include <algorithm>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "support/error.h"

namespace pardpp {

std::vector<int> complement_indices(std::size_t n, std::span<const int> subset) {
  std::vector<bool> in_subset(n, false);
  for (const int i : subset) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
              "complement_indices: index out of range");
    check_arg(!in_subset[static_cast<std::size_t>(i)],
              "complement_indices: duplicate index");
    in_subset[static_cast<std::size_t>(i)] = true;
  }
  std::vector<int> out;
  out.reserve(n - subset.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!in_subset[i]) out.push_back(static_cast<int>(i));
  return out;
}

SchurResult schur_complement(const Matrix& m, std::span<const int> keep,
                             std::span<const int> elim, bool symmetric) {
  check_arg(m.square(), "schur_complement: matrix not square");
  if (elim.empty()) {
    return {m.gather(keep, keep), 0.0, 1};
  }
  const Matrix mee = m.gather(elim, elim);
  const Matrix mek = m.gather(elim, keep);
  const Matrix mke = m.gather(keep, elim);
  Matrix x;  // M_EE^{-1} M_EK
  double log_det = kNegInf;
  int sign = 0;
  if (symmetric) {
    auto chol = cholesky(mee);
    check_numeric(chol.has_value(),
                  "schur_complement: symmetric elimination block not PD "
                  "(conditioning on a probability-zero event?)");
    x = chol->solve_matrix(mek);
    log_det = chol->log_det();
    sign = 1;
  } else {
    const auto lu = lu_factor(mee);
    check_numeric(!lu.singular(),
                  "schur_complement: singular elimination block "
                  "(conditioning on a probability-zero event?)");
    x = lu.solve_matrix(mek);
    log_det = lu.log_abs_det();
    sign = lu.det_phase().real() >= 0.0 ? 1 : -1;
  }
  Matrix reduced = m.gather(keep, keep);
  reduced -= mke * x;
  return {std::move(reduced), log_det, sign};
}

void schur_complement_sym_into(const Matrix& m, std::span<const int> keep,
                               std::span<const int> elim,
                               const IncrementalCholesky& chol,
                               std::vector<double>& y_scratch,
                               Matrix& reduced) {
  check_arg(m.square(), "schur_complement_sym_into: matrix not square");
  check_arg(chol.size() == elim.size(),
            "schur_complement_sym_into: factor size mismatch");
  const std::size_t nk = keep.size();
  const std::size_t ne = elim.size();
  if (reduced.rows() != nk || reduced.cols() != nk) reduced = Matrix(nk, nk);
  // Y = R^{-1} M_EK, one row per eliminated element.
  y_scratch.resize(ne * nk);
  for (std::size_t r = 0; r < ne; ++r) {
    const auto er = static_cast<std::size_t>(elim[r]);
    double* row = y_scratch.data() + r * nk;
    for (std::size_t j = 0; j < nk; ++j)
      row[j] = m(er, static_cast<std::size_t>(keep[j]));
  }
  chol.forward_solve_rows(y_scratch.data(), nk, nk);
  // reduced = M_KK - Y^T Y: gather the kept block (symmetric), then a
  // blocked rank-ne downdate instead of the naive per-entry reduction.
  for (std::size_t i = 0; i < nk; ++i) {
    const auto ki = static_cast<std::size_t>(keep[i]);
    for (std::size_t j = i; j < nk; ++j) {
      const double v = m(ki, static_cast<std::size_t>(keep[j]));
      reduced(i, j) = v;
      reduced(j, i) = v;
    }
  }
  sym_rank_k_update(reduced, -1.0, y_scratch.data(), ne, nk, nk);
}

SchurResult condition_ensemble(const Matrix& l, std::span<const int> t,
                               bool symmetric) {
  const auto keep = complement_indices(l.rows(), t);
  return schur_complement(l, keep, t, symmetric);
}

void condition_ensemble_sym_into(const Matrix& l, std::span<const int> t,
                                 IncrementalCholesky& chol,
                                 std::vector<double>& y_scratch,
                                 std::vector<int>& keep_scratch,
                                 Matrix& reduced) {
  check_arg(l.square(), "condition_ensemble_sym_into: matrix not square");
  const std::size_t n = l.rows();
  const std::size_t tsize = t.size();
  // Seed the PD threshold with the block's largest diagonal so the
  // verdict matches a from-scratch cholesky(L_TT) (element-order
  // independent).
  double max_diag = 0.0;
  for (const int i : t) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
              "condition_ensemble_sym_into: index out of range");
    max_diag = std::max(max_diag, std::abs(l(static_cast<std::size_t>(i),
                                             static_cast<std::size_t>(i))));
  }
  chol.clear(max_diag);
  std::vector<double>& row = y_scratch;  // reused before the half-solve
  row.resize(tsize);
  for (std::size_t r = 0; r < tsize; ++r) {
    const auto tr = static_cast<std::size_t>(t[r]);
    for (std::size_t c = 0; c <= r; ++c)
      row[c] = l(tr, static_cast<std::size_t>(t[c]));
    check_numeric(chol.append(std::span<const double>(row.data(), r + 1)),
                  "condition_ensemble_sym_into: elimination block not PD "
                  "(conditioning on a probability-zero event?)");
  }
  keep_scratch = complement_indices(n, t);
  schur_complement_sym_into(l, keep_scratch, t, chol, y_scratch, reduced);
}

}  // namespace pardpp
