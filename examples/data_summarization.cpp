// Data summarization with k-DPPs (the paper's §1.1 motivating
// application, following Lin–Bilmes / Kulesza–Taskar).
//
// Synthetic corpus: 5 topic clusters of embedding vectors. A good
// summary covers all topics; we compare topic coverage of k-DPP samples
// (parallel batched sampler) against uniform sampling across many trials.
#include <cmath>
#include <cstdio>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

struct Corpus {
  Matrix embeddings;          // n x d
  std::vector<int> topic_of;  // n
  std::size_t num_topics;
};

Corpus synthetic_corpus(std::size_t docs_per_topic, std::size_t num_topics,
                        std::size_t dim, RandomStream& rng) {
  Corpus corpus;
  corpus.num_topics = num_topics;
  const std::size_t n = docs_per_topic * num_topics;
  corpus.embeddings = Matrix(n, dim);
  // Topic centers: well-separated random directions.
  const Matrix centers = random_gaussian(num_topics, dim, rng) * 3.0;
  std::size_t row = 0;
  for (std::size_t topic = 0; topic < num_topics; ++topic) {
    for (std::size_t d = 0; d < docs_per_topic; ++d) {
      for (std::size_t c = 0; c < dim; ++c)
        corpus.embeddings(row, c) = centers(topic, c) + rng.normal() * 0.7;
      corpus.topic_of.push_back(static_cast<int>(topic));
      ++row;
    }
  }
  return corpus;
}

std::size_t topics_covered(const Corpus& corpus,
                           const std::vector<int>& subset) {
  std::vector<bool> seen(corpus.num_topics, false);
  for (const int i : subset)
    seen[static_cast<std::size_t>(
        corpus.topic_of[static_cast<std::size_t>(i)])] = true;
  std::size_t count = 0;
  for (const bool b : seen) count += b ? 1 : 0;
  return count;
}

}  // namespace

int main() {
  RandomStream rng(7);
  const std::size_t num_topics = 5;
  const Corpus corpus = synthetic_corpus(16, num_topics, 8, rng);
  const std::size_t n = corpus.embeddings.rows();
  const std::size_t k = 5;  // one slot per topic, ideally

  // Kernel: RBF over embeddings; the bandwidth sits between the
  // within-topic scale (~0.7 sqrt(2 dim)) and the between-topic scale so
  // same-topic documents repel strongly and topics barely interact.
  Matrix l = rbf_kernel(corpus.embeddings, 3.0);
  for (std::size_t i = 0; i < n; ++i) l(i, i) += 1e-6;
  const SymmetricKdppOracle oracle(l, k);

  const int trials = 300;
  double dpp_coverage = 0.0;
  double iid_coverage = 0.0;
  double dpp_rounds = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto sample = sample_batched(oracle, rng);
    dpp_coverage += static_cast<double>(topics_covered(corpus, sample.items));
    dpp_rounds += static_cast<double>(sample.diag.rounds);
    std::vector<int> iid;
    while (iid.size() < k) {
      const int pick = static_cast<int>(rng.uniform_index(n));
      bool dup = false;
      for (const int e : iid) dup = dup || e == pick;
      if (!dup) iid.push_back(pick);
    }
    iid_coverage += static_cast<double>(topics_covered(corpus, iid));
  }

  std::printf("corpus: %zu documents, %zu topics; summary size k = %zu\n", n,
              num_topics, k);
  std::printf("mean topics covered over %d trials:\n", trials);
  std::printf("  k-DPP summary    %.3f / %zu\n", dpp_coverage / trials,
              num_topics);
  std::printf("  uniform summary  %.3f / %zu\n", iid_coverage / trials,
              num_topics);
  std::printf("mean parallel rounds per k-DPP sample: %.1f (vs %zu "
              "sequential)\n",
              dpp_rounds / trials, k);

  // One concrete summary, with topics annotated.
  const auto sample = sample_batched(oracle, rng);
  std::printf("\nexample summary (document -> topic): ");
  for (const int i : sample.items)
    std::printf("%d->t%d  ", i,
                corpus.topic_of[static_cast<std::size_t>(i)]);
  std::printf("\n");
  return 0;
}
