// Balanced vertex separators for embedded planar graphs.
//
// Theorem 11 needs a separator whose removal leaves components of at most
// ~2n/3 vertices, of size O(sqrt(n)) for the workloads we run. Two
// strategies are provided:
//  * BFS-level separator: pick the smallest BFS level whose removal
//    balances the two sides — exact O(sqrt(n)) on grids and other
//    bounded-aspect meshes;
//  * geometric median cut: slab of vertices around the median coordinate
//    along the wider axis, grown until no edge crosses it.
// `find_separator` tries both and returns the smaller separator that
// satisfies the balance requirement. (The Gazit–Miller NC separator the
// paper cites is substituted per DESIGN.md §1 — only size/balance matter
// for the sampler's depth recursion.)
#pragma once

#include <vector>

#include "planar/graph.h"

namespace pardpp {

struct SeparatorResult {
  std::vector<int> separator;
  /// Connected components of G - separator (vertex ids of g).
  std::vector<std::vector<int>> components;
  /// max component size / n.
  double balance = 0.0;
};

/// BFS-level separator from the given root.
[[nodiscard]] SeparatorResult bfs_level_separator(const PlanarGraph& g,
                                                  int root = 0);

/// Geometric slab separator along the wider coordinate axis.
[[nodiscard]] SeparatorResult geometric_separator(const PlanarGraph& g);

/// Best of the above (smallest separator among those with balance <= 2/3,
/// else the best-balanced one). Graphs with <= 2 vertices get an empty or
/// trivial separator.
[[nodiscard]] SeparatorResult find_separator(const PlanarGraph& g);

}  // namespace pardpp
