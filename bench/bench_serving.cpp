// EXP-SRV — sampling-as-a-service: coalesced serving throughput.
//
// The serving question on top of EXP-THR: many *independent clients*
// each want a few draws from the same kernel. One-session-per-request
// serving (the pre-registry architecture) pays the session priming per
// request; the SamplingServer routes every request through the session
// registry (priming paid once per kernel) and coalesces concurrent
// requests for one fingerprint into a single draw_many_batched dispatch
// on the shared pool. The acceptance gate for the serving stack is a
// >= 1.5x sustained draws/sec advantage at the same pool size.
//
// Contract checks folded into the measurement: every coalesced
// request's draws are bit-identical to a standalone per-request serial
// session drawing from the same seed — coalescing must be invisible in
// the results — and the per-session baseline must agree too (the
// draw_many pool-independence contract).
#include <cstdio>
#include <future>

#include "bench_util.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/session.h"
#include "serving/config.h"
#include "serving/fingerprint.h"
#include "serving/registry.h"
#include "serving/server.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

// Dense symmetric family: session priming is the expensive part (the
// full n x n spectral preprocessing) while a commit-path draw is cheap —
// exactly the serving shape where one-session-per-request hurts. Each
// client asks for one draw, the worst case for amortization.
struct ServingBenchConfig {
  std::size_t n = 128;
  std::size_t k = 10;
  std::size_t requests = 16;           // concurrent clients per pass
  std::size_t draws_per_request = 1;   // each client asks for one draw
  int repeats = 3;
};

std::uint64_t request_seed(std::size_t r) { return 771000 + 37 * r; }

std::vector<std::vector<std::vector<int>>> items_of(
    std::vector<std::vector<SampleResult>> per_request) {
  std::vector<std::vector<std::vector<int>>> out(per_request.size());
  for (std::size_t r = 0; r < per_request.size(); ++r)
    for (auto& result : per_request[r])
      out[r].push_back(std::move(result.items));
  return out;
}

}  // namespace

int main() {
  print_header(
      "EXP-SRV", "sampling-as-a-service coalesced serving throughput",
      "registry + request coalescing sustain >= 1.5x the draws/sec of "
      "one-session-per-request serving at the same pool size, with every "
      "coalesced request bit-identical to its standalone serial draws");

  const ServingBenchConfig config;
  RandomStream setup(909011);
  const Matrix l = random_psd(config.n, config.n, setup, 1e-5);
  const SymmetricKdppOracle oracle(l, config.k, /*validate=*/false);
  const std::string canonical = serving::SessionConfig{}.to_string();
  const serving::KernelFingerprint fingerprint = serving::fingerprint_kernel(
      "kernel", l, config.k, canonical);
  const auto factory = [&l, k = config.k] {
    return std::unique_ptr<CountingOracle>(
        std::make_unique<SymmetricKdppOracle>(l, k, /*validate=*/false));
  };
  const std::size_t total_draws = config.requests * config.draws_per_request;

  // Bit-identity reference: each request standalone — its own session,
  // its own stream from its own seed, serial execution.
  std::vector<std::vector<std::vector<int>>> reference;
  {
    std::vector<std::vector<SampleResult>> results(config.requests);
    for (std::size_t r = 0; r < config.requests; ++r) {
      SamplerSession session(oracle);
      RandomStream rng(request_seed(r));
      results[r] = session.draw_many(config.draws_per_request, rng,
                                     ExecutionContext::serial());
    }
    reference = items_of(std::move(results));
  }

  const std::size_t hw = physical_concurrency();
  std::vector<std::size_t> pools = {1};
  if (hw > 1) pools.push_back(hw);

  JsonSeries json;
  bool any_regression = false;
  Table table({"pool", "wall_ms", "draws_per_sec", "persession_ms",
               "persession_dps", "speedup", "batches", "coalesced/batch",
               "identical"});

  for (const std::size_t pool_size : pools) {
    // --- coalesced serving (registry-shared session, batched dispatch) ---
    serving::ServingConfig serving_config;
    serving_config.pool_threads = pool_size;
    serving::SamplingServer server(serving_config);
    const auto serve_pass = [&] {
      std::vector<std::future<std::vector<SampleResult>>> futures;
      futures.reserve(config.requests);
      for (std::size_t r = 0; r < config.requests; ++r) {
        serving::ServerRequest request;
        request.fingerprint = fingerprint;
        request.resident_bytes = std::size_t{1} << 16;
        request.make_oracle = factory;
        request.count = config.draws_per_request;
        request.seed = request_seed(r);
        futures.push_back(server.submit(std::move(request)));
      }
      std::vector<std::vector<SampleResult>> results;
      results.reserve(config.requests);
      for (auto& future : futures) results.push_back(future.get());
      return results;
    };
    (void)serve_pass();  // warmup: prime the registry entry
    const serving::ServerStats warm = server.stats();
    double serve_ms = 0.0;
    std::vector<std::vector<std::vector<int>>> serve_items;
    for (int pass = 0; pass < config.repeats; ++pass) {
      Timer timer;
      auto results = serve_pass();
      const double ms = timer.millis();
      if (pass == 0 || ms < serve_ms) serve_ms = ms;
      if (pass == 0) serve_items = items_of(std::move(results));
    }
    const serving::ServerStats stats = server.stats();
    const std::uint64_t batches = stats.batches - warm.batches;
    const std::uint64_t coalesced =
        stats.coalesced_requests - warm.coalesced_requests;
    const double coalesced_per_batch =
        batches == 0 ? 0.0
                     : static_cast<double>(coalesced) /
                           static_cast<double>(batches);

    // --- one-session-per-request baseline at the same pool size ---
    // What a registry-less server does with every wire request: build
    // the oracle from the kernel and prime a fresh session (the exact
    // work the registry factory pays once), then draw. Sharing a warmed
    // oracle across requests would hide the whole cost being amortized.
    ThreadPool pool(pool_size);
    const ExecutionContext ctx(&pool, nullptr);
    double persession_ms = 0.0;
    std::vector<std::vector<std::vector<int>>> persession_items;
    for (int pass = 0; pass < config.repeats; ++pass) {
      Timer timer;
      std::vector<std::vector<SampleResult>> results(config.requests);
      for (std::size_t r = 0; r < config.requests; ++r) {
        const auto base = factory();     // oracle built per request
        SamplerSession session(*base);   // priming paid per request
        RandomStream rng(request_seed(r));
        results[r] =
            session.draw_many(config.draws_per_request, rng, ctx);
      }
      const double ms = timer.millis();
      if (pass == 0 || ms < persession_ms) persession_ms = ms;
      if (pass == 0) persession_items = items_of(std::move(results));
    }

    const bool identical =
        serve_items == reference && persession_items == reference;
    const double serve_dps =
        1000.0 * static_cast<double>(total_draws) / serve_ms;
    const double persession_dps =
        1000.0 * static_cast<double>(total_draws) / persession_ms;
    const double speedup = persession_ms / serve_ms;
    // The serving-stack acceptance gate: coalesced serving sustains
    // >= 1.5x the one-session-per-request draws/sec, results identical.
    const bool regression = speedup < 1.5 || !identical;
    any_regression = any_regression || regression;

    table.add_row({fmt_int(pool_size), fmt(serve_ms, 1), fmt(serve_dps, 1),
                   fmt(persession_ms, 1), fmt(persession_dps, 1),
                   fmt(speedup, 2), fmt_int(batches),
                   fmt(coalesced_per_batch, 1), identical ? "yes" : "NO"});
    json.add_record(
        {JsonSeries::text("experiment", "serving_coalescing"),
         JsonSeries::text("family", "symmetric"),
         JsonSeries::number("n", config.n),
         JsonSeries::number("k", config.k),
         JsonSeries::number("requests", config.requests),
         JsonSeries::number("draws_per_request", config.draws_per_request),
         JsonSeries::number("pool", pool_size),
         JsonSeries::number("wall_ms", serve_ms, 3),
         JsonSeries::number("persession_wall_ms", persession_ms, 3),
         JsonSeries::number("draws_per_sec", serve_dps, 1),
         JsonSeries::number("persession_draws_per_sec", persession_dps, 1),
         JsonSeries::number("speedup_vs_persession", speedup, 2),
         JsonSeries::number("batches", static_cast<std::size_t>(batches)),
         JsonSeries::number("coalesced_per_batch", coalesced_per_batch, 2),
         JsonSeries::number("max_coalesced",
                            static_cast<std::size_t>(stats.max_coalesced)),
         JsonSeries::number("queue_peak", stats.queue_peak),
         JsonSeries::number("sessions", stats.registry.sessions),
         JsonSeries::number(
             "poisoned_replacements",
             static_cast<std::size_t>(stats.registry.poisoned_replacements)),
         JsonSeries::text("identical", identical ? "yes" : "no"),
         JsonSeries::boolean("regression", regression)});
  }

  std::printf("\n%zu requests x %zu draws, dense symmetric n=%zu k=%zu; "
              "baseline primes one session per request, serving primes "
              "once and coalesces\n",
              config.requests, config.draws_per_request, config.n,
              config.k);
  table.print();
  if (any_regression)
    std::printf("\n! REGRESSION: coalesced serving below 1.5x the "
                "one-session-per-request baseline, or results diverged "
                "from the standalone serial reference\n");
  json.write(bench_out_path("BENCH_serving.json"));
  return 0;
}
