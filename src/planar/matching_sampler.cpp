#include "planar/matching_sampler.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "parallel/parallel_for.h"
#include "planar/separator.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// Thread-safe accumulation for the recursive sampler.
struct SharedState {
  const PlanarGraph* graph = nullptr;
  const MatchingCounter* counter = nullptr;
  std::mutex mutex;
  Matching matching;
  SampleDiagnostics diag;

  void record_edge(int u, int v) {
    const std::scoped_lock lock(mutex);
    matching.emplace_back(std::min(u, v), std::max(u, v));
  }
  void charge(std::size_t machines, std::size_t oracle_calls) {
    const std::scoped_lock lock(mutex);
    diag.oracle_calls += oracle_calls;
    diag.rounds += 1;
    (void)machines;
  }
};

// Draws the partner of `v` among the alive vertices: weights are
// #PM(alive - {v, u}) over alive neighbors u. Returns the partner and
// updates `alive` (removes v and the partner). One PRAM round.
int match_vertex(SharedState& state, std::vector<int>& alive, int v,
                 RandomStream& rng, PramStats& pram) {
  const PlanarGraph& g = *state.graph;
  std::vector<int> candidates;
  std::vector<double> log_weights;
  std::vector<char> is_alive(g.num_vertices(), 0);
  for (const int a : alive) is_alive[static_cast<std::size_t>(a)] = 1;
  std::vector<int> rest;
  rest.reserve(alive.size() - 2);
  for (const int u : g.neighbors(v)) {
    if (!is_alive[static_cast<std::size_t>(u)]) continue;
    rest.clear();
    for (const int a : alive)
      if (a != v && a != u) rest.push_back(a);
    const double lw = state.counter->log_count_alive(rest);
    if (lw == kNegInf) continue;
    candidates.push_back(u);
    log_weights.push_back(lw);
  }
  check_numeric(!candidates.empty(),
                "match_vertex: no feasible partner (graph lost its perfect "
                "matching — invariant violation)");
  double hi = kNegInf;
  for (const double w : log_weights) hi = std::max(hi, w);
  std::vector<double> weights(log_weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = std::exp(log_weights[i] - hi);
  const int partner = candidates[rng.categorical(weights)];
  state.record_edge(v, partner);
  state.charge(candidates.size(), candidates.size());
  pram.depth += 1.0;
  pram.rounds += 1;
  pram.work += static_cast<double>(candidates.size());
  pram.oracle_calls += candidates.size();
  pram.max_machines = std::max(pram.max_machines, candidates.size());
  std::erase(alive, v);
  std::erase(alive, partner);
  return partner;
}

// Components of the induced subgraph on `alive`.
std::vector<std::vector<int>> alive_components(const PlanarGraph& g,
                                               std::span<const int> alive) {
  std::vector<int> state(g.num_vertices(), 0);  // 0 dead, 1 alive, 2 visited
  for (const int v : alive) state[static_cast<std::size_t>(v)] = 1;
  std::vector<std::vector<int>> comps;
  std::vector<int> stack;
  for (const int root : alive) {
    if (state[static_cast<std::size_t>(root)] != 1) continue;
    comps.emplace_back();
    state[static_cast<std::size_t>(root)] = 2;
    stack.push_back(root);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (const int u : g.neighbors(v)) {
        if (state[static_cast<std::size_t>(u)] == 1) {
          state[static_cast<std::size_t>(u)] = 2;
          stack.push_back(u);
        }
      }
    }
    std::sort(comps.back().begin(), comps.back().end());
  }
  return comps;
}

// Matches every vertex of `alive` sequentially (lowest-index first).
void finish_sequentially(SharedState& state, std::vector<int> alive,
                         RandomStream& rng, PramStats& pram) {
  while (!alive.empty()) {
    const int v = alive.front();
    match_vertex(state, alive, v, rng, pram);
  }
}

// Theorem 11 recursion on one connected even component.
PramStats sample_component(SharedState& state, std::vector<int> alive,
                           RandomStream rng,
                           const SeparatorSamplerOptions& options) {
  PramStats pram;
  if (alive.empty()) return pram;
  if (alive.size() <= options.base_cutoff) {
    finish_sequentially(state, std::move(alive), rng, pram);
    return pram;
  }
  // Separator of the alive-induced subgraph (ids mapped back).
  const PlanarGraph sub = state.graph->induced(alive);
  auto sep = find_separator(sub);
  std::vector<int> separator;
  separator.reserve(sep.separator.size());
  for (const int local : sep.separator)
    separator.push_back(alive[static_cast<std::size_t>(local)]);
  std::sort(separator.begin(), separator.end());

  // Match the separator vertices sequentially (they may pair with each
  // other or with component vertices; both just shrink `alive`).
  std::vector<char> is_alive(state.graph->num_vertices(), 0);
  for (const int a : alive) is_alive[static_cast<std::size_t>(a)] = 1;
  for (const int v : separator) {
    if (!is_alive[static_cast<std::size_t>(v)]) continue;
    const int partner = match_vertex(state, alive, v, rng, pram);
    is_alive[static_cast<std::size_t>(v)] = 0;
    is_alive[static_cast<std::size_t>(partner)] = 0;
  }
  // Recurse on the remaining components in parallel.
  auto comps = alive_components(*state.graph, alive);
  if (comps.empty()) return pram;
  std::vector<PramStats> child_stats(comps.size());
  std::vector<RandomStream> child_rngs;
  child_rngs.reserve(comps.size());
  for (std::size_t c = 0; c < comps.size(); ++c)
    child_rngs.push_back(rng.split());
  if (options.parallel_components && comps.size() > 1) {
    parallel_for(ThreadPool::shared(), 0, comps.size(), [&](std::size_t c) {
      child_stats[c] = sample_component(state, std::move(comps[c]),
                                        child_rngs[c], options);
    });
  } else {
    for (std::size_t c = 0; c < comps.size(); ++c)
      child_stats[c] = sample_component(state, std::move(comps[c]),
                                        child_rngs[c], options);
  }
  pram.append_parallel(child_stats);
  return pram;
}

void check_has_matching(const MatchingCounter& counter) {
  if (counter.log_count() == kNegInf) {
    throw SamplingFailure(
        "planar matching sampler: the graph has no perfect matching");
  }
}

}  // namespace

MatchingResult sample_matching_sequential(const PlanarGraph& g,
                                          RandomStream& rng,
                                          PramLedger* ledger) {
  MatchingResult result;
  if (g.num_vertices() == 0) return result;
  // FKT orientation requires connected input; callers split components.
  check_arg(g.components().size() <= 1,
            "sample_matching_sequential: graph must be connected "
            "(sample components separately)");
  SharedState state;
  state.graph = &g;
  const MatchingCounter counter(g);
  state.counter = &counter;
  check_has_matching(counter);
  PramStats pram;
  std::vector<int> alive(g.num_vertices());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = static_cast<int>(i);
  finish_sequentially(state, std::move(alive), rng, pram);
  result.matching = canonical_matching(std::move(state.matching));
  result.diag = state.diag;
  result.diag.pram = pram;
  if (ledger != nullptr) ledger->sequential(pram);
  return result;
}

MatchingResult sample_matching_separator(const PlanarGraph& g,
                                         RandomStream& rng, PramLedger* ledger,
                                         const SeparatorSamplerOptions& options) {
  MatchingResult result;
  if (g.num_vertices() == 0) return result;
  check_arg(g.components().size() <= 1,
            "sample_matching_separator: graph must be connected "
            "(sample components separately)");
  SharedState state;
  state.graph = &g;
  const MatchingCounter counter(g);
  state.counter = &counter;
  check_has_matching(counter);
  std::vector<int> alive(g.num_vertices());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = static_cast<int>(i);
  const PramStats pram =
      sample_component(state, std::move(alive), rng.split(), options);
  result.matching = canonical_matching(std::move(state.matching));
  result.diag = state.diag;
  result.diag.pram = pram;
  if (ledger != nullptr) ledger->sequential(pram);
  return result;
}

}  // namespace pardpp
