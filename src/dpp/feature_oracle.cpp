#include "dpp/feature_oracle.h"

#include <cmath>
#include <limits>
#include <utility>

#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// From-scratch joint marginal of the k-DPP with feature matrix `b` and
// partition log_z — the reference arithmetic shared by the base oracle
// and the commit-path state.
double feature_log_joint_scratch(const Matrix& b, std::size_t k,
                                 double log_z, std::span<const int> t) {
  const std::size_t tsize = t.size();
  if (tsize > k) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T) = det(Gram of the T rows of B).
  Matrix gram_t(tsize, tsize);
  for (std::size_t a = 0; a < tsize; ++a) {
    for (std::size_t c = a; c < tsize; ++c) {
      double acc = 0.0;
      for (std::size_t x = 0; x < b.cols(); ++x)
        acc += b(static_cast<std::size_t>(t[a]), x) *
               b(static_cast<std::size_t>(t[c]), x);
      gram_t(a, c) = acc;
      gram_t(c, a) = acc;
    }
  }
  const auto chol = cholesky(gram_t);
  if (!chol.has_value()) return kNegInf;
  const double log_det_t = chol->log_det();
  if (tsize == k) return log_det_t - log_z;
  // Conditioned features; spectrum from the reduced Gram matrix.
  Matrix conditioned;
  try {
    conditioned = condition_features(b, t);
  } catch (const NumericalError&) {
    return kNegInf;
  }
  const Matrix gram = conditioned.transpose() * conditioned;
  auto lambda = symmetric_eigenvalues(gram);
  clamp_spectrum_to_rank(lambda);
  const auto log_e = log_esp(lambda, k - tsize);
  const double tail = log_e[k - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_z;
}

}  // namespace

FeatureKdppOracle::FeatureKdppOracle(Matrix features, std::size_t k)
    : features_(std::move(features)), k_(k) {
  check_arg(k_ <= features_.rows(),
            "FeatureKdppOracle: k exceeds ground size");
  check_arg(k_ <= features_.cols(),
            "FeatureKdppOracle: k exceeds the feature dimension "
            "(rank bound)");
}

const LowRankEigen& FeatureKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = eigen_from_features(features_);
  return *eigen_;
}

const LogEspTable& FeatureKdppOracle::esp() const {
  if (!esp_.has_value()) esp_ = LogEspTable(eigen().values, k_);
  return *esp_;
}

const Matrix& FeatureKdppOracle::gram() const {
  if (!gram_.has_value()) {
    Matrix g(features_.cols(), features_.cols());
    sym_rank_k_update(g, 1.0, features_.flat().data(), features_.rows(),
                      features_.cols(), features_.cols());
    gram_ = std::move(g);
  }
  return *gram_;
}

const std::vector<double>& FeatureKdppOracle::marginal_cache() const {
  if (!marginals_.has_value()) {
    const std::size_t n = ground_size();
    std::vector<double> p(n, 0.0);
    if (k_ != 0) {
      const auto& eig = eigen();
      const auto& table = esp();
      check_numeric(eig.values.size() >= k_,
                    "FeatureKdppOracle: rank below k — partition function "
                    "zero");
      const double log_z = table.log_e(k_);
      check_numeric(log_z != kNegInf,
                    "FeatureKdppOracle: partition function zero");
      const std::size_t modes = eig.values.size();
      std::vector<double> w;
      esp_mode_weights(eig.values, table, k_, w);
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t m = 0; m < modes; ++m) {
          const double v = eig.vectors(i, m);
          acc += w[m] * v * v;
        }
        p[i] = std::min(acc, 1.0);
      }
    }
    marginals_ = std::move(p);
  }
  return *marginals_;
}

const std::vector<double>& FeatureKdppOracle::log_marginal_cache() const {
  if (!log_marginals_.has_value())
    log_marginals_ = log_probabilities(marginal_cache());
  return *log_marginals_;
}

std::vector<double> FeatureKdppOracle::marginals() const {
  return marginal_cache();
}

double FeatureKdppOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  if (t.empty()) return 0.0;
  return feature_log_joint_scratch(features_, k_, esp().log_e(k_), t);
}

MarginalDraw FeatureKdppOracle::draw_marginal(RandomStream& rng) const {
  const auto& eig = eigen();
  const auto& table = esp();
  check_numeric(table.log_e(k_) != kNegInf,
                "draw_marginal: partition function is zero");
  std::vector<double> w;
  esp_mode_weights(eig.values, table, k_, w);
  const std::size_t mode = rng.categorical(w);
  const std::size_t n = ground_size();
  std::vector<double> col(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = eig.vectors(i, mode);
    col[i] = v * v;
  }
  MarginalDraw draw;
  draw.index = static_cast<int>(rng.categorical(col));
  return draw;
}

// Wave-scoped incremental query evaluator: all conditioning happens on the
// d x d Gram of the view it was created from — the base oracle's cached
// Gram, or the commit-path state's projected Gram — so query cost is
// independent of the ground size n. With W = R^{-1} B_T (R the
// incrementally grown Cholesky factor of Gram(B_T)), the projection onto
// span(B_T rows) is P = W^T W and the conditioned Gram is (I - P) G (I - P).
class FeatureKdppOracle::State final : public ConditionalState {
 public:
  State(const Matrix& features, const Matrix& gram, std::size_t k,
        double log_z, const std::vector<double>* log_marginals)
      : b_(features), g_(gram), k_(k), log_z_(log_z),
        log_marginals_(log_marginals), chol_(k) {}

  [[nodiscard]] double log_joint(std::span<const int> t) override {
    const std::size_t tsize = t.size();
    const std::size_t n = b_.rows();
    const std::size_t d = b_.cols();
    if (tsize > k_) return kNegInf;
    if (tsize == 0) return 0.0;
    for (const int i : t)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "log_joint: index out of range");
    if (tsize == 1 && log_z_ != kNegInf && log_marginals_ != nullptr)
      return (*log_marginals_)[static_cast<std::size_t>(t[0])];
    // Incremental Cholesky of Gram(B_T) = L_T; W starts as the raw T rows
    // and is forward-substituted into R^{-1} B_T below. The threshold is
    // seeded with the block's largest diagonal (the largest T row norm)
    // so the singularity verdict matches a from-scratch factorization,
    // independent of the batch's element order.
    norms_.resize(tsize);
    double max_diag = 0.0;
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto br = b_.row(static_cast<std::size_t>(t[r]));
      double acc = 0.0;
      for (std::size_t x = 0; x < d; ++x) acc += br[x] * br[x];
      norms_[r] = acc;
      max_diag = std::max(max_diag, acc);
    }
    chol_.clear(max_diag);
    row_.resize(tsize);
    w_.resize(tsize * d);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto br = b_.row(static_cast<std::size_t>(t[r]));
      for (std::size_t c = 0; c < r; ++c) {
        const auto bc = b_.row(static_cast<std::size_t>(t[c]));
        double acc = 0.0;
        for (std::size_t x = 0; x < d; ++x) acc += br[x] * bc[x];
        row_[c] = acc;
      }
      row_[r] = norms_[r];
      if (!chol_.append(std::span<const double>(row_.data(), r + 1)))
        return kNegInf;
      for (std::size_t x = 0; x < d; ++x) w_[r * d + x] = br[x];
    }
    const double log_det_t = chol_.log_det();
    if (tsize == k_) return log_det_t - log_z_;
    chol_.forward_solve_rows(w_.data(), d, d);
    // A = W G (t x d), then conditioned = G - W^T A - A^T W + W^T (A W^T) W,
    // assembled as G - W^T D - A^T W with D = A - (A W^T) W.
    a_.assign(tsize * d, 0.0);
    for (std::size_t r = 0; r < tsize; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        const double w = w_[r * d + c];
        if (w == 0.0) continue;
        const double* grow = &g_(c, 0);
        double* arow = a_.data() + r * d;
        for (std::size_t j = 0; j < d; ++j) arow[j] += w * grow[j];
      }
    }
    awt_.assign(tsize * tsize, 0.0);
    for (std::size_t r = 0; r < tsize; ++r)
      for (std::size_t s = 0; s < tsize; ++s) {
        double acc = 0.0;
        for (std::size_t j = 0; j < d; ++j)
          acc += a_[r * d + j] * w_[s * d + j];
        awt_[r * tsize + s] = acc;
      }
    d_.assign(a_.begin(), a_.end());
    for (std::size_t r = 0; r < tsize; ++r)
      for (std::size_t s = 0; s < tsize; ++s) {
        const double c = awt_[r * tsize + s];
        if (c == 0.0) continue;
        for (std::size_t j = 0; j < d; ++j)
          d_[r * d + j] -= c * w_[s * d + j];
      }
    if (reduced_.rows() != d || reduced_.cols() != d)
      reduced_ = Matrix(d, d);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i; j < d; ++j) {
        double acc = g_(i, j);
        for (std::size_t r = 0; r < tsize; ++r)
          acc -= w_[r * d + i] * d_[r * d + j] + a_[r * d + i] * w_[r * d + j];
        reduced_(i, j) = acc;
        reduced_(j, i) = acc;
      }
    }
    lambda_ = symmetric_eigenvalues(reduced_);
    clamp_spectrum_to_rank(lambda_);
    const auto log_e = log_esp(lambda_, k_ - tsize);
    const double tail = log_e[k_ - tsize];
    if (tail == kNegInf) return kNegInf;
    return log_det_t + tail - log_z_;
  }

 private:
  const Matrix& b_;
  const Matrix& g_;
  std::size_t k_;
  double log_z_;
  const std::vector<double>* log_marginals_;
  IncrementalCholesky chol_;
  std::vector<double> norms_;  // |B_T row|^2, the Gram block's diagonal
  std::vector<double> row_;
  std::vector<double> w_;    // t x d: R^{-1} B_T
  std::vector<double> a_;    // t x d: W G
  std::vector<double> awt_;  // t x t: W G W^T
  std::vector<double> d_;    // t x d: A - (A W^T) W
  std::vector<double> lambda_;
  Matrix reduced_;
};

std::unique_ptr<ConditionalState> FeatureKdppOracle::make_conditional_state()
    const {
  const double log_z = esp().log_e(k_);
  const std::vector<double>* lm =
      log_z != kNegInf ? &log_marginal_cache() : nullptr;
  return std::make_unique<State>(features_, gram(), k_, log_z, lm);
}

// ---- the commit path (DESIGN.md §2 convention 7) ----
//
// Everything the condition() chain re-materializes per accepted round —
// the (d - t)-column conditioned feature matrix, its n d^2 Gram, the
// spectral map — is maintained in place instead: the accepted rows are
// Gram–Schmidt'd into unit directions (they are already orthogonal to all
// previously committed directions, because the live features stay
// projected), each direction updates the cached d x d Gram by a rank-2
// projection and the live feature rows by a rank-1 projection, and only
// the d x d eigendecomposition is recomputed per round. Per-round cost
// drops from O(n d^2) feature/Gram rebuilds to O(n d t + d^3).
class FeatureKdppOracle::Committed final : public CommittedOracle {
 public:
  explicit Committed(const FeatureKdppOracle& base)
      : base_(&base), k_cur_(base.k_) {}

  void commit(std::span<const int> batch, double /*log_joint*/) override {
    const std::size_t tsize = batch.size();
    if (tsize == 0) return;
    check_arg(tsize <= k_cur_, "commit: |batch| exceeds k");
    const std::size_t d = base_->features_.cols();
    if (rounds_ == 0) {
      bt_ = base_->features_;  // materialized once per run, then projected
      gram_ = base_->gram();
    }
    const std::size_t n = bt_.rows();
    for (const int i : batch)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "commit: index out of range");
    // Orthonormal directions spanning the accepted rows — the same
    // Gram-Schmidt (and the same null-event threshold) as
    // condition_features, via the shared helper. The batch rows are
    // already orthogonal to all previously committed directions, so
    // orthogonalizing within the batch suffices. Throws before any state
    // mutates, so a caught null-event commit leaves the state intact.
    orthonormalize_feature_rows(bt_, batch, q_);
    // Project the live rows and the Gram by each direction: rank-1 on the
    // features, rank-2 on the Gram. Committed rows land exactly in the
    // span being removed, so the projected Gram equals the Gram of the
    // projected *remaining* rows.
    for (std::size_t j = 0; j < tsize; ++j) {
      const double* qj = q_.data() + j * d;
      for (std::size_t i = 0; i < n; ++i) {
        double* row = bt_.row(i).data();
        double dot = 0.0;
        for (std::size_t c = 0; c < d; ++c) dot += row[c] * qj[c];
        if (dot == 0.0) continue;
        for (std::size_t c = 0; c < d; ++c) row[c] -= dot * qj[c];
      }
      gq_.assign(d, 0.0);
      for (std::size_t r = 0; r < d; ++r) {
        const double* grow = gram_.row(r).data();
        double acc = 0.0;
        for (std::size_t c = 0; c < d; ++c) acc += grow[c] * qj[c];
        gq_[r] = acc;
      }
      double qgq = 0.0;
      for (std::size_t c = 0; c < d; ++c) qgq += qj[c] * gq_[c];
      for (std::size_t r = 0; r < d; ++r) {
        double* grow = gram_.row(r).data();
        const double vr = gq_[r];
        const double qr = qj[r];
        for (std::size_t c = 0; c < d; ++c)
          grow[c] += qgq * qr * qj[c] - qr * gq_[c] - vr * qj[c];
      }
    }
    // Delete the committed rows (delete + compact, order preserved).
    mask_.assign(n, 0);
    for (const int i : batch) mask_[static_cast<std::size_t>(i)] = 1;
    Matrix next(n - tsize, d);
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask_[i] != 0) continue;
      const auto src = bt_.row(i);
      double* dst = next.row(w).data();
      for (std::size_t c = 0; c < d; ++c) dst[c] = src[c];
      ++w;
    }
    bt_ = std::move(next);
    k_cur_ -= tsize;
    committed_ += tsize;
    ++rounds_;
    refresh_spectrum();
  }

  void reset() override {
    k_cur_ = base_->k_;
    committed_ = 0;
    rounds_ = 0;
    values_.clear();
    esp_.reset();
    marginals_.reset();
    log_marginals_.reset();
  }

  [[nodiscard]] std::size_t committed_count() const override {
    return committed_;
  }

  [[nodiscard]] std::size_t ground_size() const override {
    return rounds_ == 0 ? base_->ground_size() : bt_.rows();
  }
  [[nodiscard]] std::size_t sample_size() const override { return k_cur_; }

  [[nodiscard]] double log_joint_marginal(
      std::span<const int> t) const override {
    if (t.size() > k_cur_) return kNegInf;
    if (t.empty()) return 0.0;
    return feature_log_joint_scratch(features(), k_cur_, log_partition(), t);
  }

  [[nodiscard]] std::vector<double> marginals() const override {
    return marginal_cache();
  }

  [[nodiscard]] MarginalDraw draw_marginal(RandomStream& rng) const override {
    if (rounds_ == 0) return base_->draw_marginal(rng);
    check_numeric(log_partition() != kNegInf,
                  "draw_marginal: partition function is zero");
    esp_mode_weights(values_, *esp_, k_cur_, w_scratch_);
    const std::size_t mode = rng.categorical(w_scratch_);
    // Item ~ (b~_i . u_mode)^2: one O(n d) matvec against the projected
    // rows — the constant-size inner loop the two-stage protocol buys.
    const std::size_t n = bt_.rows();
    const std::size_t d = bt_.cols();
    const double* u = umodes_.row(mode).data();
    col_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = bt_.row(i).data();
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) acc += row[c] * u[c];
      col_scratch_[i] = acc * acc;
    }
    MarginalDraw draw;
    draw.index = static_cast<int>(rng.categorical(col_scratch_));
    return draw;
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override {
    check_arg(t.size() <= k_cur_, "condition: |T| exceeds k");
    return std::make_unique<FeatureKdppOracle>(
        condition_features(features(), t), k_cur_ - t.size());
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override {
    return std::make_unique<FeatureKdppOracle>(features(), k_cur_);
  }

  [[nodiscard]] std::string name() const override { return base_->name(); }

  void prepare_concurrent() const override {
    if (rounds_ == 0) {
      base_->prepare_concurrent();
      return;
    }
    if (log_partition() != kNegInf) (void)log_marginal_cache();
  }

  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override {
    if (rounds_ == 0) return base_->make_conditional_state();
    const double log_z = log_partition();
    const std::vector<double>* lm =
        log_z != kNegInf ? &log_marginal_cache() : nullptr;
    return std::make_unique<State>(bt_, gram_, k_cur_, log_z, lm);
  }

 private:
  [[nodiscard]] const Matrix& features() const {
    return rounds_ == 0 ? base_->features_ : bt_;
  }
  [[nodiscard]] double log_partition() const {
    return rounds_ == 0 ? base_->esp().log_e(k_cur_) : esp_->log_e(k_cur_);
  }

  void refresh_spectrum() {
    marginals_.reset();
    log_marginals_.reset();
    values_.clear();
    if (k_cur_ == 0) {
      esp_ = LogEspTable(values_, 0);
      umodes_ = Matrix();
      return;
    }
    // Nonzero spectrum of the projected Gram, mirroring
    // eigen_from_features' rank floor; the t committed directions show up
    // as (near-)zero modes and are dropped.
    const auto eig = symmetric_eigen(gram_);
    double top = 0.0;
    for (const double v : eig.values) top = std::max(top, v);
    const double floor = std::max(top * 1e-12, 1e-300);
    std::vector<std::size_t> keep;
    for (std::size_t m = 0; m < eig.values.size(); ++m) {
      if (eig.values[m] > floor) {
        keep.push_back(m);
        values_.push_back(eig.values[m]);
      }
    }
    const std::size_t d = gram_.rows();
    umodes_ = Matrix(keep.size(), d);  // row m = d-space eigenvector
    for (std::size_t m = 0; m < keep.size(); ++m)
      for (std::size_t c = 0; c < d; ++c)
        umodes_(m, c) = eig.vectors(c, keep[m]);
    esp_ = LogEspTable(values_, k_cur_);
  }

  [[nodiscard]] const std::vector<double>& marginal_cache() const {
    if (rounds_ == 0) return base_->marginal_cache();
    if (!marginals_.has_value()) {
      const std::size_t n = bt_.rows();
      std::vector<double> p(n, 0.0);
      if (k_cur_ != 0) {
        check_numeric(values_.size() >= k_cur_,
                      "FeatureKdppOracle: rank below k — partition "
                      "function zero");
        const double log_z = esp_->log_e(k_cur_);
        check_numeric(log_z != kNegInf,
                      "FeatureKdppOracle: partition function zero");
        const std::size_t modes = values_.size();
        const std::size_t d = bt_.cols();
        std::vector<double> w;
        esp_mode_weights(values_, *esp_, k_cur_, w);
        // p_i = |H^T b~_i|^2 with h_m = u_m sqrt(w_m / lambda_m): one
        // blocked (n x d) x (d x modes) pass instead of mapping the full
        // eigenbasis into item space.
        Matrix h(modes, d);
        for (std::size_t m = 0; m < modes; ++m) {
          const double scale = std::sqrt(w[m] / values_[m]);
          const double* u = umodes_.row(m).data();
          double* hrow = h.row(m).data();
          for (std::size_t c = 0; c < d; ++c) hrow[c] = scale * u[c];
        }
        const Matrix s = multiply_transposed_b(bt_, h);
        for (std::size_t i = 0; i < n; ++i) {
          const double* srow = s.row(i).data();
          double acc = 0.0;
          for (std::size_t m = 0; m < modes; ++m) acc += srow[m] * srow[m];
          p[i] = std::min(acc, 1.0);
        }
      }
      marginals_ = std::move(p);
    }
    return *marginals_;
  }

  [[nodiscard]] const std::vector<double>& log_marginal_cache() const {
    if (rounds_ == 0) return base_->log_marginal_cache();
    if (!log_marginals_.has_value())
      log_marginals_ = log_probabilities(marginal_cache());
    return *log_marginals_;
  }

  const FeatureKdppOracle* base_;
  std::size_t k_cur_;
  std::size_t committed_ = 0;
  std::size_t rounds_ = 0;
  Matrix bt_;                   // projected live rows (valid after round 1)
  Matrix gram_;                 // projected d x d Gram
  std::vector<double> values_;  // nonzero spectrum, ascending
  Matrix umodes_;               // modes x d (rows are d-space eigenvectors)
  std::optional<LogEspTable> esp_;
  mutable std::optional<std::vector<double>> marginals_;
  mutable std::optional<std::vector<double>> log_marginals_;
  // reused scratch
  std::vector<double> q_;
  std::vector<double> gq_;
  std::vector<char> mask_;
  mutable std::vector<double> w_scratch_;
  mutable std::vector<double> col_scratch_;
};

std::unique_ptr<CommittedOracle> FeatureKdppOracle::make_committed() const {
  return std::make_unique<Committed>(*this);
}

std::unique_ptr<CountingOracle> FeatureKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  return std::make_unique<FeatureKdppOracle>(condition_features(features_, t),
                                             k_ - t.size());
}

std::unique_ptr<CountingOracle> FeatureKdppOracle::restrict_to(
    std::span<const int> items, std::span<const double> scales) const {
  check_arg(items.size() >= k_, "restrict_to: fewer items than k");
  return std::make_unique<FeatureKdppOracle>(
      gather_scaled_rows(features_, items, scales), k_);
}

DistillationProfile FeatureKdppOracle::distillation_profile() const {
  DistillationProfile profile;
  profile.rank_bound = features_.cols();
  profile.weights.resize(features_.rows());
  for (std::size_t i = 0; i < features_.rows(); ++i) {
    const auto row = features_.row(i);
    double acc = 0.0;
    for (std::size_t c = 0; c < features_.cols(); ++c) acc += row[c] * row[c];
    profile.weights[i] = acc;
  }
  return profile;
}

double FeatureKdppOracle::log_partition() const { return esp().log_e(k_); }

std::unique_ptr<CountingOracle> FeatureKdppOracle::clone() const {
  return std::make_unique<FeatureKdppOracle>(features_, k_);
}

void FeatureKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
  (void)gram();
  if (esp().log_e(k_) != kNegInf) (void)log_marginal_cache();
}

}  // namespace pardpp
