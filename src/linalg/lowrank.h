// Low-rank ("dual") representations of symmetric PSD kernels.
//
// Real DPP deployments build L = B B^T from an n x d feature matrix with
// d << n (the paper's applications in §1.1 — summarization, recommender
// slates — all live here). The dual trick keeps every oracle operation in
// O(n d^2 + d^3):
//  * spectrum: the nonzero eigenvalues of B B^T are those of the d x d
//    Gram matrix B^T B, with eigenvectors U = B V diag(lambda)^{-1/2};
//  * conditioning: the Schur complement of L on T is again low-rank,
//    (B')(B')^T with B' = B_rest Z where Z spans the orthogonal
//    complement of span(B_T rows) — the rank drops by |T| per
//    conditioning step.
#pragma once

#include "linalg/matrix.h"

namespace pardpp {

/// Nonzero part of the eigendecomposition of B B^T.
struct LowRankEigen {
  std::vector<double> values;  ///< nonzero eigenvalues, ascending
  Matrix vectors;              ///< n x values.size(), orthonormal columns
};

/// Spectral decomposition of B B^T via the d x d Gram matrix.
/// Eigenvalues below `rank_tol` * max are dropped.
[[nodiscard]] LowRankEigen eigen_from_features(const Matrix& b,
                                               double rank_tol = 1e-12);

/// Returns B' with B' B'^T equal to the Schur complement
/// (B B^T)^T = L_RR - L_RT L_TT^{-1} L_TR (rows R = complement of T in
/// original order, columns reduced to d - |T|). Throws NumericalError when
/// the rows B_T are linearly dependent (conditioning on a null event).
[[nodiscard]] Matrix condition_features(const Matrix& b,
                                        std::span<const int> t);

/// Restricted-ensemble assembly: the |items| x d matrix whose row j is
/// scales[j] * B.row(items[j]) (scales empty = all ones). Items may
/// repeat or reorder — repeated items produce parallel rows, which is
/// exactly what the distillation front end needs (parallel rows have a
/// singular Gram block, so a k-DPP on the gathered matrix never selects
/// two copies of one item). One O(|items| d) gather pass; no part of B's
/// spectral preprocessing is touched.
[[nodiscard]] Matrix gather_scaled_rows(const Matrix& b,
                                        std::span<const int> items,
                                        std::span<const double> scales);

/// Orthonormal basis of the rows B_T by two-pass modified Gram-Schmidt,
/// written as |T| rows of length B.cols() into `q` (resized). This is
/// *the* feature-space null-event detector — `condition_features` and the
/// commit path share it, so the linear-dependence threshold (norm 1e-10,
/// NumericalError) cannot drift between the reference and incremental
/// conditioning paths.
void orthonormalize_feature_rows(const Matrix& b, std::span<const int> t,
                                 std::vector<double>& q);

}  // namespace pardpp
