// pardpp sampling CLI — drive the library from the command line.
//
// Modes:
//   sample_cli kernel <csv> --k <k> [--sampler batched|sequential|entropic]
//       Samples a k-DPP from a dense kernel matrix stored as CSV rows.
//       The kernel is treated as symmetric if it is (numerically), else
//       as a nonsymmetric PSD ensemble.
//   sample_cli rbf <csv> --k <k> --bandwidth <w>
//       Treats CSV rows as points, builds the RBF kernel, samples.
//   sample_cli grid <rows> <cols>
//       Samples a uniform perfect matching (domino tiling) of a grid.
// Common flags: --seed <s>, --trials <t> (repeat and report marginals).
//
// Exit codes map the library's exception taxonomy so shell callers and
// service wrappers can branch on the failure class without parsing
// stderr:
//   0  success
//   1  usage error (bad flags, bad input shape)
//   2  other pardpp::Error / unexpected failure
//   3  pardpp::InvalidArgument     (a precondition the caller controls)
//   4  pardpp::NumericalError      (non-PSD kernel, pivot failure, drift)
//   5  pardpp::SamplingFailure     (rejection budget exhausted)
//   6  pardpp::DistillationStarvation (no candidate pool accepted;
//      stderr carries the attempts/duplicate-rejects forensics)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

struct CliOptions {
  std::string mode;
  std::string path;
  std::size_t k = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  double bandwidth = 0.25;
  std::string sampler = "batched";
  std::uint64_t seed = 1;
  int trials = 1;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sample_cli kernel <csv> --k <k> [--sampler batched|sequential|"
      "entropic] [--seed s] [--trials t]\n"
      "  sample_cli rbf <csv> --k <k> [--bandwidth w] [--seed s] "
      "[--trials t]\n"
      "  sample_cli grid <rows> <cols> [--seed s] [--trials t]\n");
  std::exit(1);
}

Matrix load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
    if (!rows.empty() && row.size() != rows.front().size()) {
      std::fprintf(stderr, "error: ragged CSV at line %zu\n", rows.size() + 1);
      std::exit(2);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::fprintf(stderr, "error: empty CSV\n");
    std::exit(2);
  }
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < rows[i].size(); ++j) m(i, j) = rows[i][j];
  return m;
}

CliOptions parse(int argc, char** argv) {
  CliOptions options;
  if (argc < 3) usage();
  options.mode = argv[1];
  int positional_start = 2;
  if (options.mode == "grid") {
    if (argc < 4) usage();
    options.rows = static_cast<std::size_t>(std::stoul(argv[2]));
    options.cols = static_cast<std::size_t>(std::stoul(argv[3]));
    positional_start = 4;
  } else if (options.mode == "kernel" || options.mode == "rbf") {
    options.path = argv[2];
    positional_start = 3;
  } else {
    usage();
  }
  for (int i = positional_start; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--k") {
      options.k = static_cast<std::size_t>(std::stoul(next()));
    } else if (flag == "--bandwidth") {
      options.bandwidth = std::stod(next());
    } else if (flag == "--sampler") {
      options.sampler = next();
    } else if (flag == "--seed") {
      options.seed = std::stoull(next());
    } else if (flag == "--trials") {
      options.trials = std::stoi(next());
    } else {
      usage();
    }
  }
  return options;
}

int run_dpp(const CliOptions& options, const Matrix& l) {
  if (options.k == 0 || options.k > l.rows()) {
    std::fprintf(stderr, "error: need 1 <= --k <= %zu\n", l.rows());
    return 1;
  }
  const bool symmetric = l.is_symmetric(1e-9);
  std::unique_ptr<CountingOracle> oracle;
  if (symmetric) {
    oracle = std::make_unique<SymmetricKdppOracle>(l, options.k);
  } else {
    oracle = std::make_unique<GeneralDppOracle>(l, options.k);
  }
  std::printf("# n = %zu, k = %zu, kernel = %s, sampler = %s\n", l.rows(),
              options.k, symmetric ? "symmetric" : "nonsymmetric",
              options.sampler.c_str());
  RandomStream rng(options.seed);
  std::vector<double> freq(l.rows(), 0.0);
  for (int trial = 0; trial < options.trials; ++trial) {
    PramLedger ledger;
    SampleResult result;
    if (options.sampler == "sequential") {
      result = sample_sequential(*oracle, rng, &ledger);
    } else if (options.sampler == "entropic" || !symmetric) {
      result = sample_entropic(*oracle, rng, &ledger);
    } else if (options.sampler == "batched") {
      result = sample_batched(*oracle, rng, &ledger);
    } else {
      std::fprintf(stderr, "error: unknown sampler %s\n",
                   options.sampler.c_str());
      return 1;
    }
    std::printf("sample %d (depth %.0f): ", trial,
                ledger.stats().depth);
    for (const int item : result.items) std::printf("%d ", item);
    std::printf("\n");
    for (const int item : result.items)
      freq[static_cast<std::size_t>(item)] += 1.0;
  }
  if (options.trials > 1) {
    std::printf("# empirical marginals:");
    for (std::size_t i = 0; i < l.rows(); ++i)
      std::printf(" %.3f", freq[i] / options.trials);
    std::printf("\n");
  }
  return 0;
}

int run_grid(const CliOptions& options) {
  const auto g = grid_graph(options.rows, options.cols);
  RandomStream rng(options.seed);
  std::printf("# grid %zux%zu, uniform perfect matchings via Theorem 11\n",
              options.rows, options.cols);
  for (int trial = 0; trial < options.trials; ++trial) {
    PramLedger ledger;
    const auto result = sample_matching_separator(g, rng, &ledger);
    std::printf("matching %d (depth %.0f):", trial, ledger.stats().depth);
    for (const auto& [u, v] : result.matching)
      std::printf(" (%d,%d)", u, v);
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse(argc, argv);
  try {
    if (options.mode == "grid") return run_grid(options);
    Matrix m = load_csv(options.path);
    if (options.mode == "rbf") {
      m = rbf_kernel(m, options.bandwidth);
      for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += 1e-9;
    }
    if (!m.square()) {
      std::fprintf(stderr, "error: kernel CSV must be square\n");
      return 1;
    }
    return run_dpp(options, m);
  } catch (const DistillationStarvation& e) {
    // Most-derived first: starvation is a SamplingFailure with a
    // diagnostics payload worth surfacing.
    std::fprintf(stderr,
                 "pardpp starvation: %s\n"
                 "  attempts=%zu duplicate_rejects=%zu tail_candidates=%zu\n",
                 e.what(), e.diag.proposals, e.diag.duplicate_rejects,
                 e.diag.tail_candidates);
    return 6;
  } catch (const SamplingFailure& e) {
    std::fprintf(stderr, "pardpp sampling failure: %s\n", e.what());
    return 5;
  } catch (const NumericalError& e) {
    std::fprintf(stderr, "pardpp numerical error: %s\n", e.what());
    return 4;
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "pardpp invalid argument: %s\n", e.what());
    return 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "pardpp error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unexpected error: %s\n", e.what());
    return 2;
  }
}
