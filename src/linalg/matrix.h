// Dense matrix type used throughout pardpp.
//
// The library deliberately ships its own small dense-linear-algebra layer
// instead of depending on an external BLAS/LAPACK: the counting oracles the
// paper relies on (determinants, Schur complements, characteristic
// polynomials, Pfaffians) are part of the system being reproduced, and the
// test suite validates them against brute-force enumeration.
//
// `BasicMatrix<T>` is row-major and contiguous; `Matrix` is the real
// (double) instantiation and `CMatrix` the complex one (used by the
// roots-of-unity characteristic-polynomial oracle).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "parallel/execution.h"
#include "support/error.h"

namespace pardpp {

template <typename T>
class BasicMatrix {
 public:
  using value_type = T;

  BasicMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  BasicMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// rows x cols matrix with every entry set to `fill`.
  BasicMatrix(std::size_t rows, std::size_t cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// n x n identity.
  [[nodiscard]] static BasicMatrix identity(std::size_t n) {
    BasicMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// Diagonal matrix from a vector.
  [[nodiscard]] static BasicMatrix diagonal(std::span<const T> diag) {
    BasicMatrix m(diag.size(), diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] const T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  [[nodiscard]] std::span<T> row(std::size_t i) noexcept {
    return std::span<T>(data_.data() + i * cols_, cols_);
  }
  [[nodiscard]] std::span<const T> row(std::size_t i) const noexcept {
    return std::span<const T>(data_.data() + i * cols_, cols_);
  }

  [[nodiscard]] std::span<T> flat() noexcept { return std::span<T>(data_); }
  [[nodiscard]] std::span<const T> flat() const noexcept {
    return std::span<const T>(data_);
  }

  /// Gathered submatrix with the given row and column index lists
  /// (indices may repeat or reorder).
  [[nodiscard]] BasicMatrix gather(std::span<const int> row_idx,
                                   std::span<const int> col_idx) const {
    BasicMatrix out(row_idx.size(), col_idx.size());
    for (std::size_t i = 0; i < row_idx.size(); ++i) {
      const auto r = static_cast<std::size_t>(row_idx[i]);
      check_arg(r < rows_, "gather: row index out of range");
      for (std::size_t j = 0; j < col_idx.size(); ++j) {
        const auto c = static_cast<std::size_t>(col_idx[j]);
        check_arg(c < cols_, "gather: col index out of range");
        out(i, j) = (*this)(r, c);
      }
    }
    return out;
  }

  /// Principal submatrix on an index set.
  [[nodiscard]] BasicMatrix principal(std::span<const int> idx) const {
    return gather(idx, idx);
  }

  [[nodiscard]] BasicMatrix transpose() const {
    BasicMatrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  BasicMatrix& operator+=(const BasicMatrix& o) {
    check_arg(rows_ == o.rows_ && cols_ == o.cols_, "matrix +=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }

  BasicMatrix& operator-=(const BasicMatrix& o) {
    check_arg(rows_ == o.rows_ && cols_ == o.cols_, "matrix -=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }

  BasicMatrix& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  [[nodiscard]] friend BasicMatrix operator+(BasicMatrix a, const BasicMatrix& b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend BasicMatrix operator-(BasicMatrix a, const BasicMatrix& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend BasicMatrix operator*(BasicMatrix a, T scalar) {
    a *= scalar;
    return a;
  }
  [[nodiscard]] friend BasicMatrix operator*(T scalar, BasicMatrix a) {
    a *= scalar;
    return a;
  }

  /// Matrix product (ikj loop order for cache friendliness). Row blocks
  /// fan out on the linalg execution context when the matrix is large
  /// enough to amortize the dispatch; each body owns a disjoint output row.
  [[nodiscard]] friend BasicMatrix operator*(const BasicMatrix& a,
                                             const BasicMatrix& b) {
    check_arg(a.cols_ == b.rows_, "matrix *: inner dimension mismatch");
    BasicMatrix out(a.rows_, b.cols_);
    const auto compute_row = [&](std::size_t i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        const T* brow = b.data_.data() + k * b.cols_;
        T* orow = out.data_.data() + i * out.cols_;
        for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aik * brow[j];
      }
    };
    const ExecutionContext& ctx = linalg_context();
    if (a.rows_ >= 64 && ctx.can_fan_out()) {
      ctx.for_each(0, a.rows_, compute_row);
    } else {
      for (std::size_t i = 0; i < a.rows_; ++i) compute_row(i);
    }
    return out;
  }

  /// Matrix-vector product.
  [[nodiscard]] std::vector<T> apply(std::span<const T> x) const {
    check_arg(x.size() == cols_, "apply: vector size mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      const T* row_ptr = data_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) acc += row_ptr[j] * x[j];
      y[i] = acc;
    }
    return y;
  }

  [[nodiscard]] T trace() const {
    check_arg(square(), "trace: matrix not square");
    T acc{};
    for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
    return acc;
  }

  /// Largest absolute entry (complex: largest modulus).
  [[nodiscard]] double max_abs() const {
    double best = 0.0;
    for (const auto& v : data_) best = std::max(best, std::abs(v));
    return best;
  }

  /// Frobenius norm.
  [[nodiscard]] double frobenius() const {
    double acc = 0.0;
    for (const auto& v : data_) acc += std::norm(std::complex<double>(v));
    return std::sqrt(acc);
  }

  /// True when |A - A^T|_max <= tol (only meaningful for square A).
  [[nodiscard]] bool is_symmetric(double tol = 1e-10) const {
    if (!square()) return false;
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = i + 1; j < cols_; ++j)
        if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    return true;
  }

  /// Symmetrization (A + A^T)/2.
  [[nodiscard]] BasicMatrix symmetric_part() const {
    check_arg(square(), "symmetric_part: matrix not square");
    BasicMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j)
        out(i, j) = ((*this)(i, j) + (*this)(j, i)) / T{2};
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = BasicMatrix<double>;
using CMatrix = BasicMatrix<std::complex<double>>;

/// C = A B^T for row-major A (m x k) and B (n x k). Both operands stream
/// their *rows*, so every inner product walks contiguous memory — the
/// cache-friendly orientation for the Gram/projection hot paths, where the
/// naive `a * b.transpose()` would first materialize the transpose. The
/// j-loop is tiled so a block of B rows stays resident in L1 across
/// consecutive rows of A.
[[nodiscard]] inline Matrix multiply_transposed_b(const Matrix& a,
                                                  const Matrix& b) {
  check_arg(a.cols() == b.cols(),
            "multiply_transposed_b: inner dimension mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k = a.cols();
  Matrix out(m, n);
  constexpr std::size_t kTile = 64;
  for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
    const std::size_t j1 = std::min(n, j0 + kTile);
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a.row(i).data();
      double* orow = out.row(i).data();
      // Four B rows share each arow load, and the four independent
      // accumulators break the single-dot dependency chain.
      std::size_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        const double* b0 = b.row(j).data();
        const double* b1 = b.row(j + 1).data();
        const double* b2 = b.row(j + 2).data();
        const double* b3 = b.row(j + 3).data();
        double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
          const double av = arow[c];
          acc0 += av * b0[c];
          acc1 += av * b1[c];
          acc2 += av * b2[c];
          acc3 += av * b3[c];
        }
        orow[j] = acc0;
        orow[j + 1] = acc1;
        orow[j + 2] = acc2;
        orow[j + 3] = acc3;
      }
      for (; j < j1; ++j) {
        const double* brow = b.row(j).data();
        double acc = 0.0;
        for (std::size_t c = 0; c < k; ++c) acc += arow[c] * brow[c];
        orow[j] = acc;
      }
    }
  }
  return out;
}

/// Blocked symmetric rank-k update C += alpha * A^T A, where A is `r` rows
/// of length `n` stored row-major with stride `stride` (a raw scratch
/// buffer, e.g. the half-solved Y of an incremental Schur complement).
/// Only the upper triangle is accumulated, then mirrored — C must be
/// symmetric n x n on entry. Rows of A are processed in blocks so each
/// pass over C's triangle reuses a resident strip of A.
inline void sym_rank_k_update(Matrix& c, double alpha, const double* a,
                              std::size_t r, std::size_t n,
                              std::size_t stride) {
  check_arg(c.rows() == n && c.cols() == n,
            "sym_rank_k_update: output shape mismatch");
  constexpr std::size_t kBlock = 16;
  for (std::size_t r0 = 0; r0 < r; r0 += kBlock) {
    const std::size_t r1 = std::min(r, r0 + kBlock);
    for (std::size_t i = 0; i < n; ++i) {
      double* crow = c.row(i).data();
      for (std::size_t p = r0; p < r1; ++p) {
        const double* arow = a + p * stride;
        const double s = alpha * arow[i];
        if (s == 0.0) continue;
        for (std::size_t j = i; j < n; ++j) crow[j] += s * arow[j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = c(i, j);
}

/// Promotes a real matrix to complex.
[[nodiscard]] inline CMatrix to_complex(const Matrix& m) {
  CMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = m(i, j);
  return out;
}

}  // namespace pardpp
