// ExecutionContext — the bridge between the paper's logical PRAM rounds and
// the physical thread pool that executes them.
//
// The PRAM cost model (pram.h) *accounts* for parallel rounds; this header
// makes them physically concurrent. A context bundles the three things one
// round of wide, independent work needs:
//
//  * a `ThreadPool*` to fan the round's machines out on (null = serial);
//  * a `PramLedger*` so logical depth/width accounting stays attached to
//    the execution that produced it;
//  * a deterministic per-machine RNG forking policy (`MachineStreams`,
//    built on `RandomStream::split()`), so the sample drawn is a function
//    of the seed alone — *never* of the worker count or of how chunks land
//    on workers.
//
// Round-execution conventions (DESIGN.md §2):
//  1. Each logical round forks exactly one tag off the caller's stream via
//     `MachineStreams`, then derives machine m's private stream from
//     (tag, m). The caller's stream therefore advances identically at
//     every pool size.
//  2. Speculative rejection trials run in *waves* of `wave_width()`
//     machines. All trials of a wave execute concurrently; the accepted
//     trial is the lowest-index acceptance, which is invariant under the
//     wave width, so early exit never breaks determinism.
//  3. Nested rounds degenerate to serial execution on the worker they
//     occupy (see the nesting guard in parallel_for.h), so oracles may
//     parallelize internally without deadlocking the pool.
//  4. Fan-out follows *physical* concurrency: a pool wider than the host's
//     core count adds speculative work and dispatch cost without adding
//     parallel execution, so `can_fan_out()`/`wave_width()` clamp to
//     `physical_concurrency()`. On a single-core host every pool size
//     therefore executes the identical serial instruction stream.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/pram.h"
#include "parallel/thread_pool.h"
#include "support/random.h"

namespace pardpp {

/// Number of hardware execution units actually available to this process
/// (>= 1). Pools may hold more threads than this; policy decisions about
/// fan-out and speculation width should not.
[[nodiscard]] std::size_t physical_concurrency() noexcept;

/// Execution state threaded through samplers, oracles, and linalg.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(ThreadPool* pool, PramLedger* ledger) noexcept
      : pool_(pool), ledger_(ledger) {}

  /// Serial context (the default for the legacy ledger-only entry points).
  [[nodiscard]] static ExecutionContext serial(
      PramLedger* ledger = nullptr) noexcept {
    return {nullptr, ledger};
  }

  /// Context on the process-wide shared pool.
  [[nodiscard]] static ExecutionContext on_shared_pool(
      PramLedger* ledger = nullptr) {
    return {&ThreadPool::shared(), ledger};
  }

  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }
  [[nodiscard]] PramLedger* ledger() const noexcept { return ledger_; }

  /// A context sharing this pool but with no ledger (for inner stages
  /// whose rounds the caller charges itself).
  [[nodiscard]] ExecutionContext without_ledger() const noexcept {
    return {pool_, nullptr};
  }

  /// Threads the attached pool holds (1 = serial). This is the pool's
  /// width, not the host's: use physical_workers() for policy.
  [[nodiscard]] std::size_t workers() const noexcept {
    return pool_ != nullptr ? std::max<std::size_t>(pool_->size(), 1) : 1;
  }

  /// Workers that can actually execute concurrently: the pool width
  /// clamped to the host's physical concurrency (convention 4).
  [[nodiscard]] std::size_t physical_workers() const noexcept {
    return std::min(workers(), physical_concurrency());
  }

  /// True when a round fanned out here would actually run concurrently:
  /// a pool is attached, the host has more than one execution unit for
  /// it, and the caller is not already inside a parallel body (nested
  /// rounds degenerate serial — see the guard in parallel_for.h). Every
  /// "parallel or serial strategy?" branch must use this, so the
  /// degeneration policy lives in one place.
  [[nodiscard]] bool can_fan_out() const noexcept {
    return physical_workers() > 1 && !in_parallel_region();
  }

  /// Number of speculative rejection trials to launch per wave: one per
  /// physically concurrent worker. A wider wave would only deepen the
  /// critical path (a wave is ceil(width / workers) oracle evaluations
  /// deep) while wasting speculative queries past the first acceptance —
  /// and pool threads beyond the core count execute nothing in parallel,
  /// so they never widen the wave. Degenerates to 1 when the trials
  /// would run serially anyway (no pool, single core, or nested).
  [[nodiscard]] std::size_t wave_width() const noexcept {
    return can_fan_out() ? physical_workers() : 1;
  }

  /// Runs fn(i) for i in [begin, end) — fanned out on the pool when
  /// can_fan_out() holds, serially on the calling thread otherwise.
  /// `grain` is the minimum number of consecutive indices per dispatched
  /// task: pass the approximate number of cheap bodies worth one
  /// dispatch, so per-task overhead stops dominating small trials.
  /// Bodies must write to disjoint state.
  template <typename Fn>
  void for_each(std::size_t begin, std::size_t end, Fn&& fn,
                std::size_t grain = 1) const {
    if (!can_fan_out()) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    parallel_for(*pool_, begin, end, fn, grain);
  }

  /// Chunked variant: runs fn(lo, hi) over a partition of [begin, end),
  /// one call per dispatched task (a single call covering the whole range
  /// when running serially). The hook for batch work that amortizes
  /// per-chunk setup — scratch buffers, shared-prefix factorizations,
  /// commit-path states — across the chunk's items
  /// (CountingOracle::query_many builds one ConditionalState per chunk,
  /// SamplerSession::draw_many one CommittedOracle per chunk, this way).
  /// `grain` is the minimum number of consecutive indices per dispatched
  /// chunk: pass the number of items whose combined work amortizes one
  /// chunk's setup, so heavyweight per-chunk state is never built for a
  /// near-empty chunk.
  template <typename Fn>
  void for_each_chunk(std::size_t begin, std::size_t end, Fn&& fn,
                      std::size_t grain = 1) const {
    if (begin >= end) return;
    if (!can_fan_out()) {
      fn(begin, end);
      return;
    }
    parallel_for_chunks(*pool_, begin, end, fn, grain);
  }

  /// Charges one logical PRAM round to the attached ledger (no-op when
  /// the context carries none). Logical width is charged — the model's
  /// machine count, not the physical worker count.
  void charge(std::size_t machines, std::size_t oracle_calls = 0,
              double depth_cost = 1.0) const {
    charge_round(ledger_, machines, oracle_calls, depth_cost);
  }

 private:
  ThreadPool* pool_ = nullptr;
  PramLedger* ledger_ = nullptr;
};

/// Deterministic per-machine stream forking for one logical round.
///
/// Construction consumes exactly one `split()` from the parent stream
/// (convention 1 above); `stream(m)` then derives machine m's private
/// stream from the recorded tag by splitmix64 mixing. Children for
/// distinct machine indices are statistically independent, and the
/// mapping machine -> stream does not depend on which worker (or how many
/// workers) end up executing the machine.
class MachineStreams {
 public:
  explicit MachineStreams(RandomStream& parent) noexcept
      : tag_(parent.split().next_u64()) {}

  [[nodiscard]] RandomStream stream(std::size_t machine) const noexcept {
    std::uint64_t seed =
        tag_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(machine) + 1));
    return RandomStream(detail::splitmix64(seed));
  }

 private:
  std::uint64_t tag_;
};

/// The shared wave protocol for speculative rejection trials (§2
/// convention 2) — used by the batched, filtering, and finite-rejection
/// samplers so the determinism-critical orchestration exists once.
///
/// Up to `machines` trials run in waves of `wave_width()`:
///  * `evaluate(trial, stream)` runs concurrently, one call per machine,
///    with the machine's private stream (forked by index off `rng`, which
///    advances by exactly one split regardless of `machines`);
///  * `barrier(wave)` runs on the orchestrating thread after each wave's
///    evaluations — the hook for issuing the wave's counting queries as
///    one batched oracle round (pass a no-op when unused);
///  * `fold(trial)` scans the wave in machine order (counters, accept
///    draw consumption already recorded in the trial) and returns true to
///    accept, which ends the run.
///
/// `evaluate_grain` is forwarded to the wave's for_each: samplers whose
/// evaluate bodies are cheap (a few categorical draws) pass a large grain
/// so a wave costs at most one dispatch, while samplers whose evaluate
/// performs real linear algebra keep the default of one task per trial.
///
/// Returns whether any trial was accepted. Because trials are
/// machine-indexed and the fold scans in order, the accepted trial is the
/// lowest-index acceptance — invariant under the wave width, hence under
/// the pool size.
template <typename Trial, typename Evaluate, typename Barrier, typename Fold>
bool run_trial_waves(const ExecutionContext& ctx, std::size_t machines,
                     RandomStream& rng, Evaluate&& evaluate,
                     Barrier&& barrier, Fold&& fold,
                     std::size_t evaluate_grain = 1) {
  const MachineStreams streams(rng);
  const std::size_t width_cap = std::max<std::size_t>(ctx.wave_width(), 1);
  std::vector<Trial> trials;
  for (std::size_t wave_lo = 0; wave_lo < machines; wave_lo += width_cap) {
    const std::size_t width = std::min(machines - wave_lo, width_cap);
    trials.assign(width, Trial{});
    ctx.for_each(
        0, width,
        [&](std::size_t w) { evaluate(trials[w], streams.stream(wave_lo + w)); },
        evaluate_grain);
    barrier(std::span<Trial>(trials.data(), width));
    for (std::size_t w = 0; w < width; ++w) {
      if (fold(trials[w])) return true;
    }
  }
  return false;
}

/// Process-global context used by the linear-algebra hot paths (dense
/// multiply, charpoly node solves, eigensolver accumulation), which sit
/// below the oracle interface and cannot take a per-call context without
/// contaminating every signature. Serial by default; benches and servers
/// opt in via set_linalg_pool. Configure once at startup — the setter is
/// not synchronized against in-flight linalg calls.
[[nodiscard]] const ExecutionContext& linalg_context() noexcept;

/// Attaches (or detaches, with nullptr) the pool used by linalg hot paths.
void set_linalg_pool(ThreadPool* pool) noexcept;

}  // namespace pardpp
