// Fixed-size thread pool used as the execution backend for parallel rounds.
//
// Design notes (per C++ Core Guidelines CP.20-CP.26): workers are joined by
// RAII in the destructor, never detached; tasks are passed by value; the
// only shared state is the internal queue, guarded by a single mutex.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pardpp {

/// A minimal fixed-size thread pool with future-returning submission.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (defaults to hardware concurrency, at
  /// least one).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Stops accepting work, drains the queue, and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Shared process-wide pool (lazily constructed; function-local static per
  /// Core Guidelines R.6 / CP.110).
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pardpp
