#include "linalg/pfaffian.h"

#include <cmath>
#include <vector>

#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

void check_skew(const Matrix& a) {
  check_arg(a.square(), "pfaffian: matrix not square");
  const double scale = std::max(a.max_abs(), 1.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i; j < a.cols(); ++j) {
      check_arg(std::abs(a(i, j) + a(j, i)) <= 1e-9 * scale,
                "pfaffian: matrix not skew-symmetric");
    }
  }
}

void swap_rows_cols(Matrix& a, std::size_t i, std::size_t j) {
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) std::swap(a(i, k), a(j, k));
  for (std::size_t k = 0; k < n; ++k) std::swap(a(k, i), a(k, j));
}

}  // namespace

SignedLogDet pfaffian_log(Matrix a) {
  check_skew(a);
  const std::size_t n = a.rows();
  if (n % 2 != 0) return {kNegInf, 0};
  if (n == 0) return {0.0, 1};

  double log_abs = 0.0;
  int sign = 1;
  // Parlett-Reid tridiagonalization (Wimmer, ACM TOMS 38(4), Alg. "LTL"):
  // Pf(A) = prod over even k of the post-elimination entry A(k, k+1),
  // with a sign flip per row/column interchange.
  for (std::size_t k = 0; k + 1 < n; k += 2) {
    // Pivot: largest |A(i, k)| for i > k.
    std::size_t kp = k + 1;
    double best = std::abs(a(k + 1, k));
    for (std::size_t i = k + 2; i < n; ++i) {
      const double mag = std::abs(a(i, k));
      if (mag > best) {
        best = mag;
        kp = i;
      }
    }
    if (kp != k + 1) {
      swap_rows_cols(a, k + 1, kp);
      sign = -sign;
    }
    const double pivot = a(k, k + 1);
    if (pivot == 0.0 || best == 0.0) return {kNegInf, 0};
    log_abs += std::log(std::abs(pivot));
    if (pivot < 0.0) sign = -sign;
    if (k + 2 >= n) break;
    // Gauss transform: tau = A(k, k+2:) / A(k, k+1);
    // A(k+2:, k+2:) += tau * A(k+2:, k+1)^T - A(k+2:, k+1) * tau^T.
    const std::size_t rest = n - (k + 2);
    std::vector<double> tau(rest);
    std::vector<double> col(rest);
    for (std::size_t j = 0; j < rest; ++j) {
      tau[j] = a(k, k + 2 + j) / pivot;
      col[j] = a(k + 2 + j, k + 1);
    }
    for (std::size_t i = 0; i < rest; ++i) {
      for (std::size_t j = 0; j < rest; ++j) {
        a(k + 2 + i, k + 2 + j) += tau[i] * col[j] - col[i] * tau[j];
      }
    }
  }
  return {log_abs, sign};
}

double pfaffian_small(const Matrix& a) {
  check_skew(a);
  const std::size_t n = a.rows();
  if (n % 2 != 0) return 0.0;
  if (n == 0) return 1.0;
  check_arg(n <= 14, "pfaffian_small: matrix too large for expansion");
  // Pf(A) = sum_{j>0} (-1)^j A(0, j) Pf(A with rows/cols {0, j} removed).
  double acc = 0.0;
  std::vector<int> rest;
  rest.reserve(n - 2);
  for (std::size_t j = 1; j < n; ++j) {
    if (a(0, j) == 0.0) continue;
    rest.clear();
    for (std::size_t i = 1; i < n; ++i)
      if (i != j) rest.push_back(static_cast<int>(i));
    const double sub = pfaffian_small(a.principal(rest));
    const double parity = (j % 2 == 1) ? 1.0 : -1.0;
    acc += parity * a(0, j) * sub;
  }
  return acc;
}

}  // namespace pardpp
