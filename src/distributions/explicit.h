// Explicit-mass counting oracle for small custom distributions.
//
// Stores an unnormalized mass for every k-subset of [n] and answers all
// oracle queries by enumeration (O(C(n,k)) per query). This is the
// "anything goes" entry point of the framework: any homogeneous measure a
// user can tabulate gains every sampler in the library — the route the
// paper's Remark 2 gestures at for non-determinantal targets.
#pragma once

#include <functional>

#include "distributions/oracle.h"
#include "support/combinatorics.h"

namespace pardpp {

class ExplicitOracle final : public CountingOracle {
 public:
  /// Tabulates log-masses for every k-subset via the callback (subsets
  /// arrive in lexicographic order; return kNegInf for zero mass).
  ExplicitOracle(std::size_t n, std::size_t k,
                 const std::function<double(std::span<const int>)>& log_mass);

  [[nodiscard]] std::size_t ground_size() const override { return n_; }
  [[nodiscard]] std::size_t sample_size() const override { return k_; }
  [[nodiscard]] double log_joint_marginal(std::span<const int> t) const override;
  [[nodiscard]] std::vector<double> marginals() const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override;
  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override;
  [[nodiscard]] std::string name() const override { return "explicit"; }

  /// Exact probability of one subset (for tests and TV computations).
  [[nodiscard]] double log_probability(std::span<const int> subset) const;

 private:
  ExplicitOracle(std::size_t n, std::size_t k);

  std::size_t n_;
  std::size_t k_;
  SubsetIndexer indexer_;
  std::vector<double> log_masses_;
  double log_z_ = 0.0;
};

}  // namespace pardpp
