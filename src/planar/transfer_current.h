// Uniform spanning trees as a projection DPP over edges — the headline
// application of sublinear repeated sampling in Anari–Liu–Vuong
// (arXiv:2204.02570, PAPERS.md).
//
// For a connected graph G = (V, E) fix a ground vertex and let B_r be the
// reduced oriented incidence matrix (|E| x (|V|-1), row e = (u,v) with
// +1 at u and -1 at v, the ground vertex's column dropped) and
// L_r = B_rᵀ B_r the reduced Laplacian. The transfer-current matrix
//   T = B_r L_r⁻¹ B_rᵀ
// is the orthogonal projection onto the cycle-free row space of B_r
// (rank |V|-1), and the k-DPP it induces at k = |V|-1 is exactly the
// uniform distribution over spanning trees (Burton–Pemantle): every
// spanning tree's edge rows form a basis of the row space, and
// det(T_S) = (#orientations cancel) / #trees for tree sets S, 0 for any
// edge set containing a cycle. Its diagonal T_ee is the effective
// resistance of edge e — the leverage-score profile the distillation
// front end proposes from.
//
// Served through the existing stack by factorizing T = F Fᵀ with
// F = B_r L⁻ᵀ (L the Cholesky lower factor of L_r, so F's rows are
// forward-substitution half-solves): `FeatureKdppOracle(F, |V|-1)` then
// answers every counting query, commit round, and distillation
// restriction for spanning trees with no new oracle code. Exactness is
// pinned against brute-force spanning-tree enumeration + the
// matrix-tree count on small graphs (tests/test_transfer_current.cpp).
//
// One protocol caveat: the Gram FᵀF is exactly the identity, so the
// eigenbasis behind the feature family's two-stage marginal draw is
// non-unique — the commit path and the condition() reference resolve the
// degeneracy differently and draw different (identically distributed)
// sequences from one seed. The commit-vs-reference bit-identity contract
// applies to simple spectra only; per-seed pool-size bit-identity holds
// here as everywhere.
#pragma once

#include <vector>

#include "dpp/feature_oracle.h"
#include "linalg/matrix.h"
#include "planar/graph.h"

namespace pardpp {

/// Edge-feature factor F (|E| x (|V|-1)) with F Fᵀ = the transfer-current
/// projection. Throws InvalidArgument unless `g` is connected with at
/// least 2 vertices (the DPP needs rank |V|-1 > 0).
[[nodiscard]] Matrix transfer_current_features(const PlanarGraph& g);

/// The full transfer-current matrix T = F Fᵀ (|E| x |E|) — a projection
/// of rank |V|-1; exposed for tests and diagnostics (T_ee = effective
/// resistance of edge e).
[[nodiscard]] Matrix transfer_current_matrix(const PlanarGraph& g);

/// log(#spanning trees) via the matrix-tree theorem (log det of the
/// reduced Laplacian).
[[nodiscard]] double log_spanning_tree_count(const PlanarGraph& g);

/// The uniform-spanning-tree k-DPP over edge indices (k = |V|-1), ready
/// for SamplerSession — including the distillation front end, whose
/// proposal weights become the edges' effective resistances.
[[nodiscard]] FeatureKdppOracle spanning_tree_oracle(const PlanarGraph& g);

/// All spanning trees as sorted edge-index lists (brute force over
/// (|V|-1)-subsets of edges; test-scale graphs only).
[[nodiscard]] std::vector<std::vector<int>> enumerate_spanning_trees(
    const PlanarGraph& g);

}  // namespace pardpp
