#include "linalg/schur.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "support/error.h"

namespace pardpp {

std::vector<int> complement_indices(std::size_t n, std::span<const int> subset) {
  std::vector<bool> in_subset(n, false);
  for (const int i : subset) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
              "complement_indices: index out of range");
    check_arg(!in_subset[static_cast<std::size_t>(i)],
              "complement_indices: duplicate index");
    in_subset[static_cast<std::size_t>(i)] = true;
  }
  std::vector<int> out;
  out.reserve(n - subset.size());
  for (std::size_t i = 0; i < n; ++i)
    if (!in_subset[i]) out.push_back(static_cast<int>(i));
  return out;
}

SchurResult schur_complement(const Matrix& m, std::span<const int> keep,
                             std::span<const int> elim, bool symmetric) {
  check_arg(m.square(), "schur_complement: matrix not square");
  if (elim.empty()) {
    return {m.gather(keep, keep), 0.0, 1};
  }
  const Matrix mee = m.gather(elim, elim);
  const Matrix mek = m.gather(elim, keep);
  const Matrix mke = m.gather(keep, elim);
  Matrix x;  // M_EE^{-1} M_EK
  double log_det = kNegInf;
  int sign = 0;
  if (symmetric) {
    auto chol = cholesky(mee);
    check_numeric(chol.has_value(),
                  "schur_complement: symmetric elimination block not PD "
                  "(conditioning on a probability-zero event?)");
    x = chol->solve_matrix(mek);
    log_det = chol->log_det();
    sign = 1;
  } else {
    const auto lu = lu_factor(mee);
    check_numeric(!lu.singular(),
                  "schur_complement: singular elimination block "
                  "(conditioning on a probability-zero event?)");
    x = lu.solve_matrix(mek);
    log_det = lu.log_abs_det();
    sign = lu.det_phase().real() >= 0.0 ? 1 : -1;
  }
  Matrix reduced = m.gather(keep, keep);
  reduced -= mke * x;
  return {std::move(reduced), log_det, sign};
}

void schur_complement_sym_into(const Matrix& m, std::span<const int> keep,
                               std::span<const int> elim,
                               const IncrementalCholesky& chol,
                               std::vector<double>& y_scratch,
                               Matrix& reduced) {
  check_arg(m.square(), "schur_complement_sym_into: matrix not square");
  check_arg(chol.size() == elim.size(),
            "schur_complement_sym_into: factor size mismatch");
  const std::size_t nk = keep.size();
  const std::size_t ne = elim.size();
  if (reduced.rows() != nk || reduced.cols() != nk) reduced = Matrix(nk, nk);
  // Y = R^{-1} M_EK, one row per eliminated element.
  y_scratch.resize(ne * nk);
  for (std::size_t r = 0; r < ne; ++r) {
    const auto er = static_cast<std::size_t>(elim[r]);
    double* row = y_scratch.data() + r * nk;
    for (std::size_t j = 0; j < nk; ++j)
      row[j] = m(er, static_cast<std::size_t>(keep[j]));
  }
  chol.forward_solve_rows(y_scratch.data(), nk, nk);
  // reduced = M_KK - Y^T Y: gather the kept block (symmetric), then a
  // blocked rank-ne downdate instead of the naive per-entry reduction.
  for (std::size_t i = 0; i < nk; ++i) {
    const auto ki = static_cast<std::size_t>(keep[i]);
    for (std::size_t j = i; j < nk; ++j) {
      const double v = m(ki, static_cast<std::size_t>(keep[j]));
      reduced(i, j) = v;
      reduced(j, i) = v;
    }
  }
  sym_rank_k_update(reduced, -1.0, y_scratch.data(), ne, nk, nk);
}

SchurResult condition_ensemble(const Matrix& l, std::span<const int> t,
                               bool symmetric) {
  const auto keep = complement_indices(l.rows(), t);
  return schur_complement(l, keep, t, symmetric);
}

void condition_ensemble_sym_into(const Matrix& l, std::span<const int> t,
                                 IncrementalCholesky& chol,
                                 std::vector<double>& y_scratch,
                                 std::vector<int>& keep_scratch,
                                 Matrix& reduced) {
  check_arg(l.square(), "condition_ensemble_sym_into: matrix not square");
  const std::size_t n = l.rows();
  const std::size_t tsize = t.size();
  // Seed the PD threshold with the block's largest diagonal so the
  // verdict matches a from-scratch cholesky(L_TT) (element-order
  // independent).
  double max_diag = 0.0;
  for (const int i : t) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
              "condition_ensemble_sym_into: index out of range");
    max_diag = std::max(max_diag, std::abs(l(static_cast<std::size_t>(i),
                                             static_cast<std::size_t>(i))));
  }
  chol.clear(max_diag);
  std::vector<double>& row = y_scratch;  // reused before the half-solve
  row.resize(tsize);
  for (std::size_t r = 0; r < tsize; ++r) {
    const auto tr = static_cast<std::size_t>(t[r]);
    for (std::size_t c = 0; c <= r; ++c)
      row[c] = l(tr, static_cast<std::size_t>(t[c]));
    check_numeric(chol.append(std::span<const double>(row.data(), r + 1)),
                  "condition_ensemble_sym_into: elimination block not PD "
                  "(conditioning on a probability-zero event?)");
  }
  keep_scratch = complement_indices(n, t);
  schur_complement_sym_into(l, keep_scratch, t, chol, y_scratch, reduced);
}

void BlockMomentProbe::build(const Matrix& m, double scale,
                             std::span<const int> elim,
                             const IncrementalCholesky& chol,
                             std::size_t orders) {
  check_arg(m.square(), "BlockMomentProbe: matrix not square");
  check_arg(chol.size() == elim.size(),
            "BlockMomentProbe: factor size mismatch");
  check_arg(scale > 0.0, "BlockMomentProbe: scale must be positive");
  check_arg(orders >= 1, "BlockMomentProbe: need at least one order");
  n_ = m.rows();
  s_ = elim.size();
  orders_ = orders;
  w_.assign(orders_ * n_ * s_, 0.0);
  t_.assign(orders_ * s_ * s_, 0.0);
  g_.assign(orders_ * s_ * s_, 0.0);
  g_abs_.assign(orders_ * s_ * s_, 0.0);
  if (s_ == 0) return;
  // Uhat^T = R^{-1} M[elim,:] / sqrt(scale): gather the eliminated rows
  // and run the same forward substitution the Schur path uses.
  rows_scratch_.resize(s_ * n_);
  for (std::size_t r = 0; r < s_; ++r) {
    const auto er = static_cast<std::size_t>(elim[r]);
    double* row = rows_scratch_.data() + r * n_;
    for (std::size_t j = 0; j < n_; ++j) row[j] = m(er, j);
  }
  chol.forward_solve_rows(rows_scratch_.data(), n_, n_);
  const double inv_sqrt_scale = 1.0 / std::sqrt(scale);
  double* w0 = w_.data();  // W_0 = Uhat, n_ x s_
  for (std::size_t r = 0; r < s_; ++r) {
    const double* row = rows_scratch_.data() + r * n_;
    for (std::size_t i = 0; i < n_; ++i) w0[i * s_ + r] = row[i] * inv_sqrt_scale;
  }
  // Krylov blocks W_{a+1} = Mhat W_a.
  const double inv_scale = 1.0 / scale;
  for (std::size_t a = 0; a + 1 < orders_; ++a) {
    const double* wa = w_.data() + a * n_ * s_;
    double* wnext = w_.data() + (a + 1) * n_ * s_;
    for (std::size_t i = 0; i < n_; ++i) {
      double* out_row = wnext + i * s_;
      for (std::size_t j = 0; j < n_; ++j) {
        const double coeff = m(i, j) * inv_scale;
        if (coeff == 0.0) continue;
        const double* in_row = wa + j * s_;
        for (std::size_t c = 0; c < s_; ++c) out_row[c] += coeff * in_row[c];
      }
    }
  }
  // Moment matrices T_w = Uhat^T W_w.
  for (std::size_t w = 0; w < orders_; ++w) {
    const double* ww = w_.data() + w * n_ * s_;
    double* tw = t_.data() + w * s_ * s_;
    for (std::size_t i = 0; i < n_; ++i) {
      const double* u_row = w0 + i * s_;
      const double* w_row = ww + i * s_;
      for (std::size_t r = 0; r < s_; ++r) {
        const double ur = u_row[r];
        if (ur == 0.0) continue;
        for (std::size_t c = 0; c < s_; ++c) tw[r * s_ + c] += ur * w_row[c];
      }
    }
  }
  // Gamma chain: Gamma_0 = -I; Gamma_m = -sum_{w<m} Gamma_{m-1-w} T_w.
  // Gamma_m is symmetric in exact arithmetic (every composition word
  // appears with both orientations), so symmetrize to kill drift. The
  // g_abs_ chain propagates |terms| for the cancellation monitor.
  for (std::size_t r = 0; r < s_; ++r) {
    g_[r * s_ + r] = -1.0;
    g_abs_[r * s_ + r] = 1.0;
  }
  for (std::size_t m_ord = 1; m_ord < orders_; ++m_ord) {
    double* gm = g_.data() + m_ord * s_ * s_;
    double* gm_abs = g_abs_.data() + m_ord * s_ * s_;
    for (std::size_t w = 0; w < m_ord; ++w) {
      const double* gprev = g_.data() + (m_ord - 1 - w) * s_ * s_;
      const double* gprev_abs = g_abs_.data() + (m_ord - 1 - w) * s_ * s_;
      const double* tw = t_.data() + w * s_ * s_;
      for (std::size_t r = 0; r < s_; ++r) {
        for (std::size_t p = 0; p < s_; ++p) {
          const double gv = gprev[r * s_ + p];
          const double ga = gprev_abs[r * s_ + p];
          for (std::size_t c = 0; c < s_; ++c) {
            gm[r * s_ + c] -= gv * tw[p * s_ + c];
            gm_abs[r * s_ + c] += ga * std::abs(tw[p * s_ + c]);
          }
        }
      }
    }
    for (std::size_t r = 0; r < s_; ++r) {
      for (std::size_t c = r + 1; c < s_; ++c) {
        const double sym = 0.5 * (gm[r * s_ + c] + gm[c * s_ + r]);
        gm[r * s_ + c] = sym;
        gm[c * s_ + r] = sym;
        const double sym_abs = 0.5 * (gm_abs[r * s_ + c] + gm_abs[c * s_ + r]);
        gm_abs[r * s_ + c] = sym_abs;
        gm_abs[c * s_ + r] = sym_abs;
      }
    }
  }
}

void BlockMomentProbe::downdated_traces(std::span<const double> base,
                                        std::span<const double> base_abs,
                                        std::size_t vmax,
                                        std::vector<double>& out,
                                        std::vector<double>& out_abs) const {
  check_arg(vmax <= orders_, "BlockMomentProbe: vmax exceeds built orders");
  check_arg(base.size() >= vmax && base_abs.size() >= vmax,
            "BlockMomentProbe: base traces too short");
  out.assign(base.begin(), base.begin() + static_cast<std::ptrdiff_t>(vmax));
  out_abs.assign(base_abs.begin(),
                 base_abs.begin() + static_cast<std::ptrdiff_t>(vmax));
  if (s_ == 0) return;
  // t'_v = t_v + sum_{m+w=v-1} (w+1) tr(Gamma_m T_w).
  for (std::size_t v = 1; v <= vmax; ++v) {
    double acc = 0.0;
    double acc_abs = 0.0;
    for (std::size_t w = 0; w < v; ++w) {
      const std::size_t m_ord = v - 1 - w;
      const double* gm = g_.data() + m_ord * s_ * s_;
      const double* gm_abs = g_abs_.data() + m_ord * s_ * s_;
      const double* tw = t_.data() + w * s_ * s_;
      double tr = 0.0;
      double tr_abs = 0.0;
      for (std::size_t r = 0; r < s_; ++r) {
        for (std::size_t c = 0; c < s_; ++c) {
          tr += gm[r * s_ + c] * tw[c * s_ + r];
          tr_abs += gm_abs[r * s_ + c] * std::abs(tw[c * s_ + r]);
        }
      }
      const auto mult = static_cast<double>(w + 1);
      acc += mult * tr;
      acc_abs += mult * tr_abs;
    }
    out[v - 1] += acc;
    out_abs[v - 1] += acc_abs;
  }
}

void BlockMomentProbe::downdated_diag(std::span<const double> base,
                                      std::span<const double> base_abs,
                                      std::size_t vmax,
                                      std::vector<double>& out,
                                      std::vector<double>& out_abs) const {
  check_arg(vmax <= orders_, "BlockMomentProbe: vmax exceeds built orders");
  check_arg(base.size() >= vmax * n_ && base_abs.size() >= vmax * n_,
            "BlockMomentProbe: base diagonal moments too short");
  out.assign(base.begin(),
             base.begin() + static_cast<std::ptrdiff_t>(vmax * n_));
  out_abs.assign(base_abs.begin(),
                 base_abs.begin() + static_cast<std::ptrdiff_t>(vmax * n_));
  if (s_ == 0) return;
  // d'_v[i] = d_v[i] + sum_{a+b+m=v-1} w_a[i]^T Gamma_m w_b[i]; the
  // (a,b) and (b,a) terms agree because Gamma_m is symmetric, so sweep
  // a <= b with a factor of two off the diagonal.
  std::vector<double> gw(s_), gw_abs(s_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t v = 1; v <= vmax; ++v) {
      double acc = 0.0;
      double acc_abs = 0.0;
      for (std::size_t a = 0; a < v; ++a) {
        const double* wa = w_.data() + a * n_ * s_ + i * s_;
        for (std::size_t b = a; a + b < v; ++b) {
          const std::size_t m_ord = v - 1 - a - b;
          const double* gm = g_.data() + m_ord * s_ * s_;
          const double* gm_abs = g_abs_.data() + m_ord * s_ * s_;
          const double* wb = w_.data() + b * n_ * s_ + i * s_;
          for (std::size_t r = 0; r < s_; ++r) {
            double dot = 0.0;
            double dot_abs = 0.0;
            for (std::size_t c = 0; c < s_; ++c) {
              dot += gm[r * s_ + c] * wb[c];
              dot_abs += gm_abs[r * s_ + c] * std::abs(wb[c]);
            }
            gw[r] = dot;
            gw_abs[r] = dot_abs;
          }
          double q = 0.0;
          double q_abs = 0.0;
          for (std::size_t r = 0; r < s_; ++r) {
            q += wa[r] * gw[r];
            q_abs += std::abs(wa[r]) * gw_abs[r];
          }
          const double mult = (a == b) ? 1.0 : 2.0;
          acc += mult * q;
          acc_abs += mult * q_abs;
        }
      }
      out[(v - 1) * n_ + i] += acc;
      out_abs[(v - 1) * n_ + i] += acc_abs;
    }
  }
}

}  // namespace pardpp
