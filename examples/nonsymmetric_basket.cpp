// Nonsymmetric DPPs model *positive* correlations — the paper's §1.1
// motivation ([Bru18; Gar+19]) that symmetric DPPs cannot express.
//
// Market-basket scenario: "printer" and "ink" should co-occur more often
// than independently (complements), while two printers repel. A symmetric
// DPP forces negative correlation everywhere (Lemma 16); a nonsymmetric
// PSD ensemble with a skew component between complements produces lift
// above 1. We sample both with the library's samplers (Remark 15:
// cardinality draw + k-DPP) and report pairwise lifts.
#include <cmath>
#include <cstdio>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

// Items: 0 printer-A, 1 printer-B, 2 ink, 3 paper, 4 laptop, 5 mouse.
const char* kItems[] = {"printerA", "printerB", "ink", "paper", "laptop",
                        "mouse"};
constexpr std::size_t kN = 6;

std::vector<int> sample_unconstrained(const Matrix& l, bool symmetric,
                                      RandomStream& rng) {
  // Remark 15: draw |S| from the cardinality distribution, then the
  // k-DPP.
  const auto weights = cardinality_log_weights(l, symmetric);
  const std::size_t k = sample_cardinality(weights, rng);
  if (k == 0) return {};
  if (symmetric) {
    const SymmetricKdppOracle oracle(l, k, false);
    return sample_batched(oracle, rng).items;
  }
  const GeneralDppOracle oracle(l, k, false);
  EntropicOptions options;
  options.cap_slack = 4.0;
  return sample_entropic(oracle, rng, nullptr, options).items;
}

void report(const char* label, const Matrix& l, bool symmetric,
            RandomStream& rng) {
  const int trials = 4000;
  std::vector<double> singleton(kN, 0.0);
  Matrix pair_counts(kN, kN);
  std::vector<int> example_basket;
  for (int trial = 0; trial < trials; ++trial) {
    const auto basket = sample_unconstrained(l, symmetric, rng);
    if (trial == 0) example_basket = basket;
    for (const int a : basket) {
      singleton[static_cast<std::size_t>(a)] += 1.0;
      for (const int b : basket)
        if (a < b) pair_counts(static_cast<std::size_t>(a),
                               static_cast<std::size_t>(b)) += 1.0;
    }
  }
  const auto lift = [&](std::size_t a, std::size_t b) {
    const double pa = singleton[a] / trials;
    const double pb = singleton[b] / trials;
    const double pab = pair_counts(a, b) / trials;
    return pab / std::max(pa * pb, 1e-9);
  };
  std::printf("%s\n", label);
  std::printf("  example basket: {");
  for (const int item : example_basket)
    std::printf(" %s", kItems[static_cast<std::size_t>(item)]);
  std::printf(" }\n");
  std::printf("  P[printerA] = %.3f, P[ink] = %.3f\n", singleton[0] / trials,
              singleton[2] / trials);
  std::printf("  lift(printerA, ink)      = %.2f  %s\n", lift(0, 2),
              lift(0, 2) > 1.0 ? "(complements: bought together!)"
                               : "(repelled)");
  std::printf("  lift(printerA, printerB) = %.2f  (substitutes: repelled)\n",
              lift(0, 1));
  std::printf("  lift(laptop, mouse)      = %.2f\n\n", lift(4, 5));
}

}  // namespace

int main() {
  RandomStream rng(23);

  // Base symmetric similarity: printers similar to each other; ink/paper
  // mildly similar; laptop/mouse a second cluster.
  Matrix s = Matrix::identity(kN);
  const auto set_sym = [&s](std::size_t a, std::size_t b, double v) {
    s(a, b) = v;
    s(b, a) = v;
  };
  set_sym(0, 1, 0.85);  // the two printers: near-duplicates
  set_sym(2, 3, 0.30);
  set_sym(4, 5, 0.40);
  s *= 0.9;

  // Symmetric DPP: necessarily negative dependence everywhere.
  report("symmetric DPP (L = similarity only):", s, /*symmetric=*/true, rng);

  // Nonsymmetric PSD: add a skew block between complements
  // (printer <-> ink, laptop <-> mouse). L + L^T = 2S stays PSD.
  Matrix l = s;
  const auto set_skew = [&l](std::size_t a, std::size_t b, double v) {
    l(a, b) += v;
    l(b, a) -= v;
  };
  set_skew(0, 2, 0.80);  // printerA boosts ink
  set_skew(1, 2, 0.60);  // printerB boosts ink
  set_skew(4, 5, 0.70);  // laptop boosts mouse
  report("nonsymmetric DPP (skew complement coupling added):", l,
         /*symmetric=*/false, rng);

  std::printf(
      "A symmetric DPP can only repel (all lifts <= ~1); the skew part\n"
      "creates genuine positive association between complements while\n"
      "printerA/printerB keep repelling — Definition 4's extra modeling\n"
      "power.\n");
  return 0;
}
