// EXP-S7 — §7 hard instance: the limits of batched rejection sampling.
//
// Three measurements on the paired distribution (eq. (5)):
//  (a) P[a mu_l draw has >= t duplicates] = (Theta(l^2/k))^t — the
//      combinatorial law behind the lower bound;
//  (b) the likelihood ratio a batch with t duplicates forces:
//      ~ (n/k)^t, so any polynomial machine budget n^B caps t at O(B);
//  (c) end-to-end depth scaling of the entropic sampler on the instance,
//      driven to k = 4096 (the closed-form oracle makes large k cheap),
//      showing rounds ~ k^{1/2+c} between sqrt(k) and k.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "distributions/hard_instance.h"
#include "sampling/entropic.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace pardpp;
using namespace pardpp::bench;

// Empirical P[draw from mu_l has >= 1 duplicate pair] by simulating the
// down operator directly.
double duplicate_probability(std::size_t n, std::size_t k, std::size_t l,
                             RandomStream& rng, std::size_t trials = 20000) {
  std::vector<int> pairs(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) pairs[i] = static_cast<int>(i);
  std::size_t hits = 0;
  std::vector<int> elements;
  std::vector<bool> seen(n / 2);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    rng.shuffle(pairs);
    elements.clear();
    for (std::size_t i = 0; i < k / 2; ++i) {
      elements.push_back(2 * pairs[i]);
      elements.push_back(2 * pairs[i] + 1);
    }
    rng.shuffle(elements);
    std::fill(seen.begin(), seen.end(), false);
    bool dup = false;
    for (std::size_t i = 0; i < l && !dup; ++i) {
      const auto pair_id = static_cast<std::size_t>(elements[i] / 2);
      dup = seen[pair_id];
      seen[pair_id] = true;
    }
    hits += dup ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

void duplicate_law() {
  print_header("EXP-S7a", "§7 duplicate law",
               "P[mu_l draw has a duplicate pair] ~ l^2/k: constant at "
               "l = sqrt(k), ->1 for l >> sqrt(k), ->0 for l << sqrt(k)");
  Table table({"k", "l", "l^2/k", "P[duplicate]", "1-exp(-l^2/(2k))"});
  RandomStream rng(95001);
  const std::size_t n_over_k = 4;
  for (const std::size_t k : {64u, 256u, 1024u}) {
    const std::size_t n = n_over_k * k;
    const auto sqrt_k = static_cast<std::size_t>(std::sqrt(k));
    for (const std::size_t l :
         {sqrt_k / 2, sqrt_k, 2 * sqrt_k, 4 * sqrt_k}) {
      if (l == 0 || l > k) continue;
      const double measured = duplicate_probability(n, k, l, rng);
      const double ratio = static_cast<double>(l * l) /
                           static_cast<double>(k);
      table.add_row({fmt_int(k), fmt_int(l), fmt(ratio, 2), fmt(measured, 4),
                     fmt(1.0 - std::exp(-ratio / 2.0), 4)});
    }
  }
  table.print();
}

void ratio_blowup() {
  print_header("EXP-S7b", "§7 likelihood-ratio blowup",
               "a batch containing t full pairs forces acceptance ratio "
               "~ (n/k)^t: polynomially many machines (n^B) only absorb "
               "t = O(B) duplicates, forcing l <= k^{1/2-c}");
  Table table({"n", "k", "t_pairs", "log_ratio", "t*log(n/k)"});
  const std::size_t n = 1024;
  const std::size_t k = 256;
  const HardInstanceOracle oracle(n, k);
  const auto p = oracle.marginals();
  for (const std::size_t t_pairs : {1u, 2u, 3u, 4u}) {
    // Batch = t_pairs full pairs: T = {0,1,2,3,...}.
    std::vector<int> batch;
    for (std::size_t i = 0; i < t_pairs; ++i) {
      batch.push_back(static_cast<int>(2 * i));
      batch.push_back(static_cast<int>(2 * i + 1));
    }
    double log_falling = 0.0;
    for (std::size_t r = 0; r < batch.size(); ++r)
      log_falling += std::log(static_cast<double>(k - r));
    double log_proposal = 0.0;
    for (const int i : batch)
      log_proposal += std::log(p[static_cast<std::size_t>(i)] /
                               static_cast<double>(k));
    const double log_ratio =
        oracle.log_joint_marginal(batch) - log_falling - log_proposal;
    table.add_row({fmt_int(n), fmt_int(k), fmt_int(t_pairs),
                   fmt(log_ratio, 3),
                   fmt(static_cast<double>(t_pairs) *
                           std::log(static_cast<double>(n) /
                                    static_cast<double>(k)),
                       3)});
  }
  table.print();
}

void depth_scaling() {
  print_header("EXP-S7c", "Theorem 29 depth law at scale",
               "entropic sampler rounds on the hard instance: between "
               "2 sqrt(k) and k, tracking ~ k^{1/2+c} (c = 0.25); the "
               "closed-form oracle lets k reach 4096");
  Table table({"k", "n", "batch_l", "rounds", "2sqrt(k)", "k^{0.75}", "k",
               "acceptance", "wall_ms"});
  RandomStream rng(95002);
  for (const std::size_t k : {64u, 256u, 1024u, 4096u}) {
    const std::size_t n = 4 * k;
    const HardInstanceOracle oracle(n, k);
    EntropicOptions options;
    options.c = 0.25;
    options.cap_slack = 3.0;
    options.machine_cap = 1u << 18;
    Timer timer;
    const auto result = sample_entropic(oracle, rng, nullptr, options);
    const double ms = timer.millis();
    const std::size_t batch = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(std::pow(static_cast<double>(k), 0.25))));
    table.add_row({fmt_int(k), fmt_int(n), fmt_int(batch),
                   fmt_int(result.diag.rounds),
                   fmt(2.0 * std::sqrt(static_cast<double>(k)), 0),
                   fmt(std::pow(static_cast<double>(k), 0.75), 0),
                   fmt_int(k), fmt(result.diag.acceptance_rate()),
                   fmt(ms, 1)});
  }
  table.print();
}

}  // namespace

int main() {
  duplicate_law();
  ratio_blowup();
  depth_scaling();
  return 0;
}
