#include "dpp/charpoly_engine.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/lu.h"
#include "parallel/execution.h"
#include "support/error.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// Per-part "expected counts" tr_a(D(rho) M (I + D(rho) M)^{-1}) for radius
// vector rho — the multivariate saddle-point objective.
std::vector<double> expected_counts(const Matrix& m,
                                    std::span<const int> part_of,
                                    std::size_t num_parts,
                                    std::span<const double> rho) {
  const std::size_t n = m.rows();
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = rho[static_cast<std::size_t>(part_of[i])];
    for (std::size_t j = 0; j < n; ++j) a(i, j) = scale * m(i, j);
    a(i, i) += 1.0;
  }
  std::vector<double> counts(num_parts, 0.0);
  const auto lu = lu_factor(std::move(a));
  if (lu.singular()) {
    // Degenerate evaluation: report saturated counts so bisection backs off.
    for (std::size_t i = 0; i < n; ++i)
      counts[static_cast<std::size_t>(part_of[i])] += 1.0;
    return counts;
  }
  const Matrix inv = lu.inverse();
  for (std::size_t i = 0; i < n; ++i)
    counts[static_cast<std::size_t>(part_of[i])] += 1.0 - inv(i, i);
  return counts;
}

}  // namespace

CharPolyEngine::CharPolyEngine(Matrix m, std::vector<int> part_of,
                               std::size_t num_parts,
                               std::vector<int> target_counts,
                               double memory_budget)
    : m_(std::move(m)),
      part_of_(std::move(part_of)),
      num_parts_(num_parts),
      target_counts_(std::move(target_counts)),
      memory_budget_(memory_budget) {
  check_arg(m_.square(), "CharPolyEngine: matrix not square");
  check_arg(part_of_.size() == m_.rows(),
            "CharPolyEngine: partition label count mismatch");
  check_arg(target_counts_.size() == num_parts_,
            "CharPolyEngine: target count size mismatch");
  check_arg(num_parts_ >= 1, "CharPolyEngine: need at least one part");
  for (const int p : part_of_)
    check_arg(p >= 0 && static_cast<std::size_t>(p) < num_parts_,
              "CharPolyEngine: partition label out of range");
  for (const int c : target_counts_)
    check_arg(c >= 0, "CharPolyEngine: negative target count");
}

std::vector<double> CharPolyEngine::choose_radii() const {
  std::vector<double> rho(num_parts_, 1.0);
  if (m_.max_abs() == 0.0) return rho;
  std::vector<double> part_sizes(num_parts_, 0.0);
  for (const int p : part_of_) part_sizes[static_cast<std::size_t>(p)] += 1.0;
  std::vector<double> target(num_parts_);
  for (std::size_t a = 0; a < num_parts_; ++a) {
    // Stay strictly inside (0, |V_a|) so the saddle point exists.
    target[a] =
        std::clamp(static_cast<double>(target_counts_[a]), 0.25,
                   std::max(part_sizes[a] - 0.25, 0.25));
  }
  // Coordinate-wise log-bisection sweeps on the monotone-in-own-coordinate
  // map rho_a -> expected count of part a.
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (std::size_t a = 0; a < num_parts_; ++a) {
      double lo = 1e-8;
      double hi = 1e8;
      for (int iter = 0; iter < 22; ++iter) {
        rho[a] = std::sqrt(lo * hi);
        const auto counts = expected_counts(m_, part_of_, num_parts_, rho);
        if (counts[a] < target[a]) {
          lo = rho[a];
        } else {
          hi = rho[a];
        }
        if (hi / lo < 1.0 + 1e-4) break;
      }
      rho[a] = std::sqrt(lo * hi);
    }
  }
  return rho;
}

void CharPolyEngine::build_cache() const {
  Cache cache;
  const std::size_t n = m_.rows();
  cache.axis_nodes.resize(num_parts_);
  std::vector<double> part_sizes(num_parts_, 0.0);
  for (const int p : part_of_) part_sizes[static_cast<std::size_t>(p)] += 1.0;
  cache.grid_size = 1;
  for (std::size_t a = 0; a < num_parts_; ++a) {
    cache.axis_nodes[a] = static_cast<std::size_t>(part_sizes[a]) + 1;
    cache.grid_size *= cache.axis_nodes[a];
  }
  const double bytes = static_cast<double>(cache.grid_size) *
                       static_cast<double>(n) * static_cast<double>(n) * 16.0;
  check_arg(bytes <= memory_budget_,
            "CharPolyEngine: node cache exceeds memory budget; reduce the "
            "ground set / partition sizes or raise the budget");
  cache.radii = choose_radii();

  cache.log_det.resize(cache.grid_size);
  cache.det_phase.resize(cache.grid_size);
  cache.inverse.resize(cache.grid_size);
  cache.node_w.resize(cache.grid_size * num_parts_);

  const CMatrix mc = to_complex(m_);
  // One complex LU + inverse per node, each on disjoint cache slots: a
  // textbook wide round, fanned out on the linalg pool.
  linalg_context().for_each(0, cache.grid_size, [&](std::size_t g) {
    // Decode the multi-index of grid node g (axis 0 slowest).
    std::vector<std::complex<double>> w(num_parts_);
    {
      std::size_t rem = g;
      for (std::size_t a = num_parts_; a-- > 0;) {
        const std::size_t ta = rem % cache.axis_nodes[a];
        rem /= cache.axis_nodes[a];
        const double angle = 2.0 * std::numbers::pi *
                             static_cast<double>(ta) /
                             static_cast<double>(cache.axis_nodes[a]);
        w[a] = std::polar(cache.radii[a], angle);
      }
    }
    for (std::size_t a = 0; a < num_parts_; ++a)
      cache.node_w[g * num_parts_ + a] = w[a];
    CMatrix a_mat(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::complex<double> scale =
          w[static_cast<std::size_t>(part_of_[i])];
      for (std::size_t j = 0; j < n; ++j) a_mat(i, j) = scale * mc(i, j);
      a_mat(i, i) += 1.0;
    }
    auto lu = lu_factor(std::move(a_mat));
    check_numeric(!lu.singular(),
                  "CharPolyEngine: det(I + D(w)M) vanished at an "
                  "interpolation node (degenerate ensemble)");
    const auto det = lu.log_det();
    cache.log_det[g] = det.log_abs;
    cache.det_phase[g] = det.phase;
    cache.inverse[g] = lu.inverse();
  });
  cache_ = std::move(cache);
}

const CharPolyEngine::Cache& CharPolyEngine::cache() const {
  if (!cache_.has_value()) build_cache();
  return *cache_;
}

LogCoefficient CharPolyEngine::extract_coefficient(
    std::span<const std::complex<double>> values_phase,
    std::span<const double> values_log, std::span<const int> j) const {
  const auto& c = cache();
  check_arg(j.size() == num_parts_, "extract_coefficient: bad index size");
  for (std::size_t a = 0; a < num_parts_; ++a) {
    if (j[a] < 0) return {kNegInf, 0};
    if (static_cast<std::size_t>(j[a]) >= c.axis_nodes[a]) return {kNegInf, 0};
  }
  double scale = kNegInf;
  for (const double v : values_log) scale = std::max(scale, v);
  if (scale == kNegInf) return {kNegInf, 0};

  std::complex<double> acc(0.0, 0.0);
  double max_mag = 0.0;
  for (std::size_t g = 0; g < c.grid_size; ++g) {
    if (values_log[g] == kNegInf) continue;
    const std::complex<double> value =
        values_phase[g] * std::exp(values_log[g] - scale);
    max_mag = std::max(max_mag, std::abs(value));
    // Twiddle factor prod_a w_a(g)^{-j_a} / rho_a^{-j_a} = unit phase.
    double angle = 0.0;
    std::size_t rem = g;
    for (std::size_t a = num_parts_; a-- > 0;) {
      const std::size_t ta = rem % c.axis_nodes[a];
      rem /= c.axis_nodes[a];
      angle -= 2.0 * std::numbers::pi * static_cast<double>(ta) *
               static_cast<double>(j[a]) / static_cast<double>(c.axis_nodes[a]);
    }
    acc += value * std::polar(1.0, angle);
  }
  acc /= static_cast<double>(c.grid_size);
  const double noise_floor = max_mag * 3e-12 *
                             std::sqrt(static_cast<double>(c.grid_size));
  const double real_part = acc.real();
  if (std::abs(real_part) <= noise_floor) return {kNegInf, 0};
  double log_abs = std::log(std::abs(real_part)) + scale;
  for (std::size_t a = 0; a < num_parts_; ++a)
    log_abs -= static_cast<double>(j[a]) * std::log(c.radii[a]);
  return {log_abs, real_part > 0.0 ? 1 : -1};
}

LogCoefficient CharPolyEngine::log_count(std::span<const int> j) const {
  const auto& c = cache();
  return extract_coefficient(c.det_phase, c.log_det, j);
}

LogCoefficient CharPolyEngine::log_count_superset(std::span<const int> t,
                                                  std::span<const int> j) const {
  if (t.empty()) return log_count(j);
  const auto& c = cache();
  const std::size_t tsize = t.size();
  for (std::size_t a = 0; a < tsize; ++a) {
    check_arg(t[a] >= 0 && static_cast<std::size_t>(t[a]) < ground_size(),
              "log_count_superset: index out of range");
    for (std::size_t b = a + 1; b < tsize; ++b)
      check_arg(t[a] != t[b], "log_count_superset: duplicate index in T");
  }
  std::vector<std::complex<double>> phases(c.grid_size);
  std::vector<double> logs(c.grid_size, kNegInf);
  // Independent t x t solves per node — the per-proposal hot path.
  const auto solve_node = [&](std::size_t g, CMatrix& ct) {
    const CMatrix& inv = c.inverse[g];
    // (C_T)_{r r'} = δ + (1 - w_r)(M A^{-1})_{r r'} - A^{-1}_{r r'} with
    // (M A^{-1})_{r r'} = (δ - A^{-1}_{r r'}) / w_r, w_r = w_{p(t_r)}.
    for (std::size_t a = 0; a < tsize; ++a) {
      const auto row = static_cast<std::size_t>(t[a]);
      const std::complex<double> w =
          c.node_w[g * num_parts_ + static_cast<std::size_t>(part_of_[row])];
      const std::complex<double> one_minus_w_over_w = (1.0 - w) / w;
      for (std::size_t b = 0; b < tsize; ++b) {
        const auto col = static_cast<std::size_t>(t[b]);
        const std::complex<double> ainv = inv(row, col);
        const std::complex<double> delta = (a == b) ? 1.0 : 0.0;
        ct(a, b) = delta + one_minus_w_over_w * (delta - ainv) - ainv;
      }
    }
    const auto lu = lu_factor(ct);
    if (lu.singular()) {
      logs[g] = kNegInf;
      phases[g] = {0.0, 0.0};
      return;
    }
    const auto det = lu.log_det();
    logs[g] = c.log_det[g] + det.log_abs;
    phases[g] = c.det_phase[g] * det.phase;
  };
  const ExecutionContext& ctx = linalg_context();
  if (ctx.can_fan_out()) {
    // Parallel bodies own private scratch.
    ctx.for_each(0, c.grid_size, [&](std::size_t g) {
      CMatrix ct(tsize, tsize);
      solve_node(g, ct);
    });
  } else {
    CMatrix ct(tsize, tsize);  // hoisted, reused across nodes
    for (std::size_t g = 0; g < c.grid_size; ++g) solve_node(g, ct);
  }
  return extract_coefficient(phases, logs, j);
}

std::vector<LogCoefficient> CharPolyEngine::marginal_numerators() const {
  const auto& c = cache();
  const std::size_t n = ground_size();
  std::vector<LogCoefficient> out(n);
  // sum_{S ∋ i} det(M_S) prod w^counts = det(A) (1 - A^{-1}_{ii}).
  const auto element = [&](std::size_t i, std::vector<std::complex<double>>& phases,
                           std::vector<double>& logs) {
    for (std::size_t g = 0; g < c.grid_size; ++g) {
      const std::complex<double> factor = 1.0 - c.inverse[g](i, i);
      const double mag = std::abs(factor);
      if (mag == 0.0) {
        logs[g] = kNegInf;
        phases[g] = {0.0, 0.0};
      } else {
        logs[g] = c.log_det[g] + std::log(mag);
        phases[g] = c.det_phase[g] * (factor / mag);
      }
    }
    out[i] = extract_coefficient(phases, logs, target_counts_);
  };
  const ExecutionContext& ctx = linalg_context();
  if (ctx.can_fan_out()) {
    // All n numerators are one wide round over the shared node cache;
    // per-element scratch keeps the bodies disjoint.
    ctx.for_each(0, n, [&](std::size_t i) {
      std::vector<std::complex<double>> phases(c.grid_size);
      std::vector<double> logs(c.grid_size);
      element(i, phases, logs);
    });
  } else {
    std::vector<std::complex<double>> phases(c.grid_size);  // hoisted
    std::vector<double> logs(c.grid_size);
    for (std::size_t i = 0; i < n; ++i) element(i, phases, logs);
  }
  return out;
}

}  // namespace pardpp
