#include "planar/graph.h"

#include <algorithm>
#include <cmath>

namespace pardpp {

void PlanarGraph::add_edge(int u, int v) {
  check_arg(u != v, "PlanarGraph: self loop");
  check_arg(u >= 0 && v >= 0 &&
                static_cast<std::size_t>(u) < num_vertices() &&
                static_cast<std::size_t>(v) < num_vertices(),
            "PlanarGraph: vertex out of range");
  check_arg(!has_edge(u, v), "PlanarGraph: duplicate edge");
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool PlanarGraph::has_edge(int u, int v) const {
  const auto& nbrs = adj_[static_cast<std::size_t>(u)];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::vector<int> PlanarGraph::rotation(int v) const {
  std::vector<int> order(adj_[static_cast<std::size_t>(v)]);
  const auto& origin = coord(v);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ca = coord(a);
    const auto& cb = coord(b);
    const double angle_a =
        std::atan2(ca[1] - origin[1], ca[0] - origin[0]);
    const double angle_b =
        std::atan2(cb[1] - origin[1], cb[0] - origin[0]);
    return angle_a < angle_b;
  });
  return order;
}

PlanarGraph PlanarGraph::induced(std::span<const int> keep) const {
  std::vector<std::array<double, 2>> coords;
  coords.reserve(keep.size());
  std::vector<int> remap(num_vertices(), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const int v = keep[i];
    check_arg(v >= 0 && static_cast<std::size_t>(v) < num_vertices(),
              "induced: vertex out of range");
    check_arg(remap[static_cast<std::size_t>(v)] == -1,
              "induced: duplicate vertex");
    remap[static_cast<std::size_t>(v)] = static_cast<int>(i);
    coords.push_back(coord(v));
  }
  PlanarGraph out(std::move(coords));
  for (const auto& [u, v] : edges_) {
    const int nu = remap[static_cast<std::size_t>(u)];
    const int nv = remap[static_cast<std::size_t>(v)];
    if (nu >= 0 && nv >= 0) out.add_edge(nu, nv);
  }
  return out;
}

std::vector<std::vector<int>> PlanarGraph::components() const {
  return components_without({});
}

std::vector<std::vector<int>> PlanarGraph::components_without(
    std::span<const int> removed) const {
  std::vector<int> state(num_vertices(), 0);  // 0 unvisited, 1 removed, 2 done
  for (const int v : removed) state[static_cast<std::size_t>(v)] = 1;
  std::vector<std::vector<int>> comps;
  std::vector<int> stack;
  for (std::size_t root = 0; root < num_vertices(); ++root) {
    if (state[root] != 0) continue;
    comps.emplace_back();
    stack.push_back(static_cast<int>(root));
    state[root] = 2;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (const int u : adj_[static_cast<std::size_t>(v)]) {
        if (state[static_cast<std::size_t>(u)] == 0) {
          state[static_cast<std::size_t>(u)] = 2;
          stack.push_back(u);
        }
      }
    }
    std::sort(comps.back().begin(), comps.back().end());
  }
  return comps;
}

}  // namespace pardpp
