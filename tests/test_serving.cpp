// Serving layer (DESIGN.md §2 convention 13): fingerprint stability,
// canonical config round-trip, registry LRU/poisoned-replacement
// semantics, coalesced draw bit-identity vs. per-request serial draws,
// admission control, and wire-protocol fuzz (arbitrary bytes produce a
// typed ProtocolError or a parsed request — never a crash).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/session.h"
#include "serving/config.h"
#include "serving/fingerprint.h"
#include "serving/protocol.h"
#include "serving/registry.h"
#include "serving/server.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using serving::FrameReader;
using serving::KernelFingerprint;
using serving::Overloaded;
using serving::ProtocolError;
using serving::RegistryOptions;
using serving::ResponseStatus;
using serving::SampleRequest;
using serving::SamplingServer;
using serving::ServerRequest;
using serving::ServingConfig;
using serving::SessionConfig;
using serving::SessionRegistry;

Matrix test_kernel(std::uint64_t seed, std::size_t n) {
  RandomStream setup(seed);
  return random_psd(n, n, setup, 1e-3);
}

SessionRegistry::OracleFactory symmetric_factory(const Matrix& kernel,
                                                 std::size_t k) {
  return [kernel = std::make_shared<const Matrix>(kernel), k] {
    return std::unique_ptr<CountingOracle>(
        std::make_unique<SymmetricKdppOracle>(*kernel, k));
  };
}

// ---- sampler kind enumeration (satellite 1) ----

TEST(ServingKinds, SamplerKindNameRoundTrips) {
  for (const SamplerKind kind : kAllSamplerKinds) {
    const auto parsed = sampler_kind_from_name(sampler_kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << sampler_kind_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(sampler_kind_from_name("bogus").has_value());
  EXPECT_FALSE(sampler_kind_from_name("").has_value());
  EXPECT_FALSE(sampler_kind_from_name("Sequential").has_value());
  static_assert(sampler_kind_from_name("batched") == SamplerKind::kBatched);
  static_assert(!sampler_kind_from_name("unknown").has_value());
}

// ---- option validation (satellite 2) ----

TEST(ServingValidate, RecoveryOptionsRejectSilentNoOps) {
  RecoveryOptions recovery;
  recovery.enabled = true;
  recovery.max_retries = 0;
  try {
    recovery.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("max_retries"),
              std::string::npos)
        << error.what();
  }
  recovery.max_retries = 2;
  recovery.degrade_proposal = false;
  recovery.degrade_undistilled = false;
  recovery.degrade_reference = false;
  EXPECT_THROW(recovery.validate(), InvalidArgument);
  // Disabled recovery ignores the other fields entirely.
  recovery.enabled = false;
  recovery.max_retries = 0;
  EXPECT_NO_THROW(recovery.validate());
}

TEST(ServingValidate, SessionOptionsNameTheOffendingField) {
  SessionOptions options;
  options.batched.machine_cap = 0;
  try {
    options.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("machine_cap"),
              std::string::npos)
        << error.what();
  }
  options = {};
  options.entropic.failure_prob = 1.5;
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = {};
  options.distill.persistent_proposal = true;  // without distill.enabled
  EXPECT_THROW(options.validate(), InvalidArgument);
  options = {};
  options.distill.enabled = true;
  options.distill.candidate_budget = 2;  // below the sample size
  EXPECT_THROW(options.validate(/*sample_size=*/5), InvalidArgument);
  EXPECT_NO_THROW(options.validate(/*sample_size=*/2));
}

TEST(ServingValidate, SessionConstructionValidatesEagerly) {
  const Matrix kernel = test_kernel(616001, 8);
  const SymmetricKdppOracle oracle(kernel, 3);
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.candidate_budget = 2;  // < k = 3
  EXPECT_THROW(SamplerSession(oracle, options), InvalidArgument);
}

// ---- canonical config text (tentpole: unified config facade) ----

TEST(ServingConfigText, SessionConfigRoundTripsByteExactly) {
  SessionConfig config;
  config.session.kind = SamplerKind::kEntropic;
  config.session.use_commit = false;
  config.session.entropic.c = 1.0 / 3.0;  // needs %.17g to round-trip
  config.session.entropic.alpha = 0.123456789012345678;
  config.session.recovery.enabled = true;
  config.session.recovery.max_retries = 7;
  const std::string canonical = config.to_string();
  const SessionConfig reparsed = SessionConfig::parse(canonical);
  EXPECT_EQ(reparsed.to_string(), canonical);
  EXPECT_EQ(reparsed.session.kind, SamplerKind::kEntropic);
  EXPECT_EQ(reparsed.session.entropic.c, config.session.entropic.c);
  EXPECT_EQ(reparsed.session.recovery.max_retries, 7u);
}

TEST(ServingConfigText, ParseCanonicalizesSubsetsAndFieldOrder) {
  // Any subset of keys over defaults, in any order, canonicalizes to the
  // same spelling — the property the kernel fingerprint relies on.
  const SessionConfig a = SessionConfig::parse("kind=batched,use_commit=1");
  const SessionConfig b =
      SessionConfig::parse("  use_commit = true , kind = batched ");
  EXPECT_EQ(a.to_string(), b.to_string());
  const SessionConfig defaults = SessionConfig::parse("");
  EXPECT_EQ(defaults.to_string(), SessionConfig{}.to_string());
}

TEST(ServingConfigText, ParseRejectsUnknownKeysAndBadValues) {
  try {
    (void)SessionConfig::parse("no_such_key=1");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("no_such_key"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)SessionConfig::parse("kind=bogus"), InvalidArgument);
  EXPECT_THROW((void)SessionConfig::parse("entropic.c=abc"),
               InvalidArgument);
  EXPECT_THROW((void)SessionConfig::parse("use_commit"), InvalidArgument);
  EXPECT_THROW((void)SessionConfig::parse("batched.machine_cap=-4"),
               InvalidArgument);
}

TEST(ServingConfigText, ServingConfigRoundTripAndValidation) {
  ServingConfig config;
  config.pool_threads = 3;
  config.max_queue_depth = 17;
  const std::string canonical = config.to_string();
  const ServingConfig reparsed = ServingConfig::parse(canonical);
  EXPECT_EQ(reparsed.to_string(), canonical);
  EXPECT_EQ(reparsed.max_queue_depth, 17u);
  ServingConfig bad;
  bad.max_queue_depth = 0;
  try {
    bad.validate();
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("max_queue_depth"),
              std::string::npos)
        << error.what();
  }
  ServingConfig auto_pool;  // pool_threads = 0 means auto, not invalid
  EXPECT_NO_THROW(auto_pool.validate());
}

// ---- kernel fingerprints (tentpole: registry key) ----

TEST(ServingFingerprint, StableAcrossIdenticalInputs) {
  const Matrix kernel = test_kernel(616002, 8);
  const std::string config = SessionConfig{}.to_string();
  const KernelFingerprint a =
      serving::fingerprint_kernel("kernel", kernel, 3, config);
  const KernelFingerprint b =
      serving::fingerprint_kernel("kernel", kernel, 3, config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.to_string().size(), 32u);
}

TEST(ServingFingerprint, SensitiveToEveryKeyComponent) {
  const Matrix kernel = test_kernel(616003, 8);
  const std::string config = SessionConfig{}.to_string();
  const KernelFingerprint base =
      serving::fingerprint_kernel("kernel", kernel, 3, config);
  EXPECT_NE(base, serving::fingerprint_kernel("features", kernel, 3, config));
  EXPECT_NE(base, serving::fingerprint_kernel("kernel", kernel, 4, config));
  Matrix perturbed = kernel;
  perturbed(0, 0) += 1e-12;
  EXPECT_NE(base,
            serving::fingerprint_kernel("kernel", perturbed, 3, config));
  const std::string other =
      SessionConfig::parse("kind=batched").to_string();
  EXPECT_NE(base, serving::fingerprint_kernel("kernel", kernel, 3, other));
}

TEST(ServingFingerprint, ConfigSpellingsCoalesceViaCanonicalization) {
  // Two wire requests whose config texts differ only in order/formatting
  // must land on one session: fingerprint the canonical spelling.
  const Matrix kernel = test_kernel(616004, 8);
  const std::string a =
      SessionConfig::parse("kind=batched,use_commit=1").to_string();
  const std::string b =
      SessionConfig::parse("use_commit=true,kind=batched").to_string();
  EXPECT_EQ(serving::fingerprint_kernel("kernel", kernel, 3, a),
            serving::fingerprint_kernel("kernel", kernel, 3, b));
}

// ---- session registry (tentpole) ----

TEST(ServingRegistry, LruEvictionDropsTheColdEnd) {
  SessionRegistry registry(RegistryOptions{/*max_resident_bytes=*/250});
  const Matrix kernel = test_kernel(616005, 8);
  const auto factory = symmetric_factory(kernel, 2);
  const SessionOptions options;
  const auto key = [](std::uint64_t tag) {
    return KernelFingerprint{tag, ~tag};
  };
  // Budget holds two 100-byte entries. Insert A, B: both resident.
  (void)registry.acquire(key(1), options, 100, factory);
  (void)registry.acquire(key(2), options, 100, factory);
  ASSERT_EQ(registry.lru_order(),
            (std::vector<KernelFingerprint>{key(2), key(1)}));
  // Touch A (hit): order flips, nothing evicted.
  (void)registry.acquire(key(1), options, 100, factory);
  ASSERT_EQ(registry.lru_order(),
            (std::vector<KernelFingerprint>{key(1), key(2)}));
  // Insert C: budget overflows, the cold end (B) goes.
  (void)registry.acquire(key(3), options, 100, factory);
  EXPECT_EQ(registry.lru_order(),
            (std::vector<KernelFingerprint>{key(3), key(1)}));
  EXPECT_EQ(registry.peek(key(2)), nullptr);
  // Re-acquiring B is a fresh miss (rebuild), evicting A.
  (void)registry.acquire(key(2), options, 100, factory);
  EXPECT_EQ(registry.lru_order(),
            (std::vector<KernelFingerprint>{key(2), key(3)}));
  const auto stats = registry.stats();
  EXPECT_EQ(stats.lookups, 5u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.resident_bytes, 200u);
}

TEST(ServingRegistry, OversizedEntryStillServes) {
  // One entry above the whole budget is kept (never evict the entry the
  // current acquire returned) — degraded capacity beats a build loop.
  SessionRegistry registry(RegistryOptions{/*max_resident_bytes=*/10});
  const Matrix kernel = test_kernel(616006, 8);
  const auto session = registry.acquire(
      KernelFingerprint{7, 7}, SessionOptions{}, 1000,
      symmetric_factory(kernel, 2));
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(registry.stats().sessions, 1u);
}

TEST(ServingRegistry, FactoryExceptionLeavesRegistryUnchanged) {
  SessionRegistry registry;
  const SessionRegistry::OracleFactory throwing =
      []() -> std::unique_ptr<CountingOracle> {
    throw InvalidArgument("factory: deliberately failing build");
  };
  EXPECT_THROW((void)registry.acquire(KernelFingerprint{1, 2},
                                      SessionOptions{}, 64, throwing),
               InvalidArgument);
  EXPECT_EQ(registry.stats().sessions, 0u);
  EXPECT_EQ(registry.lru_order().size(), 0u);
}

class ServingFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

TEST_F(ServingFaultTest, PoisonedSessionIsReplacedNotReturned) {
  RandomStream setup(616007);
  const Matrix features = random_gaussian(64, 4, setup);
  const auto factory = [features = std::make_shared<const Matrix>(
                            features)]() -> std::unique_ptr<CountingOracle> {
    return std::make_unique<FeatureKdppOracle>(*features, 3);
  };
  SessionOptions options;
  options.distill.enabled = true;
  options.distill.persistent_proposal = true;
  options.distill.refresh_interval = 1;  // revalidate every pool
  SessionRegistry registry;
  const KernelFingerprint key{616007, 42};
  const auto first = registry.acquire(key, options, 1 << 12, factory);
  ASSERT_NE(first, nullptr);
  const std::uint64_t first_epoch = first->session().epoch();
  // Poison the resident session: forced revalidation drift, no recovery.
  ASSERT_GT(FailpointRegistry::instance().arm_from_spec(
                "distill.revalidate=prob:1"),
            0u);
  RandomStream rng(616008);
  EXPECT_THROW((void)first->session().draw(rng), ProposalDriftError);
  ASSERT_TRUE(first->session().health().poisoned);
  FailpointRegistry::instance().disarm_all();
  // Next acquire replaces in place: fresh entry, strictly newer epoch,
  // never the poisoned session.
  const auto second = registry.acquire(key, options, 1 << 12, factory);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second.get(), first.get());
  EXPECT_FALSE(second->session().health().poisoned);
  EXPECT_GT(second->session().epoch(), first_epoch);
  EXPECT_EQ(second->session().health().session_epoch,
            second->session().epoch());
  EXPECT_NO_THROW((void)second->session().draw(rng));
  const auto stats = registry.stats();
  EXPECT_EQ(stats.poisoned_replacements, 1u);
  EXPECT_EQ(stats.sessions, 1u);
  // The in-flight holder keeps the poisoned entry alive (shared_ptr),
  // but the registry only ever hands out the replacement.
  EXPECT_EQ(registry.peek(key), second);
}

TEST(ServingRegistry, SessionEpochsAreMonotone) {
  const Matrix kernel = test_kernel(616009, 8);
  const SymmetricKdppOracle oracle(kernel, 2);
  const SamplerSession a(oracle);
  const SamplerSession b(oracle);
  EXPECT_LT(a.epoch(), b.epoch());
  EXPECT_EQ(a.health().session_epoch, a.epoch());
}

// ---- coalesced draws (tentpole: determinism contract) ----

TEST(ServingCoalescing, BatchedDrawsBitIdenticalToSerialPerRequest) {
  const Matrix kernel = test_kernel(616010, 12);
  const SymmetricKdppOracle oracle(kernel, 3);
  const std::vector<DrawBatchRequest> requests = {
      {3, 901}, {5, 902}, {2, 903}, {1, 901}};
  // Reference: each request drawn standalone, serially, pool size 1.
  std::vector<std::vector<SampleResult>> reference;
  {
    ThreadPool pool(1);
    const ExecutionContext ctx(&pool, nullptr);
    for (const DrawBatchRequest& request : requests) {
      SamplerSession session(oracle);
      RandomStream rng(request.seed);
      reference.push_back(session.draw_many(request.count, rng, ctx));
    }
  }
  const std::size_t hw = physical_concurrency();
  for (const std::size_t pool_size : {std::size_t{1}, hw}) {
    ThreadPool pool(pool_size);
    const ExecutionContext ctx(&pool, nullptr);
    SamplerSession session(oracle);
    const auto outcomes = session.draw_many_batched(requests, ctx);
    ASSERT_EQ(outcomes.size(), requests.size());
    for (std::size_t r = 0; r < requests.size(); ++r) {
      ASSERT_EQ(outcomes[r].error, nullptr) << "request " << r;
      ASSERT_EQ(outcomes[r].results.size(), requests[r].count);
      for (std::size_t i = 0; i < requests[r].count; ++i) {
        EXPECT_EQ(outcomes[r].results[i].items, reference[r][i].items)
            << "pool " << pool_size << " request " << r << " draw " << i;
      }
    }
  }
  // Same seed, same count ⇒ same draws regardless of batch position:
  // requests 3 and 0 share seed 901; request 3's single draw must equal
  // request 0's first draw.
  ThreadPool pool(2);
  const ExecutionContext ctx(&pool, nullptr);
  SamplerSession session(oracle);
  const auto outcomes = session.draw_many_batched(requests, ctx);
  EXPECT_EQ(outcomes[3].results[0].items, outcomes[0].results[0].items);
}

TEST(ServingCoalescing, EmptyAndZeroCountRequestsAreHandled) {
  const Matrix kernel = test_kernel(616011, 8);
  const SymmetricKdppOracle oracle(kernel, 2);
  ThreadPool pool(2);
  const ExecutionContext ctx(&pool, nullptr);
  SamplerSession session(oracle);
  EXPECT_TRUE(session.draw_many_batched({}, ctx).empty());
  const auto outcomes = session.draw_many_batched({{0, 1}, {2, 2}}, ctx);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].error, nullptr);
  EXPECT_TRUE(outcomes[0].results.empty());
  EXPECT_EQ(outcomes[1].results.size(), 2u);
}

// ---- sampling server (tentpole: admission control + coalescing) ----

ServerRequest make_request(const Matrix& kernel, std::size_t k,
                           std::uint64_t seed, std::size_t count,
                           const std::string& tenant = "default") {
  ServerRequest request;
  request.tenant = tenant;
  request.session_options = SessionOptions{};
  request.fingerprint = serving::fingerprint_kernel(
      "kernel", kernel, k, SessionConfig{}.to_string());
  request.resident_bytes = 1 << 12;
  request.make_oracle = symmetric_factory(kernel, k);
  request.count = count;
  request.seed = seed;
  return request;
}

TEST(ServingServer, ServesDrawsMatchingStandaloneSessions) {
  const Matrix kernel = test_kernel(616012, 10);
  ServingConfig config;
  config.pool_threads = 2;
  SamplingServer server(config);
  auto f1 = server.submit(make_request(kernel, 3, 771, 4));
  auto f2 = server.submit(make_request(kernel, 3, 772, 3));
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  ASSERT_EQ(r1.size(), 4u);
  ASSERT_EQ(r2.size(), 3u);
  // Bit-identity with a standalone per-request session at pool size 1:
  // the serving path must be invisible in the samples.
  const SymmetricKdppOracle oracle(kernel, 3);
  ThreadPool pool(1);
  const ExecutionContext ctx(&pool, nullptr);
  SamplerSession session(oracle);
  RandomStream rng1(771);
  const auto e1 = session.draw_many(4, rng1, ctx);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(r1[i].items, e1[i].items) << "draw " << i;
  server.shutdown();  // joins the dispatcher: counters are final
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.draws, 7u);
  EXPECT_EQ(stats.registry.misses, 1u);  // one session served both
}

TEST(ServingServer, RejectsInvalidRequestsSynchronously) {
  SamplingServer server;
  ServerRequest request =
      make_request(test_kernel(616013, 8), 2, 1, 1);
  request.count = 0;
  EXPECT_THROW((void)server.submit(std::move(request)), InvalidArgument);
  ServerRequest oversized =
      make_request(test_kernel(616013, 8), 2, 1, 1);
  oversized.count = server.config().max_draws_per_request + 1;
  EXPECT_THROW((void)server.submit(std::move(oversized)), InvalidArgument);
  ServerRequest no_factory =
      make_request(test_kernel(616013, 8), 2, 1, 1);
  no_factory.make_oracle = nullptr;
  EXPECT_THROW((void)server.submit(std::move(no_factory)), InvalidArgument);
}

TEST(ServingServer, AdmissionControlShedsLoadAndRecovers) {
  const Matrix kernel = test_kernel(616014, 8);
  ServingConfig config;
  config.pool_threads = 1;
  config.max_queue_depth = 2;
  config.max_inflight_per_tenant = 2;
  SamplingServer server(config);
  // Stall the dispatcher inside the first request's oracle build, so
  // later submissions pile up in the queue deterministically. NOTE: the
  // factory runs under the registry lock, so server.stats() (which
  // snapshots the registry) must not be called while the gate is closed.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> building{false};
  ServerRequest blocker = make_request(kernel, 2, 1, 1, "tenant-a");
  blocker.fingerprint = KernelFingerprint{999, 999};  // its own session
  blocker.make_oracle = [kernel = std::make_shared<const Matrix>(kernel),
                         gate, &building]()
      -> std::unique_ptr<CountingOracle> {
    building.store(true);
    gate.wait();
    return std::make_unique<SymmetricKdppOracle>(*kernel, 2);
  };
  auto f0 = server.submit(std::move(blocker));
  // Once the factory has been entered, the dispatcher has drained the
  // blocker: the queue is empty again and the dispatcher is stuck.
  while (!building.load()) std::this_thread::yield();
  auto f1 = server.submit(make_request(kernel, 2, 11, 1, "tenant-a"));
  auto f2 = server.submit(make_request(kernel, 2, 12, 1, "tenant-b"));
  // Queue is at max_queue_depth = 2: the next submit sheds.
  EXPECT_THROW((void)server.submit(make_request(kernel, 2, 13, 1,
                                                "tenant-c")),
               Overloaded);
  release.set_value();  // unblock; everything queued completes
  EXPECT_EQ(f0.get().size(), 1u);
  EXPECT_EQ(f1.get().size(), 1u);
  EXPECT_EQ(f2.get().size(), 1u);
  // Degradation is graceful: after the burst drains, admission resumes.
  auto f3 = server.submit(make_request(kernel, 2, 14, 1, "tenant-c"));
  EXPECT_EQ(f3.get().size(), 1u);
  server.shutdown();  // joins the dispatcher: counters are final
  const auto stats = server.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServingServer, TenantInflightCapIsolatesTenants) {
  const Matrix kernel = test_kernel(616015, 8);
  ServingConfig config;
  config.pool_threads = 1;
  config.max_queue_depth = 64;
  config.max_inflight_per_tenant = 1;
  SamplingServer server(config);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ServerRequest blocker = make_request(kernel, 2, 1, 1, "greedy");
  blocker.make_oracle = [kernel = std::make_shared<const Matrix>(kernel),
                         gate]() -> std::unique_ptr<CountingOracle> {
    gate.wait();
    return std::make_unique<SymmetricKdppOracle>(*kernel, 2);
  };
  auto f0 = server.submit(std::move(blocker));
  // Same tenant at its cap: shed with the tenant-cap counter, while a
  // different tenant is still admitted. (No server.stats() here: the
  // blocked factory holds the registry lock the snapshot would need.)
  EXPECT_THROW((void)server.submit(make_request(kernel, 2, 2, 1, "greedy")),
               Overloaded);
  auto f1 = server.submit(make_request(kernel, 2, 3, 1, "polite"));
  release.set_value();
  EXPECT_EQ(f0.get().size(), 1u);
  EXPECT_EQ(f1.get().size(), 1u);
  // In-flight released on completion: the greedy tenant is admitted again.
  auto f2 = server.submit(make_request(kernel, 2, 4, 1, "greedy"));
  EXPECT_EQ(f2.get().size(), 1u);
  server.shutdown();
  EXPECT_EQ(server.stats().rejected_tenant_cap, 1u);
}

TEST(ServingServer, ShutdownRejectsNewSubmissions) {
  const Matrix kernel = test_kernel(616016, 8);
  ServingConfig config;
  config.pool_threads = 1;
  SamplingServer server(config);
  server.shutdown();
  EXPECT_THROW((void)server.submit(make_request(kernel, 2, 1, 1)),
               Overloaded);
  server.shutdown();  // idempotent
}

// ---- wire protocol (satellite 4: round-trip + fuzz) ----

TEST(ServingProtocol, FramesRoundTripAcrossArbitraryChunking) {
  const std::vector<std::string> payloads = {"", "a", "hello\nworld",
                                             std::string(1000, 'x')};
  std::string stream;
  for (const std::string& payload : payloads)
    stream += serving::encode_frame(payload);
  // Feed one byte at a time: framing must not depend on chunk boundaries.
  FrameReader reader;
  std::vector<std::string> decoded;
  for (const char byte : stream) {
    reader.feed(std::string_view(&byte, 1));
    while (auto payload = reader.next()) decoded.push_back(*payload);
  }
  EXPECT_EQ(decoded, payloads);
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(ServingProtocol, TruncatedTrailingFrameIsDetectedNotCrashed) {
  FrameReader reader;
  const std::string frame = serving::encode_frame("full payload");
  reader.feed(frame.substr(0, frame.size() - 3));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_NE(reader.pending(), 0u);  // EOF now would mean truncation
  reader.feed(frame.substr(frame.size() - 3));
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "full payload");
}

TEST(ServingProtocol, OversizeDeclaredLengthIsUnrecoverable) {
  FrameReader reader;
  // Length word 0xffffffff: far beyond kMaxFrameBytes.
  reader.feed(std::string_view("\xff\xff\xff\xff", 4));
  EXPECT_THROW((void)reader.next(), ProtocolError);
}

TEST(ServingProtocol, SampleRequestRoundTrips) {
  SampleRequest request;
  request.tenant = "tenant-7";
  request.seed = 12345;
  request.count = 6;
  request.k = 3;
  request.matrix_kind = "features";
  request.config = "kind=batched";
  RandomStream setup(616017);
  request.matrix = random_gaussian(5, 3, setup);
  const std::string payload = serving::encode_sample_request(request);
  const serving::Request parsed = serving::parse_request(payload);
  const auto* sample = std::get_if<SampleRequest>(&parsed);
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->tenant, "tenant-7");
  EXPECT_EQ(sample->seed, 12345u);
  EXPECT_EQ(sample->count, 6u);
  EXPECT_EQ(sample->k, 3u);
  EXPECT_EQ(sample->matrix_kind, "features");
  EXPECT_EQ(sample->config, "kind=batched");
  ASSERT_EQ(sample->matrix.rows(), 5u);
  ASSERT_EQ(sample->matrix.cols(), 3u);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(sample->matrix(i, j), request.matrix(i, j));
}

TEST(ServingProtocol, MalformedRequestsThrowTypedErrors) {
  const auto expect_protocol_error = [](std::string_view payload) {
    EXPECT_THROW((void)serving::parse_request(payload), ProtocolError)
        << payload;
  };
  expect_protocol_error("");
  expect_protocol_error("bogus-verb\n");
  expect_protocol_error("sample\nk=2\n");            // missing matrix
  expect_protocol_error("sample\nmatrix=1,0;0,1\n");  // missing k
  expect_protocol_error("sample\nk=2\nmatrix=1,0;0\n");     // ragged
  expect_protocol_error("sample\nk=2\nmatrix=1,x;0,1\n");   // non-numeric
  expect_protocol_error("sample\nk=-2\nmatrix=1\n");        // negative
  expect_protocol_error("sample\nk=2\nkind=wat\nmatrix=1\n");
  expect_protocol_error("sample\nnot-a-pair\nk=1\nmatrix=1\n");
  expect_protocol_error("sample\nunknown_field=3\nk=1\nmatrix=1\n");
}

TEST(ServingProtocol, FuzzedPayloadsNeverCrash) {
  // Deterministic byte soup: every payload must either parse or throw a
  // typed ProtocolError — any other escape is a bug.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next_byte = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<char>(state & 0xff);
  };
  for (int round = 0; round < 200; ++round) {
    std::string payload;
    const std::size_t size = (state % 64) + 1;
    for (std::size_t i = 0; i < size; ++i) payload.push_back(next_byte());
    // Half the rounds get a plausible verb prefix so field parsing is
    // exercised too, not just verb rejection.
    if (round % 2 == 0) payload = "sample\n" + payload;
    try {
      (void)serving::parse_request(payload);
    } catch (const ProtocolError&) {
      // typed rejection — the contract
    }
  }
}

TEST(ServingProtocol, ResponsesRoundTripAndStatusesMatchTaxonomy) {
  const std::string payload = serving::format_response(
      ResponseStatus::kOk, "count=1\nsample=0 2 4\n");
  const auto [status, body] = serving::parse_response(payload);
  EXPECT_EQ(status, ResponseStatus::kOk);
  EXPECT_EQ(body, "count=1\nsample=0 2 4\n");
  EXPECT_THROW((void)serving::parse_response("no-status-line"),
               ProtocolError);
  EXPECT_THROW((void)serving::parse_response("status=42\n"), ProtocolError);

  const auto classify = [](auto&& error) {
    return serving::status_for_exception(
        std::make_exception_ptr(std::forward<decltype(error)>(error)));
  };
  EXPECT_EQ(classify(ProtocolError("x")), ResponseStatus::kMalformed);
  EXPECT_EQ(classify(Overloaded("x")), ResponseStatus::kOverloaded);
  EXPECT_EQ(classify(DistillationStarvation("x", SampleDiagnostics{})),
            ResponseStatus::kStarvation);
  EXPECT_EQ(classify(SamplingFailure("x")),
            ResponseStatus::kSamplingFailure);
  EXPECT_EQ(classify(NumericalError("x")), ResponseStatus::kNumericalError);
  EXPECT_EQ(classify(InvalidArgument("x")),
            ResponseStatus::kInvalidArgument);
  EXPECT_EQ(classify(Error("x")), ResponseStatus::kInternalError);
  EXPECT_EQ(classify(std::runtime_error("x")),
            ResponseStatus::kInternalError);
}

TEST(ServingProtocol, MakeServerRequestCanonicalizesTheConfig) {
  RandomStream setup(616018);
  SampleRequest a;
  a.k = 2;
  a.count = 1;
  a.matrix = random_psd(6, 6, setup, 1e-3);
  a.config = "kind=batched,use_commit=1";
  SampleRequest b = a;
  b.config = "use_commit=true,kind=batched";
  const ServerRequest lowered_a = serving::make_server_request(a);
  const ServerRequest lowered_b = serving::make_server_request(b);
  EXPECT_EQ(lowered_a.fingerprint, lowered_b.fingerprint);
  EXPECT_EQ(lowered_a.session_options.kind, SamplerKind::kBatched);
  ASSERT_TRUE(static_cast<bool>(lowered_a.make_oracle));
  const auto oracle = lowered_a.make_oracle();
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->sample_size(), 2u);
  // A config the session layer rejects surfaces at lowering time.
  SampleRequest bad = a;
  bad.config = "distill.enabled=1,distill.candidate_budget=1";
  EXPECT_THROW((void)serving::make_server_request(bad), InvalidArgument);
}

}  // namespace
}  // namespace pardpp
