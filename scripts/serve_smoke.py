#!/usr/bin/env python3
"""End-to-end smoke test for `sample_cli serve` (the serving daemon).

Drives the daemon over its length-prefixed stdin/stdout protocol and
asserts the response-status taxonomy, coalescing/registry counters, and
per-seed determinism. Three daemon instances:

 1. The happy path: sample draws (deterministic per seed, registry hit
    on the second request), a stats snapshot, a malformed verb (status
    1), an invalid request (status 3) — then a clean shutdown, exit 0.
 2. The poisoning path: a scoped `distill.revalidate` failpoint forces
    proposal drift on every draw of a persistent-proposal session. Each
    request must fail with status 4 (ProposalDriftError, a
    NumericalError) and NEVER status 2 (SessionPoisoned) — the registry
    must evict the poisoned session and build a replacement rather than
    hand the poisoned one to the next client. Verified via the stats
    surface: session epoch strictly increases, poisoned_replacements
    counts the swap.
 3. The framing-error path: an oversize declared length is
    unrecoverable — the daemon answers status 1 and exits 2.

Runs under the CI fault-injection leg too: the canned scoped schedule
is law-invariant (recoverable guard events only), so phase 1 still
draws successfully; phase 2 overrides PARDPP_FAILPOINTS itself.
"""

import os
import re
import signal
import struct
import subprocess
import sys


def frame(payload: str) -> bytes:
    data = payload.encode()
    return struct.pack(">I", len(data)) + data


class Daemon:
    def __init__(self, binary, env=None):
        run_env = dict(os.environ)
        if env:
            run_env.update(env)
        self.proc = subprocess.Popen(
            [binary, "serve"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=run_env,
        )

    def request(self, payload: str):
        """One frame out, one framed (status, body) back."""
        self.proc.stdin.write(frame(payload))
        self.proc.stdin.flush()
        return self.read_response()

    def read_response(self):
        head = self.proc.stdout.read(4)
        assert len(head) == 4, f"short frame header: {head!r}"
        (size,) = struct.unpack(">I", head)
        payload = self.proc.stdout.read(size).decode()
        status_line, _, body = payload.partition("\n")
        assert status_line.startswith("status="), payload
        return int(status_line[len("status=") :]), body

    def close(self) -> int:
        self.proc.stdin.close()
        return self.proc.wait()


def parse_kv(body: str) -> dict:
    pairs = {}
    for line in body.splitlines():
        key, eq, value = line.partition("=")
        if eq:
            pairs[key] = value
    return pairs


def session_field(stats: dict, suffix: str) -> int:
    pattern = re.compile(r"^session\.[0-9a-f]{32}\." + re.escape(suffix) + "$")
    values = [int(value) for key, value in stats.items() if pattern.match(key)]
    assert len(values) == 1, f"expected one session.<fp>.{suffix}: {stats}"
    return values[0]


def sample_lines(body: str):
    return [l for l in body.splitlines() if l.startswith("sample=")]


def kernel_request(seed, count):
    # Diagonally dominant symmetric 6x6 kernel: SymmetricKdppOracle.
    rows = []
    for i in range(6):
        rows.append(
            ",".join("4" if i == j else "0.3" for j in range(6))
        )
    return (
        "sample\n"
        f"seed={seed}\ncount={count}\nk=2\nkind=kernel\n"
        "matrix=" + ";".join(rows) + "\n"
    )


def feature_request(seed):
    # 16x3 feature rows (deterministic, full-rank), persistent-proposal
    # distillation config — the only config that can be poisoned.
    rows = []
    for i in range(16):
        rows.append(
            ",".join(str(((7 * i + 3 * j) % 11) - 5 + (1 if i == j else 0))
                     for j in range(3))
        )
    return (
        "sample\n"
        f"seed={seed}\ncount=1\nk=3\nkind=features\n"
        "config=distill.enabled=1,distill.persistent_proposal=1,"
        "distill.refresh_interval=1\n"
        "matrix=" + ";".join(rows) + "\n"
    )


def phase_happy_path(binary):
    daemon = Daemon(binary)
    status, body = daemon.request(kernel_request(seed=11, count=3))
    assert status == 0, (status, body)
    first = sample_lines(body)
    assert len(first) == 3, body
    assert all(len(l.split("=")[1].split()) == 2 for l in first), body

    # Same seed, same kernel: bit-identical draws through the registry.
    status, body = daemon.request(kernel_request(seed=11, count=3))
    assert status == 0, (status, body)
    assert sample_lines(body) == first, "draws are not seed-deterministic"

    status, body = daemon.request("stats\n")
    assert status == 0, (status, body)
    stats = parse_kv(body)
    assert stats["draws"] == "6", stats
    assert stats["completed"] == "2", stats
    assert stats["registry.sessions"] == "1", stats
    assert stats["registry.misses"] == "1", stats
    assert stats["registry.hits"] == "1", stats
    assert session_field(stats, "poisoned") == 0, stats

    status, body = daemon.request("bogus-verb\n")
    assert status == 1, (status, body)
    status, body = daemon.request(
        "sample\nk=99\nmatrix=" + kernel_request(1, 1).split("matrix=")[1]
    )
    assert status == 3, (status, body)  # k exceeds ground size

    status, body = daemon.request("shutdown\n")
    assert status == 0, (status, body)
    code = daemon.close()
    assert code == 0, f"clean shutdown exited {code}"
    print("phase 1 (happy path + taxonomy): ok")


def phase_poisoned_replacement(binary):
    # Scoped so only draws (inside a FailpointScope) drift — session
    # construction stays clean, letting the replacement build succeed.
    daemon = Daemon(
        binary,
        env={"PARDPP_FAILPOINTS": "distill.revalidate=scoped,prob:1,seed:424242"},
    )
    status, body = daemon.request(feature_request(seed=5))
    assert status == 4, (status, body)  # ProposalDriftError, typed
    status, body = daemon.request("stats\n")
    assert status == 0, (status, body)
    stats = parse_kv(body)
    assert session_field(stats, "poisoned") == 1, stats
    first_epoch = session_field(stats, "epoch")

    # Second request: the registry must replace the poisoned session and
    # run the draw on the fresh one (which drifts again -> status 4).
    # Status 2 here would mean SessionPoisoned reached a client.
    status, body = daemon.request(feature_request(seed=6))
    assert status == 4, (
        f"poisoned session leaked to a client: status {status}: {body}"
    )
    status, body = daemon.request("stats\n")
    stats = parse_kv(body)
    assert stats["registry.poisoned_replacements"] == "1", stats
    assert stats["registry.sessions"] == "1", stats
    assert session_field(stats, "epoch") > first_epoch, stats

    status, body = daemon.request("shutdown\n")
    assert status == 0, (status, body)
    assert daemon.close() == 0
    print("phase 2 (poisoned session evicted and replaced): ok")


def phase_framing_error(binary):
    daemon = Daemon(binary)
    # Declared length 0xffffffff: beyond kMaxFrameBytes, unrecoverable.
    daemon.proc.stdin.write(b"\xff\xff\xff\xff")
    daemon.proc.stdin.flush()
    status, body = daemon.read_response()
    assert status == 1, (status, body)
    code = daemon.close()
    assert code == 2, f"framing error should exit 2, got {code}"
    print("phase 3 (unrecoverable framing error -> exit 2): ok")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <sample_cli-binary>", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    if hasattr(signal, "alarm"):
        signal.alarm(300)  # fail loudly rather than hang CI
    phase_happy_path(binary)
    phase_poisoned_replacement(binary)
    phase_framing_error(binary)
    print("serve smoke: all phases ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
