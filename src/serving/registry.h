// Session registry: long-lived SamplerSessions keyed by kernel
// fingerprint, with LRU eviction by resident-bytes budget and
// poisoned-session replacement (DESIGN.md §2 convention 13).
//
// An entry owns its oracle AND its session (the session holds a
// reference into the oracle, so the pair lives and dies together), plus
// a per-kind GuardEvent counter array the stats surface reads without
// taking the session's sink lock. Entries are handed out as shared_ptr:
// eviction or replacement removes an entry from the registry but
// in-flight holders keep it alive until their batch drains — an evicted
// session finishes its work, it is just never handed out again.
//
// Poisoned replacement: acquire() on a fingerprint whose resident
// session is poisoned (SessionHealth::poisoned) builds a fresh entry in
// place and returns it — clients never receive a poisoned session. The
// replacement gets a new SessionHealth::session_epoch, which is how
// consumers holding old health snapshots detect the swap.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "distributions/oracle.h"
#include "sampling/diagnostics.h"
#include "sampling/session.h"
#include "serving/fingerprint.h"

namespace pardpp::serving {

/// One registry entry: oracle + primed session + guard-event counters.
/// Non-movable (the session's guard sink captures `this`).
class ServingSession {
 public:
  /// Takes ownership of the oracle; primes the session immediately (so
  /// the construction cost is paid by the acquiring request, once).
  /// A caller-provided options.guard_events sink is chained after the
  /// counter update. `resident_bytes` is the caller's cost estimate the
  /// registry charges against its budget.
  ServingSession(std::unique_ptr<CountingOracle> oracle,
                 SessionOptions options, std::size_t resident_bytes);
  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;

  [[nodiscard]] SamplerSession& session() noexcept { return *session_; }
  [[nodiscard]] const SamplerSession& session() const noexcept {
    return *session_;
  }
  [[nodiscard]] const CountingOracle& oracle() const noexcept {
    return *oracle_;
  }
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return resident_bytes_;
  }

  /// Per-kind lifetime GuardEvent counts (indexed by GuardEventKind).
  [[nodiscard]] std::array<std::uint64_t, kGuardEventKindCount>
  guard_event_counts() const;

 private:
  std::unique_ptr<CountingOracle> oracle_;
  std::size_t resident_bytes_;
  std::array<std::atomic<std::uint64_t>, kGuardEventKindCount>
      guard_counts_{};
  std::unique_ptr<SamplerSession> session_;  // last: references the above
};

struct RegistryOptions {
  /// LRU budget: after an insert pushes the resident-byte sum past this,
  /// least-recently-used entries are dropped (the just-acquired entry is
  /// never dropped, so one oversized session still serves).
  std::size_t max_resident_bytes = std::size_t{256} << 20;
};

struct RegistryStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< cold builds (first acquire of a key)
  std::uint64_t evictions = 0;
  std::uint64_t poisoned_replacements = 0;
  std::size_t sessions = 0;        ///< resident entries right now
  std::size_t resident_bytes = 0;  ///< sum of resident estimates
};

class SessionRegistry {
 public:
  /// Builds the oracle for a cold (or replacement) entry. Called under
  /// the registry lock: concurrent acquires of the same fingerprint
  /// build once, at the cost of serializing cold builds of *different*
  /// kernels — acceptable for a build that is paid once per kernel.
  using OracleFactory = std::function<std::unique_ptr<CountingOracle>()>;

  explicit SessionRegistry(RegistryOptions options = {})
      : options_(options) {}

  /// Hit: touches the LRU slot and returns the resident session.
  /// Poisoned hit: replaces the entry (fresh oracle + session) and
  /// returns the replacement. Miss: builds, inserts most-recent, then
  /// evicts cold entries until the byte budget holds. Construction
  /// exceptions (oracle factory or session validate/prime) propagate to
  /// the caller and leave the registry unchanged.
  [[nodiscard]] std::shared_ptr<ServingSession> acquire(
      const KernelFingerprint& fingerprint, const SessionOptions& options,
      std::size_t resident_bytes, const OracleFactory& make_oracle);

  /// The resident session for a fingerprint without touching LRU order
  /// or counters (stats/tests); nullptr when absent.
  [[nodiscard]] std::shared_ptr<ServingSession> peek(
      const KernelFingerprint& fingerprint) const;

  /// Fingerprints most-recently-used first.
  [[nodiscard]] std::vector<KernelFingerprint> lru_order() const;

  /// Every resident entry, most-recently-used first (the stats surface).
  [[nodiscard]] std::vector<
      std::pair<KernelFingerprint, std::shared_ptr<ServingSession>>>
  snapshot() const;

  [[nodiscard]] RegistryStats stats() const;

  void clear();

 private:
  struct Entry {
    KernelFingerprint fingerprint;
    std::shared_ptr<ServingSession> session;
  };

  /// Drops cold-end entries while over budget (never the front — the
  /// entry the current acquire just touched or inserted).
  void evict_over_budget_locked();

  mutable std::mutex mutex_;
  RegistryOptions options_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<KernelFingerprint, std::list<Entry>::iterator,
                     KernelFingerprintHasher>
      index_;
  RegistryStats stats_;
};

}  // namespace pardpp::serving
