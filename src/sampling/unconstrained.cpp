#include "sampling/unconstrained.h"

#include <cmath>

#include "dpp/cardinality.h"
#include "dpp/ensemble.h"
#include "dpp/general_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/symmetric_eigen.h"
#include "support/error.h"

namespace pardpp {

namespace {

UnconstrainedSampleResult via_cardinality(const Matrix& l, bool symmetric,
                                          RandomStream& rng,
                                          PramLedger* ledger,
                                          const UnconstrainedOptions& options) {
  UnconstrainedSampleResult result;
  // One parallel round computes all e_j (Prop. 13.2) and draws |S|.
  const auto weights = cardinality_log_weights(l, symmetric);
  charge_round(ledger, l.rows(), 1);
  const std::size_t k = sample_cardinality(weights, rng);
  if (k == 0) {
    result.strategy_used = symmetric ? "cardinality+batched"
                                     : "cardinality+entropic";
    if (ledger != nullptr) result.diag.pram = ledger->stats();
    return result;
  }
  if (symmetric) {
    const SymmetricKdppOracle oracle(l, k, /*validate=*/false);
    auto sample = sample_batched(oracle, rng, ledger, options.batched);
    result.items = std::move(sample.items);
    result.diag = sample.diag;
    result.strategy_used = "cardinality+batched";
  } else {
    const GeneralDppOracle oracle(l, k, /*validate=*/false);
    auto sample = sample_entropic(oracle, rng, ledger, options.entropic);
    result.items = std::move(sample.items);
    result.diag = sample.diag;
    result.strategy_used = "cardinality+entropic";
  }
  return result;
}

UnconstrainedSampleResult via_filtering(const Matrix& l, RandomStream& rng,
                                        PramLedger* ledger,
                                        const UnconstrainedOptions& options) {
  UnconstrainedSampleResult result;
  auto sample = sample_filtering_dpp(l, rng, ledger, options.filtering);
  result.items = std::move(sample.items);
  result.diag = sample.diag;
  result.strategy_used = "filtering";
  return result;
}

}  // namespace

UnconstrainedSampleResult sample_dpp(const Matrix& l, bool symmetric,
                                     RandomStream& rng, PramLedger* ledger,
                                     const UnconstrainedOptions& options) {
  check_arg(l.square(), "sample_dpp: matrix not square");
  using Strategy = UnconstrainedOptions::Strategy;
  Strategy strategy = options.strategy;
  check_arg(!(strategy == Strategy::kFiltering && !symmetric),
            "sample_dpp: filtering requires a symmetric ensemble");
  if (strategy == Strategy::kAuto) {
    if (!symmetric) {
      strategy = Strategy::kCardinality;
    } else {
      // Theorem 41's min(sqrt(tr K), sigma_max(K) sqrt(n)).
      const Matrix kernel = marginal_kernel(l);
      double trace = 0.0;
      for (std::size_t i = 0; i < kernel.rows(); ++i) trace += kernel(i, i);
      const double sigma = spectral_norm_symmetric(kernel);
      const double via_trace = std::sqrt(std::max(trace, 0.0));
      const double via_sigma =
          sigma * std::sqrt(static_cast<double>(l.rows()));
      strategy = via_trace <= via_sigma ? Strategy::kCardinality
                                        : Strategy::kFiltering;
    }
  }
  return strategy == Strategy::kFiltering
             ? via_filtering(l, rng, ledger, options)
             : via_cardinality(l, symmetric, rng, ledger, options);
}

}  // namespace pardpp
