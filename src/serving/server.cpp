#include "serving/server.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace pardpp::serving {

SamplingServer::SamplingServer(ServingConfig config)
    : config_(std::move(config)),
      pool_(config_.pool_threads != 0 ? config_.pool_threads
                                      : physical_concurrency()),
      ctx_(&pool_, nullptr),
      registry_(RegistryOptions{config_.max_resident_bytes}) {
  config_.validate();
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SamplingServer::~SamplingServer() { shutdown(); }

std::future<std::vector<SampleResult>> SamplingServer::submit(
    ServerRequest request) {
  check_arg(request.count != 0, "ServerRequest::count: must be positive");
  check_arg(request.count <= config_.max_draws_per_request,
            "ServerRequest::count: " + std::to_string(request.count) +
                " exceeds max_draws_per_request " +
                std::to_string(config_.max_draws_per_request));
  check_arg(static_cast<bool>(request.make_oracle),
            "ServerRequest::make_oracle: missing oracle factory");

  std::future<std::vector<SampleResult>> future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      throw Overloaded("SamplingServer: shutting down, not admitting");
    if (queue_.size() >= config_.max_queue_depth) {
      ++stats_.rejected_queue_full;
      throw Overloaded("SamplingServer: queue full (depth " +
                       std::to_string(queue_.size()) + " >= max " +
                       std::to_string(config_.max_queue_depth) +
                       "); back off and retry");
    }
    std::size_t& inflight = inflight_[request.tenant];
    if (inflight >= config_.max_inflight_per_tenant) {
      ++stats_.rejected_tenant_cap;
      throw Overloaded("SamplingServer: tenant '" + request.tenant +
                       "' at in-flight cap " +
                       std::to_string(config_.max_inflight_per_tenant));
    }
    ++inflight;
    ++stats_.submitted;
    queue_.push_back(Pending{std::move(request), {}});
    future = queue_.back().promise.get_future();
    stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
  }
  cv_.notify_one();
  return future;
}

// Callers must finish() BEFORE resolving the request's promise: the
// counters have to be published first so a client that has already seen
// its response can never read a stats snapshot that is missing it.
void SamplingServer::finish(Pending& pending, bool failed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (failed) {
    ++stats_.failed;
  } else {
    ++stats_.completed;
  }
  const auto found = inflight_.find(pending.request.tenant);
  if (found != inflight_.end() && found->second > 0) {
    if (--found->second == 0) inflight_.erase(found);
  }
}

void SamplingServer::run_group(std::vector<Pending>& group) {
  std::shared_ptr<ServingSession> session;
  try {
    const ServerRequest& first = group.front().request;
    session = registry_.acquire(first.fingerprint, first.session_options,
                                first.resident_bytes, first.make_oracle);
    std::vector<DrawBatchRequest> batch;
    batch.reserve(group.size());
    for (const Pending& pending : group)
      batch.push_back(
          DrawBatchRequest{pending.request.count, pending.request.seed});
    std::vector<DrawBatchOutcome> outcomes =
        session->session().draw_many_batched(batch, ctx_);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches;
      stats_.coalesced_requests += group.size();
      stats_.max_coalesced = std::max<std::uint64_t>(stats_.max_coalesced,
                                                     group.size());
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (outcomes[i].error != nullptr) {
        finish(group[i], /*failed=*/true);
        group[i].promise.set_exception(outcomes[i].error);
      } else {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          stats_.draws += outcomes[i].results.size();
        }
        finish(group[i], /*failed=*/false);
        group[i].promise.set_value(std::move(outcomes[i].results));
      }
    }
  } catch (...) {
    // Group-level failure: session build/validate threw, or the whole
    // batch was refused (already-poisoned session). Every request in the
    // group gets the same typed exception.
    const std::exception_ptr error = std::current_exception();
    for (Pending& pending : group) {
      finish(pending, /*failed=*/true);
      pending.promise.set_exception(error);
    }
  }
}

void SamplingServer::dispatch_loop() {
  for (;;) {
    std::deque<Pending> drained;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // shutdown() fails whatever is queued
      drained.swap(queue_);
    }
    // Group the drained batch by fingerprint, preserving arrival order
    // within and across groups (first-arrived group dispatches first).
    std::vector<std::vector<Pending>> groups;
    std::unordered_map<KernelFingerprint, std::size_t,
                       KernelFingerprintHasher>
        group_of;
    for (Pending& pending : drained) {
      const auto found = group_of.find(pending.request.fingerprint);
      if (found == group_of.end()) {
        group_of.emplace(pending.request.fingerprint, groups.size());
        groups.emplace_back();
        groups.back().push_back(std::move(pending));
      } else {
        groups[found->second].push_back(std::move(pending));
      }
    }
    for (std::vector<Pending>& group : groups) run_group(group);
  }
}

ServerStats SamplingServer::stats() const {
  ServerStats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.registry = registry_.stats();
  return out;
}

void SamplingServer::shutdown() {
  std::deque<Pending> orphaned;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (Pending& pending : orphaned) {
    finish(pending, /*failed=*/true);
    pending.promise.set_exception(std::make_exception_ptr(
        Overloaded("SamplingServer: shut down before dispatch")));
  }
}

}  // namespace pardpp::serving
