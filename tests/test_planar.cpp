// Planar subsystem tests: embedding/faces, FKT counting vs brute force,
// separators, and both matching samplers' output distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "planar/enumerate.h"
#include "planar/faces.h"
#include "planar/fkt.h"
#include "planar/graph.h"
#include "planar/grid.h"
#include "planar/matching_count.h"
#include "planar/matching_sampler.h"
#include "planar/separator.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

std::map<Matching, double> exact_matching_distribution(const PlanarGraph& g) {
  const auto all = enumerate_perfect_matchings(g);
  std::map<Matching, double> out;
  for (const auto& m : all) out[m] = 1.0 / static_cast<double>(all.size());
  return out;
}

// The induced subgraph on the largest connected component — the
// deterministic fallback for generated graphs that split (the counter
// and samplers require connected input). Returned graphs are connected
// by construction, so tests assert on them instead of skipping.
PlanarGraph largest_component_subgraph(const PlanarGraph& g) {
  const auto components = g.components();
  std::size_t best = 0;
  for (std::size_t c = 1; c < components.size(); ++c)
    if (components[c].size() > components[best].size()) best = c;
  return g.induced(components[best]);
}

// Regenerates a diluted grid with fresh randomness until it stays
// connected (a handful of tries at these densities); the largest
// component is the never-reached deterministic backstop.
PlanarGraph connected_diluted_grid(std::size_t rows, std::size_t cols,
                                   double drop_prob, RandomStream& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto g = diluted_grid_graph(rows, cols, drop_prob, rng);
    if (g.components().size() == 1) return g;
  }
  return largest_component_subgraph(
      diluted_grid_graph(rows, cols, drop_prob, rng));
}

PlanarGraph triangle_with_pendant() {
  // Non-bipartite: odd face exercises the Kasteleyn parity rule.
  PlanarGraph g({{0.0, 0.0}, {2.0, 0.0}, {1.0, 1.5}, {-1.0, -0.5}});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  return g;
}

PlanarGraph wheel5() {
  // Hub + 5-cycle: several odd faces, 6 vertices.
  PlanarGraph g({{0.0, 0.0},
                 {1.0, 0.0},
                 {0.31, 0.95},
                 {-0.81, 0.59},
                 {-0.81, -0.59},
                 {0.31, -0.95}});
  for (int i = 1; i <= 5; ++i) g.add_edge(0, i);
  for (int i = 1; i <= 5; ++i) g.add_edge(i, i % 5 + 1);
  return g;
}

TEST(Faces, GridEulerCharacteristic) {
  for (const auto& [r, c] : {std::pair{2, 2}, {2, 3}, {3, 3}, {4, 5}}) {
    const auto g = grid_graph(static_cast<std::size_t>(r),
                              static_cast<std::size_t>(c));
    const auto faces = compute_faces(g);
    EXPECT_EQ(faces.euler, 2) << r << "x" << c;
    // Grid has (r-1)(c-1) internal faces + outer.
    EXPECT_EQ(faces.faces.size(),
              static_cast<std::size_t>((r - 1) * (c - 1) + 1));
  }
}

TEST(Faces, OuterFaceHasNegativeArea) {
  const auto g = grid_graph(3, 3);
  const auto faces = compute_faces(g);
  EXPECT_LT(faces.faces[faces.outer_face].signed_area, 0.0);
  for (std::size_t f = 0; f < faces.faces.size(); ++f) {
    if (f != faces.outer_face) {
      EXPECT_GT(faces.faces[f].signed_area, 0.0);
    }
  }
}

TEST(Faces, TriangleWithPendant) {
  const auto g = triangle_with_pendant();
  const auto faces = compute_faces(g);
  EXPECT_EQ(faces.euler, 2);
  EXPECT_EQ(faces.faces.size(), 2u);  // triangle + outer (pendant edge
                                      // traversed twice by the outer walk)
}

class FktCountTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FktCountTest, GridCountsMatchBruteForce) {
  const auto [r, c] = GetParam();
  const auto g = grid_graph(static_cast<std::size_t>(r),
                            static_cast<std::size_t>(c));
  const MatchingCounter counter(g);
  const auto brute = count_perfect_matchings_brute(g);
  if (brute == 0) {
    EXPECT_EQ(counter.log_count(), kNegInf);
  } else {
    EXPECT_NEAR(std::exp(counter.log_count()), static_cast<double>(brute),
                1e-6 * static_cast<double>(brute))
        << r << "x" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, FktCountTest,
    ::testing::Values(std::pair{2, 2}, std::pair{2, 3}, std::pair{2, 4},
                      std::pair{3, 3}, std::pair{3, 4}, std::pair{4, 4},
                      std::pair{2, 7}, std::pair{4, 5}));

TEST(FktCount, KnownGridValues) {
  // Classic dimer counts: 2x2 -> 2, 2x3 -> 3, 4x4 -> 36, 2x8 -> 34.
  EXPECT_NEAR(std::exp(MatchingCounter(grid_graph(2, 2)).log_count()), 2.0,
              1e-9);
  EXPECT_NEAR(std::exp(MatchingCounter(grid_graph(2, 3)).log_count()), 3.0,
              1e-9);
  EXPECT_NEAR(std::exp(MatchingCounter(grid_graph(4, 4)).log_count()), 36.0,
              1e-7);
  EXPECT_NEAR(std::exp(MatchingCounter(grid_graph(2, 8)).log_count()), 34.0,
              1e-7);
}

TEST(FktCount, NonBipartiteGraphs) {
  {
    const auto g = triangle_with_pendant();
    const MatchingCounter counter(g);
    EXPECT_NEAR(std::exp(counter.log_count()),
                static_cast<double>(count_perfect_matchings_brute(g)), 1e-9);
  }
  {
    const auto g = wheel5();
    const MatchingCounter counter(g);
    const auto brute = count_perfect_matchings_brute(g);
    EXPECT_NEAR(std::exp(counter.log_count()), static_cast<double>(brute),
                1e-9);
  }
}

class DilutedGridCount : public ::testing::TestWithParam<int> {};

TEST_P(DilutedGridCount, MatchesBruteForce) {
  RandomStream rng(static_cast<std::uint64_t>(GetParam()) * 53 + 1);
  const auto g = connected_diluted_grid(3, 4, 0.25, rng);
  ASSERT_EQ(g.components().size(), 1u);
  const MatchingCounter counter(g);
  const auto brute = count_perfect_matchings_brute(g);
  if (brute == 0) {
    EXPECT_EQ(counter.log_count(), kNegInf);
  } else {
    EXPECT_NEAR(std::exp(counter.log_count()), static_cast<double>(brute),
                1e-7 * static_cast<double>(brute));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DilutedGridCount,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FktCount, ConditioningOnMatchedPairs) {
  // Removing a matched edge's endpoints leaves a valid Pfaffian count.
  const auto g = grid_graph(3, 4);
  const MatchingCounter counter(g);
  const auto matchings = enumerate_perfect_matchings(g);
  // Count matchings containing edge (0,1): brute vs conditioned Pfaffian.
  std::size_t brute = 0;
  for (const auto& m : matchings) {
    for (const auto& [u, v] : m)
      if (u == 0 && v == 1) ++brute;
  }
  std::vector<int> alive;
  for (int v = 2; v < 12; ++v) alive.push_back(v);
  EXPECT_NEAR(std::exp(counter.log_count_alive(alive)),
              static_cast<double>(brute), 1e-8);
}

TEST(Fkt, DisconnectedInputRejected) {
  PlanarGraph g({{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}});
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW((void)fkt_orientation(g), InvalidArgument);
}

class HoneycombCount : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HoneycombCount, MatchesBruteForce) {
  const auto [r, c] = GetParam();
  // The brick-wall construction is deterministic; a degenerate size that
  // splits is asserted on its largest component instead of skipped.
  auto g = honeycomb_graph(static_cast<std::size_t>(r),
                           static_cast<std::size_t>(c));
  if (g.components().size() > 1) g = largest_component_subgraph(g);
  ASSERT_EQ(g.components().size(), 1u);
  const MatchingCounter counter(g);
  const auto brute = count_perfect_matchings_brute(g);
  if (brute == 0) {
    EXPECT_EQ(counter.log_count(), kNegInf);
  } else {
    EXPECT_NEAR(std::exp(counter.log_count()), static_cast<double>(brute),
                1e-7 * static_cast<double>(brute));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HoneycombCount,
    ::testing::Values(std::pair{2, 2}, std::pair{2, 4}, std::pair{3, 4},
                      std::pair{4, 4}, std::pair{3, 6}, std::pair{4, 6}));

TEST(Honeycomb, RectangularPatchHasUniqueMatchingAndSamplerFindsIt) {
  // Rectangular brick-wall patches are forced: exactly one perfect
  // matching, which the sampler must return deterministically.
  RandomStream rng(3101);
  const auto g = honeycomb_graph(4, 4);
  const auto all = enumerate_perfect_matchings(g);
  ASSERT_EQ(all.size(), 1u);
  const MatchingCounter counter(g);
  EXPECT_NEAR(counter.log_count(), 0.0, 1e-9);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sample_matching_separator(g, rng).matching, all[0]);
    EXPECT_EQ(sample_matching_sequential(g, rng).matching, all[0]);
  }
}

TEST(Honeycomb, DegreeAtMostThree) {
  const auto g = honeycomb_graph(6, 8);
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_LE(g.neighbors(static_cast<int>(v)).size(), 3u);
}

class HexagonMacMahon
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HexagonMacMahon, PfaffianMatchesBoxFormula) {
  const auto [a, b, c] = GetParam();
  const auto g = hexagon_honeycomb_graph(static_cast<std::size_t>(a),
                                         static_cast<std::size_t>(b),
                                         static_cast<std::size_t>(c));
  // The dual graph has a(b+c) + bc up+down triangles... just check parity
  // and count: #vertices must be even and #PM = MacMahon(a,b,c).
  ASSERT_EQ(g.num_vertices() % 2, 0u);
  const MatchingCounter counter(g);
  EXPECT_NEAR(counter.log_count(), log_macmahon_box(
                                       static_cast<std::size_t>(a),
                                       static_cast<std::size_t>(b),
                                       static_cast<std::size_t>(c)),
              1e-7)
      << "H(" << a << "," << b << "," << c << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Hexagons, HexagonMacMahon,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 1, 1},
                      std::tuple{2, 2, 1}, std::tuple{2, 2, 2},
                      std::tuple{3, 2, 1}, std::tuple{3, 2, 2},
                      std::tuple{3, 3, 2}, std::tuple{4, 3, 2}));

TEST(HexagonHoneycomb, SamplerUniformOnLozengeTilings) {
  RandomStream rng(3102);
  const auto g = hexagon_honeycomb_graph(2, 2, 1);
  const auto exact = exact_matching_distribution(g);
  ASSERT_EQ(exact.size(), 6u);  // MacMahon(2,2,1) = 6
  std::map<Matching, std::size_t> counts;
  const int trials = 12000;
  for (int i = 0; i < trials; ++i)
    ++counts[sample_matching_separator(g, rng).matching];
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.05);
}

TEST(AztecDiamond, CountIsPowerOfTwo) {
  // #PM(Aztec diamond of order m) = 2^{m(m+1)/2}.
  for (const std::size_t order : {1u, 2u, 3u}) {
    const auto g = aztec_diamond_graph(order);
    const MatchingCounter counter(g);
    const double expected = order * (order + 1) / 2.0 * std::log(2.0);
    EXPECT_NEAR(counter.log_count(), expected, 1e-7) << "order " << order;
  }
}

// ---- Separators ----

class SeparatorBalance : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(SeparatorBalance, GridSeparatorsAreBalancedAndSmall) {
  const auto [r, c] = GetParam();
  const auto g = grid_graph(static_cast<std::size_t>(r),
                            static_cast<std::size_t>(c));
  const auto sep = find_separator(g);
  EXPECT_LE(sep.balance, 2.0 / 3.0 + 1e-9);
  // Separator size O(sqrt(n)): allow a generous constant.
  const double n = static_cast<double>(r * c);
  EXPECT_LE(static_cast<double>(sep.separator.size()),
            3.0 * std::sqrt(n) + 2.0);
  // Separation property: no edge between different components.
  std::vector<int> comp_of(g.num_vertices(), -1);
  for (std::size_t ci = 0; ci < sep.components.size(); ++ci)
    for (const int v : sep.components[ci])
      comp_of[static_cast<std::size_t>(v)] = static_cast<int>(ci);
  for (const auto& [u, v] : g.edges()) {
    const int cu = comp_of[static_cast<std::size_t>(u)];
    const int cv = comp_of[static_cast<std::size_t>(v)];
    if (cu >= 0 && cv >= 0) {
      EXPECT_EQ(cu, cv);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SeparatorBalance,
    ::testing::Values(std::pair{4, 4}, std::pair{6, 6}, std::pair{8, 8},
                      std::pair{10, 10}, std::pair{5, 12}, std::pair{16, 4},
                      std::pair{14, 14}));

TEST(Separator, CoversWholeVertexSet) {
  const auto g = grid_graph(6, 7);
  const auto sep = find_separator(g);
  std::size_t total = sep.separator.size();
  for (const auto& comp : sep.components) total += comp.size();
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Separator, TinyGraphsGetEmptySeparator) {
  PlanarGraph g({{0.0, 0.0}, {1.0, 0.0}});
  g.add_edge(0, 1);
  const auto sep = find_separator(g);
  EXPECT_TRUE(sep.separator.empty());
}

// ---- Matching samplers ----

class MatchingSamplerDist : public ::testing::TestWithParam<bool> {};

TEST_P(MatchingSamplerDist, UniformOnGrid3x4) {
  const bool use_separator = GetParam();
  RandomStream rng(3001);
  const auto g = grid_graph(3, 4);
  const auto exact = exact_matching_distribution(g);
  ASSERT_EQ(exact.size(), 11u);  // #PM(3x4) = 11
  std::map<Matching, std::size_t> counts;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto result = use_separator
                            ? sample_matching_separator(g, rng)
                            : sample_matching_sequential(g, rng);
    ++counts[result.matching];
  }
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.04);
}

INSTANTIATE_TEST_SUITE_P(SequentialAndSeparator, MatchingSamplerDist,
                         ::testing::Bool());

TEST(MatchingSampler, UniformOnDilutedGrid) {
  RandomStream rng(3002);
  const auto g = connected_diluted_grid(3, 4, 0.2, rng);
  ASSERT_EQ(g.components().size(), 1u);
  const auto exact = exact_matching_distribution(g);
  ASSERT_GE(exact.size(), 1u);
  std::map<Matching, std::size_t> counts;
  const int trials = 15000;
  for (int i = 0; i < trials; ++i)
    ++counts[sample_matching_separator(g, rng).matching];
  EXPECT_LT(testing::empirical_tv_map(exact, counts, trials), 0.05);
}

TEST(MatchingSampler, SamplersAgreeOnAztecDiamond) {
  RandomStream rng(3003);
  const auto g = aztec_diamond_graph(2);
  const auto exact = exact_matching_distribution(g);
  ASSERT_EQ(exact.size(), 8u);  // 2^{2*3/2}
  std::map<Matching, std::size_t> seq_counts;
  std::map<Matching, std::size_t> sep_counts;
  const int trials = 16000;
  for (int i = 0; i < trials; ++i) {
    ++seq_counts[sample_matching_sequential(g, rng).matching];
    ++sep_counts[sample_matching_separator(g, rng).matching];
  }
  EXPECT_LT(testing::empirical_tv_map(exact, seq_counts, trials), 0.05);
  EXPECT_LT(testing::empirical_tv_map(exact, sep_counts, trials), 0.05);
}

TEST(MatchingSampler, OutputIsAlwaysAPerfectMatching) {
  RandomStream rng(3004);
  const auto g = grid_graph(4, 6);
  for (int i = 0; i < 50; ++i) {
    const auto result = sample_matching_separator(g, rng);
    ASSERT_EQ(result.matching.size(), 12u);
    std::vector<int> hits(g.num_vertices(), 0);
    for (const auto& [u, v] : result.matching) {
      EXPECT_TRUE(g.has_edge(u, v));
      ++hits[static_cast<std::size_t>(u)];
      ++hits[static_cast<std::size_t>(v)];
    }
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(MatchingSampler, SeparatorDepthBeatsSequential) {
  RandomStream rng(3005);
  const auto g = grid_graph(8, 8);
  PramLedger seq_ledger;
  PramLedger sep_ledger;
  (void)sample_matching_sequential(g, rng, &seq_ledger);
  (void)sample_matching_separator(g, rng, &sep_ledger);
  EXPECT_DOUBLE_EQ(seq_ledger.stats().depth, 32.0);  // n/2 rounds
  EXPECT_LT(sep_ledger.stats().depth, 25.0);  // ~c sqrt(n) < n/2
}

TEST(MatchingSampler, NoMatchingThrows) {
  RandomStream rng(3006);
  const auto g = grid_graph(3, 3);  // odd vertex count
  EXPECT_THROW((void)sample_matching_sequential(g, rng), SamplingFailure);
  EXPECT_THROW((void)sample_matching_separator(g, rng), SamplingFailure);
  // Even count but no PM: star with 3 leaves.
  PlanarGraph star({{0.0, 0.0}, {1.0, 0.0}, {-0.5, 0.9}, {-0.5, -0.9}});
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  EXPECT_THROW((void)sample_matching_separator(star, rng), SamplingFailure);
}

TEST(MatchingSampler, DisconnectedInputRejected) {
  RandomStream rng(3007);
  PlanarGraph g({{0.0, 0.0}, {1.0, 0.0}, {3.0, 0.0}, {4.0, 0.0}});
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW((void)sample_matching_sequential(g, rng), InvalidArgument);
}

// ---- Graph utilities ----

TEST(Graph, InducedSubgraphPreservesEdges) {
  const auto g = grid_graph(3, 3);
  const std::vector<int> keep = {0, 1, 3, 4};
  const auto sub = g.induced(keep);
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.num_edges(), 4u);  // the 2x2 sub-square
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(2, 3));
}

TEST(Graph, ComponentsWithout) {
  const auto g = grid_graph(1, 5);  // path
  const std::vector<int> removed = {2};
  const auto comps = g.components_without(removed);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<int>{3, 4}));
}

TEST(Graph, DuplicateEdgeRejected) {
  PlanarGraph g({{0.0, 0.0}, {1.0, 0.0}});
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 0), InvalidArgument);
}

}  // namespace
}  // namespace pardpp
