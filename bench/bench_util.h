// Shared helpers for the experiment harness binaries.
//
// Every bench prints: a header naming the experiment (DESIGN.md §3 index),
// the paper claim being reproduced, and an aligned table of measured
// series. EXPERIMENTS.md records paper-vs-measured for each.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pardpp::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& artifact,
                         const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("# %s — %s\n", experiment_id.c_str(), artifact.c_str());
  std::printf("# claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints one aligned table: a row of column names then value rows.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(const std::vector<std::string>& values) {
    rows_.push_back(values);
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
      widths[c] = columns_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      std::printf("\n");
    };
    print_row(columns_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(std::size_t v) { return std::to_string(v); }

}  // namespace pardpp::bench
