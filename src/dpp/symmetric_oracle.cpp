#include "dpp/symmetric_oracle.h"

#include <cmath>
#include <limits>
#include <utility>

#include "dpp/ensemble.h"
#include "linalg/cholesky.h"
#include "linalg/schur.h"
#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp {

namespace {

// From-scratch joint marginal of the k-DPP with ensemble `l` and partition
// log_z = log e_k(lambda(l)) — the arithmetic both the base oracle and the
// commit-path state resolve reference queries with.
double log_joint_scratch(const Matrix& l, std::size_t k, double log_z,
                         std::span<const int> t) {
  const std::size_t tsize = t.size();
  if (tsize > k) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T): zero (or numerically non-PD) blocks mean P[T ⊆ S] = 0.
  const Matrix lt = l.principal(t);
  const auto chol_t = cholesky(lt);
  if (!chol_t.has_value()) return kNegInf;
  const double log_det_t = chol_t->log_det();
  if (tsize == k) return log_det_t - log_z;
  // e_{k-t} of the conditional ensemble's spectrum.
  const auto keep = complement_indices(l.rows(), t);
  const auto schur = schur_complement(l, keep, t, /*symmetric=*/true);
  auto lambda = symmetric_eigenvalues(schur.reduced);
  clamp_spectrum_to_rank(lambda);
  const auto log_e = log_esp(lambda, k - tsize);
  const double tail = log_e[k - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_z;
}

// Marginal vector p_i = sum_m w_m V_im^2 from the cached spectral factors.
std::vector<double> marginals_from_spectrum(const SymmetricEigen& eig,
                                            const LogEspTable& table,
                                            std::size_t k) {
  const std::size_t n = eig.values.size();
  std::vector<double> p(n, 0.0);
  if (k == 0 || n == 0) return p;
  const double log_z = table.log_e(k);
  check_numeric(log_z != kNegInf,
                "SymmetricKdppOracle: partition function is zero "
                "(rank of L below k)");
  // The weights are probabilities of eigenvector selection (they sum to
  // k), so the accumulation is safe in linear domain.
  std::vector<double> w;
  esp_mode_weights(eig.values, table, k, w);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      const double v = eig.vectors(i, m);
      acc += w[m] * v * v;
    }
    p[i] = std::min(acc, 1.0);
  }
  return p;
}

// Exact two-stage mixture draw: mode m ~ w_m / k, then item i ~ V_im^2.
// Marginally i ~ p_i / k without ever assembling the marginal vector —
// the spectral families' draw protocol (one categorical over modes, one
// over items; a per-family determinism invariant).
int two_stage_draw(const SymmetricEigen& eig, const LogEspTable& table,
                   std::size_t k, std::vector<double>& w_scratch,
                   std::vector<double>& col_scratch, RandomStream& rng) {
  const double log_z = table.log_e(k);
  check_numeric(log_z != kNegInf,
                "draw_marginal: partition function is zero");
  esp_mode_weights(eig.values, table, k, w_scratch);
  const std::size_t mode = rng.categorical(w_scratch);
  const std::size_t n = eig.values.size();
  col_scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = eig.vectors(i, mode);
    col_scratch[i] = v * v;
  }
  return static_cast<int>(rng.categorical(col_scratch));
}

}  // namespace

SymmetricKdppOracle::SymmetricKdppOracle(Matrix l, std::size_t k,
                                         bool validate)
    : l_(std::move(l)), k_(k) {
  check_arg(l_.square(), "SymmetricKdppOracle: matrix not square");
  check_arg(k_ <= l_.rows(), "SymmetricKdppOracle: k exceeds ground size");
  if (validate) validate_ensemble(l_, /*symmetric=*/true);
}

const SymmetricEigen& SymmetricKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = symmetric_eigen(l_);
  return *eigen_;
}

const LogEspTable& SymmetricKdppOracle::esp() const {
  if (!esp_.has_value()) {
    // Clamp roundoff-level eigenvalues to exact zeros so rank deficiency
    // is detected (e_k of a rank-r spectrum must vanish for k > r).
    std::vector<double> lambda = eigen().values;
    clamp_spectrum_to_rank(lambda);
    esp_ = LogEspTable(lambda, k_);
  }
  return *esp_;
}

double SymmetricKdppOracle::log_partition() const { return esp().log_e(k_); }

const std::vector<double>& SymmetricKdppOracle::marginal_cache() const {
  if (!marginals_.has_value()) {
    if (k_ == 0 || ground_size() == 0) {
      marginals_ = std::vector<double>(ground_size(), 0.0);
    } else {
      marginals_ = marginals_from_spectrum(eigen(), esp(), k_);
    }
  }
  return *marginals_;
}

const std::vector<double>& SymmetricKdppOracle::log_marginal_cache() const {
  if (!log_marginals_.has_value())
    log_marginals_ = log_probabilities(marginal_cache());
  return *log_marginals_;
}

std::vector<double> SymmetricKdppOracle::marginals() const {
  return marginal_cache();
}

double SymmetricKdppOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  if (t.empty()) return 0.0;
  return log_joint_scratch(l_, k_, log_partition(), t);
}

MarginalDraw SymmetricKdppOracle::draw_marginal(RandomStream& rng) const {
  std::vector<double> w;
  std::vector<double> col;
  MarginalDraw draw;
  draw.index = two_stage_draw(eigen(), esp(), k_, w, col, rng);
  return draw;
}

// Wave-scoped incremental query evaluator (oracle.h): answers each query
// against the shared prefix already folded into the view it was created
// from — the base oracle's caches, or the commit-path state's refreshed
// caches — extending by the proposal batch with an incrementally grown
// Cholesky factor and a scratch-reusing Schur complement. Singleton
// extensions short-circuit to the cached leave-one-out ESP marginals — no
// factorization at all.
class SymmetricKdppOracle::State final : public ConditionalState {
 public:
  State(const Matrix& l, std::size_t k, double log_z,
        const std::vector<double>* log_marginals)
      : l_(l), k_(k), log_z_(log_z), log_marginals_(log_marginals),
        chol_(k) {}

  [[nodiscard]] double log_joint(std::span<const int> t) override {
    const std::size_t tsize = t.size();
    const std::size_t n = l_.rows();
    if (tsize > k_) return kNegInf;
    if (tsize == 0) return 0.0;
    for (const int i : t)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "log_joint: index out of range");
    if (tsize == 1 && log_z_ != kNegInf && log_marginals_ != nullptr)
      return (*log_marginals_)[static_cast<std::size_t>(t[0])];
    // Incremental Cholesky of L_T, one bordered row per element; a
    // non-PD extension means P[T ⊆ S] = 0 (duplicates land here too).
    // The threshold is seeded with the whole block's largest diagonal so
    // the singularity verdict matches the from-scratch cholesky(L_T)
    // exactly, independent of the batch's element order.
    double max_diag = 0.0;
    for (const int i : t)
      max_diag = std::max(max_diag, std::abs(l_(static_cast<std::size_t>(i),
                                               static_cast<std::size_t>(i))));
    chol_.clear(max_diag);
    row_.resize(tsize);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto tr = static_cast<std::size_t>(t[r]);
      for (std::size_t c = 0; c <= r; ++c)
        row_[c] = l_(tr, static_cast<std::size_t>(t[c]));
      if (!chol_.append(std::span<const double>(row_.data(), r + 1)))
        return kNegInf;
    }
    const double log_det_t = chol_.log_det();
    if (tsize == k_) return log_det_t - log_z_;
    // e_{k-t} of the conditional spectrum, via the already-built factor.
    complement_into(t, n);
    schur_complement_sym_into(l_, keep_, t, chol_, y_, reduced_);
    lambda_ = symmetric_eigenvalues(reduced_);
    clamp_spectrum_to_rank(lambda_);
    const auto log_e = log_esp(lambda_, k_ - tsize);
    const double tail = log_e[k_ - tsize];
    if (tail == kNegInf) return kNegInf;
    return log_det_t + tail - log_z_;
  }

 private:
  // complement_indices into reused storage (t is distinct by the time the
  // Cholesky of L_T succeeded).
  void complement_into(std::span<const int> t, std::size_t n) {
    mask_.assign(n, 0);
    for (const int i : t) mask_[static_cast<std::size_t>(i)] = 1;
    keep_.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) keep_.push_back(static_cast<int>(i));
  }

  const Matrix& l_;
  std::size_t k_;
  double log_z_;
  const std::vector<double>* log_marginals_;
  IncrementalCholesky chol_;
  std::vector<double> row_;
  std::vector<char> mask_;
  std::vector<int> keep_;
  std::vector<double> y_;
  std::vector<double> lambda_;
  Matrix reduced_;
};

std::unique_ptr<ConditionalState> SymmetricKdppOracle::make_conditional_state()
    const {
  const double log_z = log_partition();
  const std::vector<double>* lm =
      log_z != kNegInf ? &log_marginal_cache() : nullptr;
  return std::make_unique<State>(l_, k_, log_z, lm);
}

// ---- the commit path (DESIGN.md §2 convention 7) ----
//
// One long-lived conditional: `commit(batch)` folds the accepted batch
// into the state in place — the batch's bordered Cholesky rows are
// appended to the persistent factors, the conditional ensemble is updated
// by the half-solve Schur complement on reused buffers, and the spectral
// caches (eigen, ESP, marginals) are refreshed for the new conditional —
// instead of materializing a conditioned oracle and re-deriving all of it
// from scratch. Until the first commit every query reads the base
// oracle's shared caches, so a session that primes the base once
// amortizes the O(n^3) spectral preprocessing across every draw.
class SymmetricKdppOracle::Committed final : public CommittedOracle {
 public:
  explicit Committed(const SymmetricKdppOracle& base)
      : base_(&base), k_cur_(base.k_) {
    base_chol_.reserve(base.k_);
    reset();
  }

  void commit(std::span<const int> batch, double /*log_joint*/) override {
    const std::size_t tsize = batch.size();
    if (tsize == 0) return;
    check_arg(tsize <= k_cur_, "commit: |batch| exceeds k");
    const Matrix& src = ensemble();
    const std::size_t n = src.rows();
    for (const int i : batch)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "commit: index out of range");
    // Factor the elimination block of the *current* conditional — the
    // accepted trial's bordered rows, the same arithmetic the query state
    // used to answer it. This validates the batch (P[batch ⊆ S] > 0)
    // before anything else mutates, so a throw here leaves the state
    // exactly as it was.
    double max_diag = 0.0;
    for (const int i : batch)
      max_diag = std::max(max_diag, std::abs(src(static_cast<std::size_t>(i),
                                                 static_cast<std::size_t>(i))));
    elim_chol_.clear(max_diag);
    row_.resize(tsize);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto tr = static_cast<std::size_t>(batch[r]);
      for (std::size_t c = 0; c <= r; ++c)
        row_[c] = src(tr, static_cast<std::size_t>(batch[c]));
      check_numeric(
          elim_chol_.append(std::span<const double>(row_.data(), r + 1)),
          "commit: conditioning on a probability-zero event");
    }
    // Grow the committed base-prefix factor (chol of L_base[T, T], one
    // bordered row per accepted element, in commit order). Kept behind
    // commit_prefix() so log_committed_mass() stays O(1); a numerically
    // borderline block only disables the diagnostic, never the commit.
    if (base_ok_) {
      const Matrix& lb = base_->l_;
      for (std::size_t r = 0; r < tsize && base_ok_; ++r) {
        const auto br = static_cast<std::size_t>(
            ids_[static_cast<std::size_t>(batch[r])]);
        row_.resize(base_chol_.size() + 1);
        for (std::size_t c = 0; c < committed_ids_.size(); ++c)
          row_[c] = lb(br, static_cast<std::size_t>(committed_ids_[c]));
        for (std::size_t c = 0; c < r; ++c)
          row_[committed_ids_.size() + c] =
              lb(br, static_cast<std::size_t>(
                         ids_[static_cast<std::size_t>(batch[c])]));
        row_[base_chol_.size()] = lb(br, br);
        base_ok_ = base_chol_.append(row_);
      }
      if (base_ok_) {
        base_chol_.commit_prefix();
      } else {
        base_chol_.truncate();  // drop this batch's partial rows
      }
    }
    // Condition in place by the half-solve Schur complement on
    // persistent scratch.
    mask_.assign(n, 0);
    for (const int i : batch) mask_[static_cast<std::size_t>(i)] = 1;
    keep_.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) keep_.push_back(static_cast<int>(i));
    schur_complement_sym_into(src, keep_, batch, elim_chol_, y_, next_);
    std::swap(m_, next_);
    // Record the accepted ids in batch order — the same order their
    // bordered rows joined the committed factor. Then re-index: delete +
    // compact, order preserved (condition() semantics).
    for (const int b : batch)
      committed_ids_.push_back(ids_[static_cast<std::size_t>(b)]);
    std::size_t w = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask_[i] == 0) ids_[w++] = ids_[i];
    ids_.resize(w);
    k_cur_ -= tsize;
    ++rounds_;
    refresh_spectrum();
  }

  void reset() override {
    k_cur_ = base_->k_;
    rounds_ = 0;
    ids_.clear();
    for (std::size_t i = 0; i < base_->ground_size(); ++i)
      ids_.push_back(static_cast<int>(i));
    committed_ids_.clear();
    base_ok_ = true;
    double max_diag = 0.0;
    for (std::size_t i = 0; i < base_->ground_size(); ++i)
      max_diag = std::max(max_diag, std::abs(base_->l_(i, i)));
    base_chol_.clear(max_diag);
    eig_.reset();
    esp_.reset();
    marginals_.reset();
    log_marginals_.reset();
  }

  [[nodiscard]] std::size_t committed_count() const override {
    return committed_ids_.size();
  }

  [[nodiscard]] double log_committed_mass() const override {
    if (!base_ok_) return std::numeric_limits<double>::quiet_NaN();
    // Chain rule: P[T ⊆ S] = det(L_T) e_{k-t}(lambda(L^T)) / e_k(lambda).
    return base_chol_.log_det() + esp_table().log_e(k_cur_) -
           base_->log_partition();
  }

  [[nodiscard]] std::size_t ground_size() const override {
    return rounds_ == 0 ? base_->ground_size() : m_.rows();
  }
  [[nodiscard]] std::size_t sample_size() const override { return k_cur_; }

  [[nodiscard]] double log_joint_marginal(
      std::span<const int> t) const override {
    if (t.size() > k_cur_) return kNegInf;
    if (t.empty()) return 0.0;
    return log_joint_scratch(ensemble(), k_cur_, log_partition(), t);
  }

  [[nodiscard]] std::vector<double> marginals() const override {
    return marginal_cache();
  }

  [[nodiscard]] MarginalDraw draw_marginal(RandomStream& rng) const override {
    MarginalDraw draw;
    draw.index =
        two_stage_draw(eig(), esp_table(), k_cur_, w_scratch_, col_scratch_,
                       rng);
    return draw;
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> condition(
      std::span<const int> t) const override {
    check_arg(t.size() <= k_cur_, "condition: |T| exceeds k");
    const auto result = condition_ensemble(ensemble(), t, /*symmetric=*/true);
    return std::make_unique<SymmetricKdppOracle>(result.reduced,
                                                 k_cur_ - t.size(),
                                                 /*validate=*/false);
  }

  [[nodiscard]] std::unique_ptr<CountingOracle> clone() const override {
    return std::make_unique<SymmetricKdppOracle>(ensemble(), k_cur_,
                                                 /*validate=*/false);
  }

  [[nodiscard]] std::string name() const override { return base_->name(); }

  void prepare_concurrent() const override {
    if (rounds_ == 0) {
      base_->prepare_concurrent();
      return;
    }
    if (log_partition() != kNegInf) (void)log_marginal_cache();
  }

  [[nodiscard]] std::unique_ptr<ConditionalState> make_conditional_state()
      const override {
    const double log_z = log_partition();
    const std::vector<double>* lm =
        log_z != kNegInf ? &log_marginal_cache() : nullptr;
    return std::make_unique<State>(ensemble(), k_cur_, log_z, lm);
  }

 private:
  [[nodiscard]] const Matrix& ensemble() const {
    return rounds_ == 0 ? base_->l_ : m_;
  }
  [[nodiscard]] const SymmetricEigen& eig() const {
    if (rounds_ == 0) return base_->eigen();
    return *eig_;
  }
  [[nodiscard]] const LogEspTable& esp_table() const {
    if (rounds_ == 0) return base_->esp();
    return *esp_;
  }
  [[nodiscard]] double log_partition() const {
    return esp_table().log_e(k_cur_);
  }
  [[nodiscard]] const std::vector<double>& marginal_cache() const {
    if (rounds_ == 0) return base_->marginal_cache();
    if (!marginals_.has_value()) {
      if (k_cur_ == 0 || m_.rows() == 0) {
        marginals_ = std::vector<double>(m_.rows(), 0.0);
      } else {
        marginals_ = marginals_from_spectrum(*eig_, *esp_, k_cur_);
      }
    }
    return *marginals_;
  }
  [[nodiscard]] const std::vector<double>& log_marginal_cache() const {
    if (rounds_ == 0) return base_->log_marginal_cache();
    if (!log_marginals_.has_value())
      log_marginals_ = log_probabilities(marginal_cache());
    return *log_marginals_;
  }

  void refresh_spectrum() {
    marginals_.reset();
    log_marginals_.reset();
    if (k_cur_ == 0) {
      // The run is complete; no further spectral queries are answerable
      // (log_e(0) = 0 still works through an empty table).
      eig_ = SymmetricEigen{};
      esp_ = LogEspTable(std::vector<double>{}, 0);
      return;
    }
    eig_ = symmetric_eigen(m_);
    std::vector<double> lambda = eig_->values;
    clamp_spectrum_to_rank(lambda);
    esp_ = LogEspTable(lambda, k_cur_);
  }

  const SymmetricKdppOracle* base_;
  std::size_t k_cur_;
  std::size_t rounds_ = 0;
  Matrix m_;                       // conditional ensemble (valid after round 1)
  std::vector<int> ids_;           // current index -> base index
  std::vector<int> committed_ids_; // base ids in commit order
  bool base_ok_ = true;
  IncrementalCholesky base_chol_;  // committed prefix over the base matrix
  IncrementalCholesky elim_chol_;  // per-commit elimination block factor
  std::optional<SymmetricEigen> eig_;
  std::optional<LogEspTable> esp_;
  mutable std::optional<std::vector<double>> marginals_;
  mutable std::optional<std::vector<double>> log_marginals_;
  // reused scratch
  std::vector<double> row_;
  std::vector<char> mask_;
  std::vector<int> keep_;
  std::vector<double> y_;
  Matrix next_;
  mutable std::vector<double> w_scratch_;
  mutable std::vector<double> col_scratch_;
};

std::unique_ptr<CommittedOracle> SymmetricKdppOracle::make_committed() const {
  return std::make_unique<Committed>(*this);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  const auto result = condition_ensemble(l_, t, /*symmetric=*/true);
  return std::make_unique<SymmetricKdppOracle>(result.reduced, k_ - t.size(),
                                               /*validate=*/false);
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::restrict_to(
    std::span<const int> items, std::span<const double> scales) const {
  check_arg(items.size() >= k_, "restrict_to: fewer items than k");
  check_arg(scales.empty() || scales.size() == items.size(),
            "restrict_to: scales/items size mismatch");
  const std::size_t m = items.size();
  for (const int item : items)
    check_arg(item >= 0 && static_cast<std::size_t>(item) < l_.rows(),
              "restrict_to: index out of range");
  Matrix sub(m, m);
  for (std::size_t a = 0; a < m; ++a) {
    const double sa = scales.empty() ? 1.0 : scales[a];
    for (std::size_t b = a; b < m; ++b) {
      const double sb = scales.empty() ? 1.0 : scales[b];
      const double v = sa * sb *
                       l_(static_cast<std::size_t>(items[a]),
                          static_cast<std::size_t>(items[b]));
      sub(a, b) = v;
      sub(b, a) = v;
    }
  }
  return std::make_unique<SymmetricKdppOracle>(std::move(sub), k_,
                                               /*validate=*/false);
}

DistillationProfile SymmetricKdppOracle::distillation_profile() const {
  DistillationProfile profile;
  profile.rank_bound = l_.rows();
  profile.weights.resize(l_.rows());
  for (std::size_t i = 0; i < l_.rows(); ++i) profile.weights[i] = l_(i, i);
  return profile;
}

std::unique_ptr<CountingOracle> SymmetricKdppOracle::clone() const {
  return std::make_unique<SymmetricKdppOracle>(l_, k_, /*validate=*/false);
}

void SymmetricKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
  // Rank-deficient ensembles (e_k = 0) keep the degenerate from-scratch
  // semantics; marginals would throw, so only prime the feasible case.
  if (log_partition() != kNegInf) (void)log_marginal_cache();
}

}  // namespace pardpp
