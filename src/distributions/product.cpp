#include "distributions/product.h"

#include "support/combinatorics.h"
#include "support/logsum.h"

namespace pardpp {

UniformKSubsetOracle::UniformKSubsetOracle(std::size_t n, std::size_t k)
    : n_(n), k_(k) {
  check_arg(k <= n, "UniformKSubsetOracle: k exceeds n");
}

double UniformKSubsetOracle::log_joint_marginal(std::span<const int> t) const {
  if (t.size() > k_) return kNegInf;
  std::vector<bool> seen(n_, false);
  for (const int i : t) {
    check_arg(i >= 0 && static_cast<std::size_t>(i) < n_,
              "UniformKSubsetOracle: index out of range");
    check_arg(!seen[static_cast<std::size_t>(i)],
              "UniformKSubsetOracle: duplicate index");
    seen[static_cast<std::size_t>(i)] = true;
  }
  // P[T ⊆ S] = C(n-t, k-t) / C(n, k).
  return log_binomial(n_ - t.size(), k_ - t.size()) - log_binomial(n_, k_);
}

std::vector<double> UniformKSubsetOracle::marginals() const {
  return std::vector<double>(
      n_, n_ == 0 ? 0.0 : static_cast<double>(k_) / static_cast<double>(n_));
}

std::unique_ptr<CountingOracle> UniformKSubsetOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "UniformKSubsetOracle: |T| exceeds k");
  return std::make_unique<UniformKSubsetOracle>(n_ - t.size(), k_ - t.size());
}

std::unique_ptr<CountingOracle> UniformKSubsetOracle::clone() const {
  return std::make_unique<UniformKSubsetOracle>(n_, k_);
}

}  // namespace pardpp
