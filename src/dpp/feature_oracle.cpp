#include "dpp/feature_oracle.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"
#include "support/logsum.h"

namespace pardpp {

FeatureKdppOracle::FeatureKdppOracle(Matrix features, std::size_t k)
    : features_(std::move(features)), k_(k) {
  check_arg(k_ <= features_.rows(),
            "FeatureKdppOracle: k exceeds ground size");
  check_arg(k_ <= features_.cols(),
            "FeatureKdppOracle: k exceeds the feature dimension "
            "(rank bound)");
}

const LowRankEigen& FeatureKdppOracle::eigen() const {
  if (!eigen_.has_value()) eigen_ = eigen_from_features(features_);
  return *eigen_;
}

const LogEspTable& FeatureKdppOracle::esp() const {
  if (!esp_.has_value()) esp_ = LogEspTable(eigen().values, k_);
  return *esp_;
}

const Matrix& FeatureKdppOracle::gram() const {
  if (!gram_.has_value()) gram_ = features_.transpose() * features_;
  return *gram_;
}

const std::vector<double>& FeatureKdppOracle::marginal_cache() const {
  if (!marginals_.has_value()) {
    const std::size_t n = ground_size();
    std::vector<double> p(n, 0.0);
    if (k_ != 0) {
      const auto& eig = eigen();
      const auto& table = esp();
      check_numeric(eig.values.size() >= k_,
                    "FeatureKdppOracle: rank below k — partition function "
                    "zero");
      const double log_z = table.log_e(k_);
      check_numeric(log_z != kNegInf,
                    "FeatureKdppOracle: partition function zero");
      const std::size_t modes = eig.values.size();
      std::vector<double> w(modes, 0.0);
      for (std::size_t m = 0; m < modes; ++m) {
        w[m] = std::exp(std::log(eig.values[m]) +
                        table.log_e_without(m, k_ - 1) - log_z);
      }
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t m = 0; m < modes; ++m) {
          const double v = eig.vectors(i, m);
          acc += w[m] * v * v;
        }
        p[i] = std::min(acc, 1.0);
      }
    }
    marginals_ = std::move(p);
  }
  return *marginals_;
}

const std::vector<double>& FeatureKdppOracle::log_marginal_cache() const {
  if (!log_marginals_.has_value()) {
    const auto& p = marginal_cache();
    std::vector<double> lp(p.size(), kNegInf);
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p[i] > 0.0) lp[i] = std::log(p[i]);
    log_marginals_ = std::move(lp);
  }
  return *log_marginals_;
}

std::vector<double> FeatureKdppOracle::marginals() const {
  return marginal_cache();
}

double FeatureKdppOracle::log_joint_marginal(std::span<const int> t) const {
  const std::size_t tsize = t.size();
  if (tsize > k_) return kNegInf;
  if (tsize == 0) return 0.0;
  // det(L_T) = det(Gram of the T rows of B).
  Matrix gram_t(tsize, tsize);
  for (std::size_t a = 0; a < tsize; ++a) {
    for (std::size_t b = a; b < tsize; ++b) {
      double acc = 0.0;
      for (std::size_t c = 0; c < features_.cols(); ++c)
        acc += features_(static_cast<std::size_t>(t[a]), c) *
               features_(static_cast<std::size_t>(t[b]), c);
      gram_t(a, b) = acc;
      gram_t(b, a) = acc;
    }
  }
  const auto chol = cholesky(gram_t);
  if (!chol.has_value()) return kNegInf;
  const double log_det_t = chol->log_det();
  const double log_z = esp().log_e(k_);
  if (tsize == k_) return log_det_t - log_z;
  // Conditioned features; spectrum from the reduced Gram matrix.
  Matrix conditioned;
  try {
    conditioned = condition_features(features_, t);
  } catch (const NumericalError&) {
    return kNegInf;
  }
  const Matrix gram = conditioned.transpose() * conditioned;
  auto lambda = symmetric_eigenvalues(gram);
  clamp_spectrum_to_rank(lambda);
  const auto log_e = log_esp(lambda, k_ - tsize);
  const double tail = log_e[k_ - tsize];
  if (tail == kNegInf) return kNegInf;
  return log_det_t + tail - log_z;
}

// Wave-scoped incremental query evaluator: all conditioning happens on the
// cached d x d Gram, so query cost is independent of the ground size n.
// With W = R^{-1} B_T (R the incrementally grown Cholesky factor of
// Gram(B_T)), the projection onto span(B_T rows) is P = W^T W and the
// conditioned Gram is (I - P) G (I - P).
class FeatureKdppOracle::State final : public ConditionalState {
 public:
  explicit State(const FeatureKdppOracle& oracle)
      : o_(oracle), chol_(oracle.sample_size()) {}

  [[nodiscard]] double log_joint(std::span<const int> t) override {
    const std::size_t tsize = t.size();
    const std::size_t n = o_.ground_size();
    const std::size_t d = o_.features_.cols();
    if (tsize > o_.k_) return kNegInf;
    if (tsize == 0) return 0.0;
    for (const int i : t)
      check_arg(i >= 0 && static_cast<std::size_t>(i) < n,
                "log_joint: index out of range");
    const double log_z = o_.esp().log_e(o_.k_);
    if (tsize == 1 && log_z != kNegInf)
      return o_.log_marginal_cache()[static_cast<std::size_t>(t[0])];
    // Incremental Cholesky of Gram(B_T) = L_T; W starts as the raw T rows
    // and is forward-substituted into R^{-1} B_T below. The threshold is
    // seeded with the block's largest diagonal (the largest T row norm)
    // so the singularity verdict matches a from-scratch factorization,
    // independent of the batch's element order.
    norms_.resize(tsize);
    double max_diag = 0.0;
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto br = o_.features_.row(static_cast<std::size_t>(t[r]));
      double acc = 0.0;
      for (std::size_t x = 0; x < d; ++x) acc += br[x] * br[x];
      norms_[r] = acc;
      max_diag = std::max(max_diag, acc);
    }
    chol_.clear(max_diag);
    row_.resize(tsize);
    w_.resize(tsize * d);
    for (std::size_t r = 0; r < tsize; ++r) {
      const auto br = o_.features_.row(static_cast<std::size_t>(t[r]));
      for (std::size_t c = 0; c < r; ++c) {
        const auto bc = o_.features_.row(static_cast<std::size_t>(t[c]));
        double acc = 0.0;
        for (std::size_t x = 0; x < d; ++x) acc += br[x] * bc[x];
        row_[c] = acc;
      }
      row_[r] = norms_[r];
      if (!chol_.append(std::span<const double>(row_.data(), r + 1)))
        return kNegInf;
      for (std::size_t x = 0; x < d; ++x) w_[r * d + x] = br[x];
    }
    const double log_det_t = chol_.log_det();
    if (tsize == o_.k_) return log_det_t - log_z;
    chol_.forward_solve_rows(w_.data(), d, d);
    // A = W G (t x d), then conditioned = G - W^T A - A^T W + W^T (A W^T) W,
    // assembled as G - W^T D - A^T W with D = A - (A W^T) W.
    const Matrix& g = o_.gram();
    a_.assign(tsize * d, 0.0);
    for (std::size_t r = 0; r < tsize; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        const double w = w_[r * d + c];
        if (w == 0.0) continue;
        const double* grow = &g(c, 0);
        double* arow = a_.data() + r * d;
        for (std::size_t j = 0; j < d; ++j) arow[j] += w * grow[j];
      }
    }
    awt_.assign(tsize * tsize, 0.0);
    for (std::size_t r = 0; r < tsize; ++r)
      for (std::size_t s = 0; s < tsize; ++s) {
        double acc = 0.0;
        for (std::size_t j = 0; j < d; ++j)
          acc += a_[r * d + j] * w_[s * d + j];
        awt_[r * tsize + s] = acc;
      }
    d_.assign(a_.begin(), a_.end());
    for (std::size_t r = 0; r < tsize; ++r)
      for (std::size_t s = 0; s < tsize; ++s) {
        const double c = awt_[r * tsize + s];
        if (c == 0.0) continue;
        for (std::size_t j = 0; j < d; ++j)
          d_[r * d + j] -= c * w_[s * d + j];
      }
    if (reduced_.rows() != d || reduced_.cols() != d)
      reduced_ = Matrix(d, d);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i; j < d; ++j) {
        double acc = g(i, j);
        for (std::size_t r = 0; r < tsize; ++r)
          acc -= w_[r * d + i] * d_[r * d + j] + a_[r * d + i] * w_[r * d + j];
        reduced_(i, j) = acc;
        reduced_(j, i) = acc;
      }
    }
    lambda_ = symmetric_eigenvalues(reduced_);
    clamp_spectrum_to_rank(lambda_);
    const auto log_e = log_esp(lambda_, o_.k_ - tsize);
    const double tail = log_e[o_.k_ - tsize];
    if (tail == kNegInf) return kNegInf;
    return log_det_t + tail - log_z;
  }

 private:
  const FeatureKdppOracle& o_;
  IncrementalCholesky chol_;
  std::vector<double> norms_;  // |B_T row|^2, the Gram block's diagonal
  std::vector<double> row_;
  std::vector<double> w_;    // t x d: R^{-1} B_T
  std::vector<double> a_;    // t x d: W G
  std::vector<double> awt_;  // t x t: W G W^T
  std::vector<double> d_;    // t x d: A - (A W^T) W
  std::vector<double> lambda_;
  Matrix reduced_;
};

std::unique_ptr<ConditionalState> FeatureKdppOracle::make_conditional_state()
    const {
  return std::make_unique<State>(*this);
}

std::unique_ptr<CountingOracle> FeatureKdppOracle::condition(
    std::span<const int> t) const {
  check_arg(t.size() <= k_, "condition: |T| exceeds k");
  return std::make_unique<FeatureKdppOracle>(condition_features(features_, t),
                                             k_ - t.size());
}

std::unique_ptr<CountingOracle> FeatureKdppOracle::clone() const {
  return std::make_unique<FeatureKdppOracle>(features_, k_);
}

void FeatureKdppOracle::prepare_concurrent() const {
  (void)eigen();
  (void)esp();
  (void)gram();
  if (esp().log_e(k_) != kNegInf) (void)log_marginal_cache();
}

}  // namespace pardpp
