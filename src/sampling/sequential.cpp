#include "sampling/sequential.h"

#include <algorithm>

namespace pardpp {

SampleResult sample_sequential(const CountingOracle& mu, RandomStream& rng,
                               PramLedger* ledger) {
  SampleResult result;
  IndexTracker tracker(mu.ground_size());
  std::unique_ptr<CountingOracle> current = mu.clone();
  while (current->sample_size() > 0) {
    const std::size_t m = current->ground_size();
    // One parallel round: m counting queries evaluate all marginals.
    const std::vector<double> p = current->marginals();
    charge_round(ledger, m, m);
    result.diag.rounds += 1;
    result.diag.oracle_calls += m;
    const int pick = static_cast<int>(rng.categorical(p));
    result.items.push_back(tracker.original(pick));
    const std::vector<int> batch = {pick};
    current = current->condition(batch);
    tracker.remove(batch);
  }
  std::sort(result.items.begin(), result.items.end());
  if (ledger != nullptr) result.diag.pram = ledger->stats();
  return result;
}

}  // namespace pardpp
