// Distribution tests for the samplers: every sampler's empirical output is
// compared in total variation against exhaustively enumerated ground
// truth, with fixed seeds and conservative thresholds.
#include <gtest/gtest.h>

#include <cmath>

#include "distributions/hard_instance.h"
#include "distributions/product.h"
#include "dpp/general_oracle.h"
#include "dpp/hkpv.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "sampling/batched.h"
#include "sampling/entropic.h"
#include "sampling/rejection.h"
#include "sampling/sequential.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::EnumeratedOracle;
using testing::ExactDistribution;
using testing::empirical_tv;
using testing::exact_distribution;

ExactDistribution kdpp_exact(const Matrix& l, int k) {
  return exact_distribution(static_cast<int>(l.rows()), k,
                            [&l](std::span<const int> s) {
                              const auto sld = signed_log_det(l.principal(s));
                              return sld.sign > 0 ? sld.log_abs : kNegInf;
                            });
}

// ---- Sequential baseline (JVV86) ----

TEST(SequentialSampler, SymmetricKdppDistribution) {
  RandomStream rng(1001);
  const Matrix l = random_psd(7, 7, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 3);
  const auto exact = kdpp_exact(l, 3);
  std::vector<std::vector<int>> samples;
  const int trials = 30000;
  samples.reserve(trials);
  for (int i = 0; i < trials; ++i)
    samples.push_back(sample_sequential(oracle, rng).items);
  EXPECT_LT(empirical_tv(exact, samples), 0.04);
}

TEST(SequentialSampler, DepthEqualsK) {
  RandomStream rng(1002);
  const Matrix l = random_psd(10, 10, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 5);
  PramLedger ledger;
  const auto result = sample_sequential(oracle, rng, &ledger);
  EXPECT_EQ(result.items.size(), 5u);
  EXPECT_EQ(ledger.stats().rounds, 5u);       // one round per element
  EXPECT_DOUBLE_EQ(ledger.stats().depth, 5.0);
}

TEST(SequentialSampler, UniformSubsets) {
  RandomStream rng(1003);
  const UniformKSubsetOracle oracle(8, 3);
  const auto exact =
      exact_distribution(8, 3, [](std::span<const int>) { return 0.0; });
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 30000; ++i)
    samples.push_back(sample_sequential(oracle, rng).items);
  EXPECT_LT(empirical_tv(exact, samples), 0.04);
}

// ---- Batched exact sampler (Theorem 10 / Algorithm 1) ----

class BatchedSymmetric : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BatchedSymmetric, DistributionMatchesEnumeration) {
  const auto [k, seed] = GetParam();
  RandomStream rng(static_cast<std::uint64_t>(seed) * 7919 + 11);
  const Matrix l = random_psd(7, 7, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, static_cast<std::size_t>(k));
  const auto exact = kdpp_exact(l, k);
  std::vector<std::vector<int>> samples;
  const int trials = 25000;
  SampleDiagnostics last;
  for (int i = 0; i < trials; ++i) {
    auto result = sample_batched(oracle, rng);
    last = result.diag;
    EXPECT_EQ(result.items.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(result.diag.ratio_overflows, 0u)
        << "Lemma 27 cap violated on a strongly Rayleigh target";
    samples.push_back(std::move(result.items));
  }
  EXPECT_LT(empirical_tv(exact, samples), 0.045);
}

INSTANTIATE_TEST_SUITE_P(KAndSeeds, BatchedSymmetric,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2)));

TEST(BatchedSampler, RoundCountRespectsProposition28) {
  RandomStream rng(1011);
  const HardInstanceOracle oracle(512, 256);
  // Hard instance with the *entropic* cap would be needed for correctness;
  // here we only exercise the schedule: k_i+1 = k_i - ceil(sqrt(k_i))
  // terminates within 2 sqrt(k) rounds. Use the uniform oracle (valid for
  // the exp(t^2/k) cap) at the same k.
  const UniformKSubsetOracle uniform(512, 256);
  PramLedger ledger;
  const auto result = sample_batched(uniform, rng, &ledger);
  EXPECT_EQ(result.items.size(), 256u);
  const double bound = 2.0 * std::sqrt(256.0) + 2.0;
  // Each batch consumes one marginals round and one proposal round.
  EXPECT_LE(result.diag.rounds, static_cast<std::size_t>(bound));
  (void)oracle;
}

TEST(BatchedSampler, AcceptanceRateNearExpMinusOne) {
  // For the uniform k-subset distribution the acceptance probability of a
  // full batch is ~ exp(-t^2/k) * (no-collision probability), which for
  // t = sqrt(k) is bounded below by a constant (paper §4).
  RandomStream rng(1012);
  const UniformKSubsetOracle oracle(4096, 1024);
  auto result = sample_batched(oracle, rng);
  EXPECT_EQ(result.items.size(), 1024u);
  EXPECT_GT(result.diag.acceptance_rate(), 0.15);
  EXPECT_EQ(result.diag.ratio_overflows, 0u);
}

TEST(BatchedSampler, OversizedBatchesCollapseOnHardInstance) {
  // Ablation: batches >> sqrt(k) on the paired hard instance die by the
  // birthday paradox (duplicates force rejection). With batch = k all
  // proposals containing both copies of no pair... every batch of size k
  // containing any duplicate pair-halves rejects; acceptance is tiny, and
  // the sampler exhausts its machine budget.
  RandomStream rng(1013);
  const HardInstanceOracle oracle(64, 32);
  BatchedOptions options;
  options.max_batch = 32;       // batch = k >> sqrt(k)
  options.machine_cap = 2000;   // bounded budget
  options.extra_log_cap = 30.0; // even a huge cap cannot save it
  EXPECT_THROW((void)sample_batched(oracle, rng, nullptr, options),
               SamplingFailure);
}

TEST(BatchedSampler, MachineCapFailureInjection) {
  RandomStream rng(1014);
  const UniformKSubsetOracle oracle(64, 16);
  BatchedOptions options;
  options.machine_cap = 1;  // one proposal per round: will eventually miss
  bool failed = false;
  for (int attempt = 0; attempt < 200 && !failed; ++attempt) {
    try {
      (void)sample_batched(oracle, rng, nullptr, options);
    } catch (const SamplingFailure&) {
      failed = true;
    }
  }
  EXPECT_TRUE(failed);
}

// ---- Entropic sampler (Theorem 29 / Theorems 8-9) ----

TEST(EntropicSampler, NonsymmetricKdppDistribution) {
  RandomStream rng(1021);
  const Matrix l = random_npsd(7, rng, 0.6);
  const GeneralDppOracle oracle(l, 3);
  const auto exact = kdpp_exact(l, 3);
  std::vector<std::vector<int>> samples;
  const int trials = 20000;
  std::size_t overflows = 0;
  for (int i = 0; i < trials; ++i) {
    auto result = sample_entropic(oracle, rng);
    overflows += result.diag.ratio_overflows;
    samples.push_back(std::move(result.items));
  }
  EXPECT_LT(empirical_tv(exact, samples), 0.05);
  // Bad events must be rare (they bound the TV bias).
  EXPECT_LT(static_cast<double>(overflows) / trials, 0.01);
}

TEST(EntropicSampler, PartitionDppDistribution) {
  RandomStream rng(1022);
  const Matrix l = random_psd(8, 8, rng, 1e-3);
  std::vector<int> part_of = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> counts = {2, 1};
  const GeneralDppOracle oracle(l, part_of, counts);
  const auto exact = exact_distribution(8, 3, [&](std::span<const int> s) {
    int c0 = 0;
    for (const int i : s)
      if (i < 4) ++c0;
    if (c0 != 2) return kNegInf;
    const auto sld = signed_log_det(l.principal(s));
    return sld.sign > 0 ? sld.log_abs : kNegInf;
  });
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(sample_entropic(oracle, rng).items);
  EXPECT_LT(empirical_tv(exact, samples), 0.05);
}

TEST(EntropicSampler, SubdivisionPathDistribution) {
  RandomStream rng(1023);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 3);
  const auto exact = kdpp_exact(l, 3);
  EntropicOptions options;
  options.subdivide = true;
  options.beta = 0.5;
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(sample_entropic(oracle, rng, nullptr, options).items);
  EXPECT_LT(empirical_tv(exact, samples), 0.05);
}

TEST(EntropicSampler, HardInstanceNeedsLargeCap) {
  // The §7 instance: pair correlations push the true ratio to ~ n/k, far
  // above the symmetric cap exp(t^2/k). With the Lemma 36 entropic cap the
  // sampler is accurate.
  RandomStream rng(1024);
  const HardInstanceOracle oracle(12, 4);
  const auto exact = exact_distribution(12, 4, [](std::span<const int> s) {
    for (std::size_t a = 0; a < s.size(); a += 2) {
      if (s[a] % 2 != 0 || s[a + 1] != s[a] + 1) return kNegInf;
    }
    return 0.0;
  });
  EntropicOptions options;
  options.cap_slack = 4.0;  // covers the n/k pair-ratio at this scale
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 20000; ++i)
    samples.push_back(sample_entropic(oracle, rng, nullptr, options).items);
  EXPECT_LT(empirical_tv(exact, samples), 0.05);
}

TEST(EntropicSampler, BatchExponentControlsBatchSize) {
  RandomStream rng(1025);
  const UniformKSubsetOracle oracle(512, 256);
  EntropicOptions options;
  options.c = 0.25;
  PramLedger ledger;
  const auto result = sample_entropic(oracle, rng, &ledger, options);
  EXPECT_EQ(result.items.size(), 256u);
  // l = floor(256^{0.25}) = 4; rounds ~ k / l = 64 (plus shrink effects),
  // much more than 2 sqrt(k) = 32 but far less than k.
  EXPECT_GT(result.diag.rounds, 32u);
  EXPECT_LT(result.diag.rounds, 200u);
}

// ---- HKPV ground truth sampler ----

TEST(Hkpv, KdppDistribution) {
  RandomStream rng(1031);
  const Matrix l = random_psd(7, 7, rng, 1e-3);
  const auto exact = kdpp_exact(l, 3);
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 25000; ++i) {
    auto s = hkpv_sample_kdpp(l, 3, rng);
    std::sort(s.begin(), s.end());
    samples.push_back(std::move(s));
  }
  EXPECT_LT(empirical_tv(exact, samples), 0.04);
}

TEST(Hkpv, UnconstrainedDppSizeDistribution) {
  RandomStream rng(1032);
  const Matrix l = random_psd(6, 6, rng, 1e-2);
  // P[|S| = j] = e_j / det(I + L).
  const auto lambda = symmetric_eigenvalues(l);
  const auto log_e = log_esp(lambda, 6);
  std::vector<double> expected(7);
  double log_z = kNegInf;
  for (const double v : log_e) log_z = log_add(log_z, v);
  for (std::size_t j = 0; j <= 6; ++j)
    expected[j] = std::exp(log_e[j] - log_z);
  std::vector<double> counts(7, 0.0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i)
    counts[hkpv_sample_dpp(l, rng).size()] += 1.0;
  for (std::size_t j = 0; j <= 6; ++j)
    EXPECT_NEAR(counts[j] / trials, expected[j], 0.015) << "size " << j;
}

TEST(Hkpv, AgreesWithSequentialSampler) {
  // Two unrelated exact samplers must produce the same distribution.
  RandomStream rng(1033);
  const Matrix l = random_psd(6, 6, rng, 1e-3);
  const SymmetricKdppOracle oracle(l, 2);
  const auto exact = kdpp_exact(l, 2);
  std::vector<std::vector<int>> hkpv_samples;
  std::vector<std::vector<int>> seq_samples;
  for (int i = 0; i < 20000; ++i) {
    auto s = hkpv_sample_kdpp(l, 2, rng);
    std::sort(s.begin(), s.end());
    hkpv_samples.push_back(std::move(s));
    seq_samples.push_back(sample_sequential(oracle, rng).items);
  }
  EXPECT_LT(empirical_tv(exact, hkpv_samples), 0.04);
  EXPECT_LT(empirical_tv(exact, seq_samples), 0.04);
}

// ---- Finite rejection primitives (Algorithms 2/3) ----

TEST(Rejection, ExactWhenCapIsValid) {
  RandomStream rng(1041);
  const std::vector<double> target = {std::log(0.5), std::log(0.2),
                                      std::log(0.3)};
  const std::vector<double> proposal = {std::log(1.0 / 3), std::log(1.0 / 3),
                                        std::log(1.0 / 3)};
  const double cap = std::log(1.5) + 1e-9;  // max ratio = 0.5 / (1/3)
  std::vector<double> counts(3, 0.0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    const auto out =
        rejection_sample_finite(target, proposal, cap, 1000, rng);
    ASSERT_TRUE(out.value.has_value());
    EXPECT_EQ(out.overflows, 0u);
    counts[*out.value] += 1.0;
  }
  EXPECT_NEAR(counts[0] / trials, 0.5, 0.01);
  EXPECT_NEAR(counts[1] / trials, 0.2, 0.01);
  EXPECT_NEAR(counts[2] / trials, 0.3, 0.01);
}

TEST(Rejection, ModifiedRestrictsToOmega) {
  RandomStream rng(1042);
  // Cap excludes outcome 0 (ratio 1.8); output should be the renormalized
  // restriction {1, 2} (Algorithm 3 semantics).
  const std::vector<double> target = {std::log(0.6), std::log(0.2),
                                      std::log(0.2)};
  const std::vector<double> proposal = {std::log(1.0 / 3), std::log(1.0 / 3),
                                        std::log(1.0 / 3)};
  const double cap = std::log(1.2);
  std::vector<double> counts(3, 0.0);
  std::size_t overflows = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto out =
        rejection_sample_finite(target, proposal, cap, 2000, rng);
    ASSERT_TRUE(out.value.has_value());
    overflows += out.overflows;
    counts[*out.value] += 1.0;
  }
  EXPECT_GT(overflows, 0u);
  EXPECT_NEAR(counts[0] / trials, 0.0, 1e-12);
  EXPECT_NEAR(counts[1] / trials, 0.5, 0.015);
  EXPECT_NEAR(counts[2] / trials, 0.5, 0.015);
}

TEST(Rejection, Proposition25Boosting) {
  RandomStream rng(1043);
  // Acceptance probability 1/C per proposal; with machines =
  // C log(1/delta) the failure rate is ~delta.
  const std::vector<double> target = {0.0};
  const std::vector<double> proposal = {0.0};
  const double cap = std::log(20.0);  // acceptance 1/20
  const std::size_t machines =
      static_cast<std::size_t>(20.0 * std::log(1.0 / 0.01));
  int failures = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const auto out =
        rejection_sample_finite(target, proposal, cap, machines, rng);
    failures += out.value.has_value() ? 0 : 1;
  }
  EXPECT_LT(static_cast<double>(failures) / trials, 0.03);
}

}  // namespace
}  // namespace pardpp
