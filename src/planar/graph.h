// Planar graphs with straight-line embeddings.
//
// The planar-matching pipeline (paper §6) needs a combinatorial embedding
// (rotation system) to run FKT and coordinates to find balanced
// separators. We store vertices with 2D coordinates and derive the
// rotation system by sorting each vertex's neighbors by angle — exact for
// any straight-line (Fáry) embedding, which covers the grid/geometric
// workloads of the benchmarks (DESIGN.md §1 records this substitution for
// general planarity testing).
#pragma once

#include <array>
#include <span>
#include <utility>
#include <vector>

#include "support/error.h"

namespace pardpp {

class PlanarGraph {
 public:
  PlanarGraph() = default;

  /// Creates an empty graph on n vertices with the given coordinates.
  explicit PlanarGraph(std::vector<std::array<double, 2>> coords)
      : coords_(std::move(coords)), adj_(coords_.size()) {}

  [[nodiscard]] std::size_t num_vertices() const { return coords_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const std::array<double, 2>& coord(int v) const {
    return coords_[static_cast<std::size_t>(v)];
  }

  /// Neighbors of v (insertion order; use rotation() for the embedding).
  [[nodiscard]] std::span<const int> neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Edge list; each edge stored once with u < v.
  [[nodiscard]] std::span<const std::pair<int, int>> edges() const {
    return edges_;
  }

  void add_edge(int u, int v);

  [[nodiscard]] bool has_edge(int u, int v) const;

  /// Neighbors of v sorted counterclockwise by angle — the rotation
  /// system of the straight-line embedding.
  [[nodiscard]] std::vector<int> rotation(int v) const;

  /// Induced subgraph on `keep` (original ids; the result's vertex i is
  /// keep[i]).
  [[nodiscard]] PlanarGraph induced(std::span<const int> keep) const;

  /// Connected components as lists of vertex ids.
  [[nodiscard]] std::vector<std::vector<int>> components() const;

  /// Components of the graph after deleting `removed` vertices.
  [[nodiscard]] std::vector<std::vector<int>> components_without(
      std::span<const int> removed) const;

 private:
  std::vector<std::array<double, 2>> coords_;
  std::vector<std::vector<int>> adj_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace pardpp
