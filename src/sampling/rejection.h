// Rejection sampling primitives (paper §3.4, Algorithms 2 and 3,
// Propositions 25 and 26).
//
// These finite-domain implementations exist primarily to make the paper's
// building blocks independently testable: Algorithm 2 is exact given a
// valid ratio bound C; Algorithm 3 tolerates ratio violations outside a
// high-probability set Omega and pays total-variation eps. The batch
// samplers inline the same logic against counting oracles.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "parallel/execution.h"
#include "sampling/diagnostics.h"
#include "support/random.h"

namespace pardpp {

/// Outcome of a boosted rejection run (Prop. 25/26): the accepted value's
/// index, or nullopt when all `machines` proposals rejected.
struct RejectionOutcome {
  std::optional<std::size_t> value;
  std::size_t proposals_used = 0;
  std::size_t overflows = 0;  ///< proposals whose ratio exceeded the cap
};

/// Algorithm 2/3 over a finite domain. `log_target` and `log_proposal` are
/// unnormalized log-masses over the same domain; proposals are drawn from
/// `log_proposal` and accepted with probability ratio / C where
/// ratio = (target_i / Z_t) / (proposal_i / Z_p). With `log_cap` >= the
/// true max log-ratio this is exact (Algorithm 2); otherwise proposals
/// whose ratio exceeds the cap are rejected and counted as overflows,
/// yielding the restriction-to-Omega semantics of Algorithm 3.
[[nodiscard]] RejectionOutcome rejection_sample_finite(
    std::span<const double> log_target, std::span<const double> log_proposal,
    double log_cap, std::size_t machines, RandomStream& rng);

/// As above, with the independent trials physically fanned out on the
/// context's pool in waves; the accepted value is the lowest accepted
/// machine index, so a fixed seed yields the identical outcome at every
/// pool size.
[[nodiscard]] RejectionOutcome rejection_sample_finite(
    std::span<const double> log_target, std::span<const double> log_proposal,
    double log_cap, std::size_t machines, RandomStream& rng,
    const ExecutionContext& ctx);

/// The rejection primitive's long-lived run state (DESIGN.md §2
/// convention 7): the normalizations (logsumexp over both mass vectors)
/// and the linear-domain proposal table are computed once at construction
/// and shared by every draw, amortizing the per-call setup the one-shot
/// entry points above pay each time. Draws consume the stream exactly
/// like `rejection_sample_finite`, so a fixed seed yields the identical
/// outcome through either path, at every pool size.
class FiniteRejection {
 public:
  FiniteRejection(std::vector<double> log_target,
                  std::vector<double> log_proposal, double log_cap);

  [[nodiscard]] RejectionOutcome draw(std::size_t machines, RandomStream& rng,
                                      const ExecutionContext& ctx =
                                          ExecutionContext::serial()) const;

  [[nodiscard]] std::size_t domain_size() const noexcept {
    return log_target_.size();
  }

 private:
  std::vector<double> log_target_;
  std::vector<double> log_proposal_;
  std::vector<double> proposal_probs_;
  double log_zt_ = 0.0;
  double log_zp_ = 0.0;
  double log_cap_ = 0.0;
};

}  // namespace pardpp
