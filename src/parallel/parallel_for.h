// parallel_for / parallel_invoke helpers on top of ThreadPool.
//
// These provide the fork-join structure of one logical PRAM round: a batch
// of independent bodies executed concurrently, with exceptions propagated
// to the caller through futures (no detached work, no shared mutable state
// beyond what the caller partitions explicitly).
#pragma once

#include <exception>
#include <functional>
#include <future>
#include <vector>

#include "parallel/thread_pool.h"
#include "support/failpoint.h"

namespace pardpp {

namespace detail {

/// Set while the current thread is executing a parallel_for body on a pool
/// worker. Nested parallel_for calls degenerate to serial loops instead of
/// re-submitting to the pool: a worker that blocks on futures of tasks the
/// exhausted pool can never start would deadlock (recursive samplers, and
/// oracles that parallelize internally underneath a parallel sampler round,
/// both hit this).
inline thread_local bool in_parallel_worker = false;

struct ParallelWorkerScope {
  bool previous;
  ParallelWorkerScope() noexcept : previous(in_parallel_worker) {
    in_parallel_worker = true;
  }
  ~ParallelWorkerScope() { in_parallel_worker = previous; }
};

/// Waits for every future, then rethrows the first stored exception.
/// Rethrowing before the join would unwind caller state (the body
/// closure, its captured scratch) while later chunks still execute it.
inline void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace detail

/// True when called from inside a parallel_for body; nested rounds run
/// serially on the occupied worker.
[[nodiscard]] inline bool in_parallel_region() noexcept {
  return detail::in_parallel_worker;
}

/// Runs fn(lo, hi) over a partition of [begin, end) on the pool, one task
/// per part, blocking until all parts complete. The chunk callback is the
/// amortization hook: per-chunk setup (scratch buffers, shared
/// factorizations) is paid once per task instead of once per index.
/// Degenerates to a single fn(begin, end) call on the calling thread when
/// the pool has a single worker or the call is nested.
template <typename ChunkFn>
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         ChunkFn&& fn, std::size_t grain = 1) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t workers = pool.size();
  const std::size_t chunks =
      std::min({count, workers * 4, (count + grain - 1) / grain});
  if (chunks <= 1 || workers <= 1 || detail::in_parallel_worker) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &fn] {
      const detail::ParallelWorkerScope scope;
      if (failpoint("parallel.task"))
        throw Error("parallel_for: injected task failure "
                    "[failpoint parallel.task]");
      fn(lo, hi);
    }));
  }
  detail::join_all(futures);
}

/// Runs fn(i) for i in [begin, end) on the pool, blocking until all bodies
/// complete. Bodies must write to disjoint state. `grain` is the minimum
/// number of indices per dispatched task (cheap bodies should pass a large
/// grain so dispatch overhead amortizes). Degenerates to a serial loop
/// when the range is below the grain, the pool has a single worker, or the
/// call is already nested inside another parallel_for body.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn, std::size_t grain = 1) {
  parallel_for_chunks(
      pool, begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

/// Convenience overload on the shared pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  parallel_for(ThreadPool::shared(), begin, end, std::forward<Fn>(fn));
}

/// Runs a set of independent thunks concurrently and waits for all of them.
/// Degenerates to serial execution when nested inside a parallel_for body
/// (same deadlock-avoidance rationale as above).
inline void parallel_invoke(ThreadPool& pool,
                            std::vector<std::function<void()>> thunks) {
  if (pool.size() <= 1 || detail::in_parallel_worker) {
    for (auto& thunk : thunks) thunk();
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(thunks.size());
  for (auto& thunk : thunks) {
    futures.push_back(pool.submit([thunk = std::move(thunk)] {
      const detail::ParallelWorkerScope scope;
      if (failpoint("parallel.task"))
        throw Error("parallel_invoke: injected task failure "
                    "[failpoint parallel.task]");
      thunk();
    }));
  }
  detail::join_all(futures);
}

}  // namespace pardpp
