// Spanning-tree DPP via transfer currents (src/planar/transfer_current):
// projection-kernel structure, matrix-tree counts, and marginals against
// brute-force tree enumeration; the uniform-spanning-tree law through
// the session layer (plain and distilled, per-draw and persistent
// proposal) against enumeration with the usual chi-square/TV harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "planar/grid.h"
#include "planar/transfer_current.h"
#include "sampling/session.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::chi_square_quantile;
using testing::chi_square_subsets;
using testing::ExactDistribution;

PlanarGraph triangle_graph() {
  PlanarGraph g({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

// Uniform law over the enumerated spanning trees, as an exact
// distribution over (|V|-1)-subsets of edge indices.
ExactDistribution uniform_tree_distribution(const PlanarGraph& g) {
  const auto trees = enumerate_spanning_trees(g);
  std::set<std::vector<int>> tree_set(trees.begin(), trees.end());
  return testing::exact_distribution(
      static_cast<int>(g.num_edges()),
      static_cast<int>(g.num_vertices() - 1),
      [&](std::span<const int> s) {
        return tree_set.count(std::vector<int>(s.begin(), s.end())) != 0
                   ? 0.0
                   : kNegInf;
      });
}

TEST(TransferCurrentTest, ProjectionStructureAndMatrixTreeCounts) {
  struct Case {
    PlanarGraph graph;
    std::size_t trees;
  };
  const Case cases[] = {{triangle_graph(), 3},
                        {grid_graph(2, 3), 15},
                        {grid_graph(3, 3), 192}};
  for (const auto& [g, expected_trees] : cases) {
    const Matrix t = transfer_current_matrix(g);
    ASSERT_EQ(t.rows(), g.num_edges());
    // Projection of rank |V|-1: symmetric, idempotent, trace = rank.
    const Matrix t2 = multiply_transposed_b(t, t);  // T Tᵀ = T² for sym T
    double trace = 0.0;
    for (std::size_t i = 0; i < t.rows(); ++i) {
      trace += t(i, i);
      for (std::size_t j = 0; j < t.cols(); ++j) {
        EXPECT_NEAR(t(i, j), t(j, i), 1e-12);
        EXPECT_NEAR(t2(i, j), t(i, j), 1e-10);
      }
    }
    EXPECT_NEAR(trace, static_cast<double>(g.num_vertices() - 1), 1e-10);

    const auto trees = enumerate_spanning_trees(g);
    EXPECT_EQ(trees.size(), expected_trees);
    EXPECT_NEAR(std::exp(log_spanning_tree_count(g)),
                static_cast<double>(expected_trees),
                1e-8 * static_cast<double>(expected_trees));
  }
}

TEST(TransferCurrentTest, MarginalsMatchEnumerationAndEffectiveResistance) {
  for (const PlanarGraph& g : {triangle_graph(), grid_graph(2, 3)}) {
    const auto trees = enumerate_spanning_trees(g);
    std::vector<double> freq(g.num_edges(), 0.0);
    for (const auto& tree : trees)
      for (const int e : tree) freq[static_cast<std::size_t>(e)] += 1.0;
    for (double& f : freq) f /= static_cast<double>(trees.size());

    const FeatureKdppOracle oracle = spanning_tree_oracle(g);
    const Matrix t = transfer_current_matrix(g);
    const auto marginals = oracle.marginals();
    ASSERT_EQ(marginals.size(), g.num_edges());
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      EXPECT_NEAR(marginals[e], freq[e], 1e-10);  // P[e ∈ tree]
      EXPECT_NEAR(t(e, e), freq[e], 1e-10);       // = effective resistance
    }
  }
}

TEST(TransferCurrentTest, RejectsDisconnectedAndTrivialGraphs) {
  PlanarGraph disconnected({{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  disconnected.add_edge(0, 1);  // vertex 2 isolated
  EXPECT_THROW((void)transfer_current_features(disconnected),
               InvalidArgument);
  const PlanarGraph single({{0.0, 0.0}});
  EXPECT_THROW((void)log_spanning_tree_count(single), InvalidArgument);
}

// Session draws (plain and distilled, both distillation proposal modes)
// against the uniform law over the 15 spanning trees of the 2x3 grid:
// chi-square/TV on the commit path AND the condition() reference, plus
// the pool-size bit-identity sweep.
//
// Unlike the gaussian-feature distillation tests, commit-vs-reference
// *bit*-identity is not asserted here: the transfer-current Gram is
// exactly the identity (every eigenvalue 1), so the eigenbasis behind
// the two-stage marginal draw is non-unique, and the two algebraic
// paths legitimately resolve the degeneracy differently — identical
// output law (checked below for both), different sequences. The
// bit-identity contract is defined by the per-family protocols on
// simple spectra, which the existing fuzz suites pin.
TEST(SpanningTreeStatTest, SessionDrawsAreUniformOverTrees) {
  const PlanarGraph g = grid_graph(2, 3);
  const FeatureKdppOracle oracle = spanning_tree_oracle(g);
  const ExactDistribution dist = uniform_tree_distribution(g);

  SessionOptions plain;
  SessionOptions distilled;
  distilled.distill.enabled = true;
  distilled.distill.candidate_budget = 48;
  SessionOptions persistent = distilled;
  persistent.distill.persistent_proposal = true;
  // Smallest domain validate() admits (k = 5 edges per tree), still well
  // below the edge count — forces the tail fallback.
  persistent.distill.sparsified_domain = 5;
  const SessionOptions variants[] = {plain, distilled, persistent};

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::uint64_t seed = 99101;
  for (const SessionOptions& options : variants) {
    SessionOptions reference_options = options;
    reference_options.use_commit = false;
    SamplerSession session(oracle, options);
    SamplerSession reference(oracle, reference_options);
    const std::size_t trials = 1800;

    ThreadPool pool(hw);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    auto results = session.draw_many(trials, rng, ctx);

    RandomStream serial_rng(seed);
    auto serial = session.draw_many(trials, serial_rng,
                                    ExecutionContext::serial());
    RandomStream reference_rng(seed);
    auto ref = reference.draw_many(trials, reference_rng,
                                   ExecutionContext::serial());

    std::vector<std::vector<int>> samples;
    std::vector<std::vector<int>> reference_samples;
    samples.reserve(trials);
    reference_samples.reserve(trials);
    for (std::size_t i = 0; i < trials; ++i) {
      EXPECT_EQ(results[i].items, serial[i].items) << "pool-size drift at "
                                                   << i;
      samples.push_back(std::move(results[i].items));
      reference_samples.push_back(std::move(ref[i].items));
    }
    for (const auto& path_samples : {samples, reference_samples}) {
      const auto chi = chi_square_subsets(dist, path_samples);
      EXPECT_LT(chi.statistic, chi_square_quantile(chi.dof, 4.0))
          << "chi-square dof " << chi.dof;
      EXPECT_LT(testing::empirical_tv(dist, path_samples), 0.08);
    }
    ++seed;
  }
}

}  // namespace
}  // namespace pardpp
