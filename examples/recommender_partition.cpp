// Diverse recommendation slates under category quotas — Partition-DPPs
// (Definition 7, [Cel+16]).
//
// A catalog of items in three categories (say movies / shows / docs) with
// per-item quality scores and feature-based similarity; the product slate
// must contain exactly (3, 2, 1) items of each category. We sample the
// partition-constrained DPP with the entropic batched sampler (Theorem 9)
// and contrast against quality-greedy selection.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "pardpp.h"

namespace {

using namespace pardpp;

const char* kCategoryNames[] = {"movie", "show", "doc"};

}  // namespace

int main() {
  RandomStream rng(11);
  const std::size_t per_category = 12;
  const std::size_t n = 3 * per_category;
  std::vector<int> category(n);
  for (std::size_t i = 0; i < n; ++i)
    category[i] = static_cast<int>(i / per_category);

  // Features: category-correlated embeddings; quality: random boosts.
  Matrix features(n, 6);
  std::vector<double> quality(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < 6; ++d)
      features(i, d) =
          rng.normal() + (d == static_cast<std::size_t>(category[i]) ? 2.0 : 0.0);
    quality[i] = 0.5 + rng.uniform() * 1.5;
  }
  // Quality-modulated similarity kernel: L_ij = q_i q_j S_ij
  // (the classic "quality x diversity" decomposition).
  Matrix similarity = rbf_kernel(features, 2.0);
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      l(i, j) = quality[i] * quality[j] * similarity(i, j);
  for (std::size_t i = 0; i < n; ++i) l(i, i) += 1e-6;

  const std::vector<int> quota = {3, 2, 1};
  const GeneralDppOracle oracle(l, category, quota);

  EntropicOptions options;
  options.c = 0.1;
  options.cap_slack = 3.0;
  std::printf("catalog: %zu items (%zu per category), slate quota 3+2+1\n\n",
              n, per_category);
  for (int slate_id = 0; slate_id < 3; ++slate_id) {
    const auto slate = sample_entropic(oracle, rng, nullptr, options);
    std::printf("slate %d (%zu rounds, acceptance %.2f): ", slate_id + 1,
                slate.diag.rounds, slate.diag.acceptance_rate());
    for (const int item : slate.items)
      std::printf("%s#%d(q=%.2f) ",
                  kCategoryNames[category[static_cast<std::size_t>(item)]],
                  item, quality[static_cast<std::size_t>(item)]);
    std::printf("\n");
    // Quota check.
    std::vector<int> got(3, 0);
    for (const int item : slate.items)
      ++got[static_cast<std::size_t>(category[static_cast<std::size_t>(item)])];
    std::printf("  quota check: movies %d/3, shows %d/2, docs %d/1\n", got[0],
                got[1], got[2]);
  }

  // Greedy-by-quality always serves the same slate; the DPP rotates
  // through high-volume slates. Compare volume and slate-to-slate churn.
  std::vector<int> greedy;
  for (int cat = 0; cat < 3; ++cat) {
    std::vector<std::pair<double, int>> ranked;
    for (std::size_t i = 0; i < n; ++i)
      if (category[i] == cat)
        ranked.emplace_back(-quality[i], static_cast<int>(i));
    std::sort(ranked.begin(), ranked.end());
    for (int j = 0; j < quota[static_cast<std::size_t>(cat)]; ++j)
      greedy.push_back(ranked[static_cast<std::size_t>(j)].second);
  }
  std::sort(greedy.begin(), greedy.end());
  const double greedy_logvol = signed_log_det(l.principal(greedy)).log_abs;
  double mean_logvol = 0.0;
  double mean_overlap = 0.0;
  std::vector<int> previous;
  const int volume_trials = 20;
  for (int trial = 0; trial < volume_trials; ++trial) {
    const auto slate = sample_entropic(oracle, rng, nullptr, options);
    mean_logvol += signed_log_det(l.principal(slate.items)).log_abs;
    if (!previous.empty()) {
      int common = 0;
      for (const int a : slate.items)
        for (const int b : previous) common += (a == b);
      mean_overlap += static_cast<double>(common) / 6.0;
    }
    previous = slate.items;
  }
  std::printf(
      "\ngreedy-by-quality: log det(L_S) = %.3f, but serves the *same* "
      "slate forever\npartition-DPP:     mean log det(L_S) = %.3f over %d "
      "slates, mean slate overlap %.0f%%\n",
      greedy_logvol, mean_logvol / volume_trials, volume_trials,
      100.0 * mean_overlap / (volume_trials - 1));
  return 0;
}
