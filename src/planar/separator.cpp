#include "planar/separator.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace pardpp {

namespace {

SeparatorResult finish(const PlanarGraph& g, std::vector<int> separator) {
  SeparatorResult out;
  out.components = g.components_without(separator);
  out.separator = std::move(separator);
  std::size_t largest = 0;
  for (const auto& comp : out.components)
    largest = std::max(largest, comp.size());
  out.balance = g.num_vertices() == 0
                    ? 0.0
                    : static_cast<double>(largest) /
                          static_cast<double>(g.num_vertices());
  return out;
}

}  // namespace

SeparatorResult bfs_level_separator(const PlanarGraph& g, int root) {
  const std::size_t n = g.num_vertices();
  if (n <= 2) return finish(g, {});
  std::vector<int> level(n, -1);
  std::queue<int> queue;
  queue.push(root);
  level[static_cast<std::size_t>(root)] = 0;
  int max_level = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    for (const int u : g.neighbors(v)) {
      if (level[static_cast<std::size_t>(u)] >= 0) continue;
      level[static_cast<std::size_t>(u)] =
          level[static_cast<std::size_t>(v)] + 1;
      max_level = std::max(max_level, level[static_cast<std::size_t>(u)]);
      queue.push(u);
    }
  }
  // (Vertices unreachable from root keep level -1; they form their own
  // components and never join the separator.)
  std::vector<std::size_t> level_sizes(static_cast<std::size_t>(max_level) + 1,
                                       0);
  for (const int lv : level)
    if (lv >= 0) ++level_sizes[static_cast<std::size_t>(lv)];
  // Choose the smallest level whose removal leaves both sides <= 2n/3.
  const double budget = 2.0 * static_cast<double>(n) / 3.0;
  std::size_t best_level = level_sizes.size();
  std::size_t best_size = n + 1;
  std::size_t before = 0;
  for (std::size_t lv = 0; lv < level_sizes.size(); ++lv) {
    const std::size_t here = level_sizes[lv];
    const std::size_t after = n - before - here;
    if (static_cast<double>(before) <= budget &&
        static_cast<double>(after) <= budget && here < best_size) {
      best_size = here;
      best_level = lv;
    }
    before += here;
  }
  if (best_level == level_sizes.size()) {
    // No single balancing level: fall back to the median level.
    std::size_t cumulative = 0;
    for (std::size_t lv = 0; lv < level_sizes.size(); ++lv) {
      cumulative += level_sizes[lv];
      if (cumulative * 2 >= n) {
        best_level = lv;
        break;
      }
    }
  }
  std::vector<int> separator;
  for (std::size_t v = 0; v < n; ++v)
    if (level[v] == static_cast<int>(best_level))
      separator.push_back(static_cast<int>(v));
  return finish(g, std::move(separator));
}

SeparatorResult geometric_separator(const PlanarGraph& g) {
  const std::size_t n = g.num_vertices();
  if (n <= 2) return finish(g, {});
  // Pick the axis with the wider extent.
  double min_xy[2] = {1e300, 1e300};
  double max_xy[2] = {-1e300, -1e300};
  for (std::size_t v = 0; v < n; ++v) {
    for (int axis = 0; axis < 2; ++axis) {
      min_xy[axis] = std::min(min_xy[axis], g.coord(static_cast<int>(v))[axis]);
      max_xy[axis] = std::max(max_xy[axis], g.coord(static_cast<int>(v))[axis]);
    }
  }
  const int axis = (max_xy[0] - min_xy[0] >= max_xy[1] - min_xy[1]) ? 0 : 1;
  std::vector<double> values(n);
  for (std::size_t v = 0; v < n; ++v)
    values[v] = g.coord(static_cast<int>(v))[axis];
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[n / 2];
  // Separator: vertices at the median coordinate plus every vertex whose
  // edge crosses the median line.
  std::vector<bool> in_sep(n, false);
  for (std::size_t v = 0; v < n; ++v)
    if (values[v] == median) in_sep[v] = true;
  for (const auto& [u, v] : g.edges()) {
    const double a = values[static_cast<std::size_t>(u)];
    const double b = values[static_cast<std::size_t>(v)];
    if ((a < median && b > median) || (a > median && b < median)) {
      // Put the smaller-coordinate endpoint into the separator.
      in_sep[static_cast<std::size_t>(a < b ? u : v)] = true;
    }
  }
  std::vector<int> separator;
  for (std::size_t v = 0; v < n; ++v)
    if (in_sep[v]) separator.push_back(static_cast<int>(v));
  return finish(g, std::move(separator));
}

SeparatorResult find_separator(const PlanarGraph& g) {
  if (g.num_vertices() <= 2) return finish(g, {});
  auto bfs = bfs_level_separator(g);
  auto geo = geometric_separator(g);
  const auto acceptable = [](const SeparatorResult& s) {
    return s.balance <= 2.0 / 3.0 + 1e-9;
  };
  if (acceptable(bfs) && acceptable(geo)) {
    return bfs.separator.size() <= geo.separator.size() ? std::move(bfs)
                                                        : std::move(geo);
  }
  if (acceptable(bfs)) return bfs;
  if (acceptable(geo)) return geo;
  // Neither balanced: return the better-balanced one (the sampler still
  // terminates; only the depth bound degrades).
  return bfs.balance <= geo.balance ? std::move(bfs) : std::move(geo);
}

}  // namespace pardpp
