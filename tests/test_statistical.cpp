// Statistical exactness harness: every sampler's empirical distribution is
// compared against exhaustive enumeration on small ensembles, with seeded
// chi-square / total-variation thresholds, at pool sizes {1, hardware}.
// This validates the incremental ConditionalState query path (and the wave
// protocol built on it) *distributionally* — the determinism tests prove
// pool sizes agree with each other; these tests prove they agree with mu.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "dpp/ensemble.h"
#include "dpp/feature_oracle.h"
#include "dpp/symmetric_oracle.h"
#include "linalg/factory.h"
#include "linalg/lu.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/batched.h"
#include "sampling/entropic.h"
#include "sampling/filtering.h"
#include "sampling/rejection.h"
#include "sampling/sequential.h"
#include "sampling/session.h"
#include "support/random.h"
#include "test_util.h"

namespace pardpp {
namespace {

using testing::chi_square_quantile;
using testing::chi_square_subsets;
using testing::ExactDistribution;

std::vector<std::size_t> stat_pool_sizes() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sizes = {1};
  if (hw > 1) sizes.push_back(hw);
  return sizes;
}

// Draws `trials` samples via `draw(rng, ctx)` at every pool size in
// {1, hw} from the same seed, asserts the sequences are identical across
// pool sizes (the determinism contract, at distribution-test scale), and
// returns the pool-1 sequence. A SamplingFailure marks the trial with a
// {-1} sentinel — deterministic per seed, so the identity check still
// holds — and the caller bounds how many are tolerated.
template <typename DrawFn>
std::vector<std::vector<int>> collect_across_pools(std::uint64_t seed,
                                                   int trials, DrawFn&& draw,
                                                   std::size_t* failures) {
  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : stat_pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(seed);
    std::vector<std::vector<int>> samples;
    samples.reserve(static_cast<std::size_t>(trials));
    for (int i = 0; i < trials; ++i) {
      try {
        samples.push_back(draw(rng, ctx));
      } catch (const SamplingFailure&) {
        samples.push_back({-1});
      }
    }
    per_pool.push_back(std::move(samples));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]) << "pool size index " << p;
  std::vector<std::vector<int>> out;
  out.reserve(per_pool[0].size());
  std::size_t failed = 0;
  for (auto& s : per_pool[0]) {
    if (s.size() == 1 && s[0] == -1) {
      ++failed;
      continue;
    }
    out.push_back(std::move(s));
  }
  if (failures != nullptr) *failures = failed;
  return out;
}

// ---- exact k-DPP samplers: sequential, batched, entropic ----

class KdppSamplerStatTest : public ::testing::Test {
 protected:
  static constexpr int kN = 6;
  static constexpr int kK = 2;
  static constexpr int kTrials = 2400;

  void SetUp() override {
    RandomStream setup(881001);
    l_ = random_psd(kN, kN, setup, 1e-3);
    oracle_ = std::make_unique<SymmetricKdppOracle>(l_, kK);
    dist_ = testing::exact_distribution(
        kN, kK, [this](std::span<const int> s) {
          return signed_log_det(l_.principal(s)).log_abs;
        });
  }

  void expect_matches(const std::vector<std::vector<int>>& samples,
                      std::size_t failures) {
    // The samplers' round failure budget is 1e-6 per run; even one
    // failure over a few thousand runs indicates a bug.
    EXPECT_EQ(failures, 0u);
    const auto chi = chi_square_subsets(dist_, samples);
    EXPECT_LT(chi.statistic, chi_square_quantile(chi.dof, 4.0))
        << "chi-square dof " << chi.dof;
    EXPECT_LT(testing::empirical_tv(dist_, samples), 0.08);
  }

  Matrix l_;
  std::unique_ptr<SymmetricKdppOracle> oracle_;
  ExactDistribution dist_;
};

TEST_F(KdppSamplerStatTest, SequentialMatchesEnumeration) {
  std::size_t failures = 0;
  const auto samples = collect_across_pools(
      91101, kTrials,
      [&](RandomStream& rng, const ExecutionContext&) {
        return sample_sequential(*oracle_, rng).items;
      },
      &failures);
  expect_matches(samples, failures);
}

TEST_F(KdppSamplerStatTest, BatchedMatchesEnumeration) {
  BatchedOptions options;
  options.failure_prob = 1e-6;
  std::size_t failures = 0;
  const auto samples = collect_across_pools(
      91102, kTrials,
      [&](RandomStream& rng, const ExecutionContext& ctx) {
        return sample_batched(*oracle_, rng, ctx, options).items;
      },
      &failures);
  expect_matches(samples, failures);
}

TEST_F(KdppSamplerStatTest, EntropicMatchesEnumeration) {
  // On a symmetric negatively correlated target the Lemma 27 cap
  // dominates the Lemma 36 cap, so the entropic sampler's Omega
  // restriction is vacuous and the output distribution is exact.
  EntropicOptions options;
  options.failure_prob = 1e-6;
  std::size_t failures = 0;
  const auto samples = collect_across_pools(
      91103, kTrials,
      [&](RandomStream& rng, const ExecutionContext& ctx) {
        return sample_entropic(*oracle_, rng, ctx, options).items;
      },
      &failures);
  expect_matches(samples, failures);
}

// ---- SamplerSession: the commit path, at distribution scale ----

// Draws `trials` samples through SamplerSession::draw_many at every pool
// size in {1, hw} and asserts (a) the sequences are identical across pool
// sizes, (b) they are identical to the condition() reference session's
// sequence from the same seed — the commit path's bit-identity contract —
// and (c) the commit-path empirical distribution passes the chi-square /
// TV harness.
class SessionCommitStatTest : public KdppSamplerStatTest {
 protected:
  void run_kind(SamplerKind kind, std::uint64_t seed) {
    SessionOptions commit_options;
    commit_options.kind = kind;
    commit_options.batched.failure_prob = 1e-6;
    commit_options.entropic.failure_prob = 1e-6;
    SessionOptions reference_options = commit_options;
    reference_options.use_commit = false;

    SamplerSession commit_session(*oracle_, commit_options);
    SamplerSession reference_session(*oracle_, reference_options);

    std::vector<std::vector<std::vector<int>>> per_pool;
    for (const std::size_t threads : stat_pool_sizes()) {
      ThreadPool pool(threads);
      const ExecutionContext ctx(&pool, nullptr);
      RandomStream rng(seed);
      auto results = commit_session.draw_many(
          static_cast<std::size_t>(kTrials), rng, ctx);
      std::vector<std::vector<int>> samples;
      samples.reserve(results.size());
      for (auto& r : results) samples.push_back(std::move(r.items));
      per_pool.push_back(std::move(samples));
    }
    for (std::size_t p = 1; p < per_pool.size(); ++p)
      EXPECT_EQ(per_pool[0], per_pool[p]) << "pool size index " << p;

    RandomStream reference_rng(seed);
    auto reference = reference_session.draw_many(
        static_cast<std::size_t>(kTrials), reference_rng,
        ExecutionContext::serial());
    ASSERT_EQ(reference.size(), per_pool[0].size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      ASSERT_EQ(per_pool[0][i], reference[i].items)
          << "commit path diverged from the condition() reference at draw "
          << i;

    expect_matches(per_pool[0], /*failures=*/0);
  }
};

TEST_F(SessionCommitStatTest, SequentialCommitPath) {
  run_kind(SamplerKind::kSequential, 92201);
}

TEST_F(SessionCommitStatTest, BatchedCommitPath) {
  run_kind(SamplerKind::kBatched, 92202);
}

TEST_F(SessionCommitStatTest, EntropicCommitPath) {
  run_kind(SamplerKind::kEntropic, 92203);
}

TEST(FeatureSessionStatTest, CommitPathMatchesEnumeration) {
  // The low-rank family's commit path (projected Gram + two-stage draw)
  // against enumeration of L = B B^T, plus bit-identity against the
  // condition() reference.
  RandomStream setup(881003);
  const std::size_t n = 6;
  const std::size_t d = 4;
  const std::size_t k = 2;
  const Matrix features = random_gaussian(n, d, setup);
  const Matrix l = multiply_transposed_b(features, features);
  const FeatureKdppOracle oracle(features, k);
  const auto dist = testing::exact_distribution(
      static_cast<int>(n), static_cast<int>(k),
      [&](std::span<const int> s) {
        return signed_log_det(l.principal(s)).log_abs;
      });

  SessionOptions commit_options;
  SessionOptions reference_options;
  reference_options.use_commit = false;
  SamplerSession commit_session(oracle, commit_options);
  SamplerSession reference_session(oracle, reference_options);

  const std::size_t trials = 2400;
  std::vector<std::vector<std::vector<int>>> per_pool;
  for (const std::size_t threads : stat_pool_sizes()) {
    ThreadPool pool(threads);
    const ExecutionContext ctx(&pool, nullptr);
    RandomStream rng(92204);
    auto results = commit_session.draw_many(trials, rng, ctx);
    std::vector<std::vector<int>> samples;
    for (auto& r : results) samples.push_back(std::move(r.items));
    per_pool.push_back(std::move(samples));
  }
  for (std::size_t p = 1; p < per_pool.size(); ++p)
    EXPECT_EQ(per_pool[0], per_pool[p]);
  RandomStream reference_rng(92204);
  auto reference =
      reference_session.draw_many(trials, reference_rng,
                                  ExecutionContext::serial());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(per_pool[0][i], reference[i].items) << "draw " << i;
  const auto chi = chi_square_subsets(dist, per_pool[0]);
  EXPECT_LT(chi.statistic, chi_square_quantile(chi.dof, 4.0));
  EXPECT_LT(testing::empirical_tv(dist, per_pool[0]), 0.08);
}

// ---- filtering sampler: unconstrained DPP over all subset sizes ----

TEST(FilteringStatTest, WithinTotalVariationBudget) {
  const std::size_t n = 6;
  RandomStream setup(881002);
  std::vector<double> spectrum(n);
  for (std::size_t i = 0; i < n; ++i)
    spectrum[i] = 0.45 * (0.3 + 0.7 * static_cast<double>(i) /
                                    static_cast<double>(n - 1));
  const Matrix kernel = kernel_with_spectrum(spectrum, setup);
  const Matrix l = ensemble_from_kernel(kernel);

  // Exact unconstrained DPP probabilities: P(S) = det(L_S) / det(I + L).
  std::map<std::vector<int>, double> exact;
  double z = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (1u << i)) subset.push_back(static_cast<int>(i));
    const double value =
        subset.empty() ? 1.0
                       : std::exp(signed_log_det(l.principal(subset)).log_abs);
    exact[subset] = value;
    z += value;
  }
  for (auto& [subset, p] : exact) p /= z;

  FilteringOptions options;
  options.eps = 0.05;
  const int trials = 2500;
  std::size_t failures = 0;
  const auto samples = collect_across_pools(
      91104, trials,
      [&](RandomStream& rng, const ExecutionContext& ctx) {
        return sample_filtering_dpp(l, rng, ctx, options).items;
      },
      &failures);
  EXPECT_EQ(failures, 0u);
  std::map<std::vector<int>, std::size_t> counts;
  for (const auto& s : samples) ++counts[s];
  // The sampler is eps-approximate by design; the threshold budgets eps
  // plus ~3 sigma of multinomial noise over the 2^n outcome cells.
  const double tv =
      testing::empirical_tv_map(exact, counts, samples.size());
  EXPECT_LT(tv, options.eps + 0.10);
}

// ---- finite-domain rejection primitive ----

TEST(RejectionStatTest, MatchesTargetDistribution) {
  const std::vector<double> target = {std::log(0.35), std::log(0.05),
                                      std::log(0.25), std::log(0.15),
                                      std::log(0.20)};
  const std::vector<double> proposal(5, std::log(0.2));
  const double cap = std::log(0.35 / 0.2) + 1e-9;
  const int trials = 4000;
  std::size_t failures = 0;
  const auto samples = collect_across_pools(
      91105, trials,
      [&](RandomStream& rng, const ExecutionContext& ctx) {
        const auto out =
            rejection_sample_finite(target, proposal, cap, 200, rng, ctx);
        if (!out.value.has_value()) throw SamplingFailure("budget exhausted");
        return std::vector<int>{static_cast<int>(*out.value)};
      },
      &failures);
  EXPECT_EQ(failures, 0u);
  std::vector<double> counts(5, 0.0);
  for (const auto& s : samples) counts[static_cast<std::size_t>(s[0])] += 1.0;
  double statistic = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expected =
        std::exp(target[i]) * static_cast<double>(samples.size());
    const double diff = counts[i] - expected;
    statistic += diff * diff / expected;
  }
  EXPECT_LT(statistic, chi_square_quantile(4.0, 4.0));
}

TEST(RejectionStatTest, FiniteRejectionSessionMatchesOneShotBitExactly) {
  // The long-lived FiniteRejection state must consume the stream exactly
  // like the one-shot entry point: same seed, same outcomes, draw by draw.
  const std::vector<double> target = {std::log(0.35), std::log(0.05),
                                      std::log(0.25), std::log(0.15),
                                      std::log(0.20)};
  const std::vector<double> proposal(5, std::log(0.2));
  const double cap = std::log(0.35 / 0.2) + 1e-9;
  const FiniteRejection session(target, proposal, cap);
  RandomStream session_rng(92205);
  RandomStream oneshot_rng(92205);
  for (int i = 0; i < 500; ++i) {
    const auto reused = session.draw(200, session_rng);
    const auto oneshot =
        rejection_sample_finite(target, proposal, cap, 200, oneshot_rng);
    ASSERT_EQ(reused.value, oneshot.value) << "draw " << i;
    ASSERT_EQ(reused.proposals_used, oneshot.proposals_used);
    ASSERT_EQ(reused.overflows, oneshot.overflows);
  }
}

}  // namespace
}  // namespace pardpp
