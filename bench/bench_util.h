// Shared helpers for the experiment harness binaries.
//
// Every bench prints: a header naming the experiment (DESIGN.md §3 index),
// the paper claim being reproduced, and an aligned table of measured
// series. EXPERIMENTS.md records paper-vs-measured for each.
#pragma once

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "linalg/simd.h"
#include "parallel/execution.h"
#include "parallel/thread_pool.h"
#include "sampling/diagnostics.h"
#include "support/timer.h"

namespace pardpp::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& artifact,
                         const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("# %s — %s\n", experiment_id.c_str(), artifact.c_str());
  std::printf("# claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

/// Prints one aligned table: a row of column names then value rows.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(const std::vector<std::string>& values) {
    rows_.push_back(values);
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
      widths[c] = columns_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      std::printf("\n");
    };
    print_row(columns_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(std::size_t v) { return std::to_string(v); }

/// Resolves a bench artifact name to its path under `bench-out/`
/// (creating the directory on first use). Every emitted `BENCH_*.json`
/// goes through this: artifacts land in a gitignored output directory —
/// never in the repo root, where a stale copy could be committed — and CI
/// uploads `bench-out/` wholesale.
inline std::string bench_out_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench-out", ec);
  if (ec) return name;  // fall back to the cwd, still reported by write()
  return (std::filesystem::path("bench-out") / name).string();
}

/// Pool sizes for wall-clock scaling sweeps: {1, 2, 4, hardware}, deduped
/// ascending. Pools wider than the hardware still run (the determinism
/// check across pool sizes is what matters there); only the speedup
/// column is meaningful relative to the actual core count.
inline std::vector<std::size_t> thread_sweep() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sweep = {1, 2, 4};
  if (hw > 4) sweep.push_back(hw);
  return sweep;
}

/// RAII attachment of a pool to the global linalg context, so the pool is
/// detached before destruction even when a sampler throws mid-sweep.
class ScopedLinalgPool {
 public:
  explicit ScopedLinalgPool(ThreadPool* pool) { set_linalg_pool(pool); }
  ~ScopedLinalgPool() { set_linalg_pool(nullptr); }
  ScopedLinalgPool(const ScopedLinalgPool&) = delete;
  ScopedLinalgPool& operator=(const ScopedLinalgPool&) = delete;
};

/// One pool size's measurements from run_thread_sweep.
struct SweepPoint {
  std::size_t pool_size = 0;
  double wall_ms = 0.0;    ///< best (minimum) timed repeat
  double speedup = 1.0;    ///< vs the pool-size-1 point
  bool identical = true;   ///< sample matches the pool-size-1 reference
  std::vector<int> items;  ///< the (repeat-invariant per seed) last sample
  SampleDiagnostics diag;  ///< diagnostics of the last repeat
  PramStats pram;          ///< ledger accumulated over all timed repeats
};

/// Rounds a speedup to the measurement's significant precision (tenths).
/// Host jitter on runs of this length is a few percent even for the
/// minimum over interleaved passes, so reporting hundredths would imply
/// false precision — and the regression flag in the emitted JSON is
/// computed from the reported value, so single-core hosts where every
/// pool size executes the same serial instruction stream read as parity,
/// not as noise-driven loss.
inline double reported_speedup(double raw) {
  return std::round(raw * 10.0) / 10.0;
}

/// Shared thread-sweep harness. For each pool size in thread_sweep() it
/// attaches a pool to an ExecutionContext (with a persistent PramLedger)
/// and to the linalg hook, and records the best wall clock over `repeats`
/// timed runs, the diagnostics, PRAM stats, and whether the sample is
/// identical to the pool-size-1 reference.
///
/// Measurement protocol: one untimed warmup pass (allocator, page cache,
/// branch predictors), then `repeats` timed passes that *interleave* the
/// pool sizes (1, 2, 4, ..., 1, 2, 4, ...), so slow host drift hits every
/// point equally instead of biasing the later ones. Minimum-of-passes is
/// the right wall-clock estimator here: the sample per seed is
/// deterministic, so passes differ only by scheduler noise, which is
/// strictly additive. The callback must reseed its own RandomStream per
/// call so every run draws the same sample.
template <typename SampleFn>
std::vector<SweepPoint> run_thread_sweep(int repeats, SampleFn&& sample) {
  const std::vector<std::size_t> sizes = thread_sweep();
  std::vector<std::unique_ptr<ThreadPool>> pools;
  std::vector<std::unique_ptr<PramLedger>> ledgers;
  std::vector<SweepPoint> points(sizes.size());
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    pools.push_back(std::make_unique<ThreadPool>(sizes[p]));
    ledgers.push_back(std::make_unique<PramLedger>());
    points[p].pool_size = sizes[p];
  }
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const ScopedLinalgPool linalg_guard(pools[p].get());
    PramLedger warmup_ledger;  // keep the reported PRAM stats timed-only
    const ExecutionContext ctx(pools[p].get(), &warmup_ledger);
    (void)sample(ctx);
  }
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t p = 0; p < sizes.size(); ++p) {
      const ScopedLinalgPool linalg_guard(pools[p].get());
      const ExecutionContext ctx(pools[p].get(), ledgers[p].get());
      Timer timer;
      SampleResult result = sample(ctx);
      const double ms = timer.millis();
      if (r == 0 || ms < points[p].wall_ms) points[p].wall_ms = ms;
      points[p].items = std::move(result.items);
      points[p].diag = result.diag;
    }
  }
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    points[p].pram = ledgers[p]->stats();
    if (p > 0) {
      points[p].speedup = points[0].wall_ms / points[p].wall_ms;
      points[p].identical = points[0].items == points[p].items;
    }
  }
  return points;
}

/// Accumulates flat records and writes them as a JSON array — the
/// machine-readable counterpart of one printed table (BENCH_*.json), so
/// the speedup trajectory can be tracked across PRs.
class JsonSeries {
 public:
  using Field = std::pair<std::string, std::string>;

  /// `number(...)` fields are emitted bare; `text(...)` fields quoted.
  static Field number(std::string key, double value, int precision = 6) {
    return {std::move(key), fmt(value, precision)};
  }
  static Field number(std::string key, std::size_t value) {
    return {std::move(key), fmt_int(value)};
  }
  /// Emitted as a bare JSON boolean — `"regression": true` is what the CI
  /// gate greps for, so the flag must not be quoted.
  static Field boolean(std::string key, bool value) {
    return {std::move(key), value ? "true" : "false"};
  }
  static Field text(std::string key, const std::string& value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    return {std::move(key), std::move(quoted)};
  }

  /// Every record is stamped with the host provenance fields, so cross-PR
  /// comparisons (scripts/compare_bench.py) can tell a code regression
  /// from a host change: wall-clock deltas measured on different hardware
  /// are advisory, not gating.
  void add_record(const std::vector<Field>& fields) {
    std::string record = "  {";
    bool first = true;
    const auto emit = [&](const Field& field) {
      if (!first) record += ", ";
      first = false;
      record += "\"" + field.first + "\": " + field.second;
    };
    for (const Field& field : fields) emit(field);
    for (const Field& field : host_fields()) emit(field);
    record += "}";
    records_.push_back(std::move(record));
  }

  /// Writes `path` ("BENCH_<name>.json") and reports where.
  void write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::printf("! could not write %s\n", path.c_str());
      return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << records_[i];
      if (i + 1 < records_.size()) out << ",";
      out << "\n";
    }
    out << "]\n";
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  /// Cached host descriptors: logical CPU count two ways (the standard
  /// library's view and the OS's online-processor count, which diverge
  /// under cgroup/affinity limits) plus the CPU model string.
  static const std::vector<Field>& host_fields() {
    static const std::vector<Field> fields = [] {
      std::vector<Field> out;
      out.push_back(number(
          "host_cpus",
          static_cast<std::size_t>(std::thread::hardware_concurrency())));
      std::size_t nproc = 0;
#if defined(_SC_NPROCESSORS_ONLN)
      const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
      if (online > 0) nproc = static_cast<std::size_t>(online);
#endif
      out.push_back(number("host_nproc", nproc));
      std::string model = "unknown";
      std::ifstream cpuinfo("/proc/cpuinfo");
      std::string line;
      while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) != 0) continue;
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
          model = line.substr(colon + 1);
          const std::size_t start = model.find_first_not_of(" \t");
          model = start == std::string::npos ? "unknown" : model.substr(start);
        }
        break;
      }
      out.push_back(text("host_cpu_model", model));
      // Selected dispatch arm (latched PARDPP_SIMD resolution). Wall
      // clocks measured on different arms are not comparable — the
      // comparator treats a mismatch like a host change (advisory).
      out.push_back(text("simd", simd::path_name()));
      return out;
    }();
    return fields;
  }

  std::vector<std::string> records_;
};

}  // namespace pardpp::bench
